//! 3700 vs BX2a vs BX2b: the paper's central comparison, condensed —
//! NPB per-CPU rates (Fig. 6) plus the compiler study (Fig. 8).
//!
//! Run with: `cargo run --release --example node_shootout`

use columbia::experiments::{run, Experiment};
use columbia::machine::node::NodeKind;
use columbia::npb::{gflops_per_cpu, NpbBenchmark, NpbClass, Paradigm};
use columbia::runtime::compiler::CompilerVersion;

fn main() {
    // The headline anomalies, stated directly.
    let ft3700 = gflops_per_cpu(
        NpbBenchmark::Ft,
        NpbClass::B,
        NodeKind::Altix3700,
        Paradigm::Mpi,
        256,
        CompilerVersion::V7_1,
    );
    let ftbx2 = gflops_per_cpu(
        NpbBenchmark::Ft,
        NpbClass::B,
        NodeKind::Bx2a,
        Paradigm::Mpi,
        256,
        CompilerVersion::V7_1,
    );
    println!(
        "FT (MPI, 256 CPUs): BX2 is {:.2}x the 3700 (paper: 'about twice as fast')",
        ftbx2 / ft3700
    );

    let mg_a = gflops_per_cpu(
        NpbBenchmark::Mg,
        NpbClass::B,
        NodeKind::Bx2a,
        Paradigm::Mpi,
        64,
        CompilerVersion::V7_1,
    );
    let mg_b = gflops_per_cpu(
        NpbBenchmark::Mg,
        NpbClass::B,
        NodeKind::Bx2b,
        Paradigm::Mpi,
        64,
        CompilerVersion::V7_1,
    );
    println!(
        "MG (MPI, 64 CPUs): BX2b is {:.2}x the BX2a (paper: ~50% jump from the 9 MB L3)",
        mg_b / mg_a
    );

    println!("\n{}", run(Experiment::Fig6).to_text());
    println!("{}", run(Experiment::Fig8).to_text());
}
