//! 3700 vs BX2a vs BX2b: the paper's central comparison, condensed —
//! NPB per-CPU rates (Fig. 6) plus the compiler study (Fig. 8).
//!
//! Run with: `cargo run --release --example node_shootout`

use columbia::experiments::{run, Experiment};
use columbia::machine::node::NodeKind;
use columbia::npb::{gflops_per_cpu, NpbBenchmark, NpbClass, Paradigm};
use columbia::runtime::compiler::CompilerVersion;

fn main() {
    // A healthy machine: any simulation failure here is a bug.
    let sweep = |bench, kind, cpus| {
        gflops_per_cpu(
            bench,
            NpbClass::B,
            kind,
            Paradigm::Mpi,
            cpus,
            CompilerVersion::V7_1,
        )
        .expect("healthy machine")
    };
    // The headline anomalies, stated directly.
    let ft3700 = sweep(NpbBenchmark::Ft, NodeKind::Altix3700, 256);
    let ftbx2 = sweep(NpbBenchmark::Ft, NodeKind::Bx2a, 256);
    println!(
        "FT (MPI, 256 CPUs): BX2 is {:.2}x the 3700 (paper: 'about twice as fast')",
        ftbx2 / ft3700
    );

    let mg_a = sweep(NpbBenchmark::Mg, NodeKind::Bx2a, 64);
    let mg_b = sweep(NpbBenchmark::Mg, NodeKind::Bx2b, 64);
    println!(
        "MG (MPI, 64 CPUs): BX2b is {:.2}x the BX2a (paper: ~50% jump from the 9 MB L3)",
        mg_b / mg_a
    );

    println!("\n{}", run(Experiment::Fig6).to_text());
    println!("{}", run(Experiment::Fig8).to_text());
}
