//! The molecular-dynamics experiment (Table 5): a real Lennard-Jones
//! NVE simulation on this host, then the 64,000-atoms-per-CPU weak
//! scaling sweep to 2,040 simulated processors.
//!
//! Run with: `cargo run --release --example md_weak_scaling`

use columbia::experiments::{run, Experiment};
use columbia::md::MdSystem;

fn main() {
    // Real MD: fcc lattice, velocity Verlet, cutoff 5.0 — watch energy
    // conservation over 25 steps.
    let mut sys = MdSystem::fcc(6, 0.8, 0.5, 2026);
    let mut pot = sys.compute_forces_cells();
    let e0 = pot + sys.kinetic_energy();
    for _ in 0..25 {
        pot = sys.step(0.002);
    }
    let e = pot + sys.kinetic_energy();
    println!(
        "real MD: {} atoms, T = {:.3}, energy drift {:.2e} (relative)",
        sys.len(),
        sys.temperature(),
        ((e - e0) / e0).abs()
    );

    println!("\n{}", run(Experiment::Table5).to_text());
}
