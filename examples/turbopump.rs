//! The INS3D turbopump experiment (Table 2): a real miniature
//! artificial-compressibility solve, then the full-scale Table 2 sweep
//! on the simulated machine.
//!
//! Run with: `cargo run --release --example turbopump`

use columbia::experiments::{run, Experiment};
use columbia::ins3d::AcSolver;

fn main() {
    // Real physics first: drive a duct flow's divergence down through
    // pseudo-time sub-iterations, exactly the §3.4 loop.
    let mut solver = AcSolver::duct(16, 10.0);
    let d0 = solver.max_divergence();
    solver.tolerance = 0.05 * d0;
    let used = solver.physical_step(30);
    println!(
        "artificial compressibility: divergence {:.3e} -> {:.3e} in {} sub-iterations",
        d0,
        solver.max_divergence(),
        used
    );

    // Then the paper's Table 2 at Columbia scale.
    println!("\n{}", run(Experiment::Table2).to_text());
}
