//! Quickstart: reproduce the paper's headline hardware table and one
//! microbenchmark comparison in a few lines.
//!
//! Run with: `cargo run --release --example quickstart`

use columbia::experiments::{run, Experiment};
use columbia::hpcc::dgemm;
use columbia::machine::node::NodeKind;

fn main() {
    // The machine: Table 1, regenerated from the model.
    println!("{}", run(Experiment::Table1).to_text());

    // One number everyone quotes: sustained DGEMM per CPU.
    for kind in NodeKind::ALL {
        let d = dgemm::simulate(kind, 1);
        println!(
            "DGEMM on {:>5}: {:.2} Gflop/s per CPU (n = {})",
            kind.name(),
            d.gflops_per_cpu,
            d.n
        );
    }

    // And a real computation on this host for comparison.
    let real = dgemm::run_real(256);
    println!(
        "DGEMM on this host (256x256 blocked, rayon): {:.2} Gflop/s",
        real.gflops_per_cpu
    );
}
