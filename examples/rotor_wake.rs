//! The OVERFLOW-D rotor-wake experiment (Tables 3 and 6): a real
//! two-block overset solve with donor interpolation, then the paper's
//! scaling tables on the simulated machine.
//!
//! Run with: `cargo run --release --example rotor_wake`

use columbia::experiments::{run, Experiment};
use columbia::overflowd::OversetPair;
use columbia::overset::systems::rotor_wake;

fn main() {
    // Real overset mechanics: two overlapping blocks converge together.
    let mut pair = OversetPair::new(12);
    let r0 = pair.residual();
    for _ in 0..20 {
        pair.step();
    }
    println!(
        "overset pair: residual {:.3e} -> {:.3e}, boundary mismatch {:.1e}",
        r0,
        pair.residual(),
        pair.boundary_mismatch()
    );

    // The grid system the paper ran.
    let system = rotor_wake(1.0);
    println!(
        "rotor system: {} blocks, {:.1}M points",
        system.len(),
        system.total_points() as f64 / 1e6
    );

    println!("\n{}", run(Experiment::Table3).to_text());
    println!("{}", run(Experiment::Table6).to_text());
}
