//! The HPC Challenge subset: DGEMM, STREAM (including the §4.2 stride
//! study), and the b_eff patterns in-node (Fig. 5) and across nodes
//! (Fig. 10).
//!
//! Run with: `cargo run --release --example hpcc_suite`

use columbia::experiments::{run, Experiment};
use columbia::kernels::stream::measure;
use columbia::machine::memory::StreamOp;

fn main() {
    // Real STREAM on this host, for grounding.
    for op in StreamOp::ALL {
        let m = measure(op, 2_000_000, 3);
        println!(
            "host STREAM {:>5}: {:6.2} GB/s",
            op.name(),
            m.bytes_per_second / 1e9
        );
    }
    println!();
    println!("{}", run(Experiment::DgemmStream).to_text());
    println!("{}", run(Experiment::Stride).to_text());
    println!("{}", run(Experiment::Fig5).to_text());
    println!("{}", run(Experiment::Fig10).to_text());
}
