//! The host-side observatory, end to end.
//!
//! Three contracts under test, mirroring `repro`'s promises:
//!
//! * **Manifest byte-stability** — two identical runs of the same
//!   experiment produce byte-identical run manifests once the declared
//!   `volatile` key is stripped, and the stable part changes exactly
//!   when the run's identity (plan shape) changes.
//! * **Host capture through real sweeps** — with a capture enabled, a
//!   resilient checkpointed run records worker-lane job spans and
//!   checkpoint-store hit/save counters, and the Chrome export renders
//!   them as a dedicated "host executor (wall clock)" process next to
//!   the simulated-time tracks.
//! * **Zero residue** — with no capture enabled the same run leaves
//!   nothing behind to take.
//!
//! The host capture window is process-global, so every test that
//! touches it serializes on one lock (this integration binary is its
//! own process — the unit-test binaries cannot interfere).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use columbia::experiments::{plan, run_resilient, run_with_jobs, Experiment};
use columbia::manifest::{report_hash, ManifestBuilder, ResilienceSummary, Volatile};
use columbia::obs::{chrome_trace_with_host, host};
use columbia::{PointStore, ResilienceOptions, RunManifest};
use serde_json::Value;

static TEST_LOCK: Mutex<()> = Mutex::new(());

fn temp_dir(tag: &str) -> std::path::PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "columbia-observatory-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Build the manifest `repro --manifest` would for one plain run of
/// `exp` on `jobs` threads.
fn manifest_for(exp: Experiment, jobs: usize, wall: f64) -> RunManifest {
    let report = run_with_jobs(exp, jobs);
    let p = plan(exp);
    let mut b = ManifestBuilder::new("repro", jobs, &ResilienceSummary::default());
    b.record_experiment(exp.name(), p.fingerprint(), p.len(), &report, None);
    b.finish(&Volatile {
        wall_time_seconds: wall,
        git_rev: columbia::manifest::git_rev(),
        host_metrics: None,
        sim_threads: 1,
    })
}

#[test]
fn manifests_of_identical_runs_are_byte_stable() {
    let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let a = manifest_for(Experiment::Table2, 1, 0.5);
    let b = manifest_for(Experiment::Table2, 2, 7.5);
    // Different job counts are a *declared* stable field — they change
    // the stable part — so compare equal-jobs runs first.
    let a2 = manifest_for(Experiment::Table2, 1, 99.0);
    assert_eq!(
        a.stable_string(),
        a2.stable_string(),
        "same experiment, same jobs: stable part byte-identical"
    );
    assert_ne!(
        a.to_string_pretty(),
        a2.to_string_pretty(),
        "wall time still differs in the full document"
    );
    assert_ne!(
        a.stable_string(),
        b.stable_string(),
        "jobs is part of the run's stable identity"
    );
    // And a different experiment moves the fingerprint + report hash.
    let c = manifest_for(Experiment::Table1, 1, 0.5);
    assert_ne!(a.stable_string(), c.stable_string());
}

#[test]
fn spec_manifest_entries_pin_spec_hash_and_points_in_the_stable_part() {
    let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let text = std::fs::read_to_string(
        std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../specs/table1.toml"),
    )
    .expect("shipped spec readable");

    let manifest_of = |spec_text: &str, wall: f64| -> RunManifest {
        let spec = columbia::spec::load_str(spec_text).expect("spec parses");
        let p = columbia::spec::compile(&spec).expect("spec compiles");
        let (fingerprint, points) = (p.fingerprint(), p.len());
        let report = p.run_with_jobs(1).expect("spec plan runs");
        let mut b = ManifestBuilder::new("repro", 1, &ResilienceSummary::default());
        b.record_spec_experiment(
            "table1",
            fingerprint,
            points,
            &report,
            None,
            &columbia::spec::spec_hash(spec_text.as_bytes()),
        );
        b.finish(&Volatile {
            wall_time_seconds: wall,
            git_rev: columbia::manifest::git_rev(),
            host_metrics: None,
            sim_threads: 1,
        })
    };

    let a = manifest_of(&text, 0.5);
    let b = manifest_of(&text, 42.0);
    assert_eq!(
        a.stable_string(),
        b.stable_string(),
        "same spec bytes: stable part byte-identical"
    );

    // The spec object sits in the stable portion and carries the
    // FNV-128 content hash of the spec bytes plus the resolved point
    // count after grid expansion.
    let doc = serde_json::from_str(&a.stable_string()).expect("stable part parses");
    let e = &doc.get("experiments").and_then(Value::as_array).unwrap()[0];
    let spec = e.get("spec").expect("spec object recorded");
    assert_eq!(
        spec.get("content_hash").and_then(Value::as_str),
        Some(columbia::spec::spec_hash(text.as_bytes()).as_str())
    );
    assert_eq!(
        spec.get("points").and_then(Value::as_f64),
        e.get("points").and_then(Value::as_f64),
        "resolved point count mirrors the entry's"
    );

    // Touching the spec text — even a comment that compiles to the very
    // same plan — moves the content hash, and with it the stable part:
    // the manifest pins the *text* that ran, not just the plan shape.
    let touched = format!("# provenance comment\n{text}");
    let c = manifest_of(&touched, 0.5);
    let doc_c = serde_json::from_str(&c.stable_string()).expect("stable part parses");
    let e_c = &doc_c.get("experiments").and_then(Value::as_array).unwrap()[0];
    assert_eq!(
        e_c.get("plan_fingerprint"),
        e.get("plan_fingerprint"),
        "comment-only edit leaves the plan identical"
    );
    assert_ne!(
        c.stable_string(),
        a.stable_string(),
        "but the spec content hash changes the stable part"
    );
}

#[test]
fn manifest_report_hash_matches_the_rendered_report() {
    let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let exp = Experiment::Table1;
    let report = run_with_jobs(exp, 1);
    let m = manifest_for(exp, 1, 0.0);
    let doc = serde_json::from_str(&m.to_string_pretty()).expect("manifest parses");
    let exps = doc
        .get("experiments")
        .and_then(Value::as_array)
        .expect("experiments array");
    assert_eq!(exps.len(), 1);
    assert_eq!(
        exps[0].get("report_hash").and_then(Value::as_str),
        Some(report_hash(&report).as_str()),
        "manifest pins the report content"
    );
    assert_eq!(
        exps[0].get("points").and_then(Value::as_f64),
        Some(plan(exp).len() as f64)
    );
}

#[test]
fn resilient_checkpointed_run_fills_worker_and_store_tracks() {
    let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let dir = temp_dir("capture");
    let exp = Experiment::Table2;
    let points = plan(exp).len();

    // First run: cold store, capture on. Every point runs and saves.
    host::enable();
    let opts = ResilienceOptions {
        store: Some(PointStore::open(&dir).expect("store opens")),
        resume: true,
        ..ResilienceOptions::default()
    };
    let outcome = run_resilient(exp, 2, opts);
    assert_eq!(outcome.stats.failed, 0);
    let report = host::take().expect("capture live");
    let job_spans = report.spans.iter().filter(|s| s.cat == "host.job").count();
    assert_eq!(job_spans, points, "one worker-lane span per sweep point");
    assert_eq!(report.metrics.counter("host.jobs") as usize, points);
    assert_eq!(
        report.metrics.counter("store.saves") as usize,
        points,
        "every point checkpointed"
    );
    assert_eq!(
        report.metrics.counter("store.misses") as usize,
        points,
        "cold store: every resume probe missed"
    );
    assert!(
        report
            .metrics
            .histogram("store.write_seconds")
            .is_some_and(|h| h.count() as usize == points),
        "write latency observed per save"
    );

    // Second run: warm store. Every probe hits; nothing re-runs.
    host::enable();
    let opts = ResilienceOptions {
        store: Some(PointStore::open(&dir).expect("store reopens")),
        resume: true,
        ..ResilienceOptions::default()
    };
    let outcome = run_resilient(exp, 2, opts);
    assert_eq!(outcome.stats.resumed, points);
    let warm = host::take().expect("capture live");
    assert_eq!(warm.metrics.counter("store.hits") as usize, points);
    assert_eq!(warm.metrics.counter("store.saves"), 0, "nothing re-saved");

    // The capture renders as its own process in the Chrome export.
    let doc = chrome_trace_with_host(&[], Some(&report));
    let text = serde_json::to_string(&doc);
    let parsed = serde_json::from_str(&text).expect("trace parses");
    let events = parsed
        .get("traceEvents")
        .and_then(Value::as_array)
        .expect("traceEvents");
    let names: Vec<&str> = events
        .iter()
        .filter(|e| e.get("name").and_then(Value::as_str) == Some("process_name"))
        .filter_map(|e| e.get("args")?.get("name")?.as_str())
        .collect();
    assert_eq!(names, vec!["host executor (wall clock)"]);
    let threads: Vec<&str> = events
        .iter()
        .filter(|e| e.get("name").and_then(Value::as_str) == Some("thread_name"))
        .filter_map(|e| e.get("args")?.get("name")?.as_str())
        .collect();
    assert!(
        threads.iter().any(|t| t.starts_with("worker ")),
        "worker lanes named: {threads:?}"
    );
    assert!(
        threads.contains(&"checkpoint store"),
        "store lane named: {threads:?}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn uncaptured_runs_leave_nothing_to_take() {
    let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    assert!(!host::is_enabled());
    let _ = run_with_jobs(Experiment::Table1, 2);
    assert!(host::take().is_none(), "no capture was enabled");
}
