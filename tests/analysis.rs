//! Integration tests for the simulated-time performance analyzer
//! (`columbia_obs::analysis`) over real experiment captures, plus the
//! golden pin of the merged (sim + host) Chrome trace export.
//!
//! The chrome-trace golden lives at `tests/golden/chrome_host.txt`;
//! regenerate it with `UPDATE_GOLDEN=1 cargo test --test analysis`
//! (which fails the run, forcing a clean confirmation pass — same
//! workflow as `golden_values`).

use std::path::PathBuf;
use std::sync::Mutex;

use columbia::experiments::{run_with_jobs, Experiment};
use columbia::obs::host::{HostReport, HostSpan, HostTrack};
use columbia::obs::{
    analyze, chrome_trace_with_host, sink, Analysis, CommProfile, Metrics, SpanEvent, SpanKind,
    TraceBundle,
};
use columbia::sweep::{PointOutput, ResilienceOptions, SweepPlan};
use serde_json::Value;

/// The trace sink is process-global; tests that install it serialize
/// here (the test harness runs threads in parallel).
static SINK_LOCK: Mutex<()> = Mutex::new(());

/// Capture every simulation `exp` runs at the given parallelism.
fn capture(exp: Experiment, jobs: usize) -> Vec<TraceBundle> {
    sink::install();
    let _ = run_with_jobs(exp, jobs);
    sink::take()
}

#[test]
fn analysis_of_a_real_experiment_is_jobs_independent() {
    let _guard = SINK_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let exp = Experiment::parse("table4").expect("table4 exists");
    let serial = capture(exp, 1);
    let parallel = capture(exp, 4);
    assert!(!serial.is_empty(), "table4 records simulations");
    assert_eq!(serial.len(), parallel.len());
    for (a, b) in serial.iter().zip(&parallel) {
        assert_eq!(a.label, b.label, "canonical drain order");
        let va = serde_json::to_string(&analyze(a).to_value());
        let vb = serde_json::to_string(&analyze(b).to_value());
        assert_eq!(va, vb, "analysis of {} is schedule-independent", a.label);
    }
}

#[test]
fn critical_path_accounts_for_every_captured_makespan() {
    let _guard = SINK_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let exp = Experiment::parse("table4").expect("table4 exists");
    for bundle in capture(exp, 2) {
        let a: Analysis = analyze(&bundle);
        let cp = &a.critical_path;
        assert!(!cp.truncated, "{}: walk terminated", bundle.label);
        assert!(cp.makespan > 0.0, "{}: sim did work", bundle.label);
        // The walk attributes exactly the time it traverses, so the
        // category totals reconstruct the makespan to rounding dust.
        assert!(
            (cp.total - cp.makespan).abs() <= 1e-9 * cp.makespan.max(1.0),
            "{}: critical path {} vs makespan {}",
            bundle.label,
            cp.total,
            cp.makespan
        );
        assert!(!cp.segments.is_empty());
        // Per-rank and per-node attributions are partitions of the
        // same path.
        let by_rank: f64 = cp.by_rank.values().map(|b| b.total()).sum();
        assert!((by_rank - cp.total).abs() <= 1e-9 * cp.total.max(1.0));
        if !bundle.rank_nodes.is_empty() {
            let by_node: f64 = cp.by_node.values().map(|b| b.total()).sum();
            assert!((by_node - cp.total).abs() <= 1e-9 * cp.total.max(1.0));
        }
        // Segments are forward-ordered and non-overlapping.
        for w in cp.segments.windows(2) {
            assert!(w[0].end <= w[1].start + 1e-12, "{}", bundle.label);
        }
        // Busy time can never exceed the area the imbalance stats
        // normalize by.
        assert!(a.imbalance.max_busy <= cp.makespan * (1.0 + 1e-9));
        assert!((0.0..=1.0).contains(&a.imbalance.idle_fraction));
    }
}

/// The sweep-resilience summary bundle reports its point-latency
/// distribution as p50/p95/p99 gauges derived from
/// `Histogram::percentile`, not just raw decade buckets.
#[test]
fn sweep_resilience_summary_carries_latency_percentile_gauges() {
    let _guard = SINK_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    sink::install();
    let mut plan = SweepPlan::new("percentiles", "resilience summary", &["x"]);
    for i in 0..8u64 {
        plan.point_ok(move || {
            // Spread of real (tiny) wall-clock work so the histogram
            // has a distribution to summarize.
            std::thread::sleep(std::time::Duration::from_micros(50 * (i + 1)));
            PointOutput::default()
        });
    }
    let outcome = plan.run_resilient_with_jobs(2, ResilienceOptions::default());
    assert_eq!(outcome.stats.failed, 0);
    let bundles = sink::take();
    let summary = bundles
        .iter()
        .find(|b| b.label.contains("sweep resilience:"))
        .expect("resilience summary bundle");
    let hist = summary
        .metrics
        .histogram("sweep.point_seconds")
        .expect("latency histogram");
    assert_eq!(hist.count(), 8);
    let p50 = summary
        .metrics
        .gauge_value("sweep.point_seconds_p50")
        .expect("p50 gauge");
    let p95 = summary
        .metrics
        .gauge_value("sweep.point_seconds_p95")
        .expect("p95 gauge");
    let p99 = summary
        .metrics
        .gauge_value("sweep.point_seconds_p99")
        .expect("p99 gauge");
    assert!(p50 > 0.0);
    assert!(p50 <= p95 && p95 <= p99, "percentiles are monotone");
    assert_eq!(
        p50,
        hist.percentile(50.0),
        "gauges derive from the histogram"
    );
    assert_eq!(p95, hist.percentile(95.0));
    assert_eq!(p99, hist.percentile(99.0));
}

// ---- chrome trace golden ----

/// A small fixed simulation bundle: two ranks, one wait, one net span.
fn sim_bundle() -> TraceBundle {
    let spans = vec![
        SpanEvent {
            rank: 0,
            kind: SpanKind::Compute,
            start: 0.0,
            end: 1.0,
        },
        SpanEvent {
            rank: 0,
            kind: SpanKind::Send,
            start: 1.0,
            end: 1.25,
        },
        SpanEvent {
            rank: 1,
            kind: SpanKind::RecvWait,
            start: 0.0,
            end: 1.5,
        },
        SpanEvent {
            rank: 1,
            kind: SpanKind::RetransmitBackoff,
            start: 0.5,
            end: 0.75,
        },
    ];
    let profile = CommProfile::from_spans(&spans, 2);
    TraceBundle {
        label: "golden sim".into(),
        spans,
        edges: vec![],
        rank_nodes: vec![0, 1],
        metrics: Metrics::new(),
        profile,
    }
}

/// A small fixed host capture: one worker lane plus store activity.
fn host_report() -> HostReport {
    let mut r = HostReport::default();
    r.spans.push(HostSpan {
        track: HostTrack::Worker(0),
        label: "job 0".into(),
        cat: "host.job",
        start: 0.0,
        end: 0.5,
        args: vec![("outcome", Value::String("ok".into()))],
    });
    r.spans.push(HostSpan {
        track: HostTrack::Store,
        label: "save".into(),
        cat: "host.store",
        start: 0.5,
        end: 0.6,
        args: vec![],
    });
    r
}

/// Golden pin of the merged (simulated-time + host wall-clock) Chrome
/// trace: the exact serialized JSON is deliberate-update-only, because
/// downstream tooling (Perfetto configs, trace diff scripts) keys on
/// event names, track layout, and field order.
#[test]
fn merged_chrome_trace_matches_golden() {
    let doc = chrome_trace_with_host(&[sim_bundle()], Some(&host_report()));
    let actual = format!("{}\n", serde_json::to_string_pretty(&doc));
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/chrome_host.txt");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &actual)
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
        panic!(
            "UPDATE_GOLDEN: rewrote {}; review `git diff tests/golden/` \
             then re-run without UPDATE_GOLDEN to confirm",
            path.display()
        );
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {}: {e}\n\
             Generate it with `UPDATE_GOLDEN=1 cargo test --test analysis`",
            path.display()
        )
    });
    assert_eq!(
        expected, actual,
        "merged chrome trace drifted from tests/golden/chrome_host.txt \
         (regenerate deliberately with UPDATE_GOLDEN=1)"
    );
}
