//! Resilient sweep execution, end to end.
//!
//! Three contracts under test, mirroring the executor's promises:
//!
//! * **Panic isolation** — a plan with K randomly panicking points
//!   still completes the other N−K, reports the canonical
//!   lowest-indexed failure first, and never poisons the pool
//!   (property-tested over random plans, failure sets, and worker
//!   counts).
//! * **Kill-and-resume byte-identity** — a real experiment
//!   checkpointed to disk, "killed" by deleting and truncating store
//!   entries, and resumed produces a report byte-identical to the
//!   uninterrupted golden fixture in `tests/golden/`. CI runs the same
//!   scenario through the `repro` binary as a smoke gate.
//! * **Deadline + retry policy** — a hung point is abandoned at its
//!   wall-clock deadline and a transiently panicking point is rescued
//!   by bounded retries, with the attempt counts surfaced in
//!   [`SweepStats`].

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use columbia::experiments::{run_resilient, Experiment};
use columbia::{PointError, PointOutput, PointStore, ResilienceOptions, SweepPlan, SweepStats};
use proptest::prelude::*;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "columbia-resilience-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// A plan of `n` points where the indices in `panicking` panic and the
/// rest emit one row each.
fn plan_with_panics(n: usize, panicking: &BTreeSet<usize>) -> SweepPlan {
    let mut plan = SweepPlan::new("P", "panic isolation", &["point", "status"]);
    for i in 0..n {
        let boom = panicking.contains(&i);
        plan.point_ok(move || {
            if boom {
                panic!("injected failure at point {i}");
            }
            PointOutput::row(vec![i.to_string(), "ok".into()])
        });
    }
    plan
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// K panicking points out of N: the other N−K all land in the
    /// report, the failures come back typed and index-ordered, and the
    /// first failure is the canonical lowest index — for serial and
    /// parallel pools alike.
    #[test]
    fn k_panicking_points_never_take_down_the_other_n_minus_k(
        n in 1usize..24,
        panic_bits in 0u32..u32::MAX,
        jobs in prop::sample::select(vec![1usize, 2, 7]),
    ) {
        let panicking: BTreeSet<usize> =
            (0..n).filter(|i| panic_bits >> (i % 32) & 1 == 1).collect();
        let out = plan_with_panics(n, &panicking)
            .run_resilient_with_jobs(jobs, ResilienceOptions::default());

        // Typed failures, exactly the injected set, in index order.
        let failed: Vec<usize> = out.failures.iter().map(|f| f.point()).collect();
        let expected: Vec<usize> = panicking.iter().copied().collect();
        prop_assert_eq!(&failed, &expected);
        prop_assert!(out
            .failures
            .iter()
            .all(|f| matches!(f, PointError::Panicked { .. })));
        prop_assert_eq!(
            out.first_failure().map(|f| f.point()),
            panicking.iter().next().copied()
        );
        prop_assert_eq!(out.stats.failed, panicking.len());
        prop_assert_eq!(out.stats.panics, panicking.len() as u64);

        // Every surviving point contributed its row, in sweep order,
        // followed by one diagnostic row per failure.
        let ok_rows: Vec<&str> = out
            .report
            .rows
            .iter()
            .filter(|r| r[1] == "ok")
            .map(|r| r[0].as_str())
            .collect();
        let expected_ok: Vec<String> = (0..n)
            .filter(|i| !panicking.contains(i))
            .map(|i| i.to_string())
            .collect();
        prop_assert_eq!(
            ok_rows,
            expected_ok.iter().map(String::as_str).collect::<Vec<_>>()
        );
        prop_assert_eq!(out.report.rows.len(), n);
    }
}

fn golden(exp: Experiment) -> String {
    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join(format!("../../tests/golden/{}.txt", exp.name()));
    std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} (generate with \
             `UPDATE_GOLDEN=1 cargo test --test golden_values`): {e}",
            path.display()
        )
    })
}

/// The tentpole acceptance scenario on a real experiment: checkpoint a
/// full run, "kill" it by deleting half the store entries and tearing
/// one in two, then resume — the resumed report must be byte-identical
/// to the uninterrupted golden fixture, with only the missing points
/// re-run.
#[test]
fn killed_and_resumed_table2_matches_the_uninterrupted_golden() {
    let exp = Experiment::Table2;
    let dir = temp_dir("table2");
    let opts = |resume| ResilienceOptions {
        store: Some(PointStore::open(dir.clone()).unwrap()),
        resume,
        ..ResilienceOptions::default()
    };

    // Uninterrupted checkpointed run: already golden-identical.
    let full = run_resilient(exp, 2, opts(false));
    assert!(full.is_clean(), "{:?}", full.failures);
    assert_eq!(format!("{}\n", full.report.to_text()), golden(exp));
    let total = full.stats.points;
    let store = PointStore::open(dir.clone()).unwrap();
    assert_eq!(store.len(), total, "every point checkpointed");

    // The "kill": delete half the entries and truncate one survivor
    // mid-file (a torn copy; atomic writes mean a real kill cannot
    // produce one, but resume must shrug either way).
    let mut entries: Vec<_> = std::fs::read_dir(store.dir())
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .collect();
    entries.sort();
    let keep = entries.len() / 2;
    for path in &entries[keep..] {
        std::fs::remove_file(path).unwrap();
    }
    if let Some(survivor) = entries.first() {
        let text = std::fs::read_to_string(survivor).unwrap();
        std::fs::write(survivor, &text[..text.len() / 2]).unwrap();
    }

    let resumed = run_resilient(exp, 2, opts(true));
    assert!(resumed.is_clean(), "{:?}", resumed.failures);
    assert_eq!(
        format!("{}\n", resumed.report.to_text()),
        golden(exp),
        "resumed report must be byte-identical to the golden"
    );
    // The torn entry is a miss, so it re-ran alongside the deleted
    // ones; only the intact survivors were served from the store.
    assert_eq!(resumed.stats.resumed, keep.saturating_sub(1));
    assert_eq!(resumed.stats.points, total);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Resuming with different flags still converges: a second resumed run
/// over the repaired store serves every point from disk.
#[test]
fn fully_checkpointed_store_resumes_without_running_anything() {
    let exp = Experiment::Table1;
    let dir = temp_dir("table1");
    let opts = |resume| ResilienceOptions {
        store: Some(PointStore::open(dir.clone()).unwrap()),
        resume,
        ..ResilienceOptions::default()
    };
    let first = run_resilient(exp, 1, opts(false));
    assert!(first.is_clean());
    let again = run_resilient(exp, 1, opts(true));
    assert_eq!(again.stats.resumed, again.stats.points);
    assert_eq!(first.report.to_text(), again.report.to_text());
    let _ = std::fs::remove_dir_all(&dir);
}

/// `--max-retries` semantics end to end: a point that panics twice and
/// then succeeds is rescued, and the retries are visible in the stats.
#[test]
fn transient_panics_are_retried_to_success() {
    let attempts = Arc::new(AtomicU32::new(0));
    let mut plan = SweepPlan::new("R", "retry", &["x"]);
    let a = Arc::clone(&attempts);
    plan.point_ok(move || {
        if a.fetch_add(1, Ordering::SeqCst) < 2 {
            panic!("flaky");
        }
        PointOutput::row(vec!["rescued".into()])
    });
    let out = plan.run_resilient_with_jobs(
        1,
        ResilienceOptions {
            max_retries: 2,
            backoff_base: Some(Duration::from_millis(1)),
            ..ResilienceOptions::default()
        },
    );
    assert!(out.is_clean(), "{:?}", out.failures);
    assert_eq!(
        out.stats,
        SweepStats {
            points: 1,
            retries: 2,
            ..SweepStats::default()
        }
    );
    assert!(out.report.to_text().contains("rescued"));
}

/// A hung point is abandoned at its deadline instead of blocking the
/// sweep forever, and the remaining points still complete.
#[test]
fn hung_point_is_cancelled_at_the_deadline() {
    let mut plan = SweepPlan::new("D", "deadline", &["x"]);
    plan.point_ok(|| PointOutput::row(vec!["fast".into()]));
    plan.point_ok(|| {
        std::thread::sleep(Duration::from_secs(60));
        PointOutput::row(vec!["unreachable".into()])
    });
    plan.point_ok(|| PointOutput::row(vec!["also fast".into()]));
    let start = std::time::Instant::now();
    let out = plan.run_resilient_with_jobs(
        2,
        ResilienceOptions {
            deadline: Some(Duration::from_millis(100)),
            ..ResilienceOptions::default()
        },
    );
    assert!(start.elapsed() < Duration::from_secs(20));
    assert_eq!(out.stats.timeouts, 1);
    assert!(matches!(
        out.first_failure(),
        Some(PointError::DeadlineExceeded { point: 1, .. })
    ));
    let text = out.report.to_text();
    assert!(text.contains("fast") && text.contains("also fast"));
    assert!(text.contains("[point 1]"), "{text}");
}
