//! Determinism of the parallel sweep executor.
//!
//! The contract under test: `run_with_jobs(exp, N)` is **bit-identical**
//! to the serial `run(exp)` for every experiment and every `N` —
//! points may execute on any worker in any order, but collation is
//! keyed by sweep index, so scheduling can never leak into a report.
//!
//! Three layers:
//!
//! * a proptest over randomly generated synthetic sweep plans (sizes,
//!   seeds, row shapes) across `N ∈ {1, 2, 7}`;
//! * an exhaustive pass running every experiment at `jobs = 2` and
//!   comparing byte-for-byte against the golden fixture in
//!   `tests/golden/` (which the golden suite separately proves equal to
//!   the serial output) — plus `jobs = 7` for the cheap experiments;
//! * a row-order regression on the sweep whose points have the most
//!   skewed durations (`degraded`), where out-of-order completion is
//!   guaranteed in practice.
//!
//! CI closes the loop end-to-end by diffing the full `repro --jobs 2`
//! output against `--jobs 1`.

use std::path::PathBuf;

use columbia::experiments::{run_with_jobs, Experiment};
use columbia::{PointOutput, SweepPlan};
use proptest::prelude::*;

/// Build a synthetic plan from a seed: `n_points` points, each deriving
/// its rows and values from a splitmix64 stream so outputs are
/// data-dependent but reproducible.
fn synthetic_plan(seed: u64, n_points: usize, rows_per_point: usize) -> SweepPlan {
    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
    let mut plan = SweepPlan::new("prop", "synthetic sweep", &["point", "row", "value"]);
    for i in 0..n_points {
        plan.point_ok(move || {
            let mut state = seed ^ (i as u64) << 17;
            let mut out = PointOutput::default();
            for row in 0..rows_per_point {
                let v = splitmix(&mut state);
                out.rows
                    .push(vec![i.to_string(), row.to_string(), format!("{v:016x}")]);
            }
            if i % 3 == 0 {
                out.notes.push(format!("note from point {i}"));
            }
            out.with_value(seed as f64)
        });
    }
    plan.note("plan-level note");
    plan
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn synthetic_sweeps_are_schedule_independent(
        seed in 0u64..u64::MAX,
        n_points in 0usize..40,
        rows_per_point in 1usize..4,
    ) {
        let serial = synthetic_plan(seed, n_points, rows_per_point)
            .run_with_jobs(1)
            .unwrap();
        for jobs in [2usize, 7] {
            let par = synthetic_plan(seed, n_points, rows_per_point)
                .run_with_jobs(jobs)
                .unwrap();
            prop_assert_eq!(serial.to_text(), par.to_text(), "jobs={}", jobs);
            prop_assert_eq!(serial.to_json(), par.to_json(), "jobs={}", jobs);
        }
    }
}

fn golden(exp: Experiment) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join(format!("../../tests/golden/{}.txt", exp.name()));
    std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} (generate with \
             `UPDATE_GOLDEN=1 cargo test --test golden_values`): {e}",
            path.display()
        )
    })
}

/// Every experiment, parallel vs the pinned serial output. The golden
/// suite proves fixture == serial; this proves parallel == fixture;
/// together: parallel == serial, for all 18.
#[test]
fn every_experiment_is_identical_at_jobs_2() {
    for exp in Experiment::ALL {
        let par = format!("{}\n", run_with_jobs(exp, 2).to_text());
        assert_eq!(
            par,
            golden(exp),
            "{} differs between --jobs 2 and the serial golden",
            exp.name()
        );
    }
}

/// Oversubscribed pool (7 workers on this host's cores) for the cheap
/// experiments — more workers than points for several of them, which
/// exercises the pool's hand-off edge cases.
#[test]
fn cheap_experiments_are_identical_at_jobs_7() {
    for exp in [
        Experiment::Table1,
        Experiment::Fig5,
        Experiment::DgemmStream,
        Experiment::Table2,
        Experiment::Stride,
        Experiment::Fig8,
        Experiment::Fig10,
        Experiment::Trace,
    ] {
        let par = format!("{}\n", run_with_jobs(exp, 7).to_text());
        assert_eq!(
            par,
            golden(exp),
            "{} differs between --jobs 7 and the serial golden",
            exp.name()
        );
    }
}

/// Regression: parallel report rows must keep serial row order even
/// when points complete out of order. The degraded sweep is the
/// sharpest probe — its healthy baseline (point 0) is among the
/// *slowest* points (no fault short-circuits), so with 7 workers later
/// scenarios finish first, and its collation additionally reads
/// point 0's value to derive every slowdown cell.
#[test]
fn degraded_rows_keep_serial_order_under_parallel_completion() {
    let r = run_with_jobs(Experiment::Degraded, 7);
    let scenarios: Vec<&str> = r.rows.iter().map(|row| row[0].as_str()).collect();
    assert_eq!(scenarios[0], "healthy");
    assert_eq!(
        &scenarios[1..5],
        ["drop 2%", "drop 5%", "drop 10%", "drop 20%"]
    );
    assert_eq!(r.rows[0][2], "1.000x", "healthy slowdown must be 1.000x");
    assert_eq!(format!("{}\n", r.to_text()), golden(Experiment::Degraded));
}
