//! End-to-end observability: the trace sink captures an experiment's
//! simulations and the Chrome export is well-formed.
//!
//! The sink is process-global, so this binary holds exactly one test —
//! parallel test threads in the same binary would interleave captures.

use columbia::experiments::{run, Experiment};
use columbia::obs::sink;
use columbia::obs::{chrome_trace, Track};

#[test]
fn trace_experiment_capture_and_chrome_export() {
    sink::install();
    let report = run(Experiment::Trace);
    let bundles = sink::take();
    assert!(report.to_text().contains("hotspots"));
    assert_eq!(bundles.len(), 1, "the demo runs exactly one simulation");
    let b = &bundles[0];
    assert!(b.label.contains("trace demo"), "{}", b.label);
    assert!(!b.spans.is_empty());
    assert!(b.metrics.counter("messages_sent") > 0);
    assert_eq!(b.profile.ranks.len(), 16);

    // The export must parse back as JSON and carry one CPU track per
    // rank (tid = rank) plus named processes/threads for Perfetto.
    let doc = serde_json::to_string(&chrome_trace(&bundles));
    let v = serde_json::from_str(&doc).expect("chrome trace is valid JSON");
    let events = v
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .expect("traceEvents array");
    assert!(!events.is_empty());
    let mut cpu_tracks = std::collections::BTreeSet::new();
    let mut metas = 0usize;
    for e in events {
        match e.get("ph").and_then(|p| p.as_str()) {
            Some("X") => {
                let tid = e.get("tid").and_then(|t| t.as_f64()).unwrap() as usize;
                let dur = e.get("dur").and_then(|d| d.as_f64()).unwrap();
                assert!(dur >= 0.0);
                if tid < b.profile.ranks.len() {
                    cpu_tracks.insert(tid);
                }
            }
            Some("M") => metas += 1,
            ph => panic!("unexpected phase {ph:?}"),
        }
    }
    assert_eq!(cpu_tracks.len(), 16, "one CPU track per rank");
    assert!(metas > 16, "process + thread name metadata");

    // The span stream agrees with the profile: per-rank CPU time sums
    // to the rank's total.
    for rank in &b.profile.ranks {
        let sum: f64 = b
            .spans
            .iter()
            .filter(|s| s.rank == rank.rank && s.kind.track() == Track::Cpu)
            .map(|s| s.duration())
            .sum();
        assert!(
            (sum - rank.total).abs() < 1e-9,
            "rank {}: {} != {}",
            rank.rank,
            sum,
            rank.total
        );
    }
}
