//! Golden-value regression suite.
//!
//! Two layers of pinning, both deliberate-update-only (see
//! `tests/README.md` for the workflow):
//!
//! 1. **Numeric goldens** — calibrated model outputs (§4.1 DGEMM and
//!    STREAM rates, the b_eff ping-pong latency/bandwidth tiers, the
//!    Table 1 peak-performance figures) asserted with
//!    [`columbia::assert_close!`] against hand-pinned constants and a
//!    tight relative tolerance. These catch accidental drift in
//!    `machine::calib` or the fabric cost models.
//! 2. **Report-text goldens** — one test per experiment comparing
//!    `run(exp)` byte-for-byte against a fixture in `tests/golden/`.
//!    Every simulation is seeded and collation is deterministic, so an
//!    exact match is the correct bar.
//!
//! # Updating a golden fixture
//!
//! A mismatch means the model's output changed. If that is *intended*
//! (a calibration fix, a new report column):
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_values
//! git diff tests/golden/        # review every changed line
//! ```
//!
//! then describe the change in EXPERIMENTS.md. `UPDATE_GOLDEN` rewrites
//! the fixtures and then *fails* the run (so a stale env var can never
//! silently bless a regression in CI); re-run without it to confirm.

use std::path::PathBuf;

use columbia::assert_close;
use columbia::experiments::{run, Experiment};
use columbia::hpcc::beff::{self, Pattern};
use columbia::hpcc::{dgemm, stream};
use columbia::machine::cluster::InterNodeFabric;
use columbia::machine::node::{NodeKind, NodeModel};
use columbia::simnet::fabric::MptVersion;

// ---- numeric goldens ----

#[test]
fn golden_table1_peak_performance() {
    // Table 1's "Th. peak perf." row: 512 CPUs at 2 madds/cycle.
    assert_close!(
        NodeModel::new(NodeKind::Altix3700).peak_tflops(),
        3.07,
        0.005,
        "3700 peak Tflop/s"
    );
    assert_close!(
        NodeModel::new(NodeKind::Bx2a).peak_tflops(),
        3.07,
        0.005,
        "BX2a peak Tflop/s"
    );
    assert_close!(
        NodeModel::new(NodeKind::Bx2b).peak_tflops(),
        3.28,
        0.005,
        "BX2b peak Tflop/s"
    );
}

#[test]
fn golden_dgemm_gflops() {
    // §4.1.1: BX2b's faster clock buys ~6% over the 1.5 GHz parts.
    assert_close!(
        dgemm::simulate(NodeKind::Altix3700, 1).gflops_per_cpu,
        5.388,
        0.005,
        "DGEMM 3700"
    );
    assert_close!(
        dgemm::simulate(NodeKind::Bx2a, 1).gflops_per_cpu,
        5.388,
        0.005,
        "DGEMM BX2a"
    );
    assert_close!(
        dgemm::simulate(NodeKind::Bx2b, 1).gflops_per_cpu,
        5.747,
        0.005,
        "DGEMM BX2b"
    );
}

#[test]
fn golden_stream_triad_gbs() {
    // §4.1.1 dense (every CPU busy, bus shared) and §4.2 stride-2
    // (every second CPU idle, bus effectively private).
    assert_close!(
        stream::simulate(NodeKind::Altix3700, 512, 1).triad(),
        1.96e9,
        0.01,
        "STREAM triad 3700 dense"
    );
    assert_close!(
        stream::simulate(NodeKind::Bx2a, 512, 1).triad(),
        1.94e9,
        0.01,
        "STREAM triad BX2a dense"
    );
    assert_close!(
        stream::simulate(NodeKind::Bx2b, 512, 1).triad(),
        1.94e9,
        0.01,
        "STREAM triad BX2b dense"
    );
    assert_close!(
        stream::simulate(NodeKind::Altix3700, 128, 2).triad(),
        3.72e9,
        0.01,
        "STREAM triad 3700 stride 2"
    );
}

#[test]
fn golden_pingpong_latency_bandwidth_tiers() {
    // The four fabric tiers the whole communication model hangs off,
    // measured as b_eff average ping-pong at small CPU counts.
    let nl3 = beff::in_node_sweep(NodeKind::Altix3700, &[4]);
    let p = nl3.get(Pattern::PingPong, 4).unwrap();
    assert_close!(p.latency, 1.15e-6, 0.01, "NUMAlink3 in-node latency");
    assert_close!(p.bandwidth, 1.76e9, 0.01, "NUMAlink3 in-node bandwidth");

    let nl4 = beff::in_node_sweep(NodeKind::Bx2b, &[4]);
    let p = nl4.get(Pattern::PingPong, 4).unwrap();
    assert_close!(p.latency, 1.15e-6, 0.01, "NUMAlink4 in-node latency");
    assert_close!(p.bandwidth, 3.01e9, 0.01, "NUMAlink4 in-node bandwidth");

    let nl4x = beff::multi_node_sweep(2, InterNodeFabric::NumaLink4, MptVersion::Beta, &[256]);
    let p = nl4x.get(Pattern::PingPong, 256).unwrap();
    assert_close!(p.latency, 2.40e-6, 0.01, "NUMAlink4 inter-node latency");
    assert_close!(p.bandwidth, 3.01e9, 0.01, "NUMAlink4 inter-node bandwidth");

    let ib = beff::multi_node_sweep(2, InterNodeFabric::InfiniBand, MptVersion::Beta, &[256]);
    let p = ib.get(Pattern::PingPong, 256).unwrap();
    assert_close!(p.latency, 6.70e-6, 0.01, "InfiniBand inter-node latency");
    assert_close!(p.bandwidth, 0.80e9, 0.01, "InfiniBand inter-node bandwidth");
}

// ---- report-text goldens ----

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(format!("../../tests/golden/{name}.txt"))
}

/// Compare `run(exp)` against its fixture; regenerate under
/// `UPDATE_GOLDEN=1` (which still fails the test, forcing a clean
/// confirmation run — see the module docs).
fn check_golden(exp: Experiment) {
    let actual = format!("{}\n", run(exp).to_text());
    let path = golden_path(exp.name());
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &actual)
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
        panic!(
            "UPDATE_GOLDEN: rewrote {}; review `git diff tests/golden/`, \
             note the change in EXPERIMENTS.md, then re-run without \
             UPDATE_GOLDEN to confirm",
            path.display()
        );
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {}: {e}\n\
             Generate it with `UPDATE_GOLDEN=1 cargo test --test golden_values`",
            path.display()
        )
    });
    if expected != actual {
        // A unified line diff would hide whitespace churn; show both
        // sides and let the developer diff the written file instead.
        panic!(
            "{} no longer matches tests/golden/{}.txt.\n\
             If the model change is intentional, run \
             `UPDATE_GOLDEN=1 cargo test --test golden_values`, review \
             `git diff tests/golden/`, and record why in EXPERIMENTS.md.\n\
             --- golden ---\n{expected}\n--- actual ---\n{actual}",
            exp.name(),
            exp.name(),
        );
    }
}

macro_rules! golden_report {
    ($($test:ident => $exp:expr,)+) => {
        $(
            #[test]
            fn $test() {
                check_golden($exp);
            }
        )+
    };
}

golden_report! {
    golden_report_table1 => Experiment::Table1,
    golden_report_fig5 => Experiment::Fig5,
    golden_report_dgemm_stream => Experiment::DgemmStream,
    golden_report_fig6 => Experiment::Fig6,
    golden_report_table2 => Experiment::Table2,
    golden_report_table3 => Experiment::Table3,
    golden_report_stride => Experiment::Stride,
    golden_report_fig7 => Experiment::Fig7,
    golden_report_fig8 => Experiment::Fig8,
    golden_report_table4 => Experiment::Table4,
    golden_report_fig9 => Experiment::Fig9,
    golden_report_fig10 => Experiment::Fig10,
    golden_report_fig11 => Experiment::Fig11,
    golden_report_table5 => Experiment::Table5,
    golden_report_table6 => Experiment::Table6,
    golden_report_degraded => Experiment::Degraded,
    golden_report_trace => Experiment::Trace,
    golden_report_columbia => Experiment::Columbia,
}
