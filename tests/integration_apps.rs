//! Cross-crate integration: the CFD applications over the overset
//! substrate and the machine model.

use columbia::ins3d::{iteration_seconds, AcSolver, Ins3dConfig};
use columbia::machine::node::NodeKind;
use columbia::overflowd::{step_times, OverflowConfig, OversetPair};
use columbia::overset::group_blocks;
use columbia::overset::systems::{rotor_wake, turbopump};

#[test]
fn turbopump_grouping_feeds_ins3d_timings() {
    let sys = turbopump(1.0);
    let grouping = group_blocks(&sys, 36);
    assert_eq!(grouping.groups.len(), 36);
    // The timing model sees the same grouping: more groups, less time.
    let t36 = iteration_seconds(&Ins3dConfig::table2(NodeKind::Bx2b, 1));
    let t1 = iteration_seconds(&Ins3dConfig {
        kind: NodeKind::Bx2b,
        groups: 1,
        threads: 1,
        compiler: columbia::runtime::compiler::CompilerVersion::V7_1,
    });
    assert!(t36 < t1 / 20.0);
}

#[test]
fn rotor_grouping_feeds_overflowd_timings() {
    let sys = rotor_wake(1.0);
    assert_eq!(sys.len(), 1679);
    let a = step_times(&OverflowConfig::table3(NodeKind::Bx2b, 64)).unwrap();
    let b = step_times(&OverflowConfig::table3(NodeKind::Bx2b, 256)).unwrap();
    assert!(b.exec < a.exec, "more CPUs must help at these counts");
}

#[test]
fn real_solvers_converge_together() {
    // INS3D-style pseudo-time loop.
    let mut ac = AcSolver::duct(12, 10.0);
    let d0 = ac.max_divergence();
    ac.tolerance = 0.05 * d0;
    let used = ac.physical_step(30);
    assert!(used >= 1 && ac.max_divergence() < d0);

    // OVERFLOW-D-style overset stepping.
    let mut pair = OversetPair::new(10);
    let r0 = pair.residual();
    for _ in 0..10 {
        pair.step();
    }
    assert!(pair.residual() < r0);
    assert!(pair.boundary_mismatch() < 1e-12);
}

#[test]
fn both_apps_prefer_the_bx2b() {
    let ins_ratio = iteration_seconds(&Ins3dConfig::table2(NodeKind::Altix3700, 4))
        / iteration_seconds(&Ins3dConfig::table2(NodeKind::Bx2b, 4));
    let ovf_ratio = step_times(&OverflowConfig::table3(NodeKind::Altix3700, 128))
        .unwrap()
        .exec
        / step_times(&OverflowConfig::table3(NodeKind::Bx2b, 128))
            .unwrap()
            .exec;
    assert!(ins_ratio > 1.2, "INS3D: {ins_ratio}");
    assert!(ovf_ratio > 1.3, "OVERFLOW-D: {ovf_ratio}");
}
