//! Every experiment runner produces a well-formed report.

use columbia::experiments::{run, Experiment};

#[test]
fn quick_experiments_render() {
    // The fast subset — the heavyweight sweeps are exercised by the
    // `repro` binary and the benches.
    for exp in [
        Experiment::Table1,
        Experiment::DgemmStream,
        Experiment::Stride,
        Experiment::Fig5,
        Experiment::Fig10,
    ] {
        let r = run(exp);
        assert!(!r.rows.is_empty(), "{exp:?} produced no rows");
        let text = r.to_text();
        assert!(text.contains("=="), "{exp:?} header missing");
        let json = r.to_json();
        assert!(json.contains(&r.id), "{exp:?} JSON missing id");
    }
}

#[test]
fn table2_shape_matches_paper() {
    let r = run(Experiment::Table2);
    // Parse the BX2b column: baseline row then thread rows.
    let parse = |s: &str| -> f64 { s.split_whitespace().next().unwrap().parse().unwrap() };
    let t1 = parse(&r.rows[1][2]); // 36x1
    let t14 = parse(&r.rows[6][2]); // 36x14
    let speedup = t1 / t14;
    assert!((2.5..4.2).contains(&speedup), "paper: 3.33; got {speedup}");
}

#[test]
fn table5_is_weak_scaling_flat() {
    let r = run(Experiment::Table5);
    let first: f64 = r.rows[0][2]
        .split_whitespace()
        .next()
        .unwrap()
        .parse()
        .unwrap();
    let last: f64 = r.rows.last().unwrap()[2]
        .split_whitespace()
        .next()
        .unwrap()
        .parse()
        .unwrap();
    assert!(
        last < 1.15 * first,
        "weak scaling must stay flat: {first} → {last}"
    );
}

#[test]
fn experiment_names_unique() {
    let mut names: Vec<&str> = Experiment::ALL.iter().map(|e| e.name()).collect();
    names.sort();
    names.dedup();
    assert_eq!(names.len(), Experiment::ALL.len());
}
