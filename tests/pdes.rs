//! Serial-vs-parallel identity of the conservative PDES tier.
//!
//! The contract under test: [`simulate_parallel_on`] (and its traced
//! variant) is **bit-identical** to the serial engine for every
//! program set, placement, fabric, fault plan, and thread count —
//! same `f64` clocks, same fault accounting, same trace spans and
//! causal edges after the canonical per-rank merge, same errors.
//!
//! Two layers:
//!
//! * a proptest over randomly generated phase-structured workloads
//!   (compute, ring send/recv, pairwise exchange, all four
//!   collectives) on random heterogeneous clusters with random fault
//!   plans, checked at sim-threads 2, 3, and 7;
//! * directed edge cases: the zero-lookahead / single-partition
//!   fallback, empty programs, spec-key and CLI plumbing.
//!
//! The outcome comparison is exact (`f64::to_bits`) except for
//! `FaultStats::events`, the scheduler-event *count*: re-examinations
//! of blocked ops depend on worklist order, which is the one
//! documented engine-dependent statistic. It never reaches a report.

use columbia::machine::cluster::{ClusterConfig, CpuId, InterNodeFabric, NodeId};
use columbia::machine::node::NodeKind;
use columbia::obs::RecordingTracer;
use columbia::simnet::fabric::{CachedFabric, ClusterFabric, Fabric, MptVersion};
use columbia::simnet::{
    simulate_on, simulate_parallel_on, simulate_parallel_traced_on, simulate_traced_on, FaultPlan,
    Op, SimOutcome,
};
use proptest::prelude::*;
use proptest::TestRng;

/// One per-phase instruction shared (in shape) by every rank, so the
/// generated collective sequences are globally consistent — the same
/// contract MPI programs obey.
#[derive(Debug, Clone)]
enum Phase {
    /// Per-rank compute, seconds scaled by `1 + rank`.
    Compute(f64),
    /// Ring: send `bytes` to `(r + 1) % n`, receive from the left.
    Ring {
        bytes: u64,
        tag: u64,
    },
    /// Pairwise exchange with `r ^ 1` (only generated for even `n`).
    Exchange {
        bytes: u64,
        tag: u64,
    },
    Barrier,
    AllReduce {
        bytes: u64,
    },
    AllToAll {
        bytes_per_pair: u64,
    },
    Bcast {
        bytes: u64,
    },
}

/// Uniform choice over the seven phase shapes with random payloads.
#[derive(Debug, Clone)]
struct PhaseStrategy;

impl Strategy for PhaseStrategy {
    type Value = Phase;

    fn generate(&self, rng: &mut TestRng) -> Phase {
        match rng.next_u64() % 7 {
            0 => Phase::Compute(1e-7 + rng.next_f64() * 1e-4),
            1 => Phase::Ring {
                bytes: 1 + rng.next_u64() % 65535,
                tag: rng.next_u64() % 8,
            },
            2 => Phase::Exchange {
                bytes: 1 + rng.next_u64() % 32767,
                tag: 8 + rng.next_u64() % 8,
            },
            3 => Phase::Barrier,
            4 => Phase::AllReduce {
                bytes: 1 + rng.next_u64() % 4095,
            },
            5 => Phase::AllToAll {
                bytes_per_pair: 1 + rng.next_u64() % 511,
            },
            _ => Phase::Bcast {
                bytes: 1 + rng.next_u64() % 65535,
            },
        }
    }
}

/// Expand a phase list into explicit per-rank programs.
fn programs_for(phases: &[Phase], n: usize, bcast_root: usize) -> Vec<Vec<Op>> {
    (0..n)
        .map(|r| {
            let mut ops = Vec::new();
            for phase in phases {
                match phase {
                    Phase::Compute(s) => ops.push(Op::Compute(s * (1.0 + r as f64))),
                    Phase::Ring { bytes, tag } => {
                        ops.push(Op::Send {
                            to: (r + 1) % n,
                            bytes: *bytes,
                            tag: *tag,
                        });
                        ops.push(Op::Recv {
                            from: (r + n - 1) % n,
                            tag: *tag,
                        });
                    }
                    Phase::Exchange { bytes, tag } => {
                        if n.is_multiple_of(2) {
                            ops.push(Op::Exchange {
                                with: r ^ 1,
                                bytes: *bytes,
                                tag: *tag,
                            });
                        }
                    }
                    Phase::Barrier => ops.push(Op::Barrier),
                    Phase::AllReduce { bytes } => ops.push(Op::AllReduce { bytes: *bytes }),
                    Phase::AllToAll { bytes_per_pair } => ops.push(Op::AllToAll {
                        bytes_per_pair: *bytes_per_pair,
                    }),
                    Phase::Bcast { bytes } => ops.push(Op::Bcast {
                        root: bcast_root % n,
                        bytes: *bytes,
                    }),
                }
            }
            ops
        })
        .collect()
}

/// A heterogeneous cluster over the given node kinds, every node
/// populated with `per_node` ranks, interleaved so neighbours in rank
/// order sit on different nodes (maximum cross-partition traffic).
fn placement(kinds: &[NodeKind], per_node: usize) -> (CachedFabric, Vec<CpuId>) {
    let n_nodes = kinds.len();
    let config = ClusterConfig {
        nodes: kinds.to_vec(),
        numalink4_subsystem: (0..n_nodes as u32)
            .filter(|&i| kinds[i as usize] != NodeKind::Altix3700)
            .map(NodeId)
            .collect(),
        ib_cards_per_node: 8,
        ib_connections_per_card: 64 * 1024,
    };
    let ranks = (n_nodes * per_node) as u32;
    let fabric = CachedFabric::new(ClusterFabric::new(
        config,
        InterNodeFabric::InfiniBand,
        MptVersion::Beta,
        ranks,
    ));
    let cpus = (0..ranks)
        .map(|r| CpuId::new(r % n_nodes as u32, r / n_nodes as u32))
        .collect();
    (fabric, cpus)
}

/// Bit-exact outcome equality, modulo the documented scheduler-event
/// count.
fn assert_outcomes_identical(s: &SimOutcome, p: &SimOutcome) {
    assert_eq!(s.makespan.to_bits(), p.makespan.to_bits(), "makespan");
    assert_eq!(s.ranks.len(), p.ranks.len());
    for (r, (a, b)) in s.ranks.iter().zip(&p.ranks).enumerate() {
        assert_eq!(a.total.to_bits(), b.total.to_bits(), "rank {r} total");
        assert_eq!(a.compute.to_bits(), b.compute.to_bits(), "rank {r} compute");
        assert_eq!(a.comm.to_bits(), b.comm.to_bits(), "rank {r} comm");
    }
    let (mut sf, mut pf) = (s.faults, p.faults);
    sf.events = 0;
    pf.events = 0;
    assert_eq!(format!("{sf:?}"), format!("{pf:?}"), "fault stats");
}

fn kinds_strategy() -> impl Strategy<Value = Vec<NodeKind>> {
    prop::collection::vec(
        prop::sample::select(vec![NodeKind::Altix3700, NodeKind::Bx2a, NodeKind::Bx2b]),
        1..5,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole property: arbitrary workload × cluster × faults ×
    /// thread count, serial and parallel agree bit for bit — outcomes
    /// *and* drained traces.
    #[test]
    fn parallel_engine_is_bit_identical_to_serial(
        kinds in kinds_strategy(),
        per_node in 1usize..4,
        phases in prop::collection::vec(PhaseStrategy, 1..10),
        bcast_root in 0usize..16,
        drop_sel in 0u64..3,
        drop_seed in 1u64..1000,
        drop_prob in 0.01f64..0.4,
    ) {
        let (fabric, cpus) = placement(&kinds, per_node);
        let n = cpus.len();
        let programs = programs_for(&phases, n, bcast_root);
        let plan = if drop_sel > 0 {
            FaultPlan::with_drops(drop_seed, drop_prob)
        } else {
            FaultPlan::none()
        };
        let mut serial_trace = RecordingTracer::default();
        let serial = simulate_traced_on(&programs, &cpus, &fabric, &plan, &mut serial_trace)
            .expect("generated workloads never deadlock");
        for threads in [2usize, 3, 7] {
            let parallel = simulate_parallel_on(&programs, &cpus, &fabric, &plan, threads)
                .expect("parallel run of a deadlock-free workload");
            assert_outcomes_identical(&serial, &parallel);
            let mut parallel_trace = RecordingTracer::default();
            let traced = simulate_parallel_traced_on(
                &programs, &cpus, &fabric, &plan, &mut parallel_trace, threads,
            )
            .expect("traced parallel run");
            assert_outcomes_identical(&serial, &traced);
            prop_assert_eq!(&serial_trace.spans, &parallel_trace.spans);
            prop_assert_eq!(&serial_trace.edges, &parallel_trace.edges);
            prop_assert_eq!(&serial_trace.rank_nodes, &parallel_trace.rank_nodes);
            prop_assert_eq!(&serial_trace.metrics, &parallel_trace.metrics);
        }
    }

    /// Deadlocks report the identical stuck set at any thread count.
    #[test]
    fn deadlock_reports_are_identical(
        kinds in kinds_strategy(),
        per_node in 1usize..4,
        victim_seed in 0usize..64,
    ) {
        let (fabric, cpus) = placement(&kinds, per_node);
        let n = cpus.len();
        // Every rank recvs a message nobody sends — except the victim,
        // which jumps straight to a barrier the others never reach.
        let victim = victim_seed % n;
        let programs: Vec<Vec<Op>> = (0..n)
            .map(|r| {
                if r == victim {
                    vec![Op::Barrier]
                } else {
                    vec![Op::Recv { from: victim, tag: 42 }, Op::Barrier]
                }
            })
            .collect();
        let plan = FaultPlan::none();
        let serial = simulate_on(&programs, &cpus, &fabric, &plan);
        for threads in [2usize, 3, 7] {
            let parallel = simulate_parallel_on(&programs, &cpus, &fabric, &plan, threads);
            prop_assert_eq!(format!("{serial:?}"), format!("{parallel:?}"));
        }
    }
}

/// Zero-lookahead edge case: every rank on one node means a single
/// partition and no cross-node latency bound — the parallel entry
/// point must degrade to the serial engine (and agree with it).
#[test]
fn single_partition_falls_back_to_serial() {
    let (fabric, cpus) = placement(&[NodeKind::Bx2b], 6);
    let phases = [
        Phase::Compute(1e-5),
        Phase::Ring {
            bytes: 4096,
            tag: 1,
        },
        Phase::Exchange { bytes: 512, tag: 9 },
        Phase::AllReduce { bytes: 64 },
    ];
    let programs = programs_for(&phases, cpus.len(), 0);
    let serial = simulate_on(&programs, &cpus, &fabric, &FaultPlan::none()).unwrap();
    let parallel = simulate_parallel_on(&programs, &cpus, &fabric, &FaultPlan::none(), 8).unwrap();
    assert_outcomes_identical(&serial, &parallel);
}

/// A fabric that never quotes a cross-node bound (the trait default)
/// must also take the serial path, whatever the placement.
#[test]
fn fabric_without_lookahead_falls_back_to_serial() {
    struct NoBound;
    impl Fabric for NoBound {
        fn latency(&self, src: CpuId, dst: CpuId) -> f64 {
            if src.node == dst.node {
                1e-6
            } else {
                1e-5
            }
        }
        fn bandwidth(&self, _src: CpuId, _dst: CpuId) -> f64 {
            1e9
        }
        fn internode_contention(&self, _flows: u32) -> f64 {
            1.0
        }
    }
    let cpus: Vec<CpuId> = (0..8).map(|r| CpuId::new(r % 4, r / 4)).collect();
    let phases = [
        Phase::Ring {
            bytes: 1024,
            tag: 3,
        },
        Phase::Barrier,
    ];
    let programs = programs_for(&phases, cpus.len(), 0);
    assert!(NoBound.min_cross_node_latency(&cpus).is_none());
    let serial = simulate_on(&programs, &cpus, &NoBound, &FaultPlan::none()).unwrap();
    let parallel = simulate_parallel_on(&programs, &cpus, &NoBound, &FaultPlan::none(), 4).unwrap();
    assert_outcomes_identical(&serial, &parallel);
}

/// Empty program sets succeed identically (no ranks, no partitions).
#[test]
fn empty_program_set_is_identical() {
    let (fabric, _) = placement(&[NodeKind::Bx2b], 1);
    let programs: Vec<Vec<Op>> = Vec::new();
    let cpus: Vec<CpuId> = Vec::new();
    let serial = simulate_on(&programs, &cpus, &fabric, &FaultPlan::none()).unwrap();
    let parallel = simulate_parallel_on(&programs, &cpus, &fabric, &FaultPlan::none(), 4).unwrap();
    assert_outcomes_identical(&serial, &parallel);
}

/// The `[defaults] sim_threads` spec key decodes, round-trips through
/// the canonical emission, rejects invalid values, and lands on the
/// compiled plan (outside the fingerprint, so checkpoints survive).
#[test]
fn spec_sim_threads_key_round_trips_and_compiles() {
    let text = r#"
schema = "columbia-spec-v1"

[report]
id = "b_eff"
title = "pdes spec plumbing"
headers = ["pattern", "node", "CPUs", "latency", "bandwidth GB/s"]

[defaults]
sim_threads = 4

[[sweep]]
kind = "beff-in-node"
cpus = [4]
node = "BX2b"
row = ["{pattern}", "{node}", "{cpus}", "{latency}", "{bandwidth}"]
"#;
    let spec = columbia::spec::load_str(text).expect("spec decodes");
    assert_eq!(spec.sim_threads, Some(4));
    let emitted = spec.to_toml();
    assert!(
        emitted.contains("sim_threads = 4"),
        "canonical emission keeps the key:\n{emitted}"
    );
    let reparsed = columbia::spec::load_str(&emitted).expect("emission re-decodes");
    assert_eq!(reparsed.sim_threads, Some(4));

    let plan = columbia::compile(&spec).expect("spec compiles");
    assert_eq!(plan.sim_threads, Some(4));
    let mut serial_shape = plan;
    serial_shape.sim_threads = None;
    assert_eq!(
        columbia::compile(&reparsed).unwrap().fingerprint(),
        serial_shape.fingerprint(),
        "sim_threads must not perturb the plan fingerprint"
    );

    let bad = text.replace("sim_threads = 4", "sim_threads = 0");
    assert!(
        columbia::spec::load_str(&bad).is_err(),
        "sim_threads = 0 must be rejected"
    );
}

/// The global thread-count switch drives the statically-dispatched
/// traced entry point (the one every experiment and spec run uses).
#[test]
fn global_sim_threads_parallelizes_simulate_traced_on() {
    use columbia::simnet::{set_sim_threads, sim_threads};
    let (fabric, cpus) = placement(&[NodeKind::Bx2b, NodeKind::Altix3700], 3);
    let phases = [
        Phase::Compute(2e-5),
        Phase::Ring {
            bytes: 2048,
            tag: 5,
        },
        Phase::Bcast { bytes: 8192 },
    ];
    let programs = programs_for(&phases, cpus.len(), 0);
    let plan = FaultPlan::none();
    let serial = simulate_on(&programs, &cpus, &fabric, &plan).unwrap();
    set_sim_threads(4);
    assert_eq!(sim_threads(), 4);
    let via_global = simulate_on(&programs, &cpus, &fabric, &plan).unwrap();
    set_sim_threads(1);
    assert_outcomes_identical(&serial, &via_global);
}
