//! Spec-frontend equivalence suite.
//!
//! The contract of `specs/`: every shipped spec file compiles to a
//! plan whose report is **byte-identical** to its hard-coded `--exp`
//! counterpart, which the golden fixtures in `tests/golden/` already
//! pin. Three layers per experiment:
//!
//! 1. the compiled plan's fingerprint equals the hard-coded plan's
//!    (same id, title, headers, point count);
//! 2. the rendered report equals the golden fixture byte-for-byte at
//!    `--jobs 1`;
//! 3. the rendered report is unchanged at `--jobs 4` (spec-built plans
//!    inherit the sweep engine's scheduling determinism).
//!
//! There is no `UPDATE_GOLDEN` path here on purpose: these tests
//! compare against the same fixtures as `tests/golden_values.rs`, so a
//! deliberate model change updates the fixture once (over there) and
//! this suite proves the spec file still tracks it. A failure here
//! with a passing golden suite means the *spec* drifted from the
//! hard-coded plan — fix the spec (or the spec compiler), not the
//! fixture.

use std::path::PathBuf;

use columbia::experiments::{plan, Experiment};
use columbia::spec::load_and_compile;

fn repo_path(rel: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(rel)
}

fn golden(name: &str) -> String {
    let path = repo_path(&format!("tests/golden/{name}.txt"));
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden fixture {}: {e}", path.display()))
}

fn check(exp: Experiment) {
    let name = exp.name();
    let spec_path = repo_path(&format!("specs/{name}.toml"));
    let compiled = load_and_compile(&spec_path)
        .unwrap_or_else(|e| panic!("specs/{name}.toml failed to compile: {e}"));

    let hard = plan(exp);
    assert_eq!(
        compiled.fingerprint(),
        hard.fingerprint(),
        "{name}: spec-built plan fingerprint diverges from the hard-coded plan \
         (id, title, headers, or point count changed)"
    );

    let expected = golden(name);
    let serial = format!(
        "{}\n",
        compiled
            .run_with_jobs(1)
            .unwrap_or_else(|e| panic!("specs/{name}.toml failed to run: {e}"))
            .to_text()
    );
    assert_eq!(
        serial, expected,
        "specs/{name}.toml report (jobs=1) diverges from tests/golden/{name}.txt"
    );

    let parallel = format!(
        "{}\n",
        load_and_compile(&spec_path)
            .unwrap()
            .run_with_jobs(4)
            .unwrap_or_else(|e| panic!("specs/{name}.toml failed to run at jobs=4: {e}"))
            .to_text()
    );
    assert_eq!(
        parallel, expected,
        "specs/{name}.toml report (jobs=4) diverges from tests/golden/{name}.txt"
    );
}

macro_rules! equivalence {
    ($($test:ident => $exp:ident),* $(,)?) => {
        $(
            #[test]
            fn $test() {
                check(Experiment::$exp);
            }
        )*
    };
}

equivalence! {
    spec_table1 => Table1,
    spec_fig5 => Fig5,
    spec_dgemm_stream => DgemmStream,
    spec_fig6 => Fig6,
    spec_table2 => Table2,
    spec_table3 => Table3,
    spec_stride => Stride,
    spec_fig7 => Fig7,
    spec_fig8 => Fig8,
    spec_table4 => Table4,
    spec_fig9 => Fig9,
    spec_fig10 => Fig10,
    spec_fig11 => Fig11,
    spec_table5 => Table5,
    spec_table6 => Table6,
    spec_degraded => Degraded,
    spec_trace => Trace,
    spec_columbia => Columbia,
}

/// The directory and the experiment list stay in lockstep: every
/// experiment has a spec, and every spec is an experiment's (no
/// orphaned files accumulating untested).
#[test]
fn specs_directory_is_exactly_the_experiment_set() {
    let dir = repo_path("specs");
    let mut found: Vec<String> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("missing specs/ directory: {e}"))
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "toml"))
        .map(|p| p.file_stem().unwrap().to_string_lossy().into_owned())
        .collect();
    found.sort();
    let mut expected: Vec<String> = Experiment::ALL
        .iter()
        .map(|e| e.name().to_string())
        .collect();
    expected.sort();
    assert_eq!(found, expected);
}
