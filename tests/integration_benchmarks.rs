//! Cross-crate integration: real benchmark runs verifying end to end.

use columbia::md::MdSystem;
use columbia::npb::{bt, cg, ft, mg, NpbClass};
use columbia::npbmz::bench::{run_real as mz_real, MzBenchmark};

#[test]
fn all_npb_class_s_real_runs_verify() {
    assert!(mg::run_real(NpbClass::S).verified());
    assert!(cg::run_real(NpbClass::S).verified());
    assert!(ft::run_real(NpbClass::S).verified());
    assert!(bt::run_real(NpbClass::S).verified());
}

#[test]
fn multizone_class_s_real_runs_verify() {
    assert!(mz_real(MzBenchmark::BtMz).verified());
    assert!(mz_real(MzBenchmark::SpMz).verified());
}

#[test]
fn md_conserves_energy_and_momentum_end_to_end() {
    let mut sys = MdSystem::fcc(5, 0.8, 0.4, 99);
    let pot0 = sys.compute_forces_cells();
    let e0 = pot0 + sys.kinetic_energy();
    let mut e = e0;
    for _ in 0..30 {
        let pot = sys.step(0.002);
        e = pot + sys.kinetic_energy();
    }
    assert!(((e - e0) / e0).abs() < 1e-2);
    for p in sys.momentum() {
        assert!(p.abs() < 1e-6);
    }
}

#[test]
fn npb_verification_values_are_stable_across_runs() {
    let a = cg::run_real(NpbClass::S);
    let b = cg::run_real(NpbClass::S);
    assert_eq!(a.zeta, b.zeta, "deterministic seeding");
}
