//! Cross-crate integration: machine model + fabric + engine together.

use columbia::machine::cluster::{ClusterConfig, CpuId, InterNodeFabric, NodeId};
use columbia::machine::node::NodeKind;
use columbia::runtime::compiler::KernelClass;
use columbia::runtime::compute::WorkPhase;
use columbia::runtime::exec::{execute, ExecConfig, SpecOp, WorkloadSpec};
use columbia::simnet::fabric::{ClusterFabric, Fabric, MptVersion};
use columbia::simnet::{simulate, Op};

#[test]
fn columbia_config_drives_the_fabric() {
    let cfg = ClusterConfig::columbia();
    let fabric = ClusterFabric::new(cfg, InterNodeFabric::InfiniBand, MptVersion::Beta, 1024);
    // 3700 nodes (id 0) vs BX2b nodes (id 19) have different in-node
    // bandwidths through the same fabric object.
    let bw_3700 = fabric.bandwidth(CpuId::new(0, 0), CpuId::new(0, 100));
    let bw_bx2b = fabric.bandwidth(CpuId::new(19, 0), CpuId::new(19, 100));
    assert!(bw_bx2b > bw_3700);
    // Cross-node goes over InfiniBand regardless of endpoints.
    let cross = fabric.bandwidth(CpuId::new(0, 0), CpuId::new(19, 0));
    assert!(cross < bw_3700);
}

#[test]
fn engine_runs_a_thousand_rank_program() {
    let n = 1024usize;
    let cfg = ClusterConfig::uniform(NodeKind::Bx2b, 2);
    let fabric = ClusterFabric::new(cfg, InterNodeFabric::NumaLink4, MptVersion::Beta, n as u32);
    let cpus: Vec<CpuId> = (0..n)
        .map(|i| CpuId::new((i / 512) as u32, (i % 512) as u32))
        .collect();
    let programs: Vec<Vec<Op>> = (0..n)
        .map(|r| {
            vec![
                Op::Compute(0.01 * (1.0 + (r % 7) as f64 / 10.0)),
                Op::Barrier,
                Op::AllReduce { bytes: 8 },
            ]
        })
        .collect();
    let out = simulate(&programs, &cpus, &fabric).unwrap();
    assert_eq!(out.ranks.len(), n);
    // Everyone leaves the final collective together.
    let t0 = out.ranks[0].total;
    for r in &out.ranks {
        assert!((r.total - t0).abs() < 1e-12);
    }
}

#[test]
fn executor_spans_the_full_stack() {
    // A hybrid 2-node run through placement, compute model, fabric and
    // engine in one call.
    let cluster = ClusterConfig::uniform(NodeKind::Bx2b, 2);
    let nodes = vec![NodeId(0), NodeId(1)];
    let placement = columbia::runtime::placement::Placement::new(
        &cluster,
        &nodes,
        128,
        4,
        columbia::runtime::placement::PlacementStrategy::Dense,
    );
    let cfg = ExecConfig {
        cluster,
        nodes,
        inter: InterNodeFabric::NumaLink4,
        mpt: MptVersion::Beta,
        placement,
        compiler: columbia::runtime::compiler::CompilerVersion::V8_1,
        pinning: columbia::runtime::pinning::Pinning::Pinned,
        faults: columbia::simnet::FaultPlan::none(),
    };
    let mut spec = WorkloadSpec::with_ranks(128);
    for ops in spec.ranks.iter_mut() {
        ops.push(SpecOp::Work(WorkPhase::new(
            1.0e9,
            1.0e8,
            4 << 20,
            0.2,
            KernelClass::BlockSolver,
        )));
        ops.push(SpecOp::AllToAll {
            bytes_per_pair: 4096,
        });
    }
    let out = execute(&spec, &cfg).unwrap();
    assert!(out.makespan > 0.0);
    assert!(out.mean_comm() > 0.0);
    assert!(out.ranks.iter().all(|r| r.compute > 0.0));
}

#[test]
fn infiniband_connection_limit_enforced_by_config() {
    let c = ClusterConfig::columbia();
    // The §2 formula: three nodes fully usable, four not.
    assert_eq!(
        (2..=8).filter(|&n| c.pure_mpi_fully_usable(n)).max(),
        Some(3)
    );
}
