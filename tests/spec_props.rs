//! Property suite for the spec frontend.
//!
//! Three holds, over every shipped spec (`specs/`) and the valid
//! conformance corpus (`tests/spec_corpus/valid/`):
//!
//! * **Emit fixed point** — `Spec::to_toml` is canonical: re-parsing
//!   an emission and emitting again reproduces it byte-for-byte, and
//!   both sides compile to the same plan fingerprint.
//! * **Schedule independence** — a spec-built plan renders the same
//!   report at `--jobs 1`, `2`, and `7`; the frontend inherits the
//!   sweep engine's determinism rather than re-proving it per spec.
//! * **No panics on garbage** — arbitrary byte mutations of valid
//!   spec text (corruption, truncation, insertion) always come back
//!   as `Ok` or a typed `SpecError`, never a panic. proptest treats a
//!   panic inside the closure as a failure and shrinks the mutation.

use std::path::PathBuf;

use columbia::spec::{compile, load_str, Spec};
use proptest::prelude::*;

fn repo_path(rel: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(rel)
}

/// Every TOML-form spec we ship or test against: `specs/*.toml` plus
/// the valid half of the conformance corpus.
fn all_spec_texts() -> Vec<(String, String)> {
    let mut texts = Vec::new();
    for dir in ["specs", "tests/spec_corpus/valid"] {
        let mut files: Vec<PathBuf> = std::fs::read_dir(repo_path(dir))
            .unwrap_or_else(|e| panic!("missing {dir}: {e}"))
            .map(|e| e.unwrap().path())
            .filter(|p| p.extension().is_some_and(|x| x == "toml"))
            .collect();
        files.sort();
        for f in files {
            texts.push((
                f.file_name().unwrap().to_string_lossy().into_owned(),
                std::fs::read_to_string(&f).unwrap(),
            ));
        }
    }
    assert!(texts.len() >= 38, "spec inventory shrank: {}", texts.len());
    texts
}

fn parse(name: &str, text: &str) -> Spec {
    load_str(text).unwrap_or_else(|e| panic!("{name} failed to parse: {e}"))
}

#[test]
fn emission_is_a_fixed_point_and_preserves_the_plan() {
    for (name, text) in all_spec_texts() {
        let spec = parse(&name, &text);
        let emitted = spec.to_toml();
        let reparsed = parse(&name, &emitted);
        assert_eq!(
            reparsed.to_toml(),
            emitted,
            "{name}: emit(parse(emit)) is not a fixed point"
        );
        // (No whole-struct equality here: `Spec` carries source spans,
        // which legitimately differ between the original layout and the
        // canonical emission. The byte fixed point plus the fingerprint
        // equality below are the structural contract.)
        let fp = compile(&spec)
            .unwrap_or_else(|e| panic!("{name} failed to compile: {e}"))
            .fingerprint();
        let fp2 = compile(&reparsed).unwrap().fingerprint();
        assert_eq!(fp, fp2, "{name}: emission compiles to a different plan");
    }
}

/// Cheap corpus specs for the schedule-independence property — small
/// point counts, fast kinds, but covering grids, tuple axes, faults,
/// and collation.
const CHEAP: [&str; 6] = [
    "collate-ratio.toml",
    "dgemm-grid.toml",
    "grid-two-axes.toml",
    "md-weak-single.toml",
    "note-template.toml",
    "stream-stride.toml",
];

fn cheap_text(name: &str) -> String {
    std::fs::read_to_string(repo_path(&format!("tests/spec_corpus/valid/{name}"))).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn same_spec_means_same_report_across_job_counts(
        name in prop::sample::select(CHEAP.to_vec()),
    ) {
        let text = cheap_text(name);
        let serial = compile(&load_str(&text).unwrap())
            .unwrap()
            .run_with_jobs(1)
            .unwrap();
        for jobs in [2usize, 7] {
            let par = compile(&load_str(&text).unwrap())
                .unwrap()
                .run_with_jobs(jobs)
                .unwrap();
            prop_assert_eq!(serial.to_text(), par.to_text(), "{}: jobs={}", name, jobs);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn mutated_spec_bytes_never_panic(
        name in prop::sample::select(CHEAP.to_vec()),
        // Each word encodes one edit: low byte the replacement value,
        // next two bits the operation (overwrite / insert / delete),
        // the rest the position.
        edits in prop::collection::vec(0u64..u64::MAX, 1..8),
        truncate in 0u64..u64::MAX,
    ) {
        let mut bytes = cheap_text(name).into_bytes();
        for &word in &edits {
            if bytes.is_empty() {
                break;
            }
            let byte = word as u8;
            let pos = (word >> 10) as usize;
            let at = pos % bytes.len();
            match (word >> 8) % 3 {
                0 => bytes[at] = byte,
                1 => bytes.insert(at, byte),
                _ => {
                    bytes.remove(at);
                }
            }
        }
        // Half the cases also truncate mid-document.
        if truncate % 2 == 0 {
            let t = (truncate >> 1) as usize;
            bytes.truncate(t % (bytes.len() + 1));
        }
        // Corruption may break UTF-8; the loader takes &str, so feed it
        // the lossy decoding (what any caller reading a file would do).
        let text = String::from_utf8_lossy(&bytes).into_owned();
        // The property is the absence of a panic; both outcomes are fine.
        let _ = load_str(&text).and_then(|s| compile(&s));
    }
}
