//! Spec-language conformance corpus.
//!
//! `tests/spec_corpus/valid/` holds small specs that must compile;
//! each pins its compiled plan's shape (`fingerprint`, `points`) in a
//! `.golden` sidecar. `tests/spec_corpus/invalid/` holds specs that
//! must be *rejected*; each pins the exact [`SpecError`] rendering —
//! line, column, message, and typo suggestion — in its sidecar. The
//! corpus is the executable definition of the language: a parser or
//! diagnostic change that moves any message shows up as a fixture
//! diff, reviewed like any golden change.
//!
//! To regenerate after a deliberate change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test spec_corpus
//! git diff tests/spec_corpus/   # review every changed line
//! ```
//!
//! As in `tests/golden_values.rs`, `UPDATE_GOLDEN` rewrites the
//! sidecars and then *fails* the run; re-run without it to confirm.
//!
//! [`SpecError`]: columbia::SpecError

use std::path::{Path, PathBuf};

use columbia::spec::{compile, load_path};

fn corpus_dir(sub: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/spec_corpus")
        .join(sub)
}

/// Spec files in `dir`, sorted by name for stable iteration.
fn spec_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("missing corpus directory {}: {e}", dir.display()))
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "toml" || x == "json"))
        .collect();
    files.sort();
    files
}

fn golden_sidecar(spec: &Path) -> PathBuf {
    spec.with_extension("golden")
}

/// Compare `actual` against the fixture's sidecar, honouring
/// `UPDATE_GOLDEN`. Returns whether the sidecar was rewritten.
fn check_sidecar(spec: &Path, actual: &str) -> bool {
    let path = golden_sidecar(spec);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, actual)
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
        return true;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing corpus sidecar {}: {e}\n\
             Generate it with `UPDATE_GOLDEN=1 cargo test --test spec_corpus`",
            path.display()
        )
    });
    assert_eq!(
        actual,
        expected,
        "corpus fixture {} diverged from its sidecar; if the change is \
         deliberate, regenerate with `UPDATE_GOLDEN=1 cargo test --test \
         spec_corpus` and review the diff",
        spec.display()
    );
    false
}

fn fail_if_updated(updated: bool) {
    if updated {
        panic!(
            "UPDATE_GOLDEN: rewrote corpus sidecars; review `git diff \
             tests/spec_corpus/`, then re-run without UPDATE_GOLDEN to confirm"
        );
    }
}

/// No sidecar without a spec: a renamed fixture must take its golden
/// along, or the orphan silently stops being checked.
fn assert_no_orphans(dir: &Path) {
    for entry in std::fs::read_dir(dir).unwrap() {
        let p = entry.unwrap().path();
        if p.extension().is_some_and(|x| x == "golden") {
            let has_spec = p.with_extension("toml").exists() || p.with_extension("json").exists();
            assert!(has_spec, "orphaned corpus sidecar {}", p.display());
        }
    }
}

#[test]
fn valid_corpus_compiles_and_pins_plan_shapes() {
    let dir = corpus_dir("valid");
    let files = spec_files(&dir);
    assert!(
        files.len() >= 20,
        "valid corpus shrank to {} fixtures (floor is 20)",
        files.len()
    );
    assert_no_orphans(&dir);
    let mut updated = false;
    for spec in &files {
        let plan = load_path(spec)
            .and_then(|s| compile(&s))
            .unwrap_or_else(|e| panic!("valid fixture {} rejected: {e}", spec.display()));
        let actual = format!(
            "fingerprint = {:016x}\npoints = {}\n",
            plan.fingerprint(),
            plan.len()
        );
        updated |= check_sidecar(spec, &actual);
    }
    fail_if_updated(updated);
}

#[test]
fn invalid_corpus_is_rejected_with_pinned_diagnostics() {
    let dir = corpus_dir("invalid");
    let files = spec_files(&dir);
    assert!(
        files.len() >= 15,
        "invalid corpus shrank to {} fixtures (floor is 15)",
        files.len()
    );
    assert_no_orphans(&dir);
    let mut updated = false;
    for spec in &files {
        let err = match load_path(spec).and_then(|s| compile(&s)) {
            Err(e) => e,
            Ok(plan) => panic!(
                "invalid fixture {} compiled to a {}-point plan",
                spec.display(),
                plan.len()
            ),
        };
        assert!(
            err.position().is_some(),
            "invalid fixture {} produced a positionless diagnostic: {err}",
            spec.display()
        );
        updated |= check_sidecar(spec, &format!("{err}\n"));
    }
    fail_if_updated(updated);
}
