//! Thread-safety of the process-global trace sink.
//!
//! Two simulations traced from two threads must produce two
//! *disjoint*, internally consistent bundles — no interleaved spans, no
//! shared counters — and drain in a deterministic order. The probe runs
//! the `trace` experiment (16 ranks, seeded faults, fully
//! deterministic) once solo to establish the expected single-run shape,
//! then twice concurrently.

use columbia::experiments::{run, Experiment};
use columbia::obs::sink;
use columbia::obs::TraceBundle;

/// Run the trace experiment under an installed sink and return its one
/// bundle.
fn solo_bundle() -> TraceBundle {
    sink::install();
    run(Experiment::Trace);
    let mut bundles = sink::take();
    assert_eq!(bundles.len(), 1, "trace experiment records one simulation");
    bundles.pop().unwrap()
}

#[test]
fn two_threads_trace_two_disjoint_consistent_profiles() {
    let solo = solo_bundle();
    assert_eq!(solo.profile.ranks.len(), 16);
    assert!(solo.profile.makespan > 0.0);
    assert!(!solo.spans.is_empty());

    sink::install();
    std::thread::scope(|scope| {
        for _ in 0..2 {
            scope.spawn(|| run(Experiment::Trace));
        }
    });
    let bundles = sink::take();
    assert_eq!(bundles.len(), 2, "one bundle per concurrent simulation");

    for (i, b) in bundles.iter().enumerate() {
        // Internally consistent: exactly the shape of a solo run —
        // interleaving another thread's spans or double-counting
        // messages would change these.
        assert_eq!(b.spans.len(), solo.spans.len(), "bundle {i} span count");
        assert_eq!(b.profile.ranks.len(), 16, "bundle {i} rank count");
        assert!(
            (b.profile.makespan - solo.profile.makespan).abs() < 1e-12,
            "bundle {i} makespan {} != solo {}",
            b.profile.makespan,
            solo.profile.makespan
        );
        assert_eq!(
            b.metrics.counter("messages_sent"),
            solo.metrics.counter("messages_sent"),
            "bundle {i} message counter"
        );
        for (r, (got, want)) in b.profile.ranks.iter().zip(&solo.profile.ranks).enumerate() {
            assert!(
                (got.compute - want.compute).abs() < 1e-12 && (got.wait - want.wait).abs() < 1e-12,
                "bundle {i} rank {r} attribution drifted"
            );
        }
    }

    // Disjoint: distinct bundle objects with their own span buffers
    // (equal content is expected — both threads ran the same seeded
    // simulation), draining under deterministic labels.
    assert!(bundles[0].label.starts_with("sim 0: "));
    assert!(bundles[1].label.starts_with("sim 1: "));
    assert!(
        bundles[0].label.contains("trace demo") && bundles[1].label.contains("trace demo"),
        "{:?}",
        (&bundles[0].label, &bundles[1].label)
    );
}
