//! Minimal offline stand-in for `rand` 0.8.
//!
//! Implements the surface this workspace uses: seedable RNGs
//! (`StdRng`, `SmallRng`), `Rng::gen_range` over integer and float
//! ranges, and `seq::SliceRandom::shuffle`. The generator is
//! splitmix64 — statistically fine for test-data generation and fully
//! deterministic per seed, which is all the workspace requires (no
//! test asserts exact values from the stream).

use std::ops::Range;

/// Core of the stub: every RNG is a splitmix64 state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Trait for types that can be seeded from a `u64` (subset of the real
/// `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Subset of `rand::RngCore`.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Sample a value uniformly from a range. Mirrors the subset of
/// `rand::distributions::uniform::SampleRange` the workspace uses.
pub trait SampleRange<T> {
    /// Draw one sample using `rng`.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
        self.start + unit * (self.end - self.start)
    }
}

/// Subset of `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_one(self)
    }

    /// A uniform `f64` in `[0, 1)` (the only `gen` the workspace needs).
    fn gen(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Bernoulli sample.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen() < p
    }
}

impl<T: RngCore> Rng for T {}

/// Named RNG flavours (all splitmix64 underneath).
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Stand-in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Decorrelate trivially-related seeds before first use.
            let mut state = seed ^ 0xA076_1D64_78BD_642F;
            splitmix64(&mut state);
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.state)
        }
    }

    /// Stand-in for `rand::rngs::SmallRng` (same engine as [`StdRng`]).
    pub type SmallRng = StdRng;
}

/// Sequence utilities (subset of `rand::seq`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Subset of `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Uniformly choose one element (None when empty).
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// `rand::thread_rng` equivalent with a fixed seed: the workspace's
/// design demands full determinism, so a "thread" RNG is just a
/// default-seeded [`rngs::StdRng`].
pub fn thread_rng() -> rngs::StdRng {
    SeedableRng::seed_from_u64(0x5EED)
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen_range(0u64..1 << 40), b.gen_range(0u64..1 << 40));
        }
        let mut c = StdRng::seed_from_u64(8);
        let same = (0..64).all(|_| {
            StdRng::seed_from_u64(7);
            a.gen_range(0.0f64..1.0) == c.gen_range(0.0f64..1.0)
        });
        assert!(!same);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = r.gen_range(-5i32..17);
            assert!((-5..17).contains(&v));
            let f = r.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
            let u = r.gen_range(0usize..1);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn floats_cover_the_unit_interval() {
        let mut r = StdRng::seed_from_u64(11);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..4000 {
            let v: f64 = r.gen();
            lo = lo.min(v);
            hi = hi.max(v);
        }
        assert!(lo < 0.05 && hi > 0.95, "lo={lo} hi={hi}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 100-element shuffle leaving order intact is ~impossible");
    }
}
