//! Minimal offline stand-in for `rayon`.
//!
//! Every `par_*` entry point returns the corresponding *sequential*
//! standard-library iterator, so the full std `Iterator` adapter
//! vocabulary (`map`, `zip`, `enumerate`, `for_each`, `collect`, …)
//! works unchanged. Results are identical to rayon's (the workspace
//! only uses order-insensitive reductions); only wall-clock parallel
//! speedup is lost, which the performance *model* layers never rely on
//! (real-kernel benches measure whatever the host executes).

/// Drop-in for `rayon::prelude::*`.
pub mod prelude {
    /// Sequential stand-in for `rayon::iter::IntoParallelIterator`.
    pub trait IntoParallelIterator {
        /// The iterator produced.
        type Iter: Iterator<Item = Self::Item>;
        /// Element type.
        type Item;
        /// "Parallel" iterator — sequential here.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<I: IntoIterator> IntoParallelIterator for I {
        type Iter = I::IntoIter;
        type Item = I::Item;

        fn into_par_iter(self) -> I::IntoIter {
            self.into_iter()
        }
    }

    /// Sequential stand-in for rayon's `ParallelSlice`.
    pub trait ParallelSlice<T> {
        /// `slice.iter()` under a rayon name.
        fn par_iter(&self) -> std::slice::Iter<'_, T>;
        /// `slice.chunks(size)` under a rayon name.
        fn par_chunks(&self, size: usize) -> std::slice::Chunks<'_, T>;
    }

    impl<T> ParallelSlice<T> for [T] {
        fn par_iter(&self) -> std::slice::Iter<'_, T> {
            self.iter()
        }

        fn par_chunks(&self, size: usize) -> std::slice::Chunks<'_, T> {
            self.chunks(size)
        }
    }

    /// Sequential stand-in for rayon's `ParallelSliceMut`.
    pub trait ParallelSliceMut<T> {
        /// `slice.iter_mut()` under a rayon name.
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;
        /// `slice.chunks_mut(size)` under a rayon name.
        fn par_chunks_mut(&mut self, size: usize) -> std::slice::ChunksMut<'_, T>;
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
            self.iter_mut()
        }

        fn par_chunks_mut(&mut self, size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(size)
        }
    }
}

/// `rayon::current_num_threads` equivalent: sequential stub ⇒ 1.
pub fn current_num_threads() -> usize {
    1
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn slice_adapters_behave_like_std() {
        let v = vec![1u32, 2, 3, 4];
        let doubled: Vec<u32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let mut w = v.clone();
        w.par_iter_mut().for_each(|x| *x += 1);
        assert_eq!(w, vec![2, 3, 4, 5]);
        let sums: Vec<u32> = w.par_chunks(2).map(|c| c.iter().sum()).collect();
        assert_eq!(sums, vec![5, 9]);
    }

    #[test]
    fn ranges_into_par_iter() {
        let total: usize = (0..10usize).into_par_iter().map(|i| i * i).sum();
        assert_eq!(total, 285);
    }
}
