//! Minimal offline stand-in for `serde`.
//!
//! `Serialize` and `Deserialize` are marker traits blanket-implemented
//! for every type, and the re-exported derives are no-ops. This keeps
//! every `#[derive(Serialize, Deserialize)]` in the workspace compiling
//! (preserving the signatures for a future swap to the real serde)
//! without a serialization framework; the one place that needs JSON
//! output (`columbia::report`) renders it by hand.

/// Marker stand-in for `serde::Serialize` (blanket-implemented).
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize` (blanket-implemented).
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Owned-deserialization marker, mirroring `serde::de::DeserializeOwned`.
pub mod de {
    /// Blanket-implemented stand-in for `DeserializeOwned`.
    pub trait DeserializeOwned {}

    impl<T: ?Sized> DeserializeOwned for T {}
}

pub use serde_derive::{Deserialize, Serialize};
