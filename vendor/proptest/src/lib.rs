//! Minimal offline stand-in for `proptest`.
//!
//! Implements the subset the workspace's property tests use:
//!
//! * the [`proptest!`] macro with `#![proptest_config(...)]` and
//!   `name in strategy` bindings;
//! * strategies: integer/float [`Range`](std::ops::Range)s,
//!   [`prop::sample::select`], [`prop::collection::vec`], and
//!   [`prop::collection::btree_set`];
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`].
//!
//! Cases are generated from a deterministic splitmix64 stream seeded by
//! the test's name, so failures reproduce exactly. There is **no
//! shrinking**: a failing case reports its inputs (via `{:?}` on the
//! bindings) and panics.

use std::fmt::Debug;

/// Deterministic generator backing every strategy.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// New generator with the given seed.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Test-runner types (mirror of `proptest::test_runner`).
pub mod test_runner {
    /// Runner configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 32 }
        }
    }

    /// Why a generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; try another case.
        Reject(String),
        /// A `prop_assert*!` failed; the property is false.
        Fail(String),
    }
}

/// Strategy = something that can generate a value from a [`TestRng`].
pub trait Strategy {
    /// Generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Strategy producing a constant (mirror of `proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The `prop` namespace (mirror of `proptest::prelude::prop`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};
        use std::collections::BTreeSet;
        use std::ops::Range;

        /// Collection size specification: a fixed size or a half-open
        /// range (mirror of `proptest::collection::SizeRange`).
        #[derive(Debug, Clone)]
        pub struct SizeRange(Range<usize>);

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange(n..n + 1)
            }
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                SizeRange(r)
            }
        }

        impl SizeRange {
            fn sample(&self, rng: &mut TestRng) -> usize {
                self.0.clone().generate(rng)
            }

            fn min(&self) -> usize {
                self.0.start
            }
        }

        /// Strategy for `Vec`s with length drawn from `len`.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            len: SizeRange,
        }

        /// `Vec` of values from `element`, length in `len`.
        pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                len: len.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.len.sample(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// Strategy for `BTreeSet`s with target size drawn from `size`.
        #[derive(Debug, Clone)]
        pub struct BTreeSetStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// `BTreeSet` of values from `element`, size in `size` (best
        /// effort: duplicates shrink the set, as in real proptest).
        pub fn btree_set<S: Strategy>(
            element: S,
            size: impl Into<SizeRange>,
        ) -> BTreeSetStrategy<S> {
            BTreeSetStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for BTreeSetStrategy<S>
        where
            S::Value: Ord,
        {
            type Value = BTreeSet<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
                let want = self.size.sample(rng).max(self.size.min());
                let mut set = BTreeSet::new();
                // Bounded attempts: duplicates may keep the set smaller.
                for _ in 0..want.saturating_mul(8).max(8) {
                    if set.len() >= want {
                        break;
                    }
                    set.insert(self.element.generate(rng));
                }
                set
            }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use crate::{Strategy, TestRng};

        /// Strategy choosing uniformly from a fixed list.
        #[derive(Debug, Clone)]
        pub struct Select<T: Clone>(Vec<T>);

        /// Choose one of `options` uniformly.
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select needs at least one option");
            Select(options)
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;

            fn generate(&self, rng: &mut TestRng) -> T {
                let i = (rng.next_u64() as usize) % self.0.len();
                self.0[i].clone()
            }
        }
    }
}

/// Everything a property-test file needs (mirror of
/// `proptest::prelude`).
pub mod prelude {
    pub use crate::prop;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, Strategy,
    };
}

/// Seed derived from a test's name: deterministic, distinct per test.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Fail the current case unless `a == b`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        $crate::prop_assert!(
            lhs == rhs,
            "left = {:?}, right = {:?}", lhs, rhs
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$a, &$b);
        $crate::prop_assert!(
            lhs == rhs,
            "left = {:?}, right = {:?}: {}", lhs, rhs, format!($($fmt)+)
        );
    }};
}

/// Fail the current case unless `a != b`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        $crate::prop_assert!(
            lhs != rhs,
            "both sides = {:?}", lhs
        );
    }};
}

/// Skip the current case unless `cond` holds (counts as rejected, not
/// failed).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// The property-test macro. Mirrors `proptest::proptest!`:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///
///     #[test]
///     fn my_property(x in 0u32..10, v in prop::collection::vec(0f64..1.0, 1..4)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let seed = $crate::seed_from_name(concat!(module_path!(), "::", stringify!($name)));
                let mut accepted: u32 = 0;
                let mut attempt: u64 = 0;
                let max_attempts = (config.cases as u64).saturating_mul(20).max(20);
                while accepted < config.cases {
                    attempt += 1;
                    if attempt > max_attempts {
                        panic!(
                            "proptest {}: only {}/{} cases accepted after {} attempts (prop_assume too strict?)",
                            stringify!($name), accepted, config.cases, max_attempts
                        );
                    }
                    let mut __rng = $crate::TestRng::new(
                        seed ^ attempt.wrapping_mul(0xA076_1D64_78BD_642F),
                    );
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                    let __inputs = {
                        let mut s = ::std::string::String::new();
                        $(
                            s.push_str(stringify!($arg));
                            s.push_str(" = ");
                            s.push_str(&format!("{:?}", &$arg));
                            s.push_str("; ");
                        )*
                        s
                    };
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest {} failed (case {}, attempt {}): {}\ninputs: {}",
                                stringify!($name),
                                accepted + 1,
                                attempt,
                                msg,
                                __inputs
                            );
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, f in -2.0f64..4.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..4.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_range(
            v in prop::collection::vec(0u64..100, 2..6),
        ) {
            prop_assert!((2..6).contains(&v.len()), "len={}", v.len());
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn select_only_yields_options(k in prop::sample::select(vec![1u8, 3, 5])) {
            prop_assert!(k == 1 || k == 3 || k == 5);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn btree_sets_are_unique(s in prop::collection::btree_set(0u32..50, 1..20)) {
            prop_assert!(!s.is_empty());
            prop_assert!(s.iter().all(|&x| x < 50));
        }
    }

    #[test]
    #[should_panic(expected = "proptest sometimes_fails failed")]
    fn failures_panic_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            #[allow(unused)]
            fn sometimes_fails(x in 0u32..4) {
                prop_assert!(x != 2, "hit the bad value");
            }
        }
        sometimes_fails();
    }

    #[test]
    fn name_seeds_differ() {
        assert_ne!(crate::seed_from_name("a"), crate::seed_from_name("b"));
    }
}
