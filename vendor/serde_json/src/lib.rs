//! Minimal offline stand-in for `serde_json`.
//!
//! The real serde data model is not available offline (the `serde`
//! stub's derives are no-ops), so this crate only offers the helpers a
//! hand-rolled JSON renderer needs: correct string escaping per RFC
//! 8259. Workspace code that used `serde_json::to_string_pretty`
//! builds its JSON through these helpers instead.

/// Escape `s` as the *contents* of a JSON string (no surrounding quotes).
pub fn escape_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render `s` as a quoted JSON string literal.
pub fn quote(s: &str) -> String {
    format!("\"{}\"", escape_str(s))
}

/// Render a list of already-rendered JSON values as a JSON array.
pub fn array(items: impl IntoIterator<Item = String>) -> String {
    let inner: Vec<String> = items.into_iter().collect();
    format!("[{}]", inner.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(quote("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(escape_str("\u{01}"), "\\u0001");
        assert_eq!(quote("plain"), "\"plain\"");
    }

    #[test]
    fn arrays_join() {
        assert_eq!(array([quote("x"), "1".to_string()]), "[\"x\",1]");
    }
}
