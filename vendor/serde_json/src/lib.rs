//! Minimal offline stand-in for `serde_json`.
//!
//! The real serde data model is not available offline (the `serde`
//! stub's derives are no-ops), so this crate offers the pieces the
//! workspace actually needs to emit and check JSON:
//!
//! * correct string escaping per RFC 8259 ([`escape_str`], [`quote`],
//!   [`array`]) for hand-assembled fragments;
//! * an order-preserving [`Value`] tree with [`to_string`] /
//!   [`to_string_pretty`] renderers, standing in for
//!   `serde_json::to_string_pretty(&T)` — callers build the `Value`
//!   explicitly instead of deriving it;
//! * a strict recursive-descent parser ([`from_str`]) so round-trip
//!   tests and trace validators work without a network dependency.
//!
//! Object key order is preserved (insertion order), which the real
//! crate only offers behind the `preserve_order` feature; the
//! workspace's reports rely on stable field order.

use std::fmt;

/// Escape `s` as the *contents* of a JSON string (no surrounding quotes).
pub fn escape_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render `s` as a quoted JSON string literal.
pub fn quote(s: &str) -> String {
    format!("\"{}\"", escape_str(s))
}

/// Render a list of already-rendered JSON values as a JSON array.
pub fn array(items: impl IntoIterator<Item = String>) -> String {
    let inner: Vec<String> = items.into_iter().collect();
    format!("[{}]", inner.join(","))
}

/// A JSON value tree. Objects preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`; integers round-trip exactly
    /// up to 2^53).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Empty object.
    pub fn object() -> Value {
        Value::Object(Vec::new())
    }

    /// Insert (or replace) `key` in an object; panics on non-objects.
    pub fn set(&mut self, key: &str, value: Value) -> &mut Self {
        let Value::Object(entries) = self else {
            panic!("Value::set on a non-object");
        };
        if let Some(e) = entries.iter_mut().find(|(k, _)| k == key) {
            e.1 = value;
        } else {
            entries.push((key.to_string(), value));
        }
        self
    }

    /// Look up `key` in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => out.push_str(&render_number(*n)),
            Value::String(s) => out.push_str(&quote(s)),
            Value::Array(items) => {
                write_seq(out, indent, level, '[', ']', items.len(), |out, i, lvl| {
                    items[i].write(out, indent, lvl);
                })
            }
            Value::Object(entries) => {
                write_seq(out, indent, level, '{', '}', entries.len(), |out, i, lvl| {
                    let (k, v) = &entries[i];
                    out.push_str(&quote(k));
                    out.push_str(if indent.is_some() { ": " } else { ":" });
                    v.write(out, indent, lvl);
                })
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (level + 1)));
        }
        item(out, i, level + 1);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * level));
    }
    out.push(close);
}

/// Render a number the way serde_json does: integers without a
/// fractional part, everything else via `f64`'s shortest display form.
fn render_number(n: f64) -> String {
    if !n.is_finite() {
        // JSON has no Inf/NaN; serde_json errors, we degrade to null.
        return "null".to_string();
    }
    if n == n.trunc() && n.abs() < 9.007_199_254_740_992e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&to_string(self))
    }
}

/// Compact rendering of a [`Value`].
pub fn to_string(v: &Value) -> String {
    let mut out = String::new();
    v.write(&mut out, None, 0);
    out
}

/// Pretty rendering (2-space indent), matching
/// `serde_json::to_string_pretty`.
pub fn to_string_pretty(v: &Value) -> String {
    let mut out = String::new();
    v.write(&mut out, Some(2), 0);
    out
}

/// A parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for Error {}

/// Parse a complete JSON document into a [`Value`].
///
/// Strict: trailing garbage, trailing commas, and bare tokens are
/// errors, so a truncated export fails loudly.
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: impl Into<String>) -> Error {
        Error {
            offset: self.pos,
            message: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array_value(),
            Some(b'{') => self.object_value(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array_value(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object_value(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            let cp = self.unicode_escape()?;
                            out.push(cp);
                            continue; // unicode_escape advanced pos itself
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one full UTF-8 scalar (input is &str, so
                    // the byte stream is valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Parse the `XXXX` of a `\uXXXX` escape (cursor on the `u`),
    /// including surrogate pairs; leaves the cursor past the escape.
    fn unicode_escape(&mut self) -> Result<char, Error> {
        self.pos += 1; // consume 'u'
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // High surrogate: a \uXXXX low surrogate must follow.
            if self.peek() == Some(b'\\') {
                self.pos += 1;
                self.expect(b'u')?;
                let lo = self.hex4()?;
                if (0xDC00..0xE000).contains(&lo) {
                    let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    return char::from_u32(cp).ok_or_else(|| self.err("invalid surrogate pair"));
                }
            }
            return Err(self.err("unpaired surrogate"));
        }
        char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self.peek().ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err(format!("invalid number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(quote("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(escape_str("\u{01}"), "\\u0001");
        assert_eq!(quote("plain"), "\"plain\"");
    }

    #[test]
    fn arrays_join() {
        assert_eq!(array([quote("x"), "1".to_string()]), "[\"x\",1]");
    }

    #[test]
    fn value_renders_compact_and_pretty() {
        let mut v = Value::object();
        v.set("id", Value::String("Fig. 9".into()));
        v.set("n", Value::Number(3.0));
        v.set("rows", Value::Array(vec![Value::Bool(true), Value::Null]));
        assert_eq!(
            to_string(&v),
            "{\"id\":\"Fig. 9\",\"n\":3,\"rows\":[true,null]}"
        );
        let pretty = to_string_pretty(&v);
        assert!(pretty.contains("  \"id\": \"Fig. 9\",\n"));
        assert!(pretty.ends_with('}'));
    }

    #[test]
    fn parses_what_it_prints() {
        let mut v = Value::object();
        v.set("a", Value::Number(1.5));
        v.set("b", Value::Array(vec![Value::String("x\ny".into())]));
        v.set("c", Value::object());
        for text in [to_string(&v), to_string_pretty(&v)] {
            assert_eq!(from_str(&text).unwrap(), v);
        }
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(from_str("").is_err());
        assert!(from_str("{\"a\":1,}").is_err());
        assert!(from_str("[1,2] trailing").is_err());
        assert!(from_str("{\"a\" 1}").is_err());
        assert!(from_str("\"unterminated").is_err());
    }

    #[test]
    fn parses_numbers_and_escapes() {
        assert_eq!(from_str("-1.5e3").unwrap(), Value::Number(-1500.0));
        assert_eq!(
            from_str("\"\\u0041\\ud83d\\ude00\"").unwrap(),
            Value::String("A😀".into())
        );
        assert_eq!(from_str("12").unwrap().as_f64(), Some(12.0));
    }

    #[test]
    fn object_order_is_preserved() {
        let v = from_str("{\"z\":1,\"a\":2}").unwrap();
        let Value::Object(entries) = &v else { panic!() };
        assert_eq!(entries[0].0, "z");
        assert_eq!(entries[1].0, "a");
        assert_eq!(v.get("a").and_then(Value::as_f64), Some(2.0));
    }
}
