//! Minimal offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace's benches use —
//! [`criterion_group!`], [`criterion_main!`], [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`],
//! [`black_box`] — backed by a simple wall-clock timer: each benchmark
//! runs a handful of timed iterations and prints the per-iteration
//! mean. No statistics, warm-up, or HTML reports.

use std::time::Instant;

/// Opaque value barrier; defers to the compiler intrinsic wrapper in std.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for a parameterised benchmark, e.g. `BenchmarkId::new("run", 64)`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Function name + parameter display value.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    /// Total wall-clock nanoseconds accumulated by `iter`.
    elapsed_nanos: u128,
}

impl Bencher {
    /// Time `routine`, keeping its output alive via [`black_box`].
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed_nanos += start.elapsed().as_nanos();
    }
}

/// Collection of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: u64,
}

impl<'a> BenchmarkGroup<'a> {
    /// Set the iteration count used for each benchmark in the group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self.criterion.default_sample_size = self.sample_size;
        self
    }

    /// Run a benchmark named `id` (any `Display`, including [`BenchmarkId`]).
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, |b| f(b));
        self
    }

    /// Run a benchmark with an explicit input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl std::fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// End the group (kept for API compatibility; prints nothing extra).
    pub fn finish(&mut self) {}
}

/// Benchmark manager handed to `criterion_group!` target functions.
pub struct Criterion {
    default_sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Start a named [`BenchmarkGroup`].
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), self.default_sample_size, |b| f(b));
        self
    }
}

fn run_one(label: &str, iters: u64, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iters,
        elapsed_nanos: 0,
    };
    f(&mut b);
    let total_iters = b.iters.max(1);
    let mean_ns = b.elapsed_nanos / total_iters as u128;
    let mean = if mean_ns >= 1_000_000 {
        format!("{:.3} ms", mean_ns as f64 / 1e6)
    } else if mean_ns >= 1_000 {
        format!("{:.3} us", mean_ns as f64 / 1e3)
    } else {
        format!("{} ns", mean_ns)
    };
    println!("bench {label:<56} {mean}/iter ({total_iters} iters)");
}

/// Declare a benchmark group: `criterion_group!(benches, fn_a, fn_b);`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declare the bench entry point: `criterion_main!(benches);`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3);
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("scaled", 7), &7u64, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
    }

    criterion_group!(unit_benches, sample_bench);

    #[test]
    fn group_runs_to_completion() {
        unit_benches();
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter(8).to_string(), "8");
    }
}
