//! No-op derive macros for the offline `serde` stub.
//!
//! The companion `serde` stub blanket-implements its marker
//! `Serialize`/`Deserialize` traits for every type, so the derives
//! only need to exist (and swallow `#[serde(...)]` attributes); they
//! expand to nothing.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
