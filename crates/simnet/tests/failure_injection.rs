//! Failure injection: malformed communication programs must be
//! diagnosed, not silently mis-simulated.

use columbia_machine::cluster::{ClusterConfig, CpuId};
use columbia_machine::node::NodeKind;
use columbia_simnet::fabric::ClusterFabric;
use columbia_simnet::{simulate, Op};

fn fabric() -> ClusterFabric {
    ClusterFabric::single_node(ClusterConfig::uniform(NodeKind::Bx2b, 1))
}

fn place(n: usize) -> Vec<CpuId> {
    (0..n as u32).map(|c| CpuId::new(0, c)).collect()
}

#[test]
fn mismatched_tag_deadlocks_with_diagnosis() {
    let progs = vec![
        vec![Op::Send { to: 1, bytes: 64, tag: 1 }],
        vec![Op::Recv { from: 0, tag: 2 }], // wrong tag
    ];
    let err = simulate(&progs, &place(2), &fabric()).unwrap_err();
    assert_eq!(err.stuck_ranks, vec![1]);
}

#[test]
fn wrong_source_deadlocks() {
    let progs = vec![
        vec![Op::Send { to: 2, bytes: 64, tag: 0 }],
        vec![],
        vec![Op::Recv { from: 1, tag: 0 }], // message came from 0, not 1
    ];
    let err = simulate(&progs, &place(3), &fabric()).unwrap_err();
    assert_eq!(err.stuck_ranks, vec![2]);
}

#[test]
fn missing_collective_participant_deadlocks_everyone_at_the_barrier() {
    let progs = vec![
        vec![Op::Barrier],
        vec![Op::Barrier],
        vec![Op::Recv { from: 0, tag: 9 }], // never reaches the barrier
    ];
    let err = simulate(&progs, &place(3), &fabric()).unwrap_err();
    assert!(err.stuck_ranks.contains(&2));
    assert!(err.stuck_ranks.len() == 3, "{:?}", err.stuck_ranks);
}

#[test]
fn three_cycle_of_receives_is_detected() {
    let progs = vec![
        vec![Op::Recv { from: 2, tag: 0 }, Op::Send { to: 1, bytes: 8, tag: 0 }],
        vec![Op::Recv { from: 0, tag: 0 }, Op::Send { to: 2, bytes: 8, tag: 0 }],
        vec![Op::Recv { from: 1, tag: 0 }, Op::Send { to: 0, bytes: 8, tag: 0 }],
    ];
    let err = simulate(&progs, &place(3), &fabric()).unwrap_err();
    assert_eq!(err.stuck_ranks, vec![0, 1, 2]);
}

#[test]
fn extra_unconsumed_messages_are_harmless() {
    // Eager sends with no matching receive complete locally — the run
    // finishes and the receiver simply never reads them.
    let progs = vec![
        vec![Op::Send { to: 1, bytes: 1 << 20, tag: 5 }, Op::Compute(0.1)],
        vec![Op::Compute(0.2)],
    ];
    let out = simulate(&progs, &place(2), &fabric()).unwrap();
    assert!((out.makespan - 0.2).abs() < 1e-6);
}

#[test]
fn self_messages_round_trip() {
    let progs = vec![vec![
        Op::Send { to: 0, bytes: 4096, tag: 3 },
        Op::Recv { from: 0, tag: 3 },
    ]];
    let out = simulate(&progs, &place(1), &fabric()).unwrap();
    assert!(out.makespan > 0.0);
}
