//! Failure injection: malformed communication programs and hostile
//! fault plans must be diagnosed with structured [`SimError`]s, not
//! silently mis-simulated or panicked on.

use columbia_machine::cluster::{ClusterConfig, CpuId, InterNodeFabric};
use columbia_machine::node::NodeKind;
use columbia_simnet::fabric::{ClusterFabric, MptVersion};
use columbia_simnet::{
    simulate, simulate_with_faults, ConnectionLimit, ConnectionPolicy, FaultPlan, Op, SimError,
};

fn fabric() -> ClusterFabric {
    ClusterFabric::single_node(ClusterConfig::uniform(NodeKind::Bx2b, 1))
}

fn place(n: usize) -> Vec<CpuId> {
    (0..n as u32).map(|c| CpuId::new(0, c)).collect()
}

#[test]
fn mismatched_tag_deadlocks_with_diagnosis() {
    let progs = vec![
        vec![Op::Send {
            to: 1,
            bytes: 64,
            tag: 1,
        }],
        vec![Op::Recv { from: 0, tag: 2 }], // wrong tag
    ];
    let err = simulate(&progs, &place(2), &fabric()).unwrap_err();
    assert_eq!(err.stuck_ranks(), vec![1]);
    // The diagnosis names the pending op and its peer.
    let SimError::Deadlock(report) = err else {
        panic!("expected deadlock, got {err:?}");
    };
    assert_eq!(report.stuck[0].pc, 0);
    assert_eq!(report.stuck[0].op, Op::Recv { from: 0, tag: 2 });
    assert_eq!(report.stuck[0].waiting_on, Some(0));
}

#[test]
fn wrong_source_deadlocks() {
    let progs = vec![
        vec![Op::Send {
            to: 2,
            bytes: 64,
            tag: 0,
        }],
        vec![],
        vec![Op::Recv { from: 1, tag: 0 }], // message came from 0, not 1
    ];
    let err = simulate(&progs, &place(3), &fabric()).unwrap_err();
    assert_eq!(err.stuck_ranks(), vec![2]);
}

#[test]
fn missing_collective_participant_deadlocks_everyone_at_the_barrier() {
    let progs = vec![
        vec![Op::Barrier],
        vec![Op::Barrier],
        vec![Op::Recv { from: 0, tag: 9 }], // never reaches the barrier
    ];
    let err = simulate(&progs, &place(3), &fabric()).unwrap_err();
    let stuck = err.stuck_ranks();
    assert!(stuck.contains(&2));
    assert!(stuck.len() == 3, "{stuck:?}");
    // Ranks 0/1 are blocked at the barrier (no peer); rank 2 waits on 0.
    let SimError::Deadlock(report) = err else {
        panic!("expected deadlock, got {err:?}");
    };
    assert_eq!(report.stuck[0].op, Op::Barrier);
    assert_eq!(report.stuck[0].waiting_on, None);
    assert_eq!(report.stuck[2].waiting_on, Some(0));
}

#[test]
fn three_cycle_of_receives_is_detected() {
    let progs = vec![
        vec![
            Op::Recv { from: 2, tag: 0 },
            Op::Send {
                to: 1,
                bytes: 8,
                tag: 0,
            },
        ],
        vec![
            Op::Recv { from: 0, tag: 0 },
            Op::Send {
                to: 2,
                bytes: 8,
                tag: 0,
            },
        ],
        vec![
            Op::Recv { from: 1, tag: 0 },
            Op::Send {
                to: 0,
                bytes: 8,
                tag: 0,
            },
        ],
    ];
    let err = simulate(&progs, &place(3), &fabric()).unwrap_err();
    assert_eq!(err.stuck_ranks(), vec![0, 1, 2]);
    // Every rank is stuck at pc 0 waiting on its upstream neighbour —
    // the cycle is visible in the diagnosis.
    let SimError::Deadlock(report) = err else {
        panic!("expected deadlock, got {err:?}");
    };
    let peers: Vec<Option<usize>> = report.stuck.iter().map(|p| p.waiting_on).collect();
    assert_eq!(peers, vec![Some(2), Some(0), Some(1)]);
    assert!(report.stuck.iter().all(|p| p.pc == 0));
}

#[test]
fn extra_unconsumed_messages_are_harmless() {
    // Eager sends with no matching receive complete locally — the run
    // finishes and the receiver simply never reads them.
    let progs = vec![
        vec![
            Op::Send {
                to: 1,
                bytes: 1 << 20,
                tag: 5,
            },
            Op::Compute(0.1),
        ],
        vec![Op::Compute(0.2)],
    ];
    let out = simulate(&progs, &place(2), &fabric()).unwrap();
    assert!((out.makespan - 0.2).abs() < 1e-6);
}

#[test]
fn self_messages_round_trip() {
    let progs = vec![vec![
        Op::Send {
            to: 0,
            bytes: 4096,
            tag: 3,
        },
        Op::Recv { from: 0, tag: 3 },
    ]];
    let out = simulate(&progs, &place(1), &fabric()).unwrap();
    assert!(out.makespan > 0.0);
}

#[test]
fn placement_mismatch_is_typed_not_a_panic() {
    let progs = vec![vec![Op::Compute(1.0)]; 3];
    let err = simulate(&progs, &place(2), &fabric()).unwrap_err();
    assert_eq!(
        err,
        SimError::PlacementMismatch {
            programs: 3,
            placements: 2
        }
    );
}

#[test]
fn deadlock_display_reads_like_a_diagnosis() {
    let progs = vec![
        vec![Op::Recv { from: 1, tag: 0 }],
        vec![Op::Recv { from: 0, tag: 0 }],
    ];
    let err = simulate(&progs, &place(2), &fabric()).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("stuck ranks: [0, 1]"), "{msg}");
    assert!(msg.contains("rank 0 at pc 0"), "{msg}");
    assert!(msg.contains("waiting on rank 1"), "{msg}");
}

#[test]
fn deadlock_diagnosis_survives_faults() {
    // A fault plan must not mask a genuine deadlock.
    let progs = vec![
        vec![Op::Recv { from: 1, tag: 0 }],
        vec![Op::Recv { from: 0, tag: 0 }],
    ];
    let plan = FaultPlan::with_drops(9, 0.4);
    let err = simulate_with_faults(&progs, &place(2), &fabric(), &plan).unwrap_err();
    assert_eq!(err.stuck_ranks(), vec![0, 1]);
}

#[test]
fn watchdog_timeout_is_typed() {
    let progs = vec![vec![Op::Compute(1e-6); 100]; 4];
    let plan = FaultPlan::none().with_event_budget(10);
    let err = simulate_with_faults(&progs, &place(4), &fabric(), &plan).unwrap_err();
    assert!(matches!(err, SimError::WatchdogTimeout { budget: 10, .. }));
    assert!(err.to_string().contains("watchdog"));
}

#[test]
fn connection_exhaustion_under_fail_policy_is_typed() {
    // 16 procs/node over 4 nodes need 16²·3 = 768 connections; allow
    // one card of 512.
    let cfg = ClusterConfig::uniform(NodeKind::Bx2b, 4);
    let f = ClusterFabric::new(cfg, InterNodeFabric::InfiniBand, MptVersion::Beta, 64);
    let cpus: Vec<CpuId> = (0..64u32).map(|i| CpuId::new(i / 16, i % 16)).collect();
    let progs: Vec<Vec<Op>> = (0..64)
        .map(|r| {
            vec![
                Op::Send {
                    to: (r + 1) % 64,
                    bytes: 64,
                    tag: 0,
                },
                Op::Recv {
                    from: (r + 63) % 64,
                    tag: 0,
                },
            ]
        })
        .collect();
    let plan = FaultPlan::none().with_connection_limit(ConnectionLimit {
        cards_per_node: 1,
        connections_per_card: 512,
        policy: ConnectionPolicy::Fail,
    });
    let err = simulate_with_faults(&progs, &cpus, &f, &plan).unwrap_err();
    let SimError::ConnectionsExhausted {
        required,
        available,
        ..
    } = err
    else {
        panic!("expected exhaustion, got {err:?}");
    };
    assert_eq!(required, 768);
    assert_eq!(available, 512);
}
