//! Property-based tests over the discrete-event engine and fabrics.

use columbia_machine::cluster::{ClusterConfig, CpuId, InterNodeFabric};
use columbia_machine::node::NodeKind;
use columbia_simnet::fabric::{CachedFabric, ClusterFabric, Fabric, MptVersion};
use columbia_simnet::obs::{RecordingTracer, Track};
use columbia_simnet::program::{ByteRule, Peer, ProgramSet, SpmdOp};
use columbia_simnet::{
    simulate, simulate_on, simulate_traced, simulate_with_faults, FaultPlan, Op,
};
use proptest::prelude::*;

fn fabric() -> ClusterFabric {
    ClusterFabric::single_node(ClusterConfig::uniform(NodeKind::Bx2b, 1))
}

/// Ring of compute + send/recv, the canonical fault-injection workload.
fn ring(n: usize, bytes: u64, compute: f64) -> Vec<Vec<Op>> {
    (0..n)
        .map(|r| {
            vec![
                Op::Compute(compute * (1.0 + r as f64)),
                Op::Send {
                    to: (r + 1) % n,
                    bytes,
                    tag: 1,
                },
                Op::Recv {
                    from: (r + n - 1) % n,
                    tag: 1,
                },
            ]
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn compute_only_programs_never_deadlock_and_sum_exactly(
        times in prop::collection::vec(
            prop::collection::vec(1e-6f64..1e-2, 1..6),
            1..12,
        ),
    ) {
        let programs: Vec<Vec<Op>> = times
            .iter()
            .map(|ts| ts.iter().map(|&t| Op::Compute(t)).collect())
            .collect();
        let cpus: Vec<CpuId> = (0..programs.len() as u32).map(|c| CpuId::new(0, c)).collect();
        let out = simulate(&programs, &cpus, &fabric()).unwrap();
        for (r, ts) in out.ranks.iter().zip(&times) {
            let want: f64 = ts.iter().sum();
            prop_assert!((r.total - want).abs() < 1e-12);
            prop_assert_eq!(r.comm, 0.0);
        }
    }

    #[test]
    fn matched_send_recv_pairs_always_complete(
        n in 2usize..16,
        bytes in 1u64..1_000_000,
        compute in 1e-6f64..1e-3,
    ) {
        // Every rank sends to the next and receives from the previous
        // (posted sends-first, so any order completes).
        let programs: Vec<Vec<Op>> = (0..n)
            .map(|r| {
                vec![
                    Op::Compute(compute * (1.0 + r as f64)),
                    Op::Send { to: (r + 1) % n, bytes, tag: 1 },
                    Op::Recv { from: (r + n - 1) % n, tag: 1 },
                ]
            })
            .collect();
        let cpus: Vec<CpuId> = (0..n as u32).map(|c| CpuId::new(0, c)).collect();
        let out = simulate(&programs, &cpus, &fabric()).unwrap();
        prop_assert!(out.makespan >= compute * n as f64); // slowest compute
        for r in &out.ranks {
            prop_assert!(r.comm >= 0.0);
            prop_assert!(r.total >= r.compute);
        }
    }

    #[test]
    fn barriers_always_align_clocks(
        times in prop::collection::vec(1e-6f64..1e-2, 2..20),
    ) {
        let programs: Vec<Vec<Op>> = times
            .iter()
            .map(|&t| vec![Op::Compute(t), Op::Barrier])
            .collect();
        let cpus: Vec<CpuId> = (0..programs.len() as u32).map(|c| CpuId::new(0, c)).collect();
        let out = simulate(&programs, &cpus, &fabric()).unwrap();
        let t0 = out.ranks[0].total;
        for r in &out.ranks {
            prop_assert!((r.total - t0).abs() < 1e-15);
        }
        let max_compute = times.iter().cloned().fold(0.0f64, f64::max);
        prop_assert!(t0 >= max_compute);
    }

    #[test]
    fn fabric_costs_are_positive_and_monotone_in_size(
        a in 0u32..512,
        b in 0u32..512,
        small in 1u64..10_000,
        extra in 1u64..10_000_000,
    ) {
        let f = fabric();
        let (ca, cb) = (CpuId::new(0, a), CpuId::new(0, b));
        if a != b {
            let lat = f.latency(ca, cb);
            prop_assert!(lat > 0.0);
            let t_small = f.pt2pt_time(ca, cb, small);
            let t_big = f.pt2pt_time(ca, cb, small + extra);
            prop_assert!(t_big > t_small);
        }
    }

    #[test]
    fn latency_is_symmetric(a in 0u32..512, b in 0u32..512) {
        let f = fabric();
        let (ca, cb) = (CpuId::new(0, a), CpuId::new(0, b));
        let ab = f.latency(ca, cb);
        let ba = f.latency(cb, ca);
        prop_assert!((ab - ba).abs() < 1e-15);
    }

    #[test]
    fn zero_fault_plan_is_bitwise_identical_to_baseline(
        n in 2usize..16,
        bytes in 1u64..1_000_000,
        compute in 1e-6f64..1e-3,
        seed in 0u64..u64::MAX,
    ) {
        // Whatever the seed, a plan with zero drop probability and no
        // faults must reproduce the fault-free timeline bit for bit.
        let programs = ring(n, bytes, compute);
        let cpus: Vec<CpuId> = (0..n as u32).map(|c| CpuId::new(0, c)).collect();
        let base = simulate(&programs, &cpus, &fabric()).unwrap();
        let plan = FaultPlan::with_drops(seed, 0.0);
        let faulted = simulate_with_faults(&programs, &cpus, &fabric(), &plan).unwrap();
        prop_assert_eq!(base, faulted);
    }

    #[test]
    fn identical_seeds_yield_identical_faulted_runs(
        n in 2usize..16,
        bytes in 1u64..1_000_000,
        seed in 0u64..u64::MAX,
        drop_prob in 0.0f64..0.9,
    ) {
        let programs = ring(n, bytes, 1e-5);
        let cpus: Vec<CpuId> = (0..n as u32).map(|c| CpuId::new(0, c)).collect();
        let plan = FaultPlan::with_drops(seed, drop_prob);
        let a = simulate_with_faults(&programs, &cpus, &fabric(), &plan).unwrap();
        let b = simulate_with_faults(&programs, &cpus, &fabric(), &plan).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn makespan_is_monotone_in_drop_probability(
        n in 2usize..12,
        bytes in 1u64..100_000,
        seed in 0u64..u64::MAX,
        p_lo in 0.0f64..0.4,
        p_extra in 0.0f64..0.5,
    ) {
        // For a fixed seed the dropped-prefix of each message is
        // monotone in the drop probability, so the makespan can only
        // grow as the fault rate rises.
        let programs = ring(n, bytes, 1e-5);
        let cpus: Vec<CpuId> = (0..n as u32).map(|c| CpuId::new(0, c)).collect();
        let lo = simulate_with_faults(
            &programs, &cpus, &fabric(), &FaultPlan::with_drops(seed, p_lo),
        ).unwrap();
        let hi = simulate_with_faults(
            &programs, &cpus, &fabric(), &FaultPlan::with_drops(seed, p_lo + p_extra),
        ).unwrap();
        prop_assert!(hi.makespan >= lo.makespan);
        prop_assert!(hi.faults.drop_events >= lo.faults.drop_events);
    }

    #[test]
    fn recorded_spans_are_monotone_and_account_for_every_second(
        n in 2usize..14,
        bytes in 1u64..500_000,
        compute in 1e-6f64..1e-3,
        seed in 0u64..u64::MAX,
        drop_prob in 0.0f64..0.6,
        with_barrier in prop::sample::select(vec![false, true]),
    ) {
        // The tracer's CPU-track spans must tile each rank's timeline:
        // per-rank monotone, non-overlapping, durations summing to the
        // rank's final clock — under faults and collectives alike.
        let mut programs = ring(n, bytes, compute);
        if with_barrier {
            for p in &mut programs {
                p.push(Op::Barrier);
                p.push(Op::AllReduce { bytes: 128 });
            }
        }
        let cpus: Vec<CpuId> = (0..n as u32).map(|c| CpuId::new(0, c)).collect();
        let plan = FaultPlan::with_drops(seed, drop_prob);
        let mut tracer = RecordingTracer::new();
        let traced = simulate_traced(&programs, &cpus, &fabric(), &plan, &mut tracer).unwrap();
        // Tracing never perturbs the simulation.
        let plain = simulate_with_faults(&programs, &cpus, &fabric(), &plan).unwrap();
        prop_assert_eq!(&plain, &traced);
        for (r, rank) in traced.ranks.iter().enumerate() {
            let mut cursor = 0.0f64;
            let mut sum = 0.0f64;
            for s in tracer.rank_spans(r).filter(|s| s.kind.track() == Track::Cpu) {
                prop_assert!(s.end >= s.start, "negative span {s:?}");
                prop_assert!(
                    s.start >= cursor - 1e-12,
                    "rank {} span {:?} overlaps previous end {}", r, s, cursor
                );
                cursor = s.end;
                sum += s.end - s.start;
            }
            prop_assert!(
                (sum - rank.total).abs() < 1e-9,
                "rank {}: span sum {} != final clock {}", r, sum, rank.total
            );
        }
    }

    #[test]
    fn faults_never_shrink_a_run_below_fault_free(
        n in 2usize..12,
        seed in 0u64..u64::MAX,
        drop_prob in 0.0f64..0.9,
        slowdown in 1.0f64..4.0,
    ) {
        let programs = ring(n, 4096, 1e-5);
        let cpus: Vec<CpuId> = (0..n as u32).map(|c| CpuId::new(0, c)).collect();
        let base = simulate(&programs, &cpus, &fabric()).unwrap();
        let plan = FaultPlan::with_drops(seed, drop_prob)
            .slow_cpu(CpuId::new(0, 0), slowdown);
        let faulted = simulate_with_faults(&programs, &cpus, &fabric(), &plan).unwrap();
        prop_assert!(faulted.makespan >= base.makespan);
    }

    #[test]
    fn cached_fabric_is_bitwise_identical_to_cluster_fabric(
        kind in prop::sample::select(vec![NodeKind::Altix3700, NodeKind::Bx2a, NodeKind::Bx2b]),
        n_nodes in 1u32..5,
        inter in prop::sample::select(vec![
            InterNodeFabric::NumaLink4,
            InterNodeFabric::InfiniBand,
        ]),
        mpt in prop::sample::select(vec![MptVersion::Released, MptVersion::Beta]),
        sa in 0u32..512,
        sb in 0u32..512,
        na in 0u32..5,
        nb in 0u32..5,
        bytes in 1u64..10_000_000,
    ) {
        // The pair-class cache must reproduce every point cost exactly —
        // same bits, not just close — across node kinds, inter-node
        // fabrics, and MPT versions, for in-node and cross-node pairs.
        let direct = ClusterFabric::new(
            ClusterConfig::uniform(kind, n_nodes),
            inter,
            mpt,
            n_nodes * 512,
        );
        let cached = CachedFabric::new(direct.clone());
        let a = CpuId::new(na % n_nodes, sa);
        let b = CpuId::new(nb % n_nodes, sb);
        prop_assert_eq!(cached.latency(a, b).to_bits(), direct.latency(a, b).to_bits());
        prop_assert_eq!(cached.bandwidth(a, b).to_bits(), direct.bandwidth(a, b).to_bits());
        prop_assert_eq!(
            cached.pt2pt_time(a, b, bytes).to_bits(),
            direct.pt2pt_time(a, b, bytes).to_bits()
        );
    }

    #[test]
    fn spmd_cached_static_engine_matches_per_rank_dyn_uncached(
        half in 1usize..12,
        bytes in 1u64..200_000,
        compute in 1e-6f64..1e-3,
        seed in 0u64..u64::MAX,
        drop_prob in 0.0f64..0.5,
        root_pick in 0usize..24,
    ) {
        // The whole fast path at once — compact SPMD programs on a
        // CachedFabric through the statically dispatched engine — must
        // be bit-identical to materialized per-rank programs on the
        // uncached fabric through dynamic dispatch, fault plans and all.
        let n = 2 * half; // even, so Xor(1) pairs every rank
        let template = vec![
            SpmdOp::Compute(compute),
            SpmdOp::Send {
                to: Peer::RingOffset(1),
                bytes: ByteRule::RankScaled { base: bytes, step: 64 },
                tag: 7,
            },
            SpmdOp::Recv { from: Peer::RingOffset(-1), tag: 7 },
            SpmdOp::Exchange { with: Peer::Xor(1), bytes: ByteRule::Uniform(bytes), tag: 9 },
            SpmdOp::AllReduce { bytes: 256 },
            SpmdOp::Bcast { root: root_pick % n, bytes },
            SpmdOp::Barrier,
        ];
        let set = ProgramSet::spmd(n, template);
        let direct = ClusterFabric::new(
            ClusterConfig::uniform(NodeKind::Bx2b, 2),
            InterNodeFabric::InfiniBand,
            MptVersion::Released,
            n as u32,
        );
        let cached = CachedFabric::new(direct.clone());
        let cpus: Vec<CpuId> = (0..n)
            .map(|r| CpuId::new((r % 2) as u32, (r / 2) as u32))
            .collect();
        let plan = FaultPlan::with_drops(seed, drop_prob);
        let fast = simulate_on(&set, &cpus, &cached, &plan).unwrap();
        let slow = simulate_with_faults(&set.materialize(), &cpus, &direct, &plan).unwrap();
        prop_assert_eq!(fast, slow);
    }
}
