//! Fault injection and graceful degradation for the simulated fabric.
//!
//! A [`FaultPlan`] is a seeded, deterministic description of what is
//! wrong with the machine during a run:
//!
//! * **message drops** — each point-to-point message may be dropped
//!   with probability [`FaultPlan::drop_prob`] and retransmitted after
//!   an exponentially backed-off timeout ([`RetransmitPolicy`]);
//! * **link faults** — a node-pair link can be [`LinkState::Degraded`]
//!   (latency/bandwidth factors) or [`LinkState::Down`] (traffic takes
//!   a reroute penalty), applied by wrapping the fabric in a
//!   [`FaultyFabric`];
//! * **CPU/brick slowdowns** — individual CPUs or whole nodes compute
//!   slower by a factor ([`CpuSlowdown`]);
//! * **connection exhaustion** — the §2 InfiniBand connection-limit
//!   formula is enforced per node ([`ConnectionLimit`]); an
//!   over-committed placement either fails with
//!   [`crate::error::SimError::ConnectionsExhausted`] or gracefully
//!   falls back to connection multiplexing with a queuing penalty;
//! * **event budget** — a watchdog bound on scheduler events that turns
//!   a livelocked run into a structured
//!   [`crate::error::SimError::WatchdogTimeout`].
//!
//! Everything is a pure function of the plan (including its `seed`):
//! the same plan over the same programs yields bit-identical timelines,
//! and the all-defaults plan ([`FaultPlan::none`]) is bit-identical to
//! a fault-free simulation. Drop decisions are keyed by message
//! identity `(from, to, tag, seq)` rather than by arrival order, so
//! they are independent of scheduling.

use columbia_machine::cluster::{CpuId, NodeId};

use crate::fabric::Fabric;

/// Reroute penalty on a [`LinkState::Down`] link: traffic detours
/// through the switch's longer alternate path.
pub const DOWN_LINK_LATENCY_FACTOR: f64 = 4.0;

/// Bandwidth fraction surviving a downed link's detour.
pub const DOWN_LINK_BANDWIDTH_FACTOR: f64 = 0.25;

/// Health of one inter-node link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LinkState {
    /// The link works but slower: latency multiplied, bandwidth scaled.
    Degraded {
        /// Latency multiplier (≥ 1).
        latency_factor: f64,
        /// Bandwidth multiplier (0 < f ≤ 1).
        bandwidth_factor: f64,
    },
    /// The link is out; traffic reroutes with fixed penalty factors.
    Down,
}

impl LinkState {
    /// Latency multiplier this state applies.
    pub fn latency_factor(self) -> f64 {
        match self {
            LinkState::Degraded { latency_factor, .. } => latency_factor,
            LinkState::Down => DOWN_LINK_LATENCY_FACTOR,
        }
    }

    /// Bandwidth multiplier this state applies.
    pub fn bandwidth_factor(self) -> f64 {
        match self {
            LinkState::Degraded {
                bandwidth_factor, ..
            } => bandwidth_factor,
            LinkState::Down => DOWN_LINK_BANDWIDTH_FACTOR,
        }
    }
}

/// A fault on the link between two nodes (symmetric).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFault {
    /// One endpoint node.
    pub a: NodeId,
    /// The other endpoint node.
    pub b: NodeId,
    /// What is wrong with the link.
    pub state: LinkState,
}

/// A slow CPU or brick: matching compute phases take `factor`× longer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuSlowdown {
    /// Node the slowdown lives in.
    pub node: NodeId,
    /// Specific CPU, or `None` for the whole node (brick-level fault).
    pub cpu: Option<u32>,
    /// Compute-time multiplier (≥ 1).
    pub factor: f64,
}

/// Timeout-and-retransmit behaviour for dropped messages.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetransmitPolicy {
    /// Seconds before the first retransmission.
    pub timeout: f64,
    /// Multiplier applied to the timeout after each further drop.
    pub backoff: f64,
    /// Maximum retransmissions per message; the message always gets
    /// through on (at latest) the attempt after the last retry.
    pub max_retries: u32,
}

impl Default for RetransmitPolicy {
    fn default() -> Self {
        // IB-scale: 100 µs base timeout, doubling, up to 6 retries.
        RetransmitPolicy {
            timeout: 100.0e-6,
            backoff: 2.0,
            max_retries: 6,
        }
    }
}

/// What to do when a node's placement exceeds its connection budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConnectionPolicy {
    /// Report [`crate::error::SimError::ConnectionsExhausted`].
    Fail,
    /// Multiplex connections: every inter-node message queues behind
    /// the shared contexts, paying `queue_penalty × (oversubscription
    /// − 1)` seconds.
    Multiplex {
        /// Seconds of queuing per unit of oversubscription.
        queue_penalty: f64,
    },
}

/// Per-node InfiniBand connection budget (the paper's §2 constraint:
/// a node running `p` pure-MPI processes across `n` nodes needs
/// `p²(n−1)` connections out of `cards × connections_per_card`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConnectionLimit {
    /// InfiniBand cards per node.
    pub cards_per_node: u32,
    /// Connections each card supports.
    pub connections_per_card: u64,
    /// Behaviour when the budget is exceeded.
    pub policy: ConnectionPolicy,
}

impl ConnectionLimit {
    /// Total connections a node's cards provide.
    pub fn budget(&self) -> u64 {
        self.cards_per_node as u64 * self.connections_per_card
    }
}

/// Default queuing penalty per unit of connection oversubscription.
pub const DEFAULT_MULTIPLEX_QUEUE_PENALTY: f64 = 2.0e-6;

/// A complete, deterministic description of the faults active during
/// one simulated run.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for every sampled decision (message drops).
    pub seed: u64,
    /// Per-message drop probability in `[0, 1)`.
    pub drop_prob: f64,
    /// Timeout/backoff behaviour for dropped messages.
    pub retransmit: RetransmitPolicy,
    /// Degraded or downed inter-node links.
    pub link_faults: Vec<LinkFault>,
    /// Slow CPUs or bricks.
    pub cpu_slowdowns: Vec<CpuSlowdown>,
    /// InfiniBand connection budget to enforce, if any.
    pub connection_limit: Option<ConnectionLimit>,
    /// Scheduler-event watchdog budget; `None` derives a generous bound
    /// from the program size.
    pub event_budget: Option<u64>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// The fault-free plan: simulations under it are bit-identical to
    /// [`crate::engine::simulate`].
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            drop_prob: 0.0,
            retransmit: RetransmitPolicy::default(),
            link_faults: Vec::new(),
            cpu_slowdowns: Vec::new(),
            connection_limit: None,
            event_budget: None,
        }
    }

    /// A plan that only drops messages, with the given seed.
    pub fn with_drops(seed: u64, drop_prob: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&drop_prob),
            "drop_prob must be in [0,1)"
        );
        FaultPlan {
            seed,
            drop_prob,
            ..FaultPlan::none()
        }
    }

    /// Add a degraded link between `a` and `b`.
    pub fn degrade_link(
        mut self,
        a: NodeId,
        b: NodeId,
        latency_factor: f64,
        bandwidth_factor: f64,
    ) -> Self {
        assert!(latency_factor >= 1.0 && bandwidth_factor > 0.0 && bandwidth_factor <= 1.0);
        self.link_faults.push(LinkFault {
            a,
            b,
            state: LinkState::Degraded {
                latency_factor,
                bandwidth_factor,
            },
        });
        self
    }

    /// Take the link between `a` and `b` down entirely.
    pub fn fail_link(mut self, a: NodeId, b: NodeId) -> Self {
        self.link_faults.push(LinkFault {
            a,
            b,
            state: LinkState::Down,
        });
        self
    }

    /// Slow one CPU by `factor`.
    pub fn slow_cpu(mut self, cpu: CpuId, factor: f64) -> Self {
        assert!(factor >= 1.0);
        self.cpu_slowdowns.push(CpuSlowdown {
            node: cpu.node,
            cpu: Some(cpu.cpu),
            factor,
        });
        self
    }

    /// Slow every CPU of `node` by `factor` (a brick-level fault).
    pub fn slow_node(mut self, node: NodeId, factor: f64) -> Self {
        assert!(factor >= 1.0);
        self.cpu_slowdowns.push(CpuSlowdown {
            node,
            cpu: None,
            factor,
        });
        self
    }

    /// Enforce a connection budget.
    pub fn with_connection_limit(mut self, limit: ConnectionLimit) -> Self {
        self.connection_limit = Some(limit);
        self
    }

    /// Set the watchdog event budget.
    pub fn with_event_budget(mut self, budget: u64) -> Self {
        self.event_budget = Some(budget);
        self
    }

    /// Compute-time multiplier for a CPU (product of matching faults).
    pub fn compute_factor(&self, cpu: CpuId) -> f64 {
        let mut f = 1.0;
        for s in &self.cpu_slowdowns {
            if s.node == cpu.node && s.cpu.map(|c| c == cpu.cpu).unwrap_or(true) {
                f *= s.factor;
            }
        }
        f
    }

    /// The fault state of the link between two nodes, if any.
    pub fn link_state(&self, a: NodeId, b: NodeId) -> Option<LinkState> {
        self.link_faults
            .iter()
            .find(|l| (l.a == a && l.b == b) || (l.a == b && l.b == a))
            .map(|l| l.state)
    }

    /// Whether any link in the plan is faulted.
    pub fn has_link_faults(&self) -> bool {
        !self.link_faults.is_empty()
    }

    /// Number of consecutive drops message `(from, to, tag, seq)`
    /// suffers before getting through — a pure function of the plan,
    /// independent of scheduling. Monotone in [`FaultPlan::drop_prob`]:
    /// raising the probability can only lengthen the drop prefix.
    pub fn drops_for_message(&self, from: usize, to: usize, tag: u64, seq: u64) -> u32 {
        if self.drop_prob <= 0.0 {
            return 0;
        }
        let mut drops = 0;
        while drops < self.retransmit.max_retries {
            let u = unit_hash(self.seed, [from as u64, to as u64, tag, seq, drops as u64]);
            if u >= self.drop_prob {
                break;
            }
            drops += 1;
        }
        drops
    }

    /// Seconds of retransmission delay for a message dropped `drops`
    /// consecutive times: `Σ timeout × backoff^i`.
    pub fn retransmit_delay(&self, drops: u32) -> f64 {
        let mut delay = 0.0;
        let mut t = self.retransmit.timeout;
        for _ in 0..drops {
            delay += t;
            t *= self.retransmit.backoff;
        }
        delay
    }
}

/// Deterministic hash of `words` under `seed`, mapped to `[0, 1)`.
fn unit_hash(seed: u64, words: [u64; 5]) -> f64 {
    let mut h = seed ^ 0x9E37_79B9_7F4A_7C15;
    for w in words {
        h ^= w.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        h = h.rotate_left(27).wrapping_mul(0x94D0_49BB_1331_11EB);
    }
    h ^= h >> 33;
    h = h.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    h ^= h >> 33;
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Observability counters accumulated while simulating under a plan.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultStats {
    /// Messages dropped at least once (retransmissions, not copies).
    pub dropped_messages: u64,
    /// Total drop events (a message dropped twice counts twice).
    pub drop_events: u64,
    /// Seconds of arrival delay added by retransmissions, summed over
    /// messages.
    pub retransmit_delay: f64,
    /// Inter-node messages that queued behind multiplexed connections.
    pub multiplexed_messages: u64,
    /// Seconds of queuing delay added by connection multiplexing.
    pub multiplex_delay: f64,
    /// Worst per-node connection oversubscription ratio
    /// (`required / available`; 0 when no limit was enforced).
    pub oversubscription: f64,
    /// Scheduler events consumed (what the watchdog meters).
    pub events: u64,
}

impl FaultStats {
    /// Whether the run saw any fault activity at all.
    pub fn any(&self) -> bool {
        self.dropped_messages > 0 || self.multiplexed_messages > 0 || self.oversubscription > 1.0
    }
}

/// A [`Fabric`] view with the plan's link faults applied.
///
/// Wraps an inner fabric; only node pairs named by a fault change, so
/// under a plan without link faults the wrapper is cost-transparent
/// (multiplications by 1.0 preserve bit-identity).
///
/// Generic over the inner fabric type (defaulting to `dyn Fabric` for
/// the public dynamic entry points) so the engine's statically-typed
/// path monomorphizes the per-message cost calls away.
pub struct FaultyFabric<'a, F: Fabric + ?Sized = dyn Fabric> {
    inner: &'a F,
    plan: &'a FaultPlan,
}

impl<'a, F: Fabric + ?Sized> FaultyFabric<'a, F> {
    /// View `inner` through `plan`'s link faults.
    pub fn new(inner: &'a F, plan: &'a FaultPlan) -> Self {
        FaultyFabric { inner, plan }
    }
}

impl<F: Fabric + ?Sized> Fabric for FaultyFabric<'_, F> {
    fn latency(&self, src: CpuId, dst: CpuId) -> f64 {
        let base = self.inner.latency(src, dst);
        if src.node == dst.node {
            return base;
        }
        match self.plan.link_state(src.node, dst.node) {
            Some(state) => base * state.latency_factor(),
            None => base,
        }
    }

    fn bandwidth(&self, src: CpuId, dst: CpuId) -> f64 {
        let base = self.inner.bandwidth(src, dst);
        if src.node == dst.node {
            return base;
        }
        match self.plan.link_state(src.node, dst.node) {
            Some(state) => base * state.bandwidth_factor(),
            None => base,
        }
    }

    fn internode_contention(&self, flows: u32) -> f64 {
        self.inner.internode_contention(flows)
    }

    fn min_cross_node_latency(&self, cpus: &[CpuId]) -> Option<f64> {
        // Link faults only multiply latencies by factors ≥ 1, so the
        // inner fabric's lower bound stays conservative under faults.
        self.inner.min_cross_node_latency(cpus)
    }

    fn alltoall_bandwidth(&self, cpus: &[CpuId]) -> f64 {
        let base = self.inner.alltoall_bandwidth(cpus);
        // A degraded link throttles the collective to its worst leg.
        let worst = cpus
            .iter()
            .flat_map(|a| cpus.iter().map(move |b| (a, b)))
            .filter(|(a, b)| a.node != b.node)
            .filter_map(|(a, b)| self.plan.link_state(a.node, b.node))
            .map(LinkState::bandwidth_factor)
            .fold(1.0, f64::min);
        base * worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::ClusterFabric;
    use crate::fabric::MptVersion;
    use columbia_machine::cluster::{ClusterConfig, InterNodeFabric};
    use columbia_machine::node::NodeKind;

    #[test]
    fn none_plan_is_inert() {
        let plan = FaultPlan::none();
        assert_eq!(plan.drops_for_message(0, 1, 7, 0), 0);
        assert_eq!(plan.compute_factor(CpuId::new(0, 3)), 1.0);
        assert!(plan.link_state(NodeId(0), NodeId(1)).is_none());
        assert_eq!(plan.retransmit_delay(0), 0.0);
    }

    #[test]
    fn drops_are_deterministic_and_seed_dependent() {
        let a = FaultPlan::with_drops(7, 0.3);
        let b = FaultPlan::with_drops(7, 0.3);
        let c = FaultPlan::with_drops(8, 0.3);
        let mut differs = false;
        for seq in 0..64 {
            assert_eq!(
                a.drops_for_message(0, 1, 5, seq),
                b.drops_for_message(0, 1, 5, seq)
            );
            if a.drops_for_message(0, 1, 5, seq) != c.drops_for_message(0, 1, 5, seq) {
                differs = true;
            }
        }
        assert!(differs, "different seeds should drop different messages");
    }

    #[test]
    fn drop_count_is_monotone_in_probability() {
        let lo = FaultPlan::with_drops(3, 0.05);
        let hi = FaultPlan::with_drops(3, 0.5);
        for seq in 0..256 {
            assert!(
                lo.drops_for_message(2, 5, 1, seq) <= hi.drops_for_message(2, 5, 1, seq),
                "seq {seq}"
            );
        }
    }

    #[test]
    fn drop_rate_tracks_probability() {
        let plan = FaultPlan::with_drops(42, 0.25);
        let dropped = (0..4000)
            .filter(|&seq| plan.drops_for_message(0, 1, 0, seq) > 0)
            .count();
        let rate = dropped as f64 / 4000.0;
        assert!((rate - 0.25).abs() < 0.03, "rate={rate}");
    }

    #[test]
    fn retransmit_delay_backs_off_exponentially() {
        let plan = FaultPlan::none();
        let t = plan.retransmit.timeout;
        assert!((plan.retransmit_delay(1) - t).abs() < 1e-18);
        assert!((plan.retransmit_delay(2) - 3.0 * t).abs() < 1e-18);
        assert!((plan.retransmit_delay(3) - 7.0 * t).abs() < 1e-18);
    }

    #[test]
    fn slowdowns_compose_and_scope() {
        let plan = FaultPlan::none()
            .slow_node(NodeId(1), 2.0)
            .slow_cpu(CpuId::new(1, 4), 1.5);
        assert_eq!(plan.compute_factor(CpuId::new(0, 4)), 1.0);
        assert_eq!(plan.compute_factor(CpuId::new(1, 0)), 2.0);
        assert_eq!(plan.compute_factor(CpuId::new(1, 4)), 3.0);
    }

    #[test]
    fn faulty_fabric_degrades_only_named_links() {
        let cfg = ClusterConfig::uniform(NodeKind::Bx2b, 3);
        let inner = ClusterFabric::new(cfg, InterNodeFabric::NumaLink4, MptVersion::Beta, 1536);
        let plan = FaultPlan::none().degrade_link(NodeId(0), NodeId(1), 3.0, 0.5);
        let faulty = FaultyFabric::new(&inner, &plan);
        let (a, b, c) = (CpuId::new(0, 0), CpuId::new(1, 0), CpuId::new(2, 0));
        assert!((faulty.latency(a, b) - 3.0 * inner.latency(a, b)).abs() < 1e-15);
        assert!((faulty.bandwidth(a, b) - 0.5 * inner.bandwidth(a, b)).abs() < 1e-3);
        // Symmetric, and other links untouched.
        assert_eq!(faulty.latency(b, a), faulty.latency(a, b));
        assert_eq!(faulty.latency(a, c), inner.latency(a, c));
        assert_eq!(faulty.bandwidth(a, a), inner.bandwidth(a, a));
    }

    #[test]
    fn down_link_is_worse_than_degraded() {
        let cfg = ClusterConfig::uniform(NodeKind::Bx2b, 2);
        let inner = ClusterFabric::new(cfg, InterNodeFabric::NumaLink4, MptVersion::Beta, 1024);
        let degraded = FaultPlan::none().degrade_link(NodeId(0), NodeId(1), 1.5, 0.9);
        let down = FaultPlan::none().fail_link(NodeId(0), NodeId(1));
        let (a, b) = (CpuId::new(0, 0), CpuId::new(1, 0));
        let fd = FaultyFabric::new(&inner, &degraded);
        let fx = FaultyFabric::new(&inner, &down);
        assert!(fx.latency(a, b) > fd.latency(a, b));
        assert!(fx.bandwidth(a, b) < fd.bandwidth(a, b));
    }

    #[test]
    fn connection_budget_math() {
        let limit = ConnectionLimit {
            cards_per_node: 8,
            connections_per_card: 64 * 1024,
            policy: ConnectionPolicy::Fail,
        };
        assert_eq!(limit.budget(), 524_288);
    }
}
