//! Conservative parallel discrete-event simulation (PDES) of a single
//! run, bit-identical to the serial engine.
//!
//! PR 3 parallelized *across* sweep points; this tier parallelizes
//! *within* one simulation. Ranks are partitioned by node (the same
//! node map `runtime::placement` computes — the engine reads it off
//! `cpus[r].node`), and each partition gets its own runnable queue,
//! rank states, and mailbox, so a partition can execute its ranks'
//! programs without touching any other partition's state.
//!
//! **Lookahead.** Parallelizing is sound because the fabric guarantees
//! a minimum cross-node latency `L > 0`
//! ([`Fabric::min_cross_node_latency`], served from `CachedFabric`'s
//! pair-class tables): no event on one node can affect another node
//! sooner than `L` after it is posted. Execution proceeds in *window
//! rounds*: within a round every partition runs its ranks until each is
//! blocked on remote input (a receive whose channel is empty, or a
//! collective); at the round barrier the leader advances the global
//! window edge `W = min(blocked clocks) + L`, drains every
//! cross-partition lane — which by then holds *every* message with
//! arrival `< W`, and in fact every message the quiescent partitions
//! can ever produce before new remote input — and resolves any
//! collective all `n` ranks have reached. No partition ever speculates
//! past `W` on state another partition could still change, so no
//! rollback machinery is needed.
//!
//! **Determinism.** Outcomes are bit-identical to the serial engine at
//! any thread count because nothing observable depends on scheduling:
//!
//! * *Matching*: each `(from, to, tag)` channel has exactly one sender,
//!   so its FIFO order is the sender's program order regardless of when
//!   messages are drained; receives pop in receiver program order.
//!   Cross-partition lanes are drained in canonical (sender-partition,
//!   slot) order, which preserves per-channel FIFO.
//! * *Clocks*: a receive completes at `max(receiver clock, arrival)`
//!   and arrival is computed at post time from the sender's clock —
//!   both pure functions of program state. Collective start times are
//!   `max` folds over all clocks (order-independent) or the root's
//!   clock, evaluated identically by the leader.
//! * *Faults*: drop sampling keys off `(from, to, tag, seq)` and the
//!   per-channel `seq` lives with the sender's partition; `f64` fault
//!   sums accumulate per rank and fold in rank order in both engines.
//! * *Traces*: each event has one owner rank and both engines deliver
//!   per-rank streams in program order, merged in rank order (see
//!   `columbia_obs::canon`).
//!
//! The one schedule-dependent quantity is the scheduler-event *count*
//! (`FaultStats::events`, re-examinations of blocked ops) — it is
//! reported for observability, never printed in reports, and documented
//! as engine-dependent. If the summed count crosses the watchdog
//! budget, the run fails with the exact error the serial engine
//! produces (`events = budget + 1` — the serial counter's value at its
//! first violation).
//!
//! **Fallbacks.** With one thread, one populated node, zero ranks, or
//! no usable lookahead (`None` or non-positive), the serial engine *is*
//! the implementation — the parallel entry points delegate to it, so
//! callers can use them unconditionally.
//!
//! Collective op consistency: like MPI, all ranks must issue the same
//! collective sequence. The serial engine reads the op from whichever
//! rank arrives last, the leader here reads it from rank 0; for the
//! globally-consistent sequences every workload in this repo emits,
//! the two are the same op.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};

use columbia_machine::cluster::CpuId;
use columbia_obs::{EventBuffer, NullTracer, Tracer};

use crate::engine::{
    apply_collective_release, apply_compute, charge_send, collective_cost, collective_payload,
    collective_source, connection_check, finish_recv, half_exchange_tag, simulate_generic,
    FaultLedger, Op, RankResult, RankState, SimOutcome,
};
use crate::error::{DeadlockReport, PendingOp, SimError};
use crate::fabric::Fabric;
use crate::fault::{FaultPlan, FaultStats, FaultyFabric};
use crate::mailbox::{IndexedMailbox, MailboxOps};
use crate::program::Programs;

/// Process-global simulation thread count consulted by
/// [`crate::engine::simulate_traced_on`] (and therefore by every
/// statically-dispatched simulation, including the full-Columbia
/// experiment). 1 = serial.
static SIM_THREADS: AtomicUsize = AtomicUsize::new(1);

/// Set the number of threads single-run simulations may use. Values
/// below 1 are clamped to 1 (serial).
pub fn set_sim_threads(n: usize) {
    SIM_THREADS.store(n.max(1), Ordering::Relaxed);
}

/// The current single-run simulation thread count.
pub fn sim_threads() -> usize {
    SIM_THREADS.load(Ordering::Relaxed)
}

/// One staged cross-partition message, parked in a per-partition-pair
/// lane until the round barrier drains it.
#[derive(Debug, Clone, Copy)]
struct Staged {
    from: usize,
    to: usize,
    tag: u64,
    arrival: f64,
}

/// Per-partition staging sink for trace events: the real
/// [`EventBuffer`] when tracing, the [`NullTracer`] (all hooks
/// compile away) when not.
trait StageSink: Tracer + Send {
    fn for_ranks(n: usize) -> Self;
    fn replay_rank_to<T: Tracer + ?Sized>(&self, r: usize, out: &mut T);
}

impl StageSink for NullTracer {
    fn for_ranks(_n: usize) -> Self {
        NullTracer
    }
    fn replay_rank_to<T: Tracer + ?Sized>(&self, _r: usize, _out: &mut T) {}
}

impl StageSink for EventBuffer {
    fn for_ranks(n: usize) -> Self {
        EventBuffer::new(n)
    }
    fn replay_rank_to<T: Tracer + ?Sized>(&self, r: usize, out: &mut T) {
        self.replay_rank(r, out);
    }
}

/// One node's worth of ranks plus everything needed to run them
/// independently between round barriers.
struct Partition<B> {
    /// Global ranks owned, ascending; local index = position here.
    ranks: Vec<usize>,
    states: Vec<RankState>,
    ledgers: Vec<FaultLedger>,
    /// Global-rank-keyed; holds only channels whose *receiver* lives
    /// here (plus this partition's send-sequence counters — each
    /// channel has one sender, and the sender's partition owns its
    /// `seq` space).
    mailbox: IndexedMailbox,
    /// Local indices of runnable ranks.
    runnable: VecDeque<usize>,
    in_queue: Vec<bool>,
    /// Last collective sequence each local rank joined (mirrors the
    /// serial engine's O(1) arrival dedup).
    coll_gen: Vec<usize>,
    /// Local ranks arrived at the current collective frontier.
    coll_arrived: usize,
    /// Outbound lanes, one per destination partition. The `Vec`s are
    /// arena-reused across rounds (drained and handed back with their
    /// capacity), so steady-state staging allocates nothing.
    outbox: Vec<Vec<Staged>>,
    events: u64,
    over_budget: bool,
    /// Per-rank trace staging, merged canonically at the end.
    buf: B,
}

impl<B: StageSink> Partition<B> {
    fn new(n: usize, n_parts: usize) -> Self {
        Partition {
            ranks: Vec::new(),
            states: Vec::new(),
            ledgers: Vec::new(),
            mailbox: IndexedMailbox::with_ranks(n),
            runnable: VecDeque::new(),
            in_queue: Vec::new(),
            coll_gen: Vec::new(),
            coll_arrived: 0,
            outbox: (0..n_parts).map(|_| Vec::new()).collect(),
            events: 0,
            over_budget: false,
            buf: B::for_ranks(n),
        }
    }
}

/// [`crate::engine::simulate_on`] computed by `threads` node-partition
/// workers — same result, bit for bit.
pub fn simulate_parallel_on<P, F>(
    programs: &P,
    cpus: &[CpuId],
    fabric: &F,
    plan: &FaultPlan,
    threads: usize,
) -> Result<SimOutcome, SimError>
where
    P: Programs + ?Sized + Sync,
    F: Fabric + ?Sized + Sync,
{
    simulate_parallel_traced_on(programs, cpus, fabric, plan, &mut NullTracer, threads)
}

/// [`simulate_parallel_on`] under an arbitrary [`Tracer`]; the drained
/// trace stream is byte-identical to the serial engine's.
pub fn simulate_parallel_traced_on<T, P, F>(
    programs: &P,
    cpus: &[CpuId],
    fabric: &F,
    plan: &FaultPlan,
    tracer: &mut T,
    threads: usize,
) -> Result<SimOutcome, SimError>
where
    T: Tracer,
    P: Programs + ?Sized + Sync,
    F: Fabric + ?Sized + Sync,
{
    let n = programs.n_ranks();
    if n != cpus.len() {
        return Err(SimError::PlacementMismatch {
            programs: n,
            placements: cpus.len(),
        });
    }
    // Partition by node: sorted distinct node ids, so the partition map
    // is a pure function of the placement (identical at any thread
    // count).
    let mut nodes: Vec<u32> = cpus.iter().map(|c| c.node.0).collect();
    nodes.sort_unstable();
    nodes.dedup();
    let n_parts = nodes.len();
    let lookahead = fabric.min_cross_node_latency(cpus);
    if threads <= 1 || n == 0 || n_parts <= 1 || !lookahead.is_some_and(|l| l > 0.0) {
        // Degenerate cases (including the zero-lookahead single-window
        // case): the serial engine is the canonical implementation.
        return simulate_generic::<T, IndexedMailbox, P, F>(programs, cpus, fabric, plan, tracer);
    }
    let part_of: Vec<u32> = cpus
        .iter()
        .map(|c| nodes.binary_search(&c.node.0).expect("node present") as u32)
        .collect();
    if tracer.enabled() {
        run_partitioned::<T, P, F, EventBuffer>(
            programs, cpus, fabric, plan, tracer, &part_of, n_parts, threads,
        )
    } else {
        run_partitioned::<T, P, F, NullTracer>(
            programs, cpus, fabric, plan, tracer, &part_of, n_parts, threads,
        )
    }
}

#[allow(clippy::too_many_arguments)]
fn run_partitioned<T, P, F, B>(
    programs: &P,
    cpus: &[CpuId],
    base_fabric: &F,
    plan: &FaultPlan,
    tracer: &mut T,
    part_of: &[u32],
    n_parts: usize,
    threads: usize,
) -> Result<SimOutcome, SimError>
where
    T: Tracer,
    P: Programs + ?Sized + Sync,
    F: Fabric + ?Sized + Sync,
    B: StageSink,
{
    let n = cpus.len();
    let (mux_delay, oversubscription) = connection_check(cpus, plan)?;
    if tracer.enabled() {
        let rank_nodes: Vec<u32> = cpus.iter().map(|c| c.node.0).collect();
        tracer.topology(&rank_nodes);
        if plan.connection_limit.is_some() {
            tracer.gauge("connection_occupancy", oversubscription);
        }
    }
    let faulty = FaultyFabric::new(base_fabric, plan);
    let fabric = &faulty;
    let event_budget = plan
        .event_budget
        .unwrap_or_else(|| 10_000 + 64 * programs.total_ops() as u64);

    let mut partitions: Vec<Partition<B>> =
        (0..n_parts).map(|_| Partition::new(n, n_parts)).collect();
    let mut local_of: Vec<u32> = vec![0; n];
    for r in 0..n {
        let part = &mut partitions[part_of[r] as usize];
        local_of[r] = part.ranks.len() as u32;
        part.ranks.push(r);
    }
    for part in &mut partitions {
        let k = part.ranks.len();
        part.states = (0..k).map(|_| RankState::fresh()).collect();
        part.ledgers = vec![FaultLedger::default(); k];
        part.runnable.extend(0..k);
        part.in_queue = vec![true; k];
        part.coll_gen = vec![usize::MAX; k];
    }
    let local_of = &local_of[..];

    // Window rounds: run every partition to quiescence in parallel,
    // then a single-threaded leader phase drains lanes, resolves
    // collectives, and decides progress. Workers are spawned per round
    // (`std::thread::scope` over contiguous partition chunks) — spawn
    // cost is microseconds against rounds that execute millions of ops.
    let chunk = n_parts.div_ceil(threads.min(n_parts));
    loop {
        std::thread::scope(|scope| {
            for parts in partitions.chunks_mut(chunk) {
                scope.spawn(move || {
                    for part in parts {
                        run_until_blocked(
                            part,
                            programs,
                            cpus,
                            fabric,
                            plan,
                            part_of,
                            local_of,
                            mux_delay,
                            event_budget,
                        );
                    }
                });
            }
        });

        // Watchdog: the serial engine dies with `events = budget + 1`
        // at its first violation; reproduce that exact error when the
        // summed count crosses the budget. (The count itself is the one
        // schedule-dependent statistic, so the trace prefix on this
        // path may differ from serial — outcomes and errors do not.)
        let events: u64 = partitions.iter().map(|p| p.events).sum();
        if events > event_budget || partitions.iter().any(|p| p.over_budget) {
            for r in 0..n {
                partitions[part_of[r] as usize]
                    .buf
                    .replay_rank_to(r, tracer);
            }
            return Err(SimError::WatchdogTimeout {
                events: event_budget + 1,
                budget: event_budget,
            });
        }

        // Drain cross-partition lanes in canonical (sender-partition,
        // slot) order. Every channel has a single sender, so this
        // preserves per-channel FIFO = sender program order — exactly
        // the serial mailbox order.
        for src in 0..n_parts {
            for dst in 0..n_parts {
                if src == dst {
                    continue;
                }
                let mut lane = std::mem::take(&mut partitions[src].outbox[dst]);
                let dst_part = &mut partitions[dst];
                for m in lane.drain(..) {
                    dst_part.mailbox.push(m.from, m.to, m.tag, m.arrival);
                    let li = local_of[m.to] as usize;
                    if !dst_part.in_queue[li] {
                        dst_part.runnable.push_back(li);
                        dst_part.in_queue[li] = true;
                    }
                }
                // Hand the (empty) lane back with its capacity intact.
                partitions[src].outbox[dst] = lane;
            }
        }

        // Window-aligned collective rendezvous: the partition-local O(1)
        // arrival counters sum to `n` exactly when every rank sits at
        // the collective, which is the serial release condition.
        let arrived: usize = partitions.iter().map(|p| p.coll_arrived).sum();
        if arrived == n {
            let pc0 = partitions[part_of[0] as usize].states[local_of[0] as usize].pc;
            let op = programs.op(0, pc0).expect("rank 0 is at a collective");
            let clock_of = |partitions: &[Partition<B>], r: usize| {
                partitions[part_of[r] as usize].states[local_of[r] as usize].clock
            };
            let start = match op {
                Op::Bcast { root, .. } => clock_of(&partitions, root),
                _ => (0..n).map(|r| clock_of(&partitions, r)).fold(0.0, f64::max),
            };
            let cost = collective_cost(op, fabric, cpus);
            let end = start + cost;
            let (coll_src, coll_bytes) = if tracer.enabled() {
                (
                    collective_source(op, (0..n).map(|r| clock_of(&partitions, r))),
                    collective_payload(op),
                )
            } else {
                (0, 0)
            };
            for r in 0..n {
                let part = &mut partitions[part_of[r] as usize];
                let li = local_of[r] as usize;
                apply_collective_release(
                    &mut part.buf,
                    &mut part.states[li],
                    r,
                    start,
                    cost,
                    end,
                    coll_src,
                    coll_bytes,
                );
                if !part.in_queue[li] {
                    part.runnable.push_back(li);
                    part.in_queue[li] = true;
                }
            }
            for part in &mut partitions {
                part.coll_arrived = 0;
            }
        }

        if partitions.iter().all(|p| p.runnable.is_empty()) {
            // Quiescent with nothing drained and no collective ready:
            // the same maximal fixpoint the serial worklist reaches —
            // either everyone finished or this is a genuine deadlock.
            break;
        }
    }

    // Canonical trace merge: per-rank streams are in program order in
    // their owner partition's buffer; replaying in rank order yields
    // the serial engine's canonical stream byte-for-byte.
    for r in 0..n {
        partitions[part_of[r] as usize]
            .buf
            .replay_rank_to(r, tracer);
    }

    let state_of =
        |r: usize| -> &RankState { &partitions[part_of[r] as usize].states[local_of[r] as usize] };
    if (0..n).any(|r| state_of(r).pc < programs.len_of(r)) {
        let stuck: Vec<PendingOp> = (0..n)
            .filter(|&r| state_of(r).pc < programs.len_of(r))
            .map(|r| {
                let pc = state_of(r).pc;
                let op = programs.op(r, pc).expect("pc < len");
                PendingOp {
                    rank: r,
                    pc,
                    waiting_on: op.waiting_on(),
                    op,
                }
            })
            .collect();
        return Err(SimError::Deadlock(DeadlockReport { stuck }));
    }

    let mut stats = FaultStats {
        oversubscription,
        ..FaultStats::default()
    };
    for r in 0..n {
        partitions[part_of[r] as usize].ledgers[local_of[r] as usize].fold_into(&mut stats);
    }
    stats.events = partitions.iter().map(|p| p.events).sum();

    let ranks: Vec<RankResult> = (0..n)
        .map(|r| {
            let s = state_of(r);
            RankResult {
                total: s.clock,
                compute: s.compute,
                comm: s.comm,
            }
        })
        .collect();
    let makespan = ranks.iter().map(|r| r.total).fold(0.0, f64::max);
    Ok(SimOutcome {
        ranks,
        makespan,
        faults: stats,
    })
}

/// Run one partition's worklist until every local rank is blocked on
/// remote input (an empty channel or a collective) or finished — the
/// worker half of a window round. Mirrors the serial engine's main
/// loop op for op, via the same shared helpers.
#[allow(clippy::too_many_arguments)]
fn run_until_blocked<P, F, B>(
    part: &mut Partition<B>,
    programs: &P,
    cpus: &[CpuId],
    fabric: &FaultyFabric<'_, F>,
    plan: &FaultPlan,
    part_of: &[u32],
    local_of: &[u32],
    mux_delay: f64,
    event_budget: u64,
) where
    P: Programs + ?Sized,
    F: Fabric + ?Sized,
    B: StageSink,
{
    let own = part_of[part.ranks[0]];
    while let Some(li) = part.runnable.pop_front() {
        part.in_queue[li] = false;
        let r = part.ranks[li];
        while let Some(op) = programs.op(r, part.states[li].pc) {
            part.events += 1;
            if part.events > event_budget {
                part.over_budget = true;
                return;
            }
            match op {
                Op::Compute(secs) => {
                    apply_compute(
                        &mut part.buf,
                        &mut part.states[li],
                        r,
                        secs * plan.compute_factor(cpus[r]),
                    );
                }
                Op::Send { to, bytes, tag } => {
                    post_send_partitioned(
                        part, fabric, plan, cpus, part_of, local_of, mux_delay, own, li, r, to,
                        bytes, tag,
                    );
                    part.states[li].pc += 1;
                }
                Op::Recv { from, tag } => match part.mailbox.pop(from, r, tag) {
                    Some(arrival) => finish_recv(&mut part.buf, &mut part.states[li], r, arrival),
                    None => break, // blocked: the send is remote or future
                },
                Op::Exchange { with, bytes, tag } => {
                    // Same decomposition as the serial engine: a marker
                    // message-to-self records a completed send half so a
                    // blocked exchange does not double-send on wake-up.
                    let (b, t, w) = (bytes, tag, with);
                    let marker_tag = half_exchange_tag(w, t);
                    let already_sent = part.mailbox.pop(r, r, marker_tag).is_some();
                    if !already_sent {
                        post_send_partitioned(
                            part, fabric, plan, cpus, part_of, local_of, mux_delay, own, li, r, w,
                            b, t,
                        );
                    }
                    match part.mailbox.pop(w, r, t) {
                        Some(arrival) => {
                            finish_recv(&mut part.buf, &mut part.states[li], r, arrival)
                        }
                        None => {
                            part.mailbox.push(r, r, marker_tag, 0.0);
                            break;
                        }
                    }
                }
                Op::Barrier | Op::AllReduce { .. } | Op::AllToAll { .. } | Op::Bcast { .. } => {
                    let seq = part.states[li].coll_seq;
                    if part.coll_gen[li] != seq {
                        part.coll_gen[li] = seq;
                        part.coll_arrived += 1;
                    }
                    // Always blocks here; the leader resolves the
                    // rendezvous at the round barrier once the arrival
                    // counters sum to `n`.
                    break;
                }
            }
        }
    }
}

/// The partitioned Send: price and charge via the shared
/// [`charge_send`], then deliver locally (waking the receiver) or stage
/// into the destination partition's lane. The send-sequence counter
/// always comes from the *sender's* mailbox, so fault sampling sees the
/// serial `(from, to, tag, seq)` identities.
#[allow(clippy::too_many_arguments)]
fn post_send_partitioned<F, B>(
    part: &mut Partition<B>,
    fabric: &FaultyFabric<'_, F>,
    plan: &FaultPlan,
    cpus: &[CpuId],
    part_of: &[u32],
    local_of: &[u32],
    mux_delay: f64,
    own: u32,
    li: usize,
    r: usize,
    to: usize,
    bytes: u64,
    tag: u64,
) where
    F: Fabric + ?Sized,
    B: StageSink,
{
    let seq = part.mailbox.next_seq(r, to, tag);
    let arrival = charge_send(
        &mut part.buf,
        fabric,
        plan,
        cpus,
        mux_delay,
        &mut part.ledgers[li],
        &mut part.states[li],
        r,
        to,
        bytes,
        tag,
        seq,
    );
    if part_of[to] == own {
        part.mailbox.push(r, to, tag, arrival);
        let lt = local_of[to] as usize;
        if !part.in_queue[lt] {
            part.runnable.push_back(lt);
            part.in_queue[lt] = true;
        }
    } else {
        part.outbox[part_of[to] as usize].push(Staged {
            from: r,
            to,
            tag,
            arrival,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::{CachedFabric, ClusterFabric, MptVersion};
    use crate::program::ProgramSet;
    use columbia_machine::cluster::{ClusterConfig, CpuId, InterNodeFabric};
    use columbia_machine::node::NodeKind;
    use columbia_obs::RecordingTracer;

    /// A 4-node InfiniBand cluster with cached pair-class tables — the
    /// smallest fabric that exposes a real cross-node lookahead.
    fn four_node_fabric(ranks: u32) -> CachedFabric {
        let config = ClusterConfig::uniform(NodeKind::Bx2b, 4);
        CachedFabric::new(ClusterFabric::new(
            config,
            InterNodeFabric::InfiniBand,
            MptVersion::Beta,
            ranks,
        ))
    }

    /// `ranks_per_node * 4` CPUs spread over 4 nodes, ranks interleaved
    /// so ring neighbours usually live on different nodes.
    fn cpus_4_nodes(ranks_per_node: u32) -> Vec<CpuId> {
        (0..ranks_per_node * 4)
            .map(|r| CpuId::new(r % 4, r / 4))
            .collect()
    }

    /// Cross-node ring + collectives + exchange: exercises every op.
    fn mixed_programs(n: usize) -> Vec<Vec<Op>> {
        (0..n)
            .map(|r| {
                vec![
                    Op::Compute(1e-5 * (1.0 + r as f64)),
                    Op::Send {
                        to: (r + 1) % n,
                        bytes: 4096,
                        tag: 7,
                    },
                    Op::Recv {
                        from: (r + n - 1) % n,
                        tag: 7,
                    },
                    Op::Exchange {
                        with: r ^ 1,
                        bytes: 2048,
                        tag: 9,
                    },
                    Op::AllReduce { bytes: 64 },
                    Op::Compute(2e-6),
                    Op::Bcast {
                        root: 0,
                        bytes: 1 << 16,
                    },
                    Op::Barrier,
                ]
            })
            .collect()
    }

    fn assert_identical(
        programs: &[Vec<Op>],
        cpus: &[CpuId],
        fabric: &CachedFabric,
        plan: &FaultPlan,
        threads: usize,
    ) {
        let serial = crate::engine::simulate_on(programs, cpus, fabric, plan);
        let parallel = simulate_parallel_on(programs, cpus, fabric, plan, threads);
        match (&serial, &parallel) {
            (Ok(s), Ok(p)) => {
                assert_eq!(s.makespan.to_bits(), p.makespan.to_bits());
                assert_eq!(s.ranks.len(), p.ranks.len());
                for (a, b) in s.ranks.iter().zip(&p.ranks) {
                    assert_eq!(a.total.to_bits(), b.total.to_bits());
                    assert_eq!(a.compute.to_bits(), b.compute.to_bits());
                    assert_eq!(a.comm.to_bits(), b.comm.to_bits());
                }
                // Everything but the schedule-dependent event count.
                let (mut sf, mut pf) = (s.faults, p.faults);
                sf.events = 0;
                pf.events = 0;
                assert_eq!(format!("{sf:?}"), format!("{pf:?}"));
            }
            (Err(a), Err(b)) => assert_eq!(format!("{a:?}"), format!("{b:?}")),
            _ => panic!("engines disagree: serial={serial:?} parallel={parallel:?}"),
        }
    }

    #[test]
    fn cross_node_mixed_workload_is_bit_identical_at_many_thread_counts() {
        let cpus = cpus_4_nodes(3);
        let fabric = four_node_fabric(cpus.len() as u32);
        let programs = mixed_programs(cpus.len());
        for threads in [2, 3, 4, 7] {
            assert_identical(&programs, &cpus, &fabric, &FaultPlan::none(), threads);
        }
    }

    #[test]
    fn faulted_runs_are_bit_identical() {
        let cpus = cpus_4_nodes(2);
        let fabric = four_node_fabric(cpus.len() as u32);
        let programs = mixed_programs(cpus.len());
        let plan = FaultPlan::with_drops(42, 0.25);
        assert_identical(&programs, &cpus, &fabric, &plan, 4);
    }

    #[test]
    fn traced_runs_drain_the_identical_canonical_stream() {
        let cpus = cpus_4_nodes(2);
        let fabric = four_node_fabric(cpus.len() as u32);
        let programs = mixed_programs(cpus.len());
        let plan = FaultPlan::with_drops(7, 0.2);
        let mut serial = RecordingTracer::default();
        let mut parallel = RecordingTracer::default();
        let s = crate::engine::simulate_traced_on(&programs, &cpus, &fabric, &plan, &mut serial)
            .unwrap();
        let p = simulate_parallel_traced_on(&programs, &cpus, &fabric, &plan, &mut parallel, 4)
            .unwrap();
        assert_eq!(s.makespan.to_bits(), p.makespan.to_bits());
        assert_eq!(serial.spans, parallel.spans);
        assert_eq!(serial.edges, parallel.edges);
        assert_eq!(serial.rank_nodes, parallel.rank_nodes);
        assert_eq!(serial.metrics, parallel.metrics);
    }

    #[test]
    fn single_node_placement_falls_back_to_serial() {
        // One populated node: no cross-node latency, so the parallel
        // entry point must take the serial path and still succeed.
        let config = ClusterConfig::uniform(NodeKind::Bx2b, 1);
        let fabric = CachedFabric::new(ClusterFabric::single_node(config));
        let cpus: Vec<CpuId> = (0..8).map(|c| CpuId::new(0, c)).collect();
        let programs = mixed_programs(cpus.len());
        assert_identical(&programs, &cpus, &fabric, &FaultPlan::none(), 4);
    }

    #[test]
    fn deadlock_reports_are_identical() {
        let cpus = cpus_4_nodes(1);
        let fabric = four_node_fabric(cpus.len() as u32);
        // Rank 0 waits on a message nobody sends; everyone else blocks
        // on the collective rank 0 never reaches.
        let mut programs = mixed_programs(cpus.len());
        programs[0].insert(0, Op::Recv { from: 1, tag: 999 });
        assert_identical(&programs, &cpus, &fabric, &FaultPlan::none(), 4);
    }

    #[test]
    fn watchdog_timeout_is_the_exact_serial_error() {
        let cpus = cpus_4_nodes(2);
        let fabric = four_node_fabric(cpus.len() as u32);
        let programs = mixed_programs(cpus.len());
        // Budget below the op count: both engines must trip it, and the
        // parallel tier fabricates the serial counter's exact value.
        let plan = FaultPlan::none().with_event_budget(3);
        assert_identical(&programs, &cpus, &fabric, &plan, 4);
    }

    #[test]
    fn spmd_program_sets_run_parallel_too() {
        let cpus = cpus_4_nodes(2);
        let n = cpus.len();
        let fabric = four_node_fabric(n as u32);
        let set = ProgramSet::per_rank(mixed_programs(n));
        let serial = crate::engine::simulate_on(&set, &cpus, &fabric, &FaultPlan::none()).unwrap();
        let parallel = simulate_parallel_on(&set, &cpus, &fabric, &FaultPlan::none(), 3).unwrap();
        assert_eq!(serial.makespan.to_bits(), parallel.makespan.to_bits());
    }

    #[test]
    fn sim_threads_global_round_trips_and_clamps() {
        set_sim_threads(0);
        assert_eq!(sim_threads(), 1);
        set_sim_threads(4);
        assert_eq!(sim_threads(), 4);
        set_sim_threads(1);
        assert_eq!(sim_threads(), 1);
    }
}
