//! In-flight message storage for the engine's eager matching.
//!
//! The engine's hottest operations are `push`/`pop` of arrival times
//! keyed by `(from, to, tag)` — one pair per simulated message. The
//! original implementation hashed that key into a
//! `HashMap<MsgKey, VecDeque<f64>>` (plus a second map for send
//! sequence numbers), paying two SipHash computations per message.
//!
//! [`IndexedMailbox`] replaces the hash with an index: channels are
//! bucketed per *sender*, and a sender's active `(to, tag)` channels
//! live in a small `Vec` scanned linearly. The workloads here are
//! stencil/ring/wavefront codes where a rank talks to a handful of
//! neighbours on a handful of tags, so the scan is a few cache-resident
//! comparisons — no hashing, no pointer chasing. Channels also fuse the
//! send-sequence counter with the queue, halving the bookkeeping.
//!
//! The original implementation is kept as [`ReferenceMailbox`]
//! (doc-hidden) so `cargo bench --bench faults` can measure the engine
//! end-to-end with both and report the speedup; the engine is generic
//! over [`MailboxOps`], and both implementations are semantically
//! identical (equivalence is tested here and at the engine level).

use std::collections::{HashMap, VecDeque};

/// The mailbox operations the engine needs. `push`/`pop` must be FIFO
/// per `(from, to, tag)` channel (MPI ordering); `next_seq` returns a
/// per-channel counter 0, 1, 2, … identifying each send for
/// schedule-independent fault sampling.
pub trait MailboxOps {
    /// An empty mailbox for `n` ranks.
    fn with_ranks(n: usize) -> Self;
    /// Deposit an arrival time on the channel.
    fn push(&mut self, from: usize, to: usize, tag: u64, arrival: f64);
    /// Take the oldest undelivered arrival on the channel, if any.
    fn pop(&mut self, from: usize, to: usize, tag: u64) -> Option<f64>;
    /// Claim the channel's next send sequence number.
    fn next_seq(&mut self, from: usize, to: usize, tag: u64) -> u64;
}

/// One sender's active channel to a `(to, tag)` destination.
#[derive(Debug, Default)]
struct Channel {
    to: usize,
    tag: u64,
    /// FIFO of undelivered arrival times.
    queue: VecDeque<f64>,
    /// Messages ever sent on this channel.
    next_seq: u64,
}

/// Hash-free mailbox: per-sender channel lists, scanned linearly.
///
/// A channel, once created, is never removed — the set of `(to, tag)`
/// pairs a rank uses is small and static in every workload here, so
/// the list stays short and hot in cache for the whole simulation.
#[derive(Debug)]
pub struct IndexedMailbox {
    by_sender: Vec<Vec<Channel>>,
}

impl IndexedMailbox {
    fn chan(&mut self, from: usize, to: usize, tag: u64) -> &mut Channel {
        let chans = &mut self.by_sender[from];
        match chans.iter().position(|c| c.to == to && c.tag == tag) {
            Some(i) => &mut chans[i],
            None => {
                chans.push(Channel {
                    to,
                    tag,
                    ..Channel::default()
                });
                chans.last_mut().expect("just pushed")
            }
        }
    }

    /// Look up without creating (the pop path must not allocate
    /// channels for messages never sent).
    fn chan_mut(&mut self, from: usize, to: usize, tag: u64) -> Option<&mut Channel> {
        self.by_sender[from]
            .iter_mut()
            .find(|c| c.to == to && c.tag == tag)
    }
}

impl MailboxOps for IndexedMailbox {
    fn with_ranks(n: usize) -> Self {
        IndexedMailbox {
            by_sender: (0..n).map(|_| Vec::new()).collect(),
        }
    }

    fn push(&mut self, from: usize, to: usize, tag: u64, arrival: f64) {
        self.chan(from, to, tag).queue.push_back(arrival);
    }

    fn pop(&mut self, from: usize, to: usize, tag: u64) -> Option<f64> {
        self.chan_mut(from, to, tag)?.queue.pop_front()
    }

    fn next_seq(&mut self, from: usize, to: usize, tag: u64) -> u64 {
        let c = self.chan(from, to, tag);
        let seq = c.next_seq;
        c.next_seq += 1;
        seq
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct MsgKey {
    from: usize,
    to: usize,
    tag: u64,
}

/// The original `HashMap`-keyed mailbox, kept for the before/after
/// engine benchmark (`cargo bench --bench faults`). Semantically
/// identical to [`IndexedMailbox`]; only the lookup mechanism differs.
#[doc(hidden)]
#[derive(Debug, Default)]
pub struct ReferenceMailbox {
    queues: HashMap<MsgKey, VecDeque<f64>>,
    send_seq: HashMap<MsgKey, u64>,
}

impl MailboxOps for ReferenceMailbox {
    fn with_ranks(_n: usize) -> Self {
        ReferenceMailbox::default()
    }

    fn push(&mut self, from: usize, to: usize, tag: u64, arrival: f64) {
        self.queues
            .entry(MsgKey { from, to, tag })
            .or_default()
            .push_back(arrival);
    }

    fn pop(&mut self, from: usize, to: usize, tag: u64) -> Option<f64> {
        self.queues.get_mut(&MsgKey { from, to, tag })?.pop_front()
    }

    fn next_seq(&mut self, from: usize, to: usize, tag: u64) -> u64 {
        let seq = self.send_seq.entry(MsgKey { from, to, tag }).or_insert(0);
        let s = *seq;
        *seq += 1;
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise<M: MailboxOps>() -> Vec<(Option<f64>, u64)> {
        let mut m = M::with_ranks(4);
        let mut log = Vec::new();
        // Interleave two channels of the same sender plus a self-channel
        // (the engine's exchange marker pattern), checking FIFO order
        // and per-channel sequence isolation.
        log.push((None, m.next_seq(0, 1, 7)));
        m.push(0, 1, 7, 1.0);
        m.push(0, 1, 7, 2.0);
        log.push((None, m.next_seq(0, 1, 7)));
        m.push(0, 2, 7, 3.0);
        log.push((m.pop(0, 1, 7), m.next_seq(0, 2, 7)));
        log.push((m.pop(0, 1, 7), m.next_seq(0, 1, 9)));
        log.push((m.pop(0, 1, 7), 0));
        log.push((m.pop(0, 2, 7), 0));
        log.push((m.pop(3, 3, 1 << 63), 0)); // never-sent channel
        m.push(3, 3, 1 << 63, 0.0);
        log.push((m.pop(3, 3, 1 << 63), 0));
        log
    }

    #[test]
    fn fifo_and_sequence_semantics() {
        let log = exercise::<IndexedMailbox>();
        assert_eq!(log[0], (None, 0));
        assert_eq!(log[1], (None, 1));
        assert_eq!(log[2], (Some(1.0), 0)); // seq spaces are per channel
        assert_eq!(log[3], (Some(2.0), 0));
        assert_eq!(log[4], (None, 0));
        assert_eq!(log[5], (Some(3.0), 0));
        assert_eq!(log[6], (None, 0));
        assert_eq!(log[7], (Some(0.0), 0));
    }

    #[test]
    fn indexed_matches_reference() {
        assert_eq!(exercise::<IndexedMailbox>(), exercise::<ReferenceMailbox>());
    }
}
