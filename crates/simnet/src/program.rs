//! Compact program representations for SPMD workloads.
//!
//! A 10,240-rank run of a per-rank `Vec<Op>` program materializes
//! O(ranks × ops) instructions even when every rank executes the same
//! template with only its peers and payload sizes varying — which is
//! exactly what stencil, ring, and collective-dominated codes do. A
//! [`ProgramSet`] keeps one [`SpmdOp`] template and resolves each
//! rank's [`Op`] on demand from [`Peer`]/[`ByteRule`] parameterizations,
//! so program memory is O(ops) regardless of rank count; irregular
//! workloads fall back to per-rank vectors.
//!
//! The engine is generic over [`Programs`], so both representations
//! (and plain `&[Vec<Op>]` at the public entry points) run through the
//! same monomorphized hot loop.

use crate::engine::Op;

/// Read-only access to the per-rank instruction streams the engine
/// executes. Implementations must be pure: the same `(rank, pc)` must
/// always yield the same [`Op`].
pub trait Programs {
    /// Number of ranks (programs).
    fn n_ranks(&self) -> usize;

    /// The op at `pc` of `rank`'s program, or `None` past the end.
    fn op(&self, rank: usize, pc: usize) -> Option<Op>;

    /// Length of `rank`'s program.
    fn len_of(&self, rank: usize) -> usize;

    /// Total ops across all ranks (sizes the engine's event budget).
    fn total_ops(&self) -> usize {
        (0..self.n_ranks()).map(|r| self.len_of(r)).sum()
    }
}

impl Programs for [Vec<Op>] {
    fn n_ranks(&self) -> usize {
        self.len()
    }

    fn op(&self, rank: usize, pc: usize) -> Option<Op> {
        self[rank].get(pc).copied()
    }

    fn len_of(&self, rank: usize) -> usize {
        self[rank].len()
    }
}

impl Programs for Vec<Vec<Op>> {
    fn n_ranks(&self) -> usize {
        self.as_slice().n_ranks()
    }

    fn op(&self, rank: usize, pc: usize) -> Option<Op> {
        self.as_slice().op(rank, pc)
    }

    fn len_of(&self, rank: usize) -> usize {
        self.as_slice().len_of(rank)
    }
}

/// How an [`SpmdOp`] names its peer as a function of the rank.
///
/// The resolved peer must be a valid rank; for [`Peer::Xor`] that means
/// the mask must keep every rank inside the communicator (true whenever
/// the rank count is a multiple of `2 * mask`, the node-pairing case).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Peer {
    /// The same rank for everyone (e.g. a master).
    Fixed(usize),
    /// `(rank + offset) mod ranks` — ring neighbours. Asymmetric, so
    /// suitable for `Send`/`Recv` pairs, not `Exchange`.
    RingOffset(isize),
    /// `rank ^ mask` — symmetric pairing (butterfly stages, node
    /// pairing), the shape `Exchange` requires.
    Xor(usize),
}

impl Peer {
    /// The concrete peer for `rank` in a `ranks`-wide communicator.
    pub fn resolve(self, rank: usize, ranks: usize) -> usize {
        match self {
            Peer::Fixed(p) => p,
            Peer::RingOffset(d) => (rank as isize + d).rem_euclid(ranks.max(1) as isize) as usize,
            Peer::Xor(mask) => rank ^ mask,
        }
    }
}

/// How an [`SpmdOp`] sizes its payload as a function of the rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ByteRule {
    /// The same payload for every rank.
    Uniform(u64),
    /// `base + step * rank` — mildly imbalanced workloads.
    RankScaled { base: u64, step: u64 },
}

impl ByteRule {
    /// The concrete byte count for `rank`.
    pub fn resolve(self, rank: usize) -> u64 {
        match self {
            ByteRule::Uniform(b) => b,
            ByteRule::RankScaled { base, step } => base + step * rank as u64,
        }
    }
}

/// One instruction of an SPMD template: [`Op`] with the peer and
/// payload abstracted over the executing rank.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SpmdOp {
    /// Busy compute, identical on every rank.
    Compute(f64),
    /// Eager send to the resolved peer.
    Send { to: Peer, bytes: ByteRule, tag: u64 },
    /// Blocking receive from the resolved peer.
    Recv { from: Peer, tag: u64 },
    /// Pairwise exchange with the resolved (symmetric) peer.
    Exchange {
        with: Peer,
        bytes: ByteRule,
        tag: u64,
    },
    /// Barrier over the whole communicator.
    Barrier,
    /// Allreduce contributing `bytes` per rank.
    AllReduce { bytes: u64 },
    /// All-to-all moving `bytes_per_pair` between every ordered pair.
    AllToAll { bytes_per_pair: u64 },
    /// Broadcast of `bytes` from rank `root`.
    Bcast { root: usize, bytes: u64 },
}

impl SpmdOp {
    /// The concrete [`Op`] this template instruction becomes on `rank`.
    pub fn resolve(self, rank: usize, ranks: usize) -> Op {
        match self {
            SpmdOp::Compute(secs) => Op::Compute(secs),
            SpmdOp::Send { to, bytes, tag } => Op::Send {
                to: to.resolve(rank, ranks),
                bytes: bytes.resolve(rank),
                tag,
            },
            SpmdOp::Recv { from, tag } => Op::Recv {
                from: from.resolve(rank, ranks),
                tag,
            },
            SpmdOp::Exchange { with, bytes, tag } => Op::Exchange {
                with: with.resolve(rank, ranks),
                bytes: bytes.resolve(rank),
                tag,
            },
            SpmdOp::Barrier => Op::Barrier,
            SpmdOp::AllReduce { bytes } => Op::AllReduce { bytes },
            SpmdOp::AllToAll { bytes_per_pair } => Op::AllToAll { bytes_per_pair },
            SpmdOp::Bcast { root, bytes } => Op::Bcast { root, bytes },
        }
    }
}

/// A whole communicator's programs: either one shared SPMD template or
/// explicit per-rank vectors for irregular workloads.
#[derive(Debug, Clone, PartialEq)]
pub enum ProgramSet {
    /// Explicit per-rank programs (O(ranks × ops) memory).
    PerRank(Vec<Vec<Op>>),
    /// One template shared by `ranks` ranks (O(ops) memory).
    Spmd {
        /// Communicator width.
        ranks: usize,
        /// The shared instruction template.
        template: Vec<SpmdOp>,
    },
}

impl ProgramSet {
    /// An SPMD set: `ranks` ranks all running `template`.
    pub fn spmd(ranks: usize, template: Vec<SpmdOp>) -> Self {
        ProgramSet::Spmd { ranks, template }
    }

    /// Explicit per-rank programs.
    pub fn per_rank(programs: Vec<Vec<Op>>) -> Self {
        ProgramSet::PerRank(programs)
    }

    /// Expand into explicit per-rank vectors (equivalence testing and
    /// interop with the slice-based entry points).
    pub fn materialize(&self) -> Vec<Vec<Op>> {
        match self {
            ProgramSet::PerRank(p) => p.clone(),
            ProgramSet::Spmd { ranks, template } => (0..*ranks)
                .map(|r| template.iter().map(|op| op.resolve(r, *ranks)).collect())
                .collect(),
        }
    }
}

impl Programs for ProgramSet {
    fn n_ranks(&self) -> usize {
        match self {
            ProgramSet::PerRank(p) => p.len(),
            ProgramSet::Spmd { ranks, .. } => *ranks,
        }
    }

    fn op(&self, rank: usize, pc: usize) -> Option<Op> {
        match self {
            ProgramSet::PerRank(p) => p[rank].get(pc).copied(),
            ProgramSet::Spmd { ranks, template } => {
                template.get(pc).map(|op| op.resolve(rank, *ranks))
            }
        }
    }

    fn len_of(&self, rank: usize) -> usize {
        match self {
            ProgramSet::PerRank(p) => p[rank].len(),
            ProgramSet::Spmd { template, .. } => {
                let _ = rank;
                template.len()
            }
        }
    }

    fn total_ops(&self) -> usize {
        match self {
            ProgramSet::PerRank(p) => p.iter().map(Vec::len).sum(),
            ProgramSet::Spmd { ranks, template } => ranks * template.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peer_resolution() {
        assert_eq!(Peer::Fixed(3).resolve(7, 16), 3);
        assert_eq!(Peer::RingOffset(1).resolve(15, 16), 0);
        assert_eq!(Peer::RingOffset(-1).resolve(0, 16), 15);
        assert_eq!(Peer::RingOffset(-17).resolve(0, 16), 15);
        assert_eq!(Peer::Xor(4).resolve(3, 16), 7);
        // Xor is symmetric: resolving the peer's peer returns home.
        for r in 0..16 {
            let p = Peer::Xor(4).resolve(r, 16);
            assert_eq!(Peer::Xor(4).resolve(p, 16), r);
        }
    }

    #[test]
    fn byte_rules_resolve() {
        assert_eq!(ByteRule::Uniform(4096).resolve(9), 4096);
        assert_eq!(ByteRule::RankScaled { base: 100, step: 8 }.resolve(3), 124);
    }

    fn ring_template(bytes: u64) -> Vec<SpmdOp> {
        vec![
            SpmdOp::Compute(1e-4),
            SpmdOp::Send {
                to: Peer::RingOffset(1),
                bytes: ByteRule::Uniform(bytes),
                tag: 1,
            },
            SpmdOp::Recv {
                from: Peer::RingOffset(-1),
                tag: 1,
            },
            SpmdOp::AllReduce { bytes: 64 },
        ]
    }

    #[test]
    fn spmd_materializes_to_the_expected_per_rank_programs() {
        let set = ProgramSet::spmd(4, ring_template(4096));
        let progs = set.materialize();
        assert_eq!(progs.len(), 4);
        assert_eq!(
            progs[3][1],
            Op::Send {
                to: 0,
                bytes: 4096,
                tag: 1
            }
        );
        assert_eq!(progs[0][2], Op::Recv { from: 3, tag: 1 });
        // Trait access agrees with materialization, op by op.
        for (r, prog) in progs.iter().enumerate() {
            assert_eq!(set.len_of(r), prog.len());
            for pc in 0..=set.len_of(r) {
                assert_eq!(set.op(r, pc), prog.get(pc).copied(), "rank {r} pc {pc}");
            }
        }
        assert_eq!(set.total_ops(), 16);
    }

    #[test]
    fn per_rank_fallback_matches_slice_impl() {
        let progs = vec![vec![Op::Compute(0.5)], vec![Op::Barrier, Op::Compute(0.1)]];
        let set = ProgramSet::per_rank(progs.clone());
        assert_eq!(set.n_ranks(), 2);
        assert_eq!(set.total_ops(), progs.as_slice().total_ops());
        assert_eq!(set.op(1, 0), Some(Op::Barrier));
        assert_eq!(set.op(0, 1), None);
        assert_eq!(set.materialize(), progs);
    }
}
