//! The HPCC `b_eff` communication patterns.
//!
//! The effective-bandwidth benchmark measures latency and bandwidth in
//! three patterns the paper reports in Figs. 5 and 10:
//!
//! * **Ping-pong** between pairs of processes; the paper uses the
//!   *average* over tested pairs.
//! * **Natural ring**: every process exchanges with the neighbours
//!   adjacent in `MPI_COMM_WORLD` rank order; the benchmark reports the
//!   *worst-case* process-to-process latency for the whole ring (the
//!   paper leans on this distinction when explaining the smaller
//!   two-to-four-node penalty in §4.6.1).
//! * **Random ring**: the ring order is a random permutation, so most
//!   neighbours are topologically far apart; a geometric mean over
//!   several trials is reported. This is the pattern that exposes both
//!   the BX2's better router fabric at high CPU counts and
//!   InfiniBand's contention collapse.

use columbia_machine::cluster::CpuId;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::fabric::Fabric;

/// Message size b_eff uses for the latency measurement (8 bytes).
pub const LATENCY_MSG_BYTES: u64 = 8;

/// Message size used for the bandwidth measurement (2 MB, long enough
/// to amortize latency on every Columbia fabric).
pub const BANDWIDTH_MSG_BYTES: u64 = 2 * 1024 * 1024;

/// Outcome of one pattern measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PatternResult {
    /// Reported latency, seconds.
    pub latency: f64,
    /// Reported per-process bandwidth, bytes/s.
    pub bandwidth_per_proc: f64,
}

/// Average ping-pong over sampled process pairs.
///
/// For `p` processes b_eff pairs rank `i` with rank `p-1-i`; we average
/// latency and bandwidth over those pairs, which mixes near and far
/// pairs exactly the way the paper's "average" row does.
pub fn ping_pong(fabric: &dyn Fabric, cpus: &[CpuId]) -> PatternResult {
    let p = cpus.len();
    assert!(p >= 2, "ping-pong needs at least two processes");
    let mut lat_sum = 0.0;
    let mut bw_sum = 0.0;
    let pairs = p / 2;
    for i in 0..pairs {
        let (a, b) = (cpus[i], cpus[p - 1 - i]);
        lat_sum += fabric.latency(a, b);
        bw_sum += BANDWIDTH_MSG_BYTES as f64 / fabric.pt2pt_time(a, b, BANDWIDTH_MSG_BYTES);
    }
    PatternResult {
        latency: lat_sum / pairs as f64,
        bandwidth_per_proc: bw_sum / pairs as f64,
    }
}

/// Ring measurement over an explicit neighbour ordering.
///
/// Latency: worst edge (the ring turns at the pace of its slowest
/// link). Bandwidth: the benchmark's iterations are synchronized, so
/// every process's effective rate is paced by the slowest edge of the
/// whole ring: `bytes / worst edge time`, with the inter-node
/// contention factor applied to edges that cross nodes.
fn ring(fabric: &dyn Fabric, order: &[CpuId]) -> PatternResult {
    let p = order.len();
    assert!(p >= 2, "a ring needs at least two processes");
    let mut worst_lat: f64 = 0.0;
    let mut worst_edge_time: f64 = 0.0;
    let crossings = order
        .iter()
        .zip(order.iter().cycle().skip(1))
        .take(p)
        .filter(|(a, b)| a.node != b.node)
        .count() as u32;
    let contention = fabric.internode_contention(crossings.max(1));
    for i in 0..p {
        let (a, b) = (order[i], order[(i + 1) % p]);
        worst_lat = worst_lat.max(fabric.latency(a, b));
        let slowdown = if a.node != b.node { contention } else { 1.0 };
        let edge_time =
            fabric.latency(a, b) + BANDWIDTH_MSG_BYTES as f64 * slowdown / fabric.bandwidth(a, b);
        worst_edge_time = worst_edge_time.max(edge_time);
    }
    PatternResult {
        latency: worst_lat,
        bandwidth_per_proc: BANDWIDTH_MSG_BYTES as f64 / worst_edge_time,
    }
}

/// Natural ring: ranks in `MPI_COMM_WORLD` order.
pub fn natural_ring(fabric: &dyn Fabric, cpus: &[CpuId]) -> PatternResult {
    ring(fabric, cpus)
}

/// Random ring: geometric mean over `trials` random permutations
/// seeded by `seed` (deterministic across runs).
pub fn random_ring(fabric: &dyn Fabric, cpus: &[CpuId], trials: u32, seed: u64) -> PatternResult {
    assert!(trials >= 1);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut log_lat = 0.0;
    let mut log_bw = 0.0;
    let mut order = cpus.to_vec();
    for _ in 0..trials {
        order.shuffle(&mut rng);
        let r = ring(fabric, &order);
        log_lat += r.latency.ln();
        log_bw += r.bandwidth_per_proc.ln();
    }
    PatternResult {
        latency: (log_lat / trials as f64).exp(),
        bandwidth_per_proc: (log_bw / trials as f64).exp(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::{ClusterFabric, MptVersion};
    use columbia_machine::cluster::{ClusterConfig, InterNodeFabric};
    use columbia_machine::node::NodeKind;

    fn one_node(kind: NodeKind) -> ClusterFabric {
        ClusterFabric::single_node(ClusterConfig::uniform(kind, 1))
    }

    fn dense(n: u32) -> Vec<CpuId> {
        (0..n).map(|c| CpuId::new(0, c)).collect()
    }

    fn spread(nodes: u32, per_node: u32) -> Vec<CpuId> {
        let mut v = Vec::new();
        for nd in 0..nodes {
            for c in 0..per_node {
                v.push(CpuId::new(nd, c));
            }
        }
        v
    }

    #[test]
    fn random_ring_latency_grows_with_cpu_count() {
        let f = one_node(NodeKind::Altix3700);
        let small = random_ring(&f, &dense(16), 4, 7).latency;
        let large = random_ring(&f, &dense(512), 4, 7).latency;
        assert!(large > small, "small={small:e} large={large:e}");
    }

    #[test]
    fn bx2_random_ring_beats_3700_at_high_counts() {
        // Fig. 5: "as average communication distances become further
        // apart ... the interconnect network improvements in the BX2
        // take effect."
        let f3 = one_node(NodeKind::Altix3700);
        let fb = one_node(NodeKind::Bx2b);
        let l3 = random_ring(&f3, &dense(512), 4, 7).latency;
        let lb = random_ring(&fb, &dense(512), 4, 7).latency;
        assert!(lb < l3, "bx2={lb:e} 3700={l3:e}");
        let b3 = random_ring(&f3, &dense(512), 4, 7).bandwidth_per_proc;
        let bb = random_ring(&fb, &dense(512), 4, 7).bandwidth_per_proc;
        assert!(bb > b3);
    }

    #[test]
    fn ping_pong_bandwidth_tracks_interconnect() {
        // Fig. 5: ping-pong pairs are mostly cross-brick, so NUMAlink4
        // (BX2) shows clearly higher bandwidth than NUMAlink3 (3700).
        let b3 = ping_pong(&one_node(NodeKind::Altix3700), &dense(128)).bandwidth_per_proc;
        let bb = ping_pong(&one_node(NodeKind::Bx2a), &dense(128)).bandwidth_per_proc;
        assert!(bb > 1.2 * b3, "bx2={bb:e} 3700={b3:e}");
    }

    #[test]
    fn natural_ring_bandwidth_tracks_processor_speed() {
        // Fig. 5: local communication dominates the natural ring, so
        // the 1.6 GHz BX2b edges out the 1.5 GHz BX2a by roughly the
        // clock ratio, not the (identical) link bandwidth.
        let ba = natural_ring(&one_node(NodeKind::Bx2a), &dense(128)).bandwidth_per_proc;
        let bb = natural_ring(&one_node(NodeKind::Bx2b), &dense(128)).bandwidth_per_proc;
        let ratio = bb / ba;
        assert!(ratio > 1.02 && ratio < 1.12, "ratio={ratio}");
    }

    #[test]
    fn natural_ring_latency_is_worst_case_not_mean() {
        let f = one_node(NodeKind::Bx2b);
        let cpus = dense(64);
        let worst = natural_ring(&f, &cpus).latency;
        // Every edge latency must be ≤ the reported (worst-case) value.
        for i in 0..cpus.len() {
            let l = f.latency(cpus[i], cpus[(i + 1) % cpus.len()]);
            assert!(l <= worst + 1e-15);
        }
    }

    #[test]
    fn infiniband_random_ring_collapses_vs_numalink() {
        // Fig. 10: "severe problems with scalability of InfiniBand" on
        // the random ring.
        let cfg = ClusterConfig::uniform(NodeKind::Bx2b, 4);
        let cpus = spread(4, 256);
        let nl = ClusterFabric::new(
            cfg.clone(),
            InterNodeFabric::NumaLink4,
            MptVersion::Beta,
            1024,
        );
        let ib = ClusterFabric::new(cfg, InterNodeFabric::InfiniBand, MptVersion::Beta, 1024);
        let bw_nl = random_ring(&nl, &cpus, 3, 11).bandwidth_per_proc;
        let bw_ib = random_ring(&ib, &cpus, 3, 11).bandwidth_per_proc;
        assert!(bw_nl > 5.0 * bw_ib, "nl={bw_nl:e} ib={bw_ib:e}");
    }

    #[test]
    fn four_node_ib_ping_pong_worse_than_two_node() {
        // Fig. 10: more off-node pairs on four nodes raise the average
        // ping-pong latency over InfiniBand.
        let mk = |n: u32| {
            let cfg = ClusterConfig::uniform(NodeKind::Bx2b, n);
            let f = ClusterFabric::new(cfg, InterNodeFabric::InfiniBand, MptVersion::Beta, n * 128);
            ping_pong(&f, &spread(n, 128)).latency
        };
        assert!(mk(4) > mk(2));
    }

    #[test]
    fn random_ring_is_deterministic_per_seed() {
        let f = one_node(NodeKind::Bx2b);
        let a = random_ring(&f, &dense(64), 5, 3);
        let b = random_ring(&f, &dense(64), 5, 3);
        assert_eq!(a, b);
        let c = random_ring(&f, &dense(64), 5, 4);
        assert!(a != c);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn ping_pong_needs_two() {
        let f = one_node(NodeKind::Bx2b);
        ping_pong(&f, &dense(1));
    }
}
