//! Discrete-event simulation of Columbia's communication fabrics.
//!
//! The paper times message-passing codes whose behaviour is set by the
//! interplay of per-message latency, per-stream bandwidth, topology
//! distance, and contention — across three fabrics: NUMAlink3 inside a
//! 3700 node, NUMAlink4 inside (and between) BX2 nodes, and the
//! InfiniBand switch between any nodes. This crate provides:
//!
//! * [`fabric`] — cost models answering "what does one `bytes`-byte
//!   message from CPU *a* to CPU *b* cost" for each fabric, composed
//!   into a whole-cluster view by [`fabric::ClusterFabric`];
//! * [`engine`] — a deterministic discrete-event simulator that runs
//!   per-rank programs of [`engine::Op`]s (compute, send, recv,
//!   exchange, collectives) to a per-rank timeline with compute/comm
//!   attribution;
//! * [`collectives`] — closed-form cost models for barrier, allreduce,
//!   broadcast, and all-to-all, shared by the engine;
//! * [`program`] — compact SPMD program representations: one
//!   [`program::ProgramSet`] template shared across all ranks keeps a
//!   10,240-rank program in O(ops) memory;
//! * [`patterns`] — the HPCC `b_eff` communication patterns (ping-pong,
//!   natural ring, random ring) including the statistical contention
//!   model for bisection-crossing flows;
//! * [`fault`] — seeded fault-injection plans ([`fault::FaultPlan`])
//!   that drop messages (with timeout + exponential-backoff
//!   retransmission), degrade or fail links, slow CPUs, and enforce the
//!   §2 InfiniBand per-card connection limit with graceful multiplexing;
//! * [`error`] — the typed [`error::SimError`] every failure surfaces
//!   as, including a per-rank [`error::DeadlockReport`];
//! * [`pdes`] — a conservative parallel (PDES) tier that partitions
//!   ranks by node and synchronizes on the fabric's minimum cross-node
//!   latency, producing bit-identical outcomes, reports, and traces at
//!   any thread count ([`simulate_parallel_on`], `repro
//!   --sim-threads`).
//!
//! The engine is instrumented: [`simulate_traced`] reports every span
//! of virtual time (compute, send, recv-wait, collective, plus
//! network-side retransmit/multiplex delays) to a
//! [`columbia_obs::Tracer`], at zero cost when the
//! [`columbia_obs::NullTracer`] is used (re-exported here as [`obs`]).
//!
//! All randomness is seeded; a simulation is a pure function of its
//! inputs — including fault injection, which is keyed off stable message
//! identities rather than schedule order.

pub mod collectives;
pub mod engine;
pub mod error;
pub mod fabric;
pub mod fault;
pub mod mailbox;
pub mod patterns;
pub mod pdes;
pub mod program;

pub use columbia_obs as obs;
pub use engine::{
    simulate, simulate_on, simulate_traced, simulate_traced_on, simulate_with_faults, Op,
    RankResult, SimOutcome,
};
pub use error::{DeadlockReport, PendingOp, SimError};
pub use fabric::{CachedFabric, ClusterFabric, Fabric, MptVersion};
pub use fault::{
    ConnectionLimit, ConnectionPolicy, CpuSlowdown, FaultPlan, FaultStats, FaultyFabric, LinkFault,
    LinkState, RetransmitPolicy,
};
pub use pdes::{set_sim_threads, sim_threads, simulate_parallel_on, simulate_parallel_traced_on};
pub use program::{ByteRule, Peer, ProgramSet, Programs, SpmdOp};
