//! Typed simulation errors with structured diagnostics.
//!
//! Every way a simulated run can fail is a [`SimError`] variant rather
//! than a panic, so the experiment runners can report *what* broke —
//! which ranks are stuck on which pending operation, which node ran out
//! of InfiniBand connections, or that the event-budget watchdog fired.

use crate::engine::Op;

/// One rank that can make no further progress.
#[derive(Debug, Clone, PartialEq)]
pub struct PendingOp {
    /// The stuck rank.
    pub rank: usize,
    /// Its program counter (index of the op it is blocked on).
    pub pc: usize,
    /// The operation that can never complete.
    pub op: Op,
    /// The peer the rank is waiting on, when the op names one
    /// (`Recv`/`Exchange`); `None` for collectives.
    pub waiting_on: Option<usize>,
}

impl std::fmt::Display for PendingOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "rank {} at pc {} blocked on {:?}",
            self.rank, self.pc, self.op
        )?;
        if let Some(peer) = self.waiting_on {
            write!(f, " (waiting on rank {peer})")?;
        }
        Ok(())
    }
}

/// Full diagnosis of a communication deadlock.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DeadlockReport {
    /// Every stuck rank with its pending operation, in rank order.
    pub stuck: Vec<PendingOp>,
}

impl DeadlockReport {
    /// The stuck rank ids, in ascending order.
    pub fn stuck_ranks(&self) -> Vec<usize> {
        self.stuck.iter().map(|p| p.rank).collect()
    }
}

/// Why a simulation could not produce a timeline.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A cycle of receives/collectives that can never complete.
    Deadlock(DeadlockReport),
    /// Program count and CPU placement disagree.
    PlacementMismatch {
        /// Number of rank programs supplied.
        programs: usize,
        /// Number of CPU placements supplied.
        placements: usize,
    },
    /// A node needs more InfiniBand connections than its cards provide
    /// and the fault plan forbids multiplexing (§2 connection limit).
    ConnectionsExhausted {
        /// The overcommitted node.
        node: u32,
        /// Processes placed on that node.
        procs_on_node: usize,
        /// Connections the placement requires of the node.
        required: u64,
        /// Connections the node's cards provide.
        available: u64,
    },
    /// The event-budget watchdog fired: the run consumed more scheduler
    /// events than the plan allows (livelock guard).
    WatchdogTimeout {
        /// Events consumed when the watchdog fired.
        events: u64,
        /// The configured budget.
        budget: u64,
    },
}

impl SimError {
    /// Stuck rank ids for a [`SimError::Deadlock`]; empty otherwise.
    pub fn stuck_ranks(&self) -> Vec<usize> {
        match self {
            SimError::Deadlock(report) => report.stuck_ranks(),
            _ => Vec::new(),
        }
    }
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Deadlock(report) => {
                write!(
                    f,
                    "simulated communication deadlock; stuck ranks: {:?}",
                    report.stuck_ranks()
                )?;
                for p in &report.stuck {
                    write!(f, "\n  {p}")?;
                }
                Ok(())
            }
            SimError::PlacementMismatch {
                programs,
                placements,
            } => write!(
                f,
                "placement mismatch: {programs} rank programs but {placements} CPU placements \
                 (one CPU placement per rank program)"
            ),
            SimError::ConnectionsExhausted {
                node,
                procs_on_node,
                required,
                available,
            } => write!(
                f,
                "InfiniBand connections exhausted on node {node}: {procs_on_node} processes \
                 require {required} connections but the cards provide {available}"
            ),
            SimError::WatchdogTimeout { events, budget } => write!(
                f,
                "event-budget watchdog fired after {events} events (budget {budget}): \
                 likely livelock"
            ),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadlock_display_names_ranks_and_ops() {
        let err = SimError::Deadlock(DeadlockReport {
            stuck: vec![PendingOp {
                rank: 3,
                pc: 7,
                op: Op::Recv { from: 1, tag: 9 },
                waiting_on: Some(1),
            }],
        });
        let s = err.to_string();
        assert!(s.contains("deadlock"));
        assert!(s.contains("rank 3 at pc 7"));
        assert!(s.contains("waiting on rank 1"));
        assert_eq!(err.stuck_ranks(), vec![3]);
    }

    #[test]
    fn placement_mismatch_display() {
        let err = SimError::PlacementMismatch {
            programs: 4,
            placements: 2,
        };
        assert!(err
            .to_string()
            .contains("one CPU placement per rank program"));
        assert!(err.stuck_ranks().is_empty());
    }

    #[test]
    fn connections_exhausted_display() {
        let err = SimError::ConnectionsExhausted {
            node: 2,
            procs_on_node: 512,
            required: 786_432,
            available: 524_288,
        };
        let s = err.to_string();
        assert!(s.contains("node 2"));
        assert!(s.contains("786432"));
    }

    #[test]
    fn watchdog_display() {
        let err = SimError::WatchdogTimeout {
            events: 11,
            budget: 10,
        };
        assert!(err.to_string().contains("watchdog"));
    }
}
