//! Deterministic discrete-event execution of per-rank programs.
//!
//! Each virtual MPI rank runs a straight-line program of [`Op`]s. The
//! engine advances per-rank clocks with eager message matching: a send
//! deposits a message whose arrival time is the sender's clock plus the
//! fabric's point-to-point cost; a receive completes at
//! `max(receiver clock, arrival)`. Collectives synchronize all ranks
//! and charge the closed-form costs from [`crate::collectives`].
//!
//! The scheduler is a worklist over blocked ranks, so arbitrary
//! (deadlock-free) send/recv orders simulate correctly — including the
//! pipelined LU-SGS wavefronts and ring exchanges the workloads emit.
//! A genuine deadlock (cycle of receives with no matching sends) is
//! reported as an error naming the stuck ranks, which the test suite
//! exercises.

use std::collections::{HashMap, VecDeque};

use columbia_machine::cluster::CpuId;

use crate::collectives;
use crate::fabric::Fabric;

/// Per-CPU cost of initiating a send (library call + injection), well
/// under the wire latency; folded out of `Fabric::latency` so overlap
/// of computation with in-flight messages is modelled.
const SEND_CPU_OVERHEAD: f64 = 0.2e-6;

/// One instruction of a virtual rank's program.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Busy compute for the given number of seconds (already costed by
    /// the machine model upstream).
    Compute(f64),
    /// Eager, non-blocking send of `bytes` to rank `to` with a match
    /// `tag`.
    Send { to: usize, bytes: u64, tag: u64 },
    /// Blocking receive from rank `from` with matching `tag`.
    Recv { from: usize, tag: u64 },
    /// Simultaneous pairwise exchange with rank `with` (send + recv of
    /// equal `bytes`), the staple of halo swaps.
    Exchange { with: usize, bytes: u64, tag: u64 },
    /// Barrier over the whole communicator.
    Barrier,
    /// Allreduce contributing `bytes` per rank.
    AllReduce { bytes: u64 },
    /// All-to-all moving `bytes_per_pair` between every ordered pair.
    AllToAll { bytes_per_pair: u64 },
    /// Broadcast of `bytes` from rank `root`.
    Bcast { root: usize, bytes: u64 },
}

/// Timeline of one rank after simulation.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RankResult {
    /// Final clock value: when the rank finished its program.
    pub total: f64,
    /// Seconds spent in [`Op::Compute`].
    pub compute: f64,
    /// Seconds spent sending, waiting, and inside collectives.
    pub comm: f64,
}

/// Result of simulating a whole program set.
#[derive(Debug, Clone, PartialEq)]
pub struct SimOutcome {
    /// Per-rank timelines.
    pub ranks: Vec<RankResult>,
    /// Completion time of the slowest rank — the measured wall clock.
    pub makespan: f64,
}

impl SimOutcome {
    /// Mean communication time across ranks (what the application
    /// tables report as "comm").
    pub fn mean_comm(&self) -> f64 {
        if self.ranks.is_empty() {
            return 0.0;
        }
        self.ranks.iter().map(|r| r.comm).sum::<f64>() / self.ranks.len() as f64
    }

    /// Maximum communication time across ranks.
    pub fn max_comm(&self) -> f64 {
        self.ranks.iter().map(|r| r.comm).fold(0.0, f64::max)
    }
}

/// Simulation error: a communication cycle that can never complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Deadlock {
    /// Ranks whose next operation can never be satisfied.
    pub stuck_ranks: Vec<usize>,
}

impl std::fmt::Display for Deadlock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "simulated communication deadlock; stuck ranks: {:?}", self.stuck_ranks)
    }
}

impl std::error::Error for Deadlock {}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct MsgKey {
    from: usize,
    to: usize,
    tag: u64,
}

struct RankState {
    pc: usize,
    clock: f64,
    compute: f64,
    comm: f64,
    /// Sequence number of the next collective this rank will join.
    coll_seq: usize,
}

/// Simulate `programs` (one per rank) placed on `cpus` over `fabric`.
///
/// `cpus[r]` is the physical CPU of rank `r`; programs and placement
/// must have equal length. Returns per-rank timelines or a
/// [`Deadlock`] diagnosis.
pub fn simulate(
    programs: &[Vec<Op>],
    cpus: &[CpuId],
    fabric: &dyn Fabric,
) -> Result<SimOutcome, Deadlock> {
    assert_eq!(
        programs.len(),
        cpus.len(),
        "one CPU placement per rank program"
    );
    let n = programs.len();
    let mut states: Vec<RankState> = (0..n)
        .map(|_| RankState {
            pc: 0,
            clock: 0.0,
            compute: 0.0,
            comm: 0.0,
            coll_seq: 0,
        })
        .collect();
    // In-flight messages: arrival times keyed by (from, to, tag); FIFO
    // per key preserves MPI ordering semantics.
    let mut mailbox: HashMap<MsgKey, VecDeque<f64>> = HashMap::new();
    // Collective rendezvous: seq -> (op fingerprint, ranks arrived).
    let mut coll_arrivals: HashMap<usize, Vec<usize>> = HashMap::new();

    let mut runnable: VecDeque<usize> = (0..n).collect();
    let mut in_queue = vec![true; n];

    // Each pop executes at least one op or blocks; total ops bound the
    // work, so this terminates.
    while let Some(r) = runnable.pop_front() {
        in_queue[r] = false;
        loop {
            let Some(op) = programs[r].get(states[r].pc) else {
                break;
            };
            match op {
                Op::Compute(secs) => {
                    states[r].clock += secs;
                    states[r].compute += secs;
                    states[r].pc += 1;
                }
                Op::Send { to, bytes, tag } => {
                    let cost = fabric.pt2pt_time(cpus[r], cpus[*to], *bytes);
                    let arrival = states[r].clock + cost;
                    mailbox
                        .entry(MsgKey {
                            from: r,
                            to: *to,
                            tag: *tag,
                        })
                        .or_default()
                        .push_back(arrival);
                    states[r].clock += SEND_CPU_OVERHEAD;
                    states[r].comm += SEND_CPU_OVERHEAD;
                    states[r].pc += 1;
                    // The receiver may now be unblocked.
                    if !in_queue[*to] {
                        runnable.push_back(*to);
                        in_queue[*to] = true;
                    }
                }
                Op::Recv { from, tag } => {
                    let key = MsgKey {
                        from: *from,
                        to: r,
                        tag: *tag,
                    };
                    match mailbox.get_mut(&key).and_then(|q| q.pop_front()) {
                        Some(arrival) => {
                            let done = states[r].clock.max(arrival);
                            states[r].comm += done - states[r].clock;
                            states[r].clock = done;
                            states[r].pc += 1;
                        }
                        None => break, // blocked: wait for the send
                    }
                }
                Op::Exchange { with, bytes, tag } => {
                    // Decompose into send + recv so the partner's
                    // schedule is honoured. A marker message-to-self
                    // records that our send half already went out, so a
                    // blocked exchange does not double-send on wake-up.
                    let (b, t, w) = (*bytes, *tag, *with);
                    let marker = MsgKey {
                        from: r,
                        to: r,
                        tag: half_exchange_tag(w, t),
                    };
                    let already_sent = mailbox
                        .get_mut(&marker)
                        .map(|q| q.pop_front().is_some())
                        .unwrap_or(false);
                    if !already_sent {
                        let cost = fabric.pt2pt_time(cpus[r], cpus[w], b);
                        mailbox
                            .entry(MsgKey {
                                from: r,
                                to: w,
                                tag: t,
                            })
                            .or_default()
                            .push_back(states[r].clock + cost);
                        states[r].clock += SEND_CPU_OVERHEAD;
                        states[r].comm += SEND_CPU_OVERHEAD;
                        if !in_queue[w] {
                            runnable.push_back(w);
                            in_queue[w] = true;
                        }
                    }
                    // Wait for the partner's half.
                    let key = MsgKey {
                        from: w,
                        to: r,
                        tag: t,
                    };
                    match mailbox.get_mut(&key).and_then(|q| q.pop_front()) {
                        Some(arrival) => {
                            let done = states[r].clock.max(arrival);
                            states[r].comm += done - states[r].clock;
                            states[r].clock = done;
                            states[r].pc += 1;
                        }
                        None => {
                            mailbox.entry(marker).or_default().push_back(0.0);
                            break;
                        }
                    }
                }
                Op::Barrier | Op::AllReduce { .. } | Op::AllToAll { .. } | Op::Bcast { .. } => {
                    let seq = states[r].coll_seq;
                    let arrived = coll_arrivals.entry(seq).or_default();
                    if !arrived.contains(&r) {
                        arrived.push(r);
                    }
                    if arrived.len() == n {
                        // Everyone is here: charge the collective.
                        let start = states.iter().map(|s| s.clock).fold(0.0, f64::max);
                        let cost = match op {
                            Op::Barrier => collectives::barrier(fabric, cpus),
                            Op::AllReduce { bytes } => collectives::allreduce(fabric, cpus, *bytes),
                            Op::AllToAll { bytes_per_pair } => {
                                collectives::alltoall(fabric, cpus, *bytes_per_pair)
                            }
                            Op::Bcast { root: _, bytes } => collectives::bcast(fabric, cpus, *bytes),
                            _ => unreachable!(),
                        };
                        let end = start + cost;
                        coll_arrivals.remove(&seq);
                        for (i, s) in states.iter_mut().enumerate() {
                            s.comm += end - s.clock;
                            s.clock = end;
                            s.coll_seq += 1;
                            s.pc += 1;
                            if i != r && !in_queue[i] {
                                runnable.push_back(i);
                                in_queue[i] = true;
                            }
                        }
                        // Our own pc/coll_seq were advanced in the loop.
                        continue;
                    } else {
                        break; // blocked at the collective
                    }
                }
            }
        }
    }

    if states.iter().enumerate().any(|(r, s)| s.pc < programs[r].len()) {
        let stuck: Vec<usize> = states
            .iter()
            .enumerate()
            .filter(|(r, s)| s.pc < programs[*r].len())
            .map(|(r, _)| r)
            .collect();
        return Err(Deadlock { stuck_ranks: stuck });
    }

    let ranks: Vec<RankResult> = states
        .iter()
        .map(|s| RankResult {
            total: s.clock,
            compute: s.compute,
            comm: s.comm,
        })
        .collect();
    let makespan = ranks.iter().map(|r| r.total).fold(0.0, f64::max);
    Ok(SimOutcome { ranks, makespan })
}

/// Tag used by the marker message-to-self that records a half-done
/// exchange (send half out, recv half still blocked).
fn half_exchange_tag(with: usize, tag: u64) -> u64 {
    (tag ^ ((with as u64) << 32)) | HALF_EXCHANGE_BIT
}

const HALF_EXCHANGE_BIT: u64 = 1 << 63;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::ClusterFabric;
    use columbia_machine::cluster::ClusterConfig;
    use columbia_machine::node::NodeKind;

    fn fabric() -> ClusterFabric {
        ClusterFabric::single_node(ClusterConfig::uniform(NodeKind::Bx2b, 1))
    }

    fn place(n: u32) -> Vec<CpuId> {
        (0..n).map(|c| CpuId::new(0, c)).collect()
    }

    #[test]
    fn pure_compute_runs_independently() {
        let progs = vec![vec![Op::Compute(1.0)], vec![Op::Compute(2.0)]];
        let out = simulate(&progs, &place(2), &fabric()).unwrap();
        assert!((out.ranks[0].total - 1.0).abs() < 1e-12);
        assert!((out.ranks[1].total - 2.0).abs() < 1e-12);
        assert!((out.makespan - 2.0).abs() < 1e-12);
        assert_eq!(out.ranks[0].comm, 0.0);
    }

    #[test]
    fn recv_waits_for_matching_send() {
        let progs = vec![
            vec![Op::Compute(1.0), Op::Send { to: 1, bytes: 0, tag: 7 }],
            vec![Op::Recv { from: 0, tag: 7 }],
        ];
        let out = simulate(&progs, &place(2), &fabric()).unwrap();
        // Rank 1 must wait ≥ 1 second for the send to be issued.
        assert!(out.ranks[1].total >= 1.0);
        assert!(out.ranks[1].comm >= 1.0);
    }

    #[test]
    fn send_before_recv_also_matches() {
        let progs = vec![
            vec![Op::Send { to: 1, bytes: 1024, tag: 1 }],
            vec![Op::Compute(0.5), Op::Recv { from: 0, tag: 1 }],
        ];
        let out = simulate(&progs, &place(2), &fabric()).unwrap();
        // Message long since arrived; receiver barely waits.
        assert!(out.ranks[1].total < 0.5 + 1e-3);
    }

    #[test]
    fn messages_with_same_tag_preserve_order() {
        let progs = vec![
            vec![
                Op::Send { to: 1, bytes: 1 << 20, tag: 0 },
                Op::Send { to: 1, bytes: 0, tag: 0 },
            ],
            vec![Op::Recv { from: 0, tag: 0 }, Op::Recv { from: 0, tag: 0 }],
        ];
        let out = simulate(&progs, &place(2), &fabric()).unwrap();
        assert!(out.makespan > 0.0);
    }

    #[test]
    fn barrier_aligns_clocks() {
        let progs = vec![
            vec![Op::Compute(0.1), Op::Barrier],
            vec![Op::Compute(2.0), Op::Barrier],
            vec![Op::Barrier],
        ];
        let out = simulate(&progs, &place(3), &fabric()).unwrap();
        for r in &out.ranks {
            assert!(r.total >= 2.0);
        }
        // Fast ranks accrue the wait as comm time.
        assert!(out.ranks[2].comm > 1.9);
        assert!(out.ranks[1].comm < 0.1);
    }

    #[test]
    fn ring_exchange_completes() {
        // Natural ring: everyone exchanges with both neighbours, in the
        // classic parity order (even ranks talk right first, odd ranks
        // left first) so matching exchanges are posted simultaneously.
        let n = 8usize;
        let mut progs = Vec::new();
        for r in 0..n {
            let right = (r + 1) % n;
            let left = (r + n - 1) % n;
            let tag = |a: usize, b: usize| 100 + a.min(b) as u64 * 7 + a.max(b) as u64;
            let ex_right = Op::Exchange { with: right, bytes: 4096, tag: tag(r, right) };
            let ex_left = Op::Exchange { with: left, bytes: 4096, tag: tag(r, left) };
            progs.push(if r % 2 == 0 {
                vec![ex_right, ex_left]
            } else {
                vec![ex_left, ex_right]
            });
        }
        let out = simulate(&progs, &place(n as u32), &fabric()).unwrap();
        assert!(out.makespan > 0.0);
        assert!(out.ranks.iter().all(|r| r.comm > 0.0));
    }

    #[test]
    fn alltoall_costs_more_with_more_bytes() {
        let mk = |bytes| {
            let progs: Vec<Vec<Op>> = (0..16).map(|_| vec![Op::AllToAll { bytes_per_pair: bytes }]).collect();
            simulate(&progs, &place(16), &fabric()).unwrap().makespan
        };
        assert!(mk(1 << 16) > mk(1 << 8));
    }

    #[test]
    fn deadlock_is_detected_and_named() {
        // Two ranks each waiting for a message never sent.
        let progs = vec![
            vec![Op::Recv { from: 1, tag: 0 }],
            vec![Op::Recv { from: 0, tag: 0 }],
        ];
        let err = simulate(&progs, &place(2), &fabric()).unwrap_err();
        assert_eq!(err.stuck_ranks, vec![0, 1]);
        assert!(err.to_string().contains("deadlock"));
    }

    #[test]
    fn pipeline_wavefront_serializes() {
        // Rank r waits for r-1, computes, then releases r+1 — a LU-SGS
        // style pipeline. Makespan ≈ sum of stages, not max.
        let n = 4usize;
        let stage = 0.25;
        let mut progs = Vec::new();
        for r in 0..n {
            let mut p = Vec::new();
            if r > 0 {
                p.push(Op::Recv { from: r - 1, tag: 42 });
            }
            p.push(Op::Compute(stage));
            if r + 1 < n {
                p.push(Op::Send { to: r + 1, bytes: 8192, tag: 42 });
            }
            progs.push(p);
        }
        let out = simulate(&progs, &place(n as u32), &fabric()).unwrap();
        assert!(out.makespan >= n as f64 * stage);
        assert!(out.makespan < n as f64 * stage + 0.01);
    }

    #[test]
    #[should_panic(expected = "one CPU placement per rank")]
    fn mismatched_placement_panics() {
        let _ = simulate(&[vec![Op::Compute(1.0)]], &place(2), &fabric());
    }
}
