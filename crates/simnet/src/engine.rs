//! Deterministic discrete-event execution of per-rank programs.
//!
//! Each virtual MPI rank runs a straight-line program of [`Op`]s. The
//! engine advances per-rank clocks with eager message matching: a send
//! deposits a message whose arrival time is the sender's clock plus the
//! fabric's point-to-point cost; a receive completes at
//! `max(receiver clock, arrival)`. Collectives synchronize all ranks
//! and charge the closed-form costs from [`crate::collectives`].
//!
//! The scheduler is a worklist over blocked ranks, so arbitrary
//! (deadlock-free) send/recv orders simulate correctly — including the
//! pipelined LU-SGS wavefronts and ring exchanges the workloads emit.
//! Failures are structured [`SimError`]s: a genuine deadlock (cycle of
//! receives with no matching sends) is diagnosed per rank with its
//! program counter and pending operation, a placement mismatch is
//! rejected up front, and an event-budget watchdog guards against
//! livelock.
//!
//! [`simulate_with_faults`] additionally runs the program under a
//! [`FaultPlan`]: messages may be dropped and retransmitted with
//! exponential backoff, links degraded, CPUs slowed, and the §2
//! InfiniBand connection limit enforced — gracefully multiplexing (a
//! queuing penalty per inter-node message) or failing with
//! [`SimError::ConnectionsExhausted`] depending on the plan's policy.
//! The fault path is bit-identical to the plain path under
//! [`FaultPlan::none`].
//!
//! Every clock advance is also reported to a
//! [`Tracer`]: [`simulate_traced`] runs under
//! any tracer, while the plain entry points use the
//! [`NullTracer`], whose hooks are empty
//! inlined functions — the engine is generic over the tracer, so the
//! disabled path monomorphizes to exactly the untraced code and
//! produces bit-identical outcomes (regression-tested below).
//!
//! The engine is likewise generic over the fabric and the program
//! representation: [`simulate_on`]/[`simulate_traced_on`] accept any
//! `F: Fabric` (so per-message cost calls inline — pair them with
//! [`crate::fabric::CachedFabric`] for table-lookup costs) and any
//! [`Programs`] (so SPMD workloads can share one
//! [`crate::program::ProgramSet`] template across all ranks). The
//! `&dyn Fabric` entry points remain, forwarding into the same code,
//! and every path is bit-identical (regression- and property-tested).

use std::collections::{HashMap, VecDeque};

use columbia_machine::cluster::CpuId;
use columbia_obs::{
    CanonicalTracer, CausalEdge, EdgeKind, MessageRecord, NullTracer, SpanKind, Tracer,
};

use crate::collectives;
use crate::error::{DeadlockReport, PendingOp, SimError};
use crate::fabric::Fabric;
use crate::fault::{ConnectionPolicy, FaultPlan, FaultStats, FaultyFabric};
use crate::mailbox::{IndexedMailbox, MailboxOps};
use crate::program::Programs;

/// Per-CPU cost of initiating a send (library call + injection), well
/// under the wire latency; folded out of `Fabric::latency` so overlap
/// of computation with in-flight messages is modelled.
const SEND_CPU_OVERHEAD: f64 = 0.2e-6;

/// One instruction of a virtual rank's program.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    /// Busy compute for the given number of seconds (already costed by
    /// the machine model upstream).
    Compute(f64),
    /// Eager, non-blocking send of `bytes` to rank `to` with a match
    /// `tag`.
    Send { to: usize, bytes: u64, tag: u64 },
    /// Blocking receive from rank `from` with matching `tag`.
    Recv { from: usize, tag: u64 },
    /// Simultaneous pairwise exchange with rank `with` (send + recv of
    /// equal `bytes`), the staple of halo swaps.
    Exchange { with: usize, bytes: u64, tag: u64 },
    /// Barrier over the whole communicator.
    Barrier,
    /// Allreduce contributing `bytes` per rank.
    AllReduce { bytes: u64 },
    /// All-to-all moving `bytes_per_pair` between every ordered pair.
    AllToAll { bytes_per_pair: u64 },
    /// Broadcast of `bytes` from rank `root` (must be a valid rank).
    /// The tree is charged from the root's clock: ranks that reach the
    /// broadcast after the root has finished feeding the tree are not
    /// charged extra wait.
    Bcast { root: usize, bytes: u64 },
}

impl Op {
    /// The peer this op blocks on, if it names one.
    pub(crate) fn waiting_on(&self) -> Option<usize> {
        match self {
            Op::Recv { from, .. } => Some(*from),
            Op::Exchange { with, .. } => Some(*with),
            _ => None,
        }
    }
}

/// Timeline of one rank after simulation.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RankResult {
    /// Final clock value: when the rank finished its program.
    pub total: f64,
    /// Seconds spent in [`Op::Compute`].
    pub compute: f64,
    /// Seconds spent sending, waiting, and inside collectives.
    pub comm: f64,
}

/// Result of simulating a whole program set.
#[derive(Debug, Clone, PartialEq)]
pub struct SimOutcome {
    /// Per-rank timelines.
    pub ranks: Vec<RankResult>,
    /// Completion time of the slowest rank — the measured wall clock.
    pub makespan: f64,
    /// Fault activity observed during the run (all zeros for a
    /// fault-free plan).
    pub faults: FaultStats,
}

impl SimOutcome {
    /// Mean communication time across ranks (what the application
    /// tables report as "comm").
    pub fn mean_comm(&self) -> f64 {
        if self.ranks.is_empty() {
            return 0.0;
        }
        self.ranks.iter().map(|r| r.comm).sum::<f64>() / self.ranks.len() as f64
    }

    /// Maximum communication time across ranks.
    pub fn max_comm(&self) -> f64 {
        self.ranks.iter().map(|r| r.comm).fold(0.0, f64::max)
    }
}

pub(crate) struct RankState {
    pub(crate) pc: usize,
    pub(crate) clock: f64,
    pub(crate) compute: f64,
    pub(crate) comm: f64,
    /// Sequence number of the next collective this rank will join.
    pub(crate) coll_seq: usize,
}

impl RankState {
    pub(crate) fn fresh() -> Self {
        RankState {
            pc: 0,
            clock: 0.0,
            compute: 0.0,
            comm: 0.0,
            coll_seq: 0,
        }
    }
}

/// Per-rank fault accounting, folded into one [`FaultStats`] in rank
/// order at the end of a run. The `f64` sums are order-sensitive, so
/// accumulating per sender and folding canonically makes the totals a
/// pure function of the simulation's inputs — identical between the
/// serial and partitioned engines regardless of scheduling.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct FaultLedger {
    pub(crate) dropped_messages: u64,
    pub(crate) drop_events: u64,
    pub(crate) retransmit_delay: f64,
    pub(crate) multiplexed_messages: u64,
    pub(crate) multiplex_delay: f64,
}

impl FaultLedger {
    pub(crate) fn fold_into(&self, stats: &mut FaultStats) {
        stats.dropped_messages += self.dropped_messages;
        stats.drop_events += self.drop_events;
        stats.retransmit_delay += self.retransmit_delay;
        stats.multiplexed_messages += self.multiplexed_messages;
        stats.multiplex_delay += self.multiplex_delay;
    }
}

/// Price one message and charge the sender: fabric cost, drop +
/// retransmit sampling, multiplex delay, the sender's CPU overhead, and
/// all sender-side trace events. Returns the arrival time; the caller
/// deposits it (directly into a mailbox, or into a cross-partition
/// lane). Shared verbatim by the serial engine's `Send`/`Exchange` arms
/// and the PDES tier, so the two cannot drift.
#[allow(clippy::too_many_arguments)]
pub(crate) fn charge_send<T: Tracer, F: Fabric + ?Sized>(
    tracer: &mut T,
    fabric: &F,
    plan: &FaultPlan,
    cpus: &[CpuId],
    mux_delay: f64,
    ledger: &mut FaultLedger,
    state: &mut RankState,
    r: usize,
    to: usize,
    bytes: u64,
    tag: u64,
    seq: u64,
) -> f64 {
    let cost = fabric.pt2pt_time(cpus[r], cpus[to], bytes);
    let drops = plan.drops_for_message(r, to, tag, seq);
    let posted = state.clock;
    let mut arrival = posted + cost;
    let mut retransmit_delay = 0.0;
    if drops > 0 {
        let delay = plan.retransmit_delay(drops);
        arrival += delay;
        retransmit_delay = delay;
        ledger.dropped_messages += 1;
        ledger.drop_events += drops as u64;
        ledger.retransmit_delay += delay;
    }
    let muxed = mux_delay > 0.0 && cpus[r].node != cpus[to].node;
    if muxed {
        arrival += mux_delay;
        ledger.multiplexed_messages += 1;
        ledger.multiplex_delay += mux_delay;
    }
    // The sender re-injects once per retransmission.
    let overhead = SEND_CPU_OVERHEAD * (drops + 1) as f64;
    state.clock += overhead;
    state.comm += overhead;
    if tracer.enabled() {
        tracer.span(r, SpanKind::Send, posted, posted + overhead);
        if retransmit_delay > 0.0 {
            tracer.span(
                r,
                SpanKind::RetransmitBackoff,
                posted + cost,
                posted + cost + retransmit_delay,
            );
        }
        if muxed {
            tracer.span(r, SpanKind::MultiplexQueue, arrival - mux_delay, arrival);
        }
        tracer.message(&MessageRecord {
            from_rank: r,
            to_rank: to,
            from_node: cpus[r].node.0,
            to_node: cpus[to].node.0,
            bytes,
            wire_time: cost,
            drops,
            retransmit_delay,
            multiplex_delay: if muxed { mux_delay } else { 0.0 },
        });
        // `arrival` here and the receiver's RecvWait span end are
        // the same computed f64, so the analyzer joins them
        // bit-exactly.
        tracer.edge(&CausalEdge {
            kind: EdgeKind::Message,
            src_rank: r,
            src_time: posted,
            dst_rank: to,
            dst_time: arrival,
            bytes,
            wire_time: cost,
            fault_delay: retransmit_delay + if muxed { mux_delay } else { 0.0 },
        });
    }
    arrival
}

/// Apply one compute phase of `secs` (already scaled by the plan's
/// CPU-slowdown factor): advance the clock, charge compute time, emit
/// the span. Shared by the serial engine and the PDES tier.
pub(crate) fn apply_compute<T: Tracer>(tracer: &mut T, state: &mut RankState, r: usize, secs: f64) {
    let started = state.clock;
    state.clock += secs;
    state.compute += secs;
    state.pc += 1;
    if tracer.enabled() && secs > 0.0 {
        tracer.span(r, SpanKind::Compute, started, state.clock);
    }
}

/// Complete a blocking receive whose matching message arrives at
/// `arrival`: emit the wait span, charge comm time, advance the clock
/// and pc. One helper for the `Recv` arm, the recv half of `Exchange`,
/// and the PDES tier — previously three copies of the same block.
pub(crate) fn finish_recv<T: Tracer>(
    tracer: &mut T,
    state: &mut RankState,
    r: usize,
    arrival: f64,
) {
    let done = state.clock.max(arrival);
    if tracer.enabled() && done > state.clock {
        tracer.span(r, SpanKind::RecvWait, state.clock, done);
    }
    state.comm += done - state.clock;
    state.clock = done;
    state.pc += 1;
}

/// The closed-form cost of one collective op.
pub(crate) fn collective_cost<F: Fabric + ?Sized>(op: Op, fabric: &F, cpus: &[CpuId]) -> f64 {
    match op {
        Op::Barrier => collectives::barrier(fabric, cpus),
        Op::AllReduce { bytes } => collectives::allreduce(fabric, cpus, bytes),
        Op::AllToAll { bytes_per_pair } => collectives::alltoall(fabric, cpus, bytes_per_pair),
        Op::Bcast { bytes, .. } => collectives::bcast(fabric, cpus, bytes),
        _ => unreachable!("not a collective"),
    }
}

/// Per-pair payload a collective's causal edges report.
pub(crate) fn collective_payload(op: Op) -> u64 {
    match op {
        Op::AllReduce { bytes } | Op::Bcast { bytes, .. } => bytes,
        Op::AllToAll { bytes_per_pair } => bytes_per_pair,
        _ => 0,
    }
}

/// Causal source of a collective release: the broadcast root, or the
/// straggler whose arrival set the start time (lowest rank on ties).
/// `clocks` must be in rank order.
pub(crate) fn collective_source(op: Op, clocks: impl Iterator<Item = f64>) -> usize {
    if let Op::Bcast { root, .. } = op {
        return root;
    }
    let mut src = 0usize;
    let mut best: Option<f64> = None;
    for (i, c) in clocks.enumerate() {
        match best {
            Some(b) if c <= b => {}
            Some(_) => {
                best = Some(c);
                src = i;
            }
            None => best = Some(c),
        }
    }
    src
}

/// Release rank `i` from a collective that runs `[start, start+cost]`:
/// emit its span and causal edge, charge comm time, advance clock,
/// collective sequence, and pc. `done == end` except under a broadcast,
/// where a rank already past the root-driven finish keeps its own
/// clock. Shared by the serial release loop and the PDES rendezvous.
#[allow(clippy::too_many_arguments)]
pub(crate) fn apply_collective_release<T: Tracer>(
    tracer: &mut T,
    state: &mut RankState,
    i: usize,
    start: f64,
    cost: f64,
    end: f64,
    coll_src: usize,
    coll_bytes: u64,
) {
    let done = state.clock.max(end);
    if tracer.enabled() && done > state.clock {
        tracer.span(i, SpanKind::Collective, state.clock, done);
        tracer.edge(&CausalEdge {
            kind: EdgeKind::Collective,
            src_rank: coll_src,
            src_time: start,
            dst_rank: i,
            dst_time: done,
            bytes: coll_bytes,
            wire_time: cost,
            fault_delay: 0.0,
        });
    }
    state.comm += done - state.clock;
    state.clock = done;
    state.coll_seq += 1;
    state.pc += 1;
}

/// Simulate `programs` (one per rank) placed on `cpus` over `fabric`.
///
/// `cpus[r]` is the physical CPU of rank `r`; programs and placement
/// must have equal length. Returns per-rank timelines or a structured
/// [`SimError`].
pub fn simulate(
    programs: &[Vec<Op>],
    cpus: &[CpuId],
    fabric: &dyn Fabric,
) -> Result<SimOutcome, SimError> {
    simulate_with_faults(programs, cpus, fabric, &FaultPlan::none())
}

/// Connections node-local `procs` ranks need for full pure-MPI
/// connectivity across `n_nodes` nodes: `p²(n−1)` (§2).
fn connections_required(procs: usize, n_nodes: usize) -> u64 {
    (procs as u64).pow(2) * (n_nodes as u64 - 1)
}

/// Check the placement against the plan's connection limit. Returns the
/// per-inter-node-message queuing delay (0.0 when within budget or no
/// limit), the worst oversubscription ratio, or the exhaustion error.
pub(crate) fn connection_check(cpus: &[CpuId], plan: &FaultPlan) -> Result<(f64, f64), SimError> {
    let Some(limit) = &plan.connection_limit else {
        return Ok((0.0, 0.0));
    };
    let mut per_node: HashMap<u32, usize> = HashMap::new();
    for c in cpus {
        *per_node.entry(c.node.0).or_insert(0) += 1;
    }
    let n_nodes = per_node.len();
    if n_nodes < 2 {
        return Ok((0.0, 0.0));
    }
    let available = limit.budget();
    let mut worst_ratio = 0.0f64;
    // Deterministic iteration: report the lowest-numbered exhausted node.
    let mut nodes: Vec<(u32, usize)> = per_node.into_iter().collect();
    nodes.sort_unstable();
    for (node, procs) in nodes {
        let required = connections_required(procs, n_nodes);
        let ratio = required as f64 / available as f64;
        if required > available {
            if let ConnectionPolicy::Fail = limit.policy {
                return Err(SimError::ConnectionsExhausted {
                    node,
                    procs_on_node: procs,
                    required,
                    available,
                });
            }
        }
        worst_ratio = worst_ratio.max(ratio);
    }
    let delay = match limit.policy {
        ConnectionPolicy::Multiplex { queue_penalty } if worst_ratio > 1.0 => {
            queue_penalty * (worst_ratio - 1.0)
        }
        _ => 0.0,
    };
    Ok((delay, worst_ratio))
}

/// Simulate `programs` under a [`FaultPlan`].
///
/// Identical to [`simulate`] when the plan is [`FaultPlan::none`] —
/// bit-for-bit, a property the test suite asserts. Faults only ever
/// *delay* the timeline (drops, degraded links, multiplexed
/// connections, slow CPUs); structural failures surface as [`SimError`]
/// variants.
pub fn simulate_with_faults(
    programs: &[Vec<Op>],
    cpus: &[CpuId],
    base_fabric: &dyn Fabric,
    plan: &FaultPlan,
) -> Result<SimOutcome, SimError> {
    simulate_traced(programs, cpus, base_fabric, plan, &mut NullTracer)
}

/// Simulate `programs` under a [`FaultPlan`], reporting every span of
/// virtual time to `tracer`.
///
/// The engine is generic over the tracer: with
/// [`NullTracer`] this is exactly
/// [`simulate_with_faults`] (the hooks compile away); with a
/// [`RecordingTracer`](columbia_obs::RecordingTracer) it captures
/// per-rank timelines (compute, send, recv-wait, collective) plus
/// network-side delay spans (retransmit backoff, multiplex queuing)
/// and message-level metrics, without perturbing the simulation —
/// outcomes are bit-identical either way.
pub fn simulate_traced<T: Tracer>(
    programs: &[Vec<Op>],
    cpus: &[CpuId],
    base_fabric: &dyn Fabric,
    plan: &FaultPlan,
    tracer: &mut T,
) -> Result<SimOutcome, SimError> {
    simulate_generic::<T, IndexedMailbox, [Vec<Op>], dyn Fabric>(
        programs,
        cpus,
        base_fabric,
        plan,
        tracer,
    )
}

/// Statically-dispatched simulation: generic over the program
/// representation and the fabric type.
///
/// Semantically identical to [`simulate_with_faults`] (bit-identical
/// outcomes, property-tested), but with `F` known at compile time the
/// per-message `pt2pt_time` call in the hot loop inlines instead of
/// going through a vtable — pair with
/// [`CachedFabric`](crate::fabric::CachedFabric) to make it a table
/// lookup — and a [`ProgramSet`](crate::program::ProgramSet) template
/// keeps 10k-rank SPMD programs in O(ops) memory.
pub fn simulate_on<P, F>(
    programs: &P,
    cpus: &[CpuId],
    fabric: &F,
    plan: &FaultPlan,
) -> Result<SimOutcome, SimError>
where
    P: Programs + ?Sized + Sync,
    F: Fabric + ?Sized + Sync,
{
    simulate_traced_on(programs, cpus, fabric, plan, &mut NullTracer)
}

/// [`simulate_on`] under an arbitrary [`Tracer`].
///
/// When [`crate::pdes::sim_threads`] is above 1 this dispatches to the
/// conservative-PDES tier ([`crate::pdes::simulate_parallel_traced_on`])
/// — bit-identical outcomes and trace streams, just computed by
/// node-partitioned workers. `P` and `F` are `Sync` so the partitions
/// can share them; the `&dyn Fabric` entry points above stay serial.
pub fn simulate_traced_on<T, P, F>(
    programs: &P,
    cpus: &[CpuId],
    fabric: &F,
    plan: &FaultPlan,
    tracer: &mut T,
) -> Result<SimOutcome, SimError>
where
    T: Tracer,
    P: Programs + ?Sized + Sync,
    F: Fabric + ?Sized + Sync,
{
    let threads = crate::pdes::sim_threads();
    if threads > 1 {
        crate::pdes::simulate_parallel_traced_on(programs, cpus, fabric, plan, tracer, threads)
    } else {
        simulate_generic::<T, IndexedMailbox, P, F>(programs, cpus, fabric, plan, tracer)
    }
}

/// [`simulate_with_faults`] on the original `HashMap`-keyed mailbox
/// ([`crate::mailbox::ReferenceMailbox`]). Exists so the engine
/// benchmark can measure the indexed mailbox against its predecessor
/// end-to-end; outcomes are bit-identical (regression-tested).
#[doc(hidden)]
pub fn simulate_reference_mailbox(
    programs: &[Vec<Op>],
    cpus: &[CpuId],
    base_fabric: &dyn Fabric,
    plan: &FaultPlan,
) -> Result<SimOutcome, SimError> {
    simulate_generic::<NullTracer, crate::mailbox::ReferenceMailbox, [Vec<Op>], dyn Fabric>(
        programs,
        cpus,
        base_fabric,
        plan,
        &mut NullTracer,
    )
}

pub(crate) fn simulate_generic<
    T: Tracer,
    M: MailboxOps,
    P: Programs + ?Sized,
    F: Fabric + ?Sized,
>(
    programs: &P,
    cpus: &[CpuId],
    base_fabric: &F,
    plan: &FaultPlan,
    tracer: &mut T,
) -> Result<SimOutcome, SimError> {
    // Deliver trace events in canonical per-rank order (see
    // `columbia_obs::canon`): the scheduler's emission interleaving is
    // an implementation detail, and the partitioned engine must be able
    // to reproduce the stream byte-for-byte. Flushed on every exit path
    // past this point, so mid-run errors still surface their events.
    let mut canon = CanonicalTracer::new(tracer, programs.n_ranks());
    let result = simulate_core::<_, M, P, F>(programs, cpus, base_fabric, plan, &mut canon);
    canon.flush();
    result
}

fn simulate_core<T: Tracer, M: MailboxOps, P: Programs + ?Sized, F: Fabric + ?Sized>(
    programs: &P,
    cpus: &[CpuId],
    base_fabric: &F,
    plan: &FaultPlan,
    tracer: &mut T,
) -> Result<SimOutcome, SimError> {
    if programs.n_ranks() != cpus.len() {
        return Err(SimError::PlacementMismatch {
            programs: programs.n_ranks(),
            placements: cpus.len(),
        });
    }
    let (mux_delay, oversubscription) = connection_check(cpus, plan)?;
    if tracer.enabled() {
        let rank_nodes: Vec<u32> = cpus.iter().map(|c| c.node.0).collect();
        tracer.topology(&rank_nodes);
        if plan.connection_limit.is_some() {
            tracer.gauge("connection_occupancy", oversubscription);
        }
    }
    // Statically typed: when `F` is a concrete fabric the cost calls
    // below inline; the `dyn` entry points land here with `F = dyn
    // Fabric` and behave exactly as before.
    let faulty = FaultyFabric::new(base_fabric, plan);
    let fabric = &faulty;

    let n = programs.n_ranks();
    let total_ops: usize = programs.total_ops();
    let event_budget = plan
        .event_budget
        .unwrap_or_else(|| 10_000 + 64 * total_ops as u64);

    let mut states: Vec<RankState> = (0..n).map(|_| RankState::fresh()).collect();
    // Per-sender fault accounting, folded canonically at the end so the
    // f64 sums are schedule-independent.
    let mut ledgers: Vec<FaultLedger> = vec![FaultLedger::default(); n];
    // In-flight messages: arrival times per (from, to, tag) channel,
    // FIFO per channel (MPI ordering). The channel also carries the
    // send sequence number the fault sampling keys off
    // (schedule-independent).
    let mut mailbox = M::with_ranks(n);
    // Collective rendezvous. All ranks share one collective frontier
    // (`coll_seq` only ever advances for everyone at once, below), so
    // one arrival counter suffices; `coll_gen[r]` records the last
    // sequence rank `r` joined, making a re-examined blocked rank O(1)
    // to deduplicate — no per-collective set, no O(p) scan.
    let mut coll_count: usize = 0;
    let mut coll_gen: Vec<usize> = vec![usize::MAX; n];

    // `in_queue` guards duplicates, so at most n ranks are queued; the
    // spare slot keeps a full queue strictly below capacity so the ring
    // buffer never reallocates during the run.
    let mut runnable: VecDeque<usize> = VecDeque::with_capacity(n + 1);
    runnable.extend(0..n);
    let mut in_queue = vec![true; n];

    // Posts one message: price and charge it via the shared
    // [`charge_send`] helper, then deposit the arrival on the channel.
    // Shared by Send and the send half of Exchange.
    let post_send = |states: &mut Vec<RankState>,
                     mailbox: &mut M,
                     ledgers: &mut Vec<FaultLedger>,
                     tracer: &mut T,
                     r: usize,
                     to: usize,
                     bytes: u64,
                     tag: u64| {
        let seq = mailbox.next_seq(r, to, tag);
        let arrival = charge_send(
            tracer,
            fabric,
            plan,
            cpus,
            mux_delay,
            &mut ledgers[r],
            &mut states[r],
            r,
            to,
            bytes,
            tag,
            seq,
        );
        mailbox.push(r, to, tag, arrival);
    };

    // Each pop executes at least one op or blocks; total ops bound the
    // work, so this terminates — and the event budget catches any
    // livelock regression in the scheduler itself.
    let mut events: u64 = 0;
    while let Some(r) = runnable.pop_front() {
        in_queue[r] = false;
        while let Some(op) = programs.op(r, states[r].pc) {
            events += 1;
            if events > event_budget {
                return Err(SimError::WatchdogTimeout {
                    events,
                    budget: event_budget,
                });
            }
            match op {
                Op::Compute(secs) => {
                    apply_compute(
                        tracer,
                        &mut states[r],
                        r,
                        secs * plan.compute_factor(cpus[r]),
                    );
                }
                Op::Send { to, bytes, tag } => {
                    post_send(
                        &mut states,
                        &mut mailbox,
                        &mut ledgers,
                        tracer,
                        r,
                        to,
                        bytes,
                        tag,
                    );
                    states[r].pc += 1;
                    // The receiver may now be unblocked.
                    if !in_queue[to] {
                        runnable.push_back(to);
                        in_queue[to] = true;
                    }
                }
                Op::Recv { from, tag } => {
                    match mailbox.pop(from, r, tag) {
                        Some(arrival) => finish_recv(tracer, &mut states[r], r, arrival),
                        None => break, // blocked: wait for the send
                    }
                }
                Op::Exchange { with, bytes, tag } => {
                    // Decompose into send + recv so the partner's
                    // schedule is honoured. A marker message-to-self
                    // records that our send half already went out, so a
                    // blocked exchange does not double-send on wake-up.
                    let (b, t, w) = (bytes, tag, with);
                    let marker_tag = half_exchange_tag(w, t);
                    let already_sent = mailbox.pop(r, r, marker_tag).is_some();
                    if !already_sent {
                        post_send(&mut states, &mut mailbox, &mut ledgers, tracer, r, w, b, t);
                        if !in_queue[w] {
                            runnable.push_back(w);
                            in_queue[w] = true;
                        }
                    }
                    // Wait for the partner's half.
                    match mailbox.pop(w, r, t) {
                        Some(arrival) => finish_recv(tracer, &mut states[r], r, arrival),
                        None => {
                            mailbox.push(r, r, marker_tag, 0.0);
                            break;
                        }
                    }
                }
                Op::Barrier | Op::AllReduce { .. } | Op::AllToAll { .. } | Op::Bcast { .. } => {
                    let seq = states[r].coll_seq;
                    if coll_gen[r] != seq {
                        coll_gen[r] = seq;
                        coll_count += 1;
                    }
                    if coll_count == n {
                        // Everyone is here: charge the collective. Most
                        // collectives start once the straggler arrives;
                        // a broadcast is driven by its root's clock
                        // (ranks arriving after the root has fed the
                        // tree are not charged extra wait).
                        let start = match op {
                            Op::Bcast { root, .. } => states[root].clock,
                            _ => states.iter().map(|s| s.clock).fold(0.0, f64::max),
                        };
                        let cost = collective_cost(op, fabric, cpus);
                        let end = start + cost;
                        coll_count = 0;
                        // Causal source of the release: the straggler
                        // whose arrival set `start` (lowest rank on
                        // ties), or the root for a broadcast.
                        let (coll_src, coll_bytes) = if tracer.enabled() {
                            (
                                collective_source(op, states.iter().map(|s| s.clock)),
                                collective_payload(op),
                            )
                        } else {
                            (0, 0)
                        };
                        for (i, s) in states.iter_mut().enumerate() {
                            apply_collective_release(
                                tracer, s, i, start, cost, end, coll_src, coll_bytes,
                            );
                            if i != r && !in_queue[i] {
                                runnable.push_back(i);
                                in_queue[i] = true;
                            }
                        }
                        // Our own pc/coll_seq were advanced in the loop.
                        continue;
                    } else {
                        break; // blocked at the collective
                    }
                }
            }
        }
    }
    if states
        .iter()
        .enumerate()
        .any(|(r, s)| s.pc < programs.len_of(r))
    {
        let stuck: Vec<PendingOp> = states
            .iter()
            .enumerate()
            .filter(|(r, s)| s.pc < programs.len_of(*r))
            .map(|(r, s)| {
                let op = programs.op(r, s.pc).expect("pc < len");
                PendingOp {
                    rank: r,
                    pc: s.pc,
                    waiting_on: op.waiting_on(),
                    op,
                }
            })
            .collect();
        return Err(SimError::Deadlock(DeadlockReport { stuck }));
    }

    let mut stats = FaultStats {
        oversubscription,
        ..FaultStats::default()
    };
    for ledger in &ledgers {
        ledger.fold_into(&mut stats);
    }
    stats.events = events;

    let ranks: Vec<RankResult> = states
        .iter()
        .map(|s| RankResult {
            total: s.clock,
            compute: s.compute,
            comm: s.comm,
        })
        .collect();
    let makespan = ranks.iter().map(|r| r.total).fold(0.0, f64::max);
    Ok(SimOutcome {
        ranks,
        makespan,
        faults: stats,
    })
}

/// Tag used by the marker message-to-self that records a half-done
/// exchange (send half out, recv half still blocked).
pub(crate) fn half_exchange_tag(with: usize, tag: u64) -> u64 {
    (tag ^ ((with as u64) << 32)) | HALF_EXCHANGE_BIT
}

const HALF_EXCHANGE_BIT: u64 = 1 << 63;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::ClusterFabric;
    use crate::fault::{ConnectionLimit, ConnectionPolicy};
    use columbia_machine::cluster::{ClusterConfig, InterNodeFabric, NodeId};
    use columbia_machine::node::NodeKind;

    fn fabric() -> ClusterFabric {
        ClusterFabric::single_node(ClusterConfig::uniform(NodeKind::Bx2b, 1))
    }

    fn place(n: u32) -> Vec<CpuId> {
        (0..n).map(|c| CpuId::new(0, c)).collect()
    }

    #[test]
    fn pure_compute_runs_independently() {
        let progs = vec![vec![Op::Compute(1.0)], vec![Op::Compute(2.0)]];
        let out = simulate(&progs, &place(2), &fabric()).unwrap();
        assert!((out.ranks[0].total - 1.0).abs() < 1e-12);
        assert!((out.ranks[1].total - 2.0).abs() < 1e-12);
        assert!((out.makespan - 2.0).abs() < 1e-12);
        assert_eq!(out.ranks[0].comm, 0.0);
        assert!(!out.faults.any());
    }

    #[test]
    fn recv_waits_for_matching_send() {
        let progs = vec![
            vec![
                Op::Compute(1.0),
                Op::Send {
                    to: 1,
                    bytes: 0,
                    tag: 7,
                },
            ],
            vec![Op::Recv { from: 0, tag: 7 }],
        ];
        let out = simulate(&progs, &place(2), &fabric()).unwrap();
        // Rank 1 must wait ≥ 1 second for the send to be issued.
        assert!(out.ranks[1].total >= 1.0);
        assert!(out.ranks[1].comm >= 1.0);
    }

    #[test]
    fn send_before_recv_also_matches() {
        let progs = vec![
            vec![Op::Send {
                to: 1,
                bytes: 1024,
                tag: 1,
            }],
            vec![Op::Compute(0.5), Op::Recv { from: 0, tag: 1 }],
        ];
        let out = simulate(&progs, &place(2), &fabric()).unwrap();
        // Message long since arrived; receiver barely waits.
        assert!(out.ranks[1].total < 0.5 + 1e-3);
    }

    #[test]
    fn messages_with_same_tag_preserve_order() {
        let progs = vec![
            vec![
                Op::Send {
                    to: 1,
                    bytes: 1 << 20,
                    tag: 0,
                },
                Op::Send {
                    to: 1,
                    bytes: 0,
                    tag: 0,
                },
            ],
            vec![Op::Recv { from: 0, tag: 0 }, Op::Recv { from: 0, tag: 0 }],
        ];
        let out = simulate(&progs, &place(2), &fabric()).unwrap();
        assert!(out.makespan > 0.0);
    }

    #[test]
    fn barrier_aligns_clocks() {
        let progs = vec![
            vec![Op::Compute(0.1), Op::Barrier],
            vec![Op::Compute(2.0), Op::Barrier],
            vec![Op::Barrier],
        ];
        let out = simulate(&progs, &place(3), &fabric()).unwrap();
        for r in &out.ranks {
            assert!(r.total >= 2.0);
        }
        // Fast ranks accrue the wait as comm time.
        assert!(out.ranks[2].comm > 1.9);
        assert!(out.ranks[1].comm < 0.1);
    }

    #[test]
    fn ring_exchange_completes() {
        // Natural ring: everyone exchanges with both neighbours, in the
        // classic parity order (even ranks talk right first, odd ranks
        // left first) so matching exchanges are posted simultaneously.
        let n = 8usize;
        let mut progs = Vec::new();
        for r in 0..n {
            let right = (r + 1) % n;
            let left = (r + n - 1) % n;
            let tag = |a: usize, b: usize| 100 + a.min(b) as u64 * 7 + a.max(b) as u64;
            let ex_right = Op::Exchange {
                with: right,
                bytes: 4096,
                tag: tag(r, right),
            };
            let ex_left = Op::Exchange {
                with: left,
                bytes: 4096,
                tag: tag(r, left),
            };
            progs.push(if r % 2 == 0 {
                vec![ex_right, ex_left]
            } else {
                vec![ex_left, ex_right]
            });
        }
        let out = simulate(&progs, &place(n as u32), &fabric()).unwrap();
        assert!(out.makespan > 0.0);
        assert!(out.ranks.iter().all(|r| r.comm > 0.0));
    }

    #[test]
    fn bcast_waits_for_a_late_root() {
        // Root 1 computes for 2 s before broadcasting; every other rank
        // is already parked at the collective, and must end no earlier
        // than the root's clock plus the tree cost.
        let progs: Vec<Vec<Op>> = (0..4)
            .map(|r| {
                let mut p = Vec::new();
                if r == 1 {
                    p.push(Op::Compute(2.0));
                }
                p.push(Op::Bcast {
                    root: 1,
                    bytes: 1 << 20,
                });
                p
            })
            .collect();
        let out = simulate(&progs, &place(4), &fabric()).unwrap();
        let cost = collectives::bcast(&fabric(), &place(4), 1 << 20);
        for r in &out.ranks {
            assert!((r.total - (2.0 + cost)).abs() < 1e-12, "{}", r.total);
        }
        assert!(out.ranks[0].comm > 2.0);
    }

    #[test]
    fn bcast_does_not_back_charge_ranks_past_the_root() {
        // Root 0 broadcasts at t=0; rank 1 shows up at t=2 having
        // computed. The tree finished long before, so rank 1 keeps its
        // own clock and pays no collective wait.
        let progs = vec![
            vec![Op::Bcast { root: 0, bytes: 64 }],
            vec![Op::Compute(2.0), Op::Bcast { root: 0, bytes: 64 }],
        ];
        let out = simulate(&progs, &place(2), &fabric()).unwrap();
        let cost = collectives::bcast(&fabric(), &place(2), 64);
        assert!((out.ranks[0].total - cost).abs() < 1e-12);
        assert!((out.ranks[1].total - 2.0).abs() < 1e-12);
        assert_eq!(out.ranks[1].comm, 0.0);
    }

    #[test]
    fn spmd_program_set_on_cached_fabric_matches_per_rank_on_dyn() {
        use crate::program::{ByteRule, Peer, ProgramSet, SpmdOp};
        let template = vec![
            SpmdOp::Compute(1e-4),
            SpmdOp::Send {
                to: Peer::RingOffset(1),
                bytes: ByteRule::Uniform(8192),
                tag: 1,
            },
            SpmdOp::Recv {
                from: Peer::RingOffset(-1),
                tag: 1,
            },
            SpmdOp::Exchange {
                with: Peer::Xor(1),
                bytes: ByteRule::RankScaled { base: 256, step: 8 },
                tag: 2,
            },
            SpmdOp::AllReduce { bytes: 64 },
            SpmdOp::Bcast {
                root: 3,
                bytes: 512,
            },
        ];
        let set = ProgramSet::spmd(8, template);
        let direct = fabric();
        let cached = crate::fabric::CachedFabric::new(direct.clone());
        for plan in [FaultPlan::none(), FaultPlan::with_drops(13, 0.3)] {
            let fast = simulate_on(&set, &place(8), &cached, &plan).unwrap();
            let slow = simulate_with_faults(&set.materialize(), &place(8), &direct, &plan).unwrap();
            assert_eq!(fast, slow);
        }
    }

    #[test]
    fn alltoall_costs_more_with_more_bytes() {
        let mk = |bytes| {
            let progs: Vec<Vec<Op>> = (0..16)
                .map(|_| {
                    vec![Op::AllToAll {
                        bytes_per_pair: bytes,
                    }]
                })
                .collect();
            simulate(&progs, &place(16), &fabric()).unwrap().makespan
        };
        assert!(mk(1 << 16) > mk(1 << 8));
    }

    #[test]
    fn deadlock_is_detected_and_diagnosed() {
        // Two ranks each waiting for a message never sent.
        let progs = vec![
            vec![Op::Recv { from: 1, tag: 0 }],
            vec![Op::Recv { from: 0, tag: 0 }],
        ];
        let err = simulate(&progs, &place(2), &fabric()).unwrap_err();
        assert_eq!(err.stuck_ranks(), vec![0, 1]);
        assert!(err.to_string().contains("deadlock"));
        let SimError::Deadlock(report) = err else {
            panic!("expected a deadlock, got {err:?}");
        };
        // Each stuck rank names its pc, pending op, and peer.
        assert_eq!(report.stuck[0].pc, 0);
        assert_eq!(report.stuck[0].op, Op::Recv { from: 1, tag: 0 });
        assert_eq!(report.stuck[0].waiting_on, Some(1));
        assert_eq!(report.stuck[1].waiting_on, Some(0));
    }

    #[test]
    fn pipeline_wavefront_serializes() {
        // Rank r waits for r-1, computes, then releases r+1 — a LU-SGS
        // style pipeline. Makespan ≈ sum of stages, not max.
        let n = 4usize;
        let stage = 0.25;
        let mut progs = Vec::new();
        for r in 0..n {
            let mut p = Vec::new();
            if r > 0 {
                p.push(Op::Recv {
                    from: r - 1,
                    tag: 42,
                });
            }
            p.push(Op::Compute(stage));
            if r + 1 < n {
                p.push(Op::Send {
                    to: r + 1,
                    bytes: 8192,
                    tag: 42,
                });
            }
            progs.push(p);
        }
        let out = simulate(&progs, &place(n as u32), &fabric()).unwrap();
        assert!(out.makespan >= n as f64 * stage);
        assert!(out.makespan < n as f64 * stage + 0.01);
    }

    #[test]
    fn mismatched_placement_is_a_typed_error() {
        let err = simulate(&[vec![Op::Compute(1.0)]], &place(2), &fabric()).unwrap_err();
        assert_eq!(
            err,
            SimError::PlacementMismatch {
                programs: 1,
                placements: 2
            }
        );
        assert!(err
            .to_string()
            .contains("one CPU placement per rank program"));
    }

    // ---- fault-plan behaviour ----

    /// A ring of send/recv pairs with some compute, n ranks.
    fn ring_progs(n: usize, bytes: u64) -> Vec<Vec<Op>> {
        (0..n)
            .map(|r| {
                vec![
                    Op::Compute(1e-4),
                    Op::Send {
                        to: (r + 1) % n,
                        bytes,
                        tag: 1,
                    },
                    Op::Recv {
                        from: (r + n - 1) % n,
                        tag: 1,
                    },
                ]
            })
            .collect()
    }

    #[test]
    fn zero_fault_plan_is_bit_identical() {
        let progs = ring_progs(8, 65536);
        let base = simulate(&progs, &place(8), &fabric()).unwrap();
        let planned =
            simulate_with_faults(&progs, &place(8), &fabric(), &FaultPlan::none()).unwrap();
        assert_eq!(base, planned);
    }

    #[test]
    fn drops_inflate_makespan_monotonically() {
        let progs = ring_progs(16, 1 << 16);
        let mk = |p: f64| {
            simulate_with_faults(&progs, &place(16), &fabric(), &FaultPlan::with_drops(11, p))
                .unwrap()
        };
        let clean = mk(0.0);
        let mut prev = clean.makespan;
        for p in [0.01, 0.05, 0.2, 0.5] {
            let out = mk(p);
            assert!(out.makespan >= prev, "p={p}: {} < {prev}", out.makespan);
            prev = out.makespan;
        }
        // At 50% drop probability some message must have been dropped
        // and its retransmission delay must show in the stats.
        let heavy = mk(0.5);
        assert!(heavy.faults.dropped_messages > 0);
        assert!(heavy.faults.retransmit_delay > 0.0);
        assert!(heavy.makespan > clean.makespan);
    }

    #[test]
    fn indexed_mailbox_matches_reference_mailbox() {
        // The optimized per-sender channel index must be bit-identical
        // to the original HashMap mailbox, including under faults
        // (sequence numbers feed the drop sampling) and exchanges
        // (marker messages-to-self ride the same storage).
        let progs = mixed_progs(8);
        for plan in [FaultPlan::none(), FaultPlan::with_drops(7, 0.3)] {
            let indexed = simulate_with_faults(&progs, &place(8), &fabric(), &plan).unwrap();
            let reference =
                simulate_reference_mailbox(&progs, &place(8), &fabric(), &plan).unwrap();
            assert_eq!(indexed, reference);
        }
    }

    #[test]
    fn same_seed_same_outcome() {
        let progs = ring_progs(12, 4096);
        let a = simulate_with_faults(
            &progs,
            &place(12),
            &fabric(),
            &FaultPlan::with_drops(5, 0.3),
        )
        .unwrap();
        let b = simulate_with_faults(
            &progs,
            &place(12),
            &fabric(),
            &FaultPlan::with_drops(5, 0.3),
        )
        .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn slow_cpu_stretches_its_compute() {
        let progs = vec![vec![Op::Compute(1.0)], vec![Op::Compute(1.0)]];
        let plan = FaultPlan::none().slow_cpu(CpuId::new(0, 1), 2.5);
        let out = simulate_with_faults(&progs, &place(2), &fabric(), &plan).unwrap();
        assert!((out.ranks[0].total - 1.0).abs() < 1e-12);
        assert!((out.ranks[1].total - 2.5).abs() < 1e-12);
    }

    #[test]
    fn degraded_link_slows_cross_node_traffic_only() {
        let cfg = ClusterConfig::uniform(NodeKind::Bx2b, 2);
        let f = ClusterFabric::new(
            cfg,
            InterNodeFabric::NumaLink4,
            crate::fabric::MptVersion::Beta,
            4,
        );
        let cpus = vec![
            CpuId::new(0, 0),
            CpuId::new(0, 1),
            CpuId::new(1, 0),
            CpuId::new(1, 1),
        ];
        let progs = ring_progs(4, 1 << 20);
        let clean = simulate_with_faults(&progs, &cpus, &f, &FaultPlan::none()).unwrap();
        let plan = FaultPlan::none().degrade_link(NodeId(0), NodeId(1), 4.0, 0.25);
        let slow = simulate_with_faults(&progs, &cpus, &f, &plan).unwrap();
        assert!(slow.makespan > clean.makespan);
    }

    #[test]
    fn watchdog_fires_on_tiny_budget() {
        let progs = ring_progs(8, 1024);
        let plan = FaultPlan::none().with_event_budget(3);
        let err = simulate_with_faults(&progs, &place(8), &fabric(), &plan).unwrap_err();
        let SimError::WatchdogTimeout { events, budget } = err else {
            panic!("expected watchdog, got {err:?}");
        };
        assert_eq!(budget, 3);
        assert!(events > budget);
    }

    #[test]
    fn watchdog_budget_allows_normal_runs() {
        let progs = ring_progs(8, 1024);
        // Generous budget: the run completes and reports its events.
        let plan = FaultPlan::none().with_event_budget(10_000);
        let out = simulate_with_faults(&progs, &place(8), &fabric(), &plan).unwrap();
        assert!(out.faults.events > 0);
        assert!(out.faults.events <= 10_000);
    }

    fn two_node_fabric_and_cpus(per_node: u32) -> (ClusterFabric, Vec<CpuId>) {
        let cfg = ClusterConfig::uniform(NodeKind::Bx2b, 2);
        let f = ClusterFabric::new(
            cfg,
            InterNodeFabric::InfiniBand,
            crate::fabric::MptVersion::Beta,
            per_node * 2,
        );
        let cpus: Vec<CpuId> = (0..per_node * 2)
            .map(|i| CpuId::new(i / per_node, i % per_node))
            .collect();
        (f, cpus)
    }

    #[test]
    fn connection_exhaustion_fails_under_fail_policy() {
        let (f, cpus) = two_node_fabric_and_cpus(8);
        // 8 procs/node over 2 nodes need 8² = 64 connections; allow 32.
        let plan = FaultPlan::none().with_connection_limit(ConnectionLimit {
            cards_per_node: 1,
            connections_per_card: 32,
            policy: ConnectionPolicy::Fail,
        });
        let progs = ring_progs(16, 4096);
        let err = simulate_with_faults(&progs, &cpus, &f, &plan).unwrap_err();
        let SimError::ConnectionsExhausted {
            procs_on_node,
            required,
            available,
            ..
        } = err
        else {
            panic!("expected exhaustion, got {err:?}");
        };
        assert_eq!(procs_on_node, 8);
        assert_eq!(required, 64);
        assert_eq!(available, 32);
    }

    #[test]
    fn connection_exhaustion_multiplexes_gracefully() {
        let (f, cpus) = two_node_fabric_and_cpus(8);
        let progs = ring_progs(16, 4096);
        let clean = simulate_with_faults(&progs, &cpus, &f, &FaultPlan::none()).unwrap();
        let plan = FaultPlan::none().with_connection_limit(ConnectionLimit {
            cards_per_node: 1,
            connections_per_card: 32,
            policy: ConnectionPolicy::Multiplex {
                queue_penalty: 2.0e-6,
            },
        });
        let muxed = simulate_with_faults(&progs, &cpus, &f, &plan).unwrap();
        assert!(muxed.faults.multiplexed_messages > 0);
        assert!(muxed.faults.multiplex_delay > 0.0);
        assert!(muxed.faults.oversubscription > 1.0);
        assert!(muxed.makespan > clean.makespan);
    }

    // ---- SimOutcome edge cases ----

    #[test]
    fn zero_rank_outcome_has_zero_comm_stats() {
        let out = simulate(&[], &[], &fabric()).unwrap();
        assert!(out.ranks.is_empty());
        assert_eq!(out.mean_comm(), 0.0);
        assert_eq!(out.max_comm(), 0.0);
        assert_eq!(out.makespan, 0.0);
    }

    #[test]
    fn single_rank_mean_equals_max() {
        let progs = vec![vec![
            Op::Compute(0.5),
            Op::Send {
                to: 0,
                bytes: 1024,
                tag: 9,
            },
            Op::Recv { from: 0, tag: 9 },
        ]];
        let out = simulate(&progs, &place(1), &fabric()).unwrap();
        assert!(out.ranks[0].comm > 0.0);
        assert_eq!(out.mean_comm(), out.max_comm());
        assert_eq!(out.mean_comm(), out.ranks[0].comm);
    }

    #[test]
    fn all_compute_program_has_no_comm() {
        let progs: Vec<Vec<Op>> = (0..4)
            .map(|r| vec![Op::Compute(0.1 * (r + 1) as f64), Op::Compute(0.2)])
            .collect();
        let out = simulate(&progs, &place(4), &fabric()).unwrap();
        assert_eq!(out.mean_comm(), 0.0);
        assert_eq!(out.max_comm(), 0.0);
        assert!((out.makespan - 0.6).abs() < 1e-12);
    }

    // ---- tracer behaviour ----

    use columbia_obs::{RecordingTracer, SpanKind, Track};

    /// A workload exercising every op kind: compute, send/recv ring,
    /// exchange pairs, and two collectives.
    fn mixed_progs(n: usize) -> Vec<Vec<Op>> {
        (0..n)
            .map(|r| {
                vec![
                    Op::Compute(1e-4 * (1.0 + r as f64)),
                    Op::Send {
                        to: (r + 1) % n,
                        bytes: 32768,
                        tag: 1,
                    },
                    Op::Recv {
                        from: (r + n - 1) % n,
                        tag: 1,
                    },
                    Op::Barrier,
                    Op::Exchange {
                        with: r ^ 1,
                        bytes: 4096,
                        tag: 50 + (r | 1) as u64,
                    },
                    Op::AllReduce { bytes: 64 },
                ]
            })
            .collect()
    }

    #[test]
    fn recording_tracer_does_not_perturb_the_outcome() {
        let progs = mixed_progs(8);
        let plan = FaultPlan::with_drops(7, 0.3);
        let plain = simulate_with_faults(&progs, &place(8), &fabric(), &plan).unwrap();
        let mut tracer = RecordingTracer::new();
        let traced = simulate_traced(&progs, &place(8), &fabric(), &plan, &mut tracer).unwrap();
        assert_eq!(plain, traced);
        assert!(!tracer.spans.is_empty());
        assert_eq!(tracer.n_ranks(), 8);
    }

    #[test]
    fn cpu_spans_tile_each_rank_timeline() {
        let progs = mixed_progs(8);
        let mut tracer = RecordingTracer::new();
        let out = simulate_traced(
            &progs,
            &place(8),
            &fabric(),
            &FaultPlan::none(),
            &mut tracer,
        )
        .unwrap();
        for (r, rank) in out.ranks.iter().enumerate() {
            let mut cursor = 0.0;
            let mut sum = 0.0;
            for s in tracer
                .rank_spans(r)
                .filter(|s| s.kind.track() == Track::Cpu)
            {
                assert!(
                    s.start >= cursor - 1e-12,
                    "rank {r}: span {s:?} starts before {cursor}"
                );
                assert!(s.end >= s.start);
                cursor = s.end;
                sum += s.duration();
            }
            assert!(
                (sum - rank.total).abs() < 1e-9,
                "rank {r}: spans sum to {sum}, clock is {}",
                rank.total
            );
        }
    }

    #[test]
    fn causal_edges_join_spans_bit_exactly() {
        use columbia_obs::EdgeKind;
        let progs = mixed_progs(8);
        let plan = FaultPlan::with_drops(7, 0.3);
        let mut tracer = RecordingTracer::new();
        let out = simulate_traced(&progs, &place(8), &fabric(), &plan, &mut tracer).unwrap();
        // Placement is recorded for every rank.
        assert_eq!(tracer.rank_nodes.len(), 8);
        // Every blocking span's end is the arrival/release time of
        // exactly the edge that caused it — the analyzer joins on the
        // raw f64 bits, so the match must be exact, not approximate.
        for s in &tracer.spans {
            let want = match s.kind {
                SpanKind::RecvWait => EdgeKind::Message,
                SpanKind::Collective => EdgeKind::Collective,
                _ => continue,
            };
            assert!(
                tracer.edges.iter().any(|e| e.kind == want
                    && e.dst_rank == s.rank
                    && e.dst_time.to_bits() == s.end.to_bits()),
                "no {want:?} edge arriving at rank {} t={} (bits) for span {s:?}",
                s.rank,
                s.end
            );
        }
        // One message edge per delivered message, each carrying its
        // payload and a nonnegative fault tail bounded by the hop.
        let messages: Vec<_> = tracer
            .edges
            .iter()
            .filter(|e| e.kind == EdgeKind::Message)
            .collect();
        assert_eq!(
            messages.len() as u64,
            tracer.metrics.counter("messages_sent")
        );
        for e in &messages {
            assert!(e.bytes > 0);
            assert!(e.wire_time > 0.0);
            assert!(e.fault_delay >= 0.0);
            assert!(e.src_time < e.dst_time);
        }
        assert!(
            messages.iter().any(|e| e.fault_delay > 0.0),
            "the drop plan must surface as fault delay on some edge"
        );
        // And the analyzer closes the loop: the extracted critical
        // path accounts for the whole makespan.
        let analysis = columbia_obs::analyze(&tracer.into_bundle("join test"));
        let cp = &analysis.critical_path;
        assert!(!cp.truncated);
        assert!(
            (cp.total - out.makespan).abs() < 1e-9 * out.makespan.max(1.0),
            "critical path covers {} of makespan {}",
            cp.total,
            out.makespan
        );
        assert!(cp.breakdown.fault_retransmit > 0.0);
    }

    #[test]
    fn faults_surface_as_net_spans_and_message_metrics() {
        let progs = ring_progs(16, 1 << 16);
        let plan = FaultPlan::with_drops(11, 0.5);
        let mut tracer = RecordingTracer::new();
        let out = simulate_traced(&progs, &place(16), &fabric(), &plan, &mut tracer).unwrap();
        assert!(out.faults.dropped_messages > 0);
        let backoffs = tracer
            .spans
            .iter()
            .filter(|s| s.kind == SpanKind::RetransmitBackoff)
            .count() as u64;
        assert_eq!(backoffs, out.faults.dropped_messages);
        assert_eq!(tracer.metrics.counter("messages_sent"), 16);
        assert_eq!(
            tracer.metrics.counter("messages_dropped"),
            out.faults.dropped_messages
        );
        assert_eq!(
            tracer.metrics.counter("retransmits"),
            out.faults.drop_events
        );
        assert_eq!(tracer.metrics.counter("bytes_sent"), 16 * (1 << 16));
        let lat = tracer.metrics.histogram("message_latency_seconds").unwrap();
        assert_eq!(lat.count(), 16);
    }

    #[test]
    fn multiplexed_run_records_occupancy_gauge_and_queue_spans() {
        let (f, cpus) = two_node_fabric_and_cpus(8);
        let plan = FaultPlan::none().with_connection_limit(ConnectionLimit {
            cards_per_node: 1,
            connections_per_card: 32,
            policy: ConnectionPolicy::Multiplex {
                queue_penalty: 2.0e-6,
            },
        });
        let progs = ring_progs(16, 4096);
        let mut tracer = RecordingTracer::new();
        let out = simulate_traced(&progs, &cpus, &f, &plan, &mut tracer).unwrap();
        assert!(out.faults.multiplexed_messages > 0);
        let mux_spans = tracer
            .spans
            .iter()
            .filter(|s| s.kind == SpanKind::MultiplexQueue)
            .count() as u64;
        assert_eq!(mux_spans, out.faults.multiplexed_messages);
        let occ = tracer.metrics.gauge_value("connection_occupancy").unwrap();
        assert!((occ - out.faults.oversubscription).abs() < 1e-12);
        // Cross-node traffic shows up in the per-link byte ledger.
        assert!(tracer
            .metrics
            .links_by_bytes()
            .iter()
            .any(|((a, b), bytes)| a != b && *bytes > 0));
    }

    #[test]
    fn profile_attribution_matches_engine_accounting() {
        let progs = mixed_progs(8);
        let mut tracer = RecordingTracer::new();
        let out = simulate_traced(
            &progs,
            &place(8),
            &fabric(),
            &FaultPlan::none(),
            &mut tracer,
        )
        .unwrap();
        let profile = tracer.profile();
        assert!((profile.makespan - out.makespan).abs() < 1e-9);
        for (r, rank) in out.ranks.iter().enumerate() {
            let p = &profile.ranks[r];
            assert!((p.compute - rank.compute).abs() < 1e-9, "rank {r} compute");
            // The engine's "comm" bundles active comm and blocked wait;
            // the profile splits them.
            assert!((p.comm + p.wait - rank.comm).abs() < 1e-9, "rank {r} comm");
            assert!((p.accounted() - rank.total).abs() < 1e-9, "rank {r} total");
        }
        // Two collectives per rank ⇒ three phases (last may be empty).
        assert!(profile.phases.len() >= 2);
    }

    #[test]
    fn within_budget_placement_pays_no_multiplex_penalty() {
        let (f, cpus) = two_node_fabric_and_cpus(4);
        // 4 procs/node need 16 connections; budget 1024 — plenty.
        let plan = FaultPlan::none().with_connection_limit(ConnectionLimit {
            cards_per_node: 1,
            connections_per_card: 1024,
            policy: ConnectionPolicy::Multiplex {
                queue_penalty: 2.0e-6,
            },
        });
        let progs = ring_progs(8, 4096);
        let out = simulate_with_faults(&progs, &cpus, &f, &plan).unwrap();
        assert_eq!(out.faults.multiplexed_messages, 0);
        assert!(out.faults.oversubscription <= 1.0);
        assert!(out.faults.oversubscription > 0.0);
    }
}
