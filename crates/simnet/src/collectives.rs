//! Closed-form cost models for MPI collective operations.
//!
//! The engine synchronizes all participants of a collective and then
//! charges these costs. The models are the standard logarithmic-tree /
//! bisection forms, parameterized by representative point-to-point
//! latency and bandwidth taken from the participating CPUs' fabric
//! view, plus the inter-node contention factor for the all-to-all
//! (whose bisection pressure dominates FT and the OVERFLOW-D boundary
//! exchange — see Fig. 6 and §4.1.4).

use columbia_machine::cluster::CpuId;

use crate::fabric::Fabric;

/// Representative latency/bandwidth over a set of participants: the
/// worst pair for latency (the straggler sets the pace) and the
/// worst-pair bandwidth. Sampling the diameter pair keeps this O(p).
fn representative<F: Fabric + ?Sized>(fabric: &F, cpus: &[CpuId]) -> (f64, f64) {
    let p = cpus.len();
    if p < 2 {
        return (0.0, f64::INFINITY);
    }
    // The farthest pair among (first, last) and (first, middle) is a
    // good stand-in for the diameter on our hierarchical topologies.
    let probes = [(0, p - 1), (0, p / 2), (p / 2, p - 1)];
    let mut lat: f64 = 0.0;
    let mut bw = f64::INFINITY;
    for (i, j) in probes {
        if i == j {
            continue;
        }
        lat = lat.max(fabric.latency(cpus[i], cpus[j]));
        bw = bw.min(fabric.bandwidth(cpus[i], cpus[j]));
    }
    (lat, bw)
}

/// Barrier: a dissemination barrier costs `ceil(log2 p)` rounds of the
/// representative latency.
pub fn barrier<F: Fabric + ?Sized>(fabric: &F, cpus: &[CpuId]) -> f64 {
    let p = cpus.len() as f64;
    if p < 2.0 {
        return 0.0;
    }
    let (lat, _) = representative(fabric, cpus);
    lat * p.log2().ceil()
}

/// Allreduce of `bytes` per rank: recursive doubling — `log2 p` rounds,
/// each moving the full payload.
pub fn allreduce<F: Fabric + ?Sized>(fabric: &F, cpus: &[CpuId], bytes: u64) -> f64 {
    let p = cpus.len() as f64;
    if p < 2.0 {
        return 0.0;
    }
    let (lat, bw) = representative(fabric, cpus);
    let rounds = p.log2().ceil();
    rounds * (lat + bytes as f64 / bw)
}

/// Broadcast of `bytes` from one root: binomial tree.
pub fn bcast<F: Fabric + ?Sized>(fabric: &F, cpus: &[CpuId], bytes: u64) -> f64 {
    let p = cpus.len() as f64;
    if p < 2.0 {
        return 0.0;
    }
    let (lat, bw) = representative(fabric, cpus);
    p.log2().ceil() * (lat + bytes as f64 / bw)
}

/// All-to-all with `bytes_per_pair` between every ordered pair: each
/// rank serializes `(p-1) * bytes` through its injection port, and
/// cross-node flows additionally suffer the fabric's contention factor.
///
/// This is the pattern that made FT "about twice as fast on BX2 than on
/// 3700" at 256 CPUs (Fig. 6) — the cost is bandwidth-dominated.
pub fn alltoall<F: Fabric + ?Sized>(fabric: &F, cpus: &[CpuId], bytes_per_pair: u64) -> f64 {
    let p = cpus.len();
    if p < 2 {
        return 0.0;
    }
    let (lat, _) = representative(fabric, cpus);
    let volume = (p - 1) as f64 * bytes_per_pair as f64;
    let bw = fabric.alltoall_bandwidth(cpus);
    // Latency term: p-1 message setups amortized by pipelining into
    // log2(p) effective rounds.
    lat * (p as f64).log2().ceil() + volume / bw
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::{ClusterFabric, MptVersion};
    use columbia_machine::cluster::{ClusterConfig, InterNodeFabric};
    use columbia_machine::node::NodeKind;

    fn cpus_on_one_node(n: u32) -> Vec<CpuId> {
        (0..n).map(|c| CpuId::new(0, c)).collect()
    }

    fn fabric_one_node() -> ClusterFabric {
        ClusterFabric::single_node(ClusterConfig::uniform(NodeKind::Bx2b, 1))
    }

    #[test]
    fn trivial_communicators_cost_nothing() {
        let f = fabric_one_node();
        let one = cpus_on_one_node(1);
        assert_eq!(barrier(&f, &one), 0.0);
        assert_eq!(allreduce(&f, &one, 1024), 0.0);
        assert_eq!(alltoall(&f, &one, 1024), 0.0);
        assert_eq!(bcast(&f, &one, 1024), 0.0);
    }

    #[test]
    fn barrier_scales_logarithmically() {
        let f = fabric_one_node();
        let t64 = barrier(&f, &cpus_on_one_node(64));
        let t128 = barrier(&f, &cpus_on_one_node(128));
        assert!(t128 > t64);
        // Doubling the ranks adds roughly one round, not a doubling.
        assert!(t128 < 1.6 * t64);
    }

    #[test]
    fn alltoall_grows_superlinearly_with_ranks() {
        let f = fabric_one_node();
        let t32 = alltoall(&f, &cpus_on_one_node(32), 4096);
        let t64 = alltoall(&f, &cpus_on_one_node(64), 4096);
        // Per-rank volume doubles when ranks double.
        assert!(t64 > 1.8 * t32, "t32={t32} t64={t64}");
    }

    #[test]
    fn allreduce_larger_payload_costs_more() {
        let f = fabric_one_node();
        let cpus = cpus_on_one_node(16);
        assert!(allreduce(&f, &cpus, 1 << 20) > allreduce(&f, &cpus, 1 << 10));
    }

    #[test]
    fn cross_node_alltoall_worse_on_infiniband() {
        let cfg = ClusterConfig::uniform(NodeKind::Bx2b, 2);
        let mut cpus = Vec::new();
        for node in 0..2 {
            for c in 0..64 {
                cpus.push(CpuId::new(node, c));
            }
        }
        let nl = ClusterFabric::new(
            cfg.clone(),
            InterNodeFabric::NumaLink4,
            MptVersion::Beta,
            128,
        );
        let ib = ClusterFabric::new(cfg, InterNodeFabric::InfiniBand, MptVersion::Beta, 128);
        let t_nl = alltoall(&nl, &cpus, 8192);
        let t_ib = alltoall(&ib, &cpus, 8192);
        assert!(t_ib > t_nl, "ib={t_ib} nl={t_nl}");
    }

    #[test]
    fn released_mpt_slows_ib_collectives() {
        let cfg = ClusterConfig::uniform(NodeKind::Bx2b, 2);
        let mut cpus = Vec::new();
        for node in 0..2 {
            for c in 0..128 {
                cpus.push(CpuId::new(node, c));
            }
        }
        let beta = ClusterFabric::new(
            cfg.clone(),
            InterNodeFabric::InfiniBand,
            MptVersion::Beta,
            256,
        );
        let rel = ClusterFabric::new(cfg, InterNodeFabric::InfiniBand, MptVersion::Released, 256);
        assert!(alltoall(&rel, &cpus, 8192) > alltoall(&beta, &cpus, 8192));
    }
}
