//! Point-to-point cost models for the three Columbia fabrics.
//!
//! A [`Fabric`] answers, for a pair of CPUs, the one-way latency and the
//! sustainable per-stream bandwidth; everything else (ring patterns,
//! collectives, application exchanges) is composed from those answers
//! plus contention terms. [`ClusterFabric`] is the production
//! implementation: NUMAlink inside each node, and either NUMAlink4 or
//! InfiniBand between nodes.

use columbia_machine::calib;
use columbia_machine::cluster::{ClusterConfig, CpuId, InterNodeFabric, NodeId};
use columbia_machine::topology::NodeTopology;

/// Version of SGI's Message Passing Toolkit runtime in use.
///
/// §4.6.2: the *released* `mpt1.llr` showed an InfiniBand collective
/// anomaly (SP-MZ 40% slower on 256 CPUs); the beta `mpt1.llb` closed
/// the gap to NUMAlink4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MptVersion {
    /// Released library, `mpt1.llr` in the paper's notation.
    Released,
    /// Beta library, `mpt1.llb`.
    Beta,
}

impl MptVersion {
    /// Multiplier applied to InfiniBand collective/exchange costs.
    ///
    /// The anomaly shrinks as CPU count grows (the paper observed IB
    /// "performance improves as the number of CPUs increases"), so the
    /// penalty decays from its calibrated maximum at 256 CPUs.
    pub fn ib_penalty(self, total_cpus: u32) -> f64 {
        match self {
            MptVersion::Beta => 1.0,
            MptVersion::Released => {
                let peak = calib::MPT_RELEASED_IB_PENALTY;
                // Peak at ≤256 CPUs, decaying toward ~1.1 by 2048.
                let cpus = total_cpus.max(1) as f64;
                if cpus <= 256.0 {
                    peak
                } else {
                    1.0 + (peak - 1.0) * (256.0 / cpus).powf(0.75)
                }
            }
        }
    }
}

/// One-way message cost model.
pub trait Fabric {
    /// One-way small-message latency from `src` to `dst`, seconds.
    fn latency(&self, src: CpuId, dst: CpuId) -> f64;

    /// Per-stream sustainable bandwidth from `src` to `dst`, bytes/s.
    fn bandwidth(&self, src: CpuId, dst: CpuId) -> f64;

    /// Time for one `bytes`-byte message: `latency + bytes/bandwidth`.
    fn pt2pt_time(&self, src: CpuId, dst: CpuId, bytes: u64) -> f64 {
        self.latency(src, dst) + bytes as f64 / self.bandwidth(src, dst)
    }

    /// Slowdown factor (≥ 1) applied when `flows` independent streams
    /// simultaneously cross between nodes; 1.0 for in-node traffic on
    /// the linearly-scaling NUMAlink fat tree.
    fn internode_contention(&self, flows: u32) -> f64;

    /// Effective per-rank bandwidth during a `p`-way all-to-all.
    ///
    /// Under an all-to-all every rank injects simultaneously, so the
    /// *link* — not the memcpy path — limits each rank, and router
    /// contention grows with participant count. Default: the plain
    /// worst-pair stream bandwidth (no saturation model).
    fn alltoall_bandwidth(&self, cpus: &[CpuId]) -> f64 {
        if cpus.len() < 2 {
            return f64::INFINITY;
        }
        self.bandwidth(cpus[0], cpus[cpus.len() - 1])
    }

    /// A strictly positive lower bound on the one-way latency of any
    /// cross-node message within the placement — the conservative PDES
    /// lookahead (`crate::pdes`): no event on one node can affect
    /// another node sooner than this after it is posted.
    ///
    /// `None` (the default, and the answer whenever the placement spans
    /// fewer than two nodes or the bound would be zero) means "no usable
    /// lookahead"; the engine then falls back to serial execution.
    /// Implementations must never return a value above the true
    /// minimum: a too-small bound only costs synchronization rounds, a
    /// too-large one would break the conservative execution order.
    fn min_cross_node_latency(&self, cpus: &[CpuId]) -> Option<f64> {
        let _ = cpus;
        None
    }
}

/// The production fabric: NUMAlink inside nodes, a selectable fabric
/// between them.
#[derive(Debug, Clone)]
pub struct ClusterFabric {
    config: ClusterConfig,
    inter: InterNodeFabric,
    mpt: MptVersion,
    /// Total CPUs participating (used by the MPT penalty decay).
    total_cpus: u32,
}

impl ClusterFabric {
    /// Fabric over `config` using `inter` between nodes.
    pub fn new(
        config: ClusterConfig,
        inter: InterNodeFabric,
        mpt: MptVersion,
        total_cpus: u32,
    ) -> Self {
        ClusterFabric {
            config,
            inter,
            mpt,
            total_cpus,
        }
    }

    /// Convenience: a single-node fabric (inter-node choice irrelevant).
    pub fn single_node(config: ClusterConfig) -> Self {
        ClusterFabric::new(config, InterNodeFabric::NumaLink4, MptVersion::Beta, 512)
    }

    /// The cluster configuration this fabric spans.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Which inter-node fabric is selected.
    pub fn inter_node(&self) -> InterNodeFabric {
        self.inter
    }

    /// The MPT runtime version modelled.
    pub fn mpt(&self) -> MptVersion {
        self.mpt
    }

    fn node_topology(&self, node: columbia_machine::cluster::NodeId) -> NodeTopology {
        NodeTopology::new(self.config.node_model(node).brick)
    }

    fn in_node_latency(&self, src: CpuId, dst: CpuId) -> f64 {
        let hops = self.node_topology(src.node).hops(src.cpu, dst.cpu);
        calib::MPI_OVERHEAD + hops as f64 * calib::NUMALINK_HOP_LATENCY
    }

    fn in_node_bandwidth(&self, src: CpuId, dst: CpuId) -> f64 {
        let node = self.config.node_model(src.node);
        let memcpy = node.processor.clock_ghz * calib::SHM_COPY_BYTES_PER_GHZ;
        let hops = self.node_topology(src.node).hops(src.cpu, dst.cpu);
        if hops == 0 {
            // Bus mates: a pure shared-memory copy, processor-bound.
            memcpy
        } else {
            // Through NUMAlink: the link caps one stream, but so does
            // the copy in/out of the MPI buffers.
            (node.brick_link_bandwidth() * calib::NUMALINK_MPI_FRACTION)
                .min(memcpy * calib::SHM_COPY_LINK_CAP)
        }
    }
}

impl Fabric for ClusterFabric {
    fn latency(&self, src: CpuId, dst: CpuId) -> f64 {
        if src.node == dst.node {
            return self.in_node_latency(src, dst);
        }
        match self.inter {
            InterNodeFabric::NumaLink4 => {
                // Crossing nodes climbs the full router tree on both
                // sides (half a node diameter each) plus the inter-node
                // NUMAlink4 cable hops.
                let src_cpus = self.config.node_model(src.node).cpus;
                let dst_cpus = self.config.node_model(dst.node).cpus;
                let src_climb = self.node_topology(src.node).diameter(src_cpus) / 2;
                let dst_climb = self.node_topology(dst.node).diameter(dst_cpus) / 2;
                let hops = src_climb + dst_climb + 2;
                calib::MPI_OVERHEAD + hops as f64 * calib::NUMALINK_HOP_LATENCY
            }
            InterNodeFabric::InfiniBand => {
                let node_dist = (src.node.0 as i64 - dst.node.0 as i64).unsigned_abs() as f64;
                // The released-MPT anomaly (§4.6.2) lives in the send
                // path, so it taxes every message's latency — which is
                // why SP-MZ (many small boundary messages) lost 40%
                // while bandwidth-bound codes barely noticed.
                (calib::INFINIBAND_LATENCY + node_dist * calib::INFINIBAND_NODE_HOP_LATENCY)
                    * self.mpt.ib_penalty(self.total_cpus)
            }
        }
    }

    fn bandwidth(&self, src: CpuId, dst: CpuId) -> f64 {
        if src.node == dst.node {
            return self.in_node_bandwidth(src, dst);
        }
        match self.inter {
            InterNodeFabric::NumaLink4 => {
                let memcpy = self.config.node_model(src.node).processor.clock_ghz
                    * calib::SHM_COPY_BYTES_PER_GHZ;
                (calib::NUMALINK4_BANDWIDTH * calib::NUMALINK_MPI_FRACTION)
                    .min(memcpy * calib::SHM_COPY_LINK_CAP)
            }
            InterNodeFabric::InfiniBand => {
                calib::INFINIBAND_BANDWIDTH / self.mpt.ib_penalty(self.total_cpus).sqrt()
            }
        }
    }

    fn alltoall_bandwidth(&self, cpus: &[CpuId]) -> f64 {
        let p = cpus.len();
        if p < 2 {
            return f64::INFINITY;
        }
        // In-node (or NUMAlink-coupled) part: links saturate; router
        // contention grows as sqrt(p). The NUMAlink4 generation's
        // doubled link bandwidth carries straight through — the
        // mechanism behind FT's ~2x BX2-over-3700 at 256 CPUs (Fig. 6).
        let node = self.config.node_model(cpus[0].node);
        let link = match self.inter {
            _ if cpus.iter().all(|c| c.node == cpus[0].node) => node.brick_link_bandwidth(),
            InterNodeFabric::NumaLink4 => calib::NUMALINK4_BANDWIDTH,
            InterNodeFabric::InfiniBand => {
                // Cross-node IB all-to-all: cards shared by all flows.
                let first = cpus[0].node;
                let off = cpus.iter().filter(|c| c.node != first).count() as u32;
                let flows = (off.min(p as u32 - off)).max(1) * 2;
                return calib::INFINIBAND_BANDWIDTH
                    / self.internode_contention(flows)
                    / self.mpt.ib_penalty(self.total_cpus);
            }
        };
        // Calibrated to Fig. 6: per-rank all-to-all throughput decays
        // roughly linearly with participants (pairwise rounds each gated
        // by the busiest router).
        let saturation = (p as f64 / 4.0).max(1.0);
        link * calib::NUMALINK_MPI_FRACTION / saturation
    }

    fn min_cross_node_latency(&self, cpus: &[CpuId]) -> Option<f64> {
        // Cross-node latency in this model depends only on the node
        // pair, never on the CPU index, so CPU 0 represents each node.
        let mut nodes: Vec<u32> = cpus.iter().map(|c| c.node.0).collect();
        nodes.sort_unstable();
        nodes.dedup();
        let mut min = f64::INFINITY;
        for (i, &a) in nodes.iter().enumerate() {
            for &b in &nodes[i + 1..] {
                min = min.min(self.latency(CpuId::new(a, 0), CpuId::new(b, 0)));
                min = min.min(self.latency(CpuId::new(b, 0), CpuId::new(a, 0)));
            }
        }
        (min.is_finite() && min > 0.0).then_some(min)
    }

    fn internode_contention(&self, flows: u32) -> f64 {
        if flows <= 1 {
            return 1.0;
        }
        match self.inter {
            // The NUMAlink4 node coupling has ample parallel links; mild
            // contention only.
            InterNodeFabric::NumaLink4 => 1.0 + 0.02 * (flows as f64).ln(),
            // InfiniBand: flows share the per-node cards. §4.6.1: the
            // random ring shows "severe problems with scalability".
            InterNodeFabric::InfiniBand => {
                let cards = self.config.ib_cards_per_node as f64;
                let per_card = (flows as f64 / cards).max(1.0);
                per_card.powf(calib::IB_CONTENTION_EXP) * self.mpt.ib_penalty(self.total_cpus)
            }
        }
    }
}

/// Per-node cost tables indexed by router hop count.
#[derive(Debug, Clone)]
struct NodeCostCache {
    topo: NodeTopology,
    /// Indexed by hop count; entries at hop values no pair of this
    /// node's CPUs can produce are `NaN` sentinels (never hit for valid
    /// CPU indices — the query path falls back to direct evaluation).
    lat_by_hops: Vec<f64>,
    bw_by_hops: Vec<f64>,
}

/// A memoized view of a [`ClusterFabric`] serving per-message costs
/// from precomputed tables.
///
/// CPU pairs on the hierarchical topology fall into a handful of
/// equivalence classes: within a node the cost depends only on the
/// router hop count (same bus, same brick, router-tree LCA level);
/// across nodes it depends only on the node pair, never on the CPU
/// indices. `CachedFabric` classifies once at construction — per-node
/// latency/bandwidth tables evaluated at the
/// [`NodeTopology::hop_classes`] representatives, plus dense node-pair
/// tables for cross-node traffic — so the per-message `pt2pt_time` in
/// the engine's hot loop becomes a table lookup instead of a topology
/// walk (and, on InfiniBand, a `powf`). Every entry is produced by
/// evaluating the wrapped fabric itself, so the cache is *bitwise*
/// identical to direct evaluation (property-tested).
#[derive(Debug, Clone)]
pub struct CachedFabric {
    inner: ClusterFabric,
    nodes: Vec<NodeCostCache>,
    /// `latency(node s → node d)` at index `s * n + d` (diagonal unused).
    cross_lat: Vec<f64>,
    cross_bw: Vec<f64>,
}

impl CachedFabric {
    /// Precompute the pair-class tables for `inner`.
    pub fn new(inner: ClusterFabric) -> Self {
        let n = inner.config().nodes.len();
        let mut nodes = Vec::with_capacity(n);
        for node in 0..n as u32 {
            let model = inner.config().node_model(NodeId(node));
            let topo = NodeTopology::new(model.brick);
            let classes = topo.hop_classes(model.cpus);
            let max_hops = classes.last().map_or(0, |&(h, _)| h) as usize;
            let mut lat_by_hops = vec![f64::NAN; max_hops + 1];
            let mut bw_by_hops = vec![f64::NAN; max_hops + 1];
            for &(h, rep) in &classes {
                let (a, b) = (CpuId::new(node, 0), CpuId::new(node, rep));
                lat_by_hops[h as usize] = inner.latency(a, b);
                bw_by_hops[h as usize] = inner.bandwidth(a, b);
            }
            nodes.push(NodeCostCache {
                topo,
                lat_by_hops,
                bw_by_hops,
            });
        }
        let mut cross_lat = vec![0.0; n * n];
        let mut cross_bw = vec![0.0; n * n];
        for s in 0..n {
            for d in 0..n {
                if s == d {
                    continue;
                }
                let (a, b) = (CpuId::new(s as u32, 0), CpuId::new(d as u32, 0));
                cross_lat[s * n + d] = inner.latency(a, b);
                cross_bw[s * n + d] = inner.bandwidth(a, b);
            }
        }
        CachedFabric {
            inner,
            nodes,
            cross_lat,
            cross_bw,
        }
    }

    /// The wrapped fabric.
    pub fn inner(&self) -> &ClusterFabric {
        &self.inner
    }

    fn cross(&self, table: &[f64], src: CpuId, dst: CpuId) -> Option<f64> {
        let n = self.nodes.len();
        let (s, d) = (src.node.0 as usize, dst.node.0 as usize);
        if s < n && d < n {
            Some(table[s * n + d])
        } else {
            None
        }
    }

    fn in_node(
        &self,
        by_hops: fn(&NodeCostCache) -> &[f64],
        src: CpuId,
        dst: CpuId,
    ) -> Option<f64> {
        let cache = self.nodes.get(src.node.0 as usize)?;
        let h = cache.topo.hops(src.cpu, dst.cpu) as usize;
        match by_hops(cache).get(h) {
            Some(&v) if !v.is_nan() => Some(v),
            _ => None,
        }
    }
}

impl Fabric for CachedFabric {
    fn latency(&self, src: CpuId, dst: CpuId) -> f64 {
        let hit = if src.node == dst.node {
            self.in_node(|c| &c.lat_by_hops, src, dst)
        } else {
            self.cross(&self.cross_lat, src, dst)
        };
        hit.unwrap_or_else(|| self.inner.latency(src, dst))
    }

    fn bandwidth(&self, src: CpuId, dst: CpuId) -> f64 {
        let hit = if src.node == dst.node {
            self.in_node(|c| &c.bw_by_hops, src, dst)
        } else {
            self.cross(&self.cross_bw, src, dst)
        };
        hit.unwrap_or_else(|| self.inner.bandwidth(src, dst))
    }

    fn min_cross_node_latency(&self, cpus: &[CpuId]) -> Option<f64> {
        // Serve the PDES lookahead straight from the pair-class table:
        // the minimum off-diagonal `cross_lat` entry over the nodes the
        // placement actually touches.
        let n = self.nodes.len();
        let mut present: Vec<usize> = cpus.iter().map(|c| c.node.0 as usize).collect();
        present.sort_unstable();
        present.dedup();
        if present.iter().any(|&p| p >= n) {
            return self.inner.min_cross_node_latency(cpus);
        }
        let mut min = f64::INFINITY;
        for &s in &present {
            for &d in &present {
                if s != d {
                    min = min.min(self.cross_lat[s * n + d]);
                }
            }
        }
        (min.is_finite() && min > 0.0).then_some(min)
    }

    // Collective-level models are evaluated once per collective, not
    // per message — delegate rather than cache.
    fn alltoall_bandwidth(&self, cpus: &[CpuId]) -> f64 {
        self.inner.alltoall_bandwidth(cpus)
    }

    fn internode_contention(&self, flows: u32) -> f64 {
        self.inner.internode_contention(flows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use columbia_machine::node::NodeKind;

    fn cpu(node: u32, c: u32) -> CpuId {
        CpuId::new(node, c)
    }

    fn bx2b_cluster(n: u32) -> ClusterConfig {
        ClusterConfig::uniform(NodeKind::Bx2b, n)
    }

    #[test]
    fn in_node_latency_grows_with_distance() {
        let f = ClusterFabric::single_node(bx2b_cluster(1));
        let near = f.latency(cpu(0, 0), cpu(0, 1));
        let mid = f.latency(cpu(0, 0), cpu(0, 4));
        let far = f.latency(cpu(0, 0), cpu(0, 511));
        assert!(near < mid && mid < far, "{near} {mid} {far}");
    }

    #[test]
    fn bx2_has_lower_latency_and_higher_bandwidth_than_3700() {
        let f3 = ClusterFabric::single_node(ClusterConfig::uniform(NodeKind::Altix3700, 1));
        let fb = ClusterFabric::single_node(bx2b_cluster(1));
        // Same far-apart CPU pair: the BX2's double density means fewer
        // router hops and NUMAlink4 means double bandwidth.
        assert!(fb.latency(cpu(0, 0), cpu(0, 255)) <= f3.latency(cpu(0, 0), cpu(0, 255)));
        assert!(fb.bandwidth(cpu(0, 0), cpu(0, 255)) > f3.bandwidth(cpu(0, 0), cpu(0, 255)));
    }

    #[test]
    fn infiniband_latency_penalty_vs_numalink4() {
        let cfg = bx2b_cluster(4);
        let nl = ClusterFabric::new(
            cfg.clone(),
            InterNodeFabric::NumaLink4,
            MptVersion::Beta,
            2048,
        );
        let ib = ClusterFabric::new(cfg, InterNodeFabric::InfiniBand, MptVersion::Beta, 2048);
        let a = cpu(0, 10);
        let b = cpu(1, 20);
        assert!(ib.latency(a, b) > nl.latency(a, b));
        assert!(ib.bandwidth(a, b) < nl.bandwidth(a, b));
    }

    #[test]
    fn cross_node_costs_more_than_in_node() {
        let cfg = bx2b_cluster(2);
        for inter in [InterNodeFabric::NumaLink4, InterNodeFabric::InfiniBand] {
            let f = ClusterFabric::new(cfg.clone(), inter, MptVersion::Beta, 1024);
            assert!(f.latency(cpu(0, 0), cpu(1, 0)) > f.latency(cpu(0, 0), cpu(0, 64)));
        }
    }

    #[test]
    fn released_mpt_penalizes_ib_only() {
        assert!((MptVersion::Beta.ib_penalty(256) - 1.0).abs() < 1e-12);
        assert!(
            (MptVersion::Released.ib_penalty(256) - calib::MPT_RELEASED_IB_PENALTY).abs() < 1e-12
        );
        // Penalty decays with CPU count (paper: IB improves at scale).
        assert!(MptVersion::Released.ib_penalty(1024) < MptVersion::Released.ib_penalty(256));
        assert!(MptVersion::Released.ib_penalty(2048) > 1.0);
    }

    #[test]
    fn ib_contention_much_worse_than_numalink() {
        let cfg = bx2b_cluster(4);
        let nl = ClusterFabric::new(
            cfg.clone(),
            InterNodeFabric::NumaLink4,
            MptVersion::Beta,
            2048,
        );
        let ib = ClusterFabric::new(cfg, InterNodeFabric::InfiniBand, MptVersion::Beta, 2048);
        let flows = 512;
        assert!(ib.internode_contention(flows) > 5.0 * nl.internode_contention(flows));
        assert!(nl.internode_contention(1) == 1.0);
    }

    #[test]
    fn pt2pt_time_composes_latency_and_bandwidth() {
        let f = ClusterFabric::single_node(bx2b_cluster(1));
        let (a, b) = (cpu(0, 0), cpu(0, 100));
        let t0 = f.pt2pt_time(a, b, 0);
        let t1m = f.pt2pt_time(a, b, 1 << 20);
        assert!((t0 - f.latency(a, b)).abs() < 1e-15);
        assert!((t1m - t0 - (1u64 << 20) as f64 / f.bandwidth(a, b)).abs() < 1e-12);
    }

    #[test]
    fn cached_fabric_is_bitwise_identical_in_node() {
        for kind in [NodeKind::Altix3700, NodeKind::Bx2a, NodeKind::Bx2b] {
            let direct = ClusterFabric::single_node(ClusterConfig::uniform(kind, 1));
            let cached = CachedFabric::new(direct.clone());
            for a in [0u32, 1, 3, 7, 63, 200, 511] {
                for b in [0u32, 2, 5, 64, 255, 510] {
                    let (x, y) = (cpu(0, a), cpu(0, b));
                    assert_eq!(
                        direct.latency(x, y).to_bits(),
                        cached.latency(x, y).to_bits()
                    );
                    assert_eq!(
                        direct.bandwidth(x, y).to_bits(),
                        cached.bandwidth(x, y).to_bits()
                    );
                    assert_eq!(
                        direct.pt2pt_time(x, y, 8192).to_bits(),
                        cached.pt2pt_time(x, y, 8192).to_bits()
                    );
                }
            }
        }
    }

    #[test]
    fn cached_fabric_is_bitwise_identical_across_columbia_nodes() {
        // The full heterogeneous machine: both fabrics, both MPT
        // versions, and the released-MPT powf penalty path.
        for inter in [InterNodeFabric::NumaLink4, InterNodeFabric::InfiniBand] {
            for mpt in [MptVersion::Beta, MptVersion::Released] {
                let direct = ClusterFabric::new(ClusterConfig::columbia(), inter, mpt, 10_240);
                let cached = CachedFabric::new(direct.clone());
                for (s, d) in [(0u32, 1u32), (0, 12), (11, 19), (15, 18), (19, 0)] {
                    for (a, b) in [(0u32, 0u32), (17, 300), (511, 511)] {
                        let (x, y) = (cpu(s, a), cpu(d, b));
                        assert_eq!(
                            direct.latency(x, y).to_bits(),
                            cached.latency(x, y).to_bits(),
                            "lat nodes {s}->{d}"
                        );
                        assert_eq!(
                            direct.bandwidth(x, y).to_bits(),
                            cached.bandwidth(x, y).to_bits(),
                            "bw nodes {s}->{d}"
                        );
                    }
                }
                assert_eq!(
                    direct.internode_contention(512),
                    cached.internode_contention(512)
                );
            }
        }
    }
}
