//! `columbia-obs` — the observability layer of the Columbia simulator.
//!
//! The source paper's contribution is *measurement*: it explains
//! Columbia's application performance by attributing time to compute,
//! communication, and placement effects. This crate gives the
//! simulator the same power over itself:
//!
//! * [`tracer`] — a zero-cost-when-disabled [`Tracer`] trait the
//!   discrete-event engine emits span events through. [`NullTracer`]
//!   compiles to nothing (the engine is generic over the tracer, so
//!   the null impl monomorphizes away); [`RecordingTracer`] captures
//!   per-rank timelines and aggregates [`Metrics`] as it goes.
//! * [`metrics`] — a registry of named counters, gauges, and
//!   log-bucketed latency [`Histogram`]s: messages sent, dropped, and
//!   retransmitted, bytes per inter-node link, per-rank wait time,
//!   connection-table occupancy.
//! * [`profile`] — [`CommProfile`], the compute / communication / wait
//!   breakdown per rank and per phase (phases are delimited by
//!   collectives, the natural epochs of the simulated workloads) —
//!   the simulator's analogue of the paper's Table 4-style
//!   attribution.
//! * [`analysis`] — the simulated-time performance analyzer: the
//!   recorded causal event graph (spans + happens-before edges) turned
//!   into a critical path with per-category bottleneck attribution,
//!   load-imbalance statistics, and a rank-pair communication matrix
//!   (`repro --analyze`, schema `columbia-analysis-v1`).
//! * [`chrome`] — export a set of recorded simulations as Chrome
//!   trace-event JSON, loadable in Perfetto (`ui.perfetto.dev`) or
//!   `chrome://tracing`, one track per rank.
//! * [`sink`] — a process-global collection point so `repro --trace`
//!   can capture every simulation an experiment runs without
//!   threading a tracer through each workload crate's API.
//! * [`host`] — host-side (wall-clock) execution telemetry: worker
//!   lanes, steals, retries, and checkpoint-store activity, recorded
//!   by the sweep executor and merged into the Chrome export as its
//!   own process so real execution reads next to simulated time.
//!
//! Overhead guarantees: with [`NullTracer`] every hook is an inlined
//! empty function behind an `enabled()` check that constant-folds to
//! `false`, so the instrumented engine produces bit-identical
//! [`SimOutcome`]s (asserted by regression tests in `columbia-simnet`)
//! at unmeasurable cost. The global sink costs one relaxed atomic load
//! per *simulation* (not per event) when disabled.
//!
//! [`SimOutcome`]: https://docs.rs/columbia-simnet

pub mod analysis;
pub mod canon;
pub mod chrome;
pub mod host;
pub mod metrics;
pub mod profile;
pub mod sink;
pub mod tracer;

pub use analysis::{
    analyze, Analysis, Breakdown, Category, CommPair, CriticalPath, Imbalance, PathSegment,
    ANALYSIS_SCHEMA,
};
pub use canon::{BufferedEvent, CanonicalTracer, EventBuffer};
pub use chrome::{chrome_trace, chrome_trace_with_flows, chrome_trace_with_host};
pub use host::{HostReport, HostSpan, HostTrack};
pub use metrics::{Histogram, Metrics};
pub use profile::{CommProfile, PhaseProfile, RankProfile};
pub use sink::TraceBundle;
pub use tracer::{
    CausalEdge, EdgeKind, MessageRecord, NullTracer, RecordingTracer, SpanEvent, SpanKind, Tracer,
    Track,
};
