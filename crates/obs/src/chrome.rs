//! Chrome trace-event export.
//!
//! Renders recorded simulations in the [Trace Event Format] consumed
//! by Perfetto (`ui.perfetto.dev`) and `chrome://tracing`: each
//! simulation becomes a "process", each rank a named "thread" (track),
//! and every span a complete (`"ph": "X"`) event with microsecond
//! timestamps. Network-side spans (retransmit backoff, multiplex
//! queuing) get their own per-rank tracks so they can overlap CPU
//! activity without confusing the renderer.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use serde_json::Value;

use crate::sink::TraceBundle;
use crate::tracer::{SpanEvent, Track};

/// Seconds → trace-event microseconds.
fn us(t: f64) -> f64 {
    t * 1e6
}

fn meta(name: &str, pid: usize, tid: usize, arg: &str) -> Value {
    let mut args = Value::object();
    args.set("name", Value::String(arg.to_string()));
    let mut e = Value::object();
    e.set("ph", Value::String("M".into()));
    e.set("name", Value::String(name.into()));
    e.set("pid", Value::Number(pid as f64));
    e.set("tid", Value::Number(tid as f64));
    e.set("args", args);
    e
}

fn complete(span: &SpanEvent, pid: usize, tid: usize) -> Value {
    let mut e = Value::object();
    e.set("name", Value::String(span.kind.name().into()));
    e.set(
        "cat",
        Value::String(
            match span.kind.track() {
                Track::Cpu => "cpu",
                Track::Net => "net",
            }
            .into(),
        ),
    );
    e.set("ph", Value::String("X".into()));
    e.set("ts", Value::Number(us(span.start)));
    e.set("dur", Value::Number(us(span.duration())));
    e.set("pid", Value::Number(pid as f64));
    e.set("tid", Value::Number(tid as f64));
    e
}

/// Render `bundles` as one Chrome trace document.
///
/// Simulation `i` is process `i` (named by its bundle label); rank `r`
/// is thread `r` of that process, and its network activity — if any —
/// thread `n_ranks + r` (named "rank r (net)").
pub fn chrome_trace(bundles: &[TraceBundle]) -> Value {
    let mut events: Vec<Value> = Vec::new();
    for (pid, bundle) in bundles.iter().enumerate() {
        let n_ranks = bundle.profile.ranks.len();
        events.push(meta("process_name", pid, 0, &bundle.label));
        let mut rank_seen = vec![false; n_ranks];
        let mut net_seen = vec![false; n_ranks];
        for span in &bundle.spans {
            let tid = match span.kind.track() {
                Track::Cpu => {
                    rank_seen[span.rank] = true;
                    span.rank
                }
                Track::Net => {
                    net_seen[span.rank] = true;
                    n_ranks + span.rank
                }
            };
            events.push(complete(span, pid, tid));
        }
        for (r, seen) in rank_seen.iter().enumerate() {
            if *seen {
                events.push(meta("thread_name", pid, r, &format!("rank {r}")));
            }
        }
        for (r, seen) in net_seen.iter().enumerate() {
            if *seen {
                events.push(meta(
                    "thread_name",
                    pid,
                    n_ranks + r,
                    &format!("rank {r} (net)"),
                ));
            }
        }
    }
    let mut doc = Value::object();
    doc.set("traceEvents", Value::Array(events));
    doc.set("displayTimeUnit", Value::String("ms".into()));
    doc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metrics;
    use crate::profile::CommProfile;
    use crate::tracer::SpanKind;

    fn bundle() -> TraceBundle {
        let spans = vec![
            SpanEvent {
                rank: 0,
                kind: SpanKind::Compute,
                start: 0.0,
                end: 1.0,
            },
            SpanEvent {
                rank: 1,
                kind: SpanKind::RecvWait,
                start: 0.0,
                end: 0.5,
            },
            SpanEvent {
                rank: 0,
                kind: SpanKind::RetransmitBackoff,
                start: 1.0,
                end: 1.5,
            },
        ];
        let profile = CommProfile::from_spans(&spans, 2);
        TraceBundle {
            label: "demo".into(),
            spans,
            metrics: Metrics::new(),
            profile,
        }
    }

    #[test]
    fn export_is_valid_json_with_per_rank_tracks() {
        let doc = chrome_trace(&[bundle()]);
        let text = serde_json::to_string_pretty(&doc);
        let parsed = serde_json::from_str(&text).unwrap();
        let events = parsed
            .get("traceEvents")
            .and_then(Value::as_array)
            .expect("traceEvents array");
        assert!(!events.is_empty());
        // One thread_name per CPU rank plus one for the net track.
        let thread_names: Vec<&Value> = events
            .iter()
            .filter(|e| e.get("name").and_then(Value::as_str) == Some("thread_name"))
            .collect();
        assert_eq!(thread_names.len(), 3);
        // Complete events carry microsecond timestamps.
        let compute = events
            .iter()
            .find(|e| e.get("name").and_then(Value::as_str) == Some("compute"))
            .unwrap();
        assert_eq!(compute.get("ph").and_then(Value::as_str), Some("X"));
        assert_eq!(compute.get("dur").and_then(Value::as_f64), Some(1e6));
        // The net span lands on the offset track.
        let net = events
            .iter()
            .find(|e| e.get("cat").and_then(Value::as_str) == Some("net"))
            .unwrap();
        assert_eq!(net.get("tid").and_then(Value::as_f64), Some(2.0));
    }

    #[test]
    fn empty_export_still_parses() {
        let doc = chrome_trace(&[]);
        let parsed = serde_json::from_str(&serde_json::to_string(&doc)).unwrap();
        assert_eq!(
            parsed
                .get("traceEvents")
                .and_then(Value::as_array)
                .map(Vec::len),
            Some(0)
        );
    }
}
