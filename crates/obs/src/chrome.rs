//! Chrome trace-event export.
//!
//! Renders recorded simulations in the [Trace Event Format] consumed
//! by Perfetto (`ui.perfetto.dev`) and `chrome://tracing`: each
//! simulation becomes a "process", each rank a named "thread" (track),
//! and every span a complete (`"ph": "X"`) event with microsecond
//! timestamps. Network-side spans (retransmit backoff, multiplex
//! queuing) get their own per-rank tracks so they can overlap CPU
//! activity without confusing the renderer.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use serde_json::Value;

use crate::analysis::CriticalPath;
use crate::host::{HostReport, HostTrack};
use crate::sink::TraceBundle;
use crate::tracer::{SpanEvent, Track};

/// Seconds → trace-event microseconds.
fn us(t: f64) -> f64 {
    t * 1e6
}

fn meta(name: &str, pid: usize, tid: usize, arg: &str) -> Value {
    let mut args = Value::object();
    args.set("name", Value::String(arg.to_string()));
    let mut e = Value::object();
    e.set("ph", Value::String("M".into()));
    e.set("name", Value::String(name.into()));
    e.set("pid", Value::Number(pid as f64));
    e.set("tid", Value::Number(tid as f64));
    e.set("args", args);
    e
}

fn complete(span: &SpanEvent, pid: usize, tid: usize) -> Value {
    let mut e = Value::object();
    e.set("name", Value::String(span.kind.name().into()));
    e.set(
        "cat",
        Value::String(
            match span.kind.track() {
                Track::Cpu => "cpu",
                Track::Net => "net",
            }
            .into(),
        ),
    );
    e.set("ph", Value::String("X".into()));
    e.set("ts", Value::Number(us(span.start)));
    e.set("dur", Value::Number(us(span.duration())));
    e.set("pid", Value::Number(pid as f64));
    e.set("tid", Value::Number(tid as f64));
    e
}

/// Render one host-side span as a complete event on the host process.
fn host_complete(span: &crate::host::HostSpan, pid: usize, tid: usize) -> Value {
    let mut e = Value::object();
    e.set("name", Value::String(span.label.clone()));
    e.set("cat", Value::String(span.cat.into()));
    e.set("ph", Value::String("X".into()));
    e.set("ts", Value::Number(us(span.start)));
    e.set("dur", Value::Number(us(span.duration())));
    e.set("pid", Value::Number(pid as f64));
    e.set("tid", Value::Number(tid as f64));
    if !span.args.is_empty() {
        let mut args = Value::object();
        for (k, v) in &span.args {
            args.set(k, v.clone());
        }
        e.set("args", args);
    }
    e
}

/// Render `bundles` plus an optional host-telemetry capture as one
/// Chrome trace document.
///
/// Simulated-time tracks are laid out exactly as in [`chrome_trace`].
/// The host capture — when present — becomes one extra process (pid
/// `bundles.len()`, named "host executor (wall clock)"): one thread
/// per worker lane ("worker 0", "worker 1", …) carrying job spans and
/// steal instants, plus a "checkpoint store" thread for store
/// save/load activity. Host timestamps are wall-clock seconds since
/// the capture epoch, so in Perfetto the executor's real occupancy
/// reads side by side with the simulators' virtual timelines.
pub fn chrome_trace_with_host(bundles: &[TraceBundle], host: Option<&HostReport>) -> Value {
    let mut doc = chrome_trace(bundles);
    let Some(host) = host else {
        return doc;
    };
    let pid = bundles.len();
    let workers = host.workers();
    // Store track sits after the last worker lane (or at 0 when no
    // worker ever recorded — a store-only capture still renders).
    let store_tid = workers.last().map_or(0, |w| *w as usize + 1);
    let mut events: Vec<Value> = Vec::new();
    events.push(meta("process_name", pid, 0, "host executor (wall clock)"));
    let mut store_seen = false;
    for span in &host.spans {
        let tid = match span.track {
            HostTrack::Worker(w) => w as usize,
            HostTrack::Store => {
                store_seen = true;
                store_tid
            }
        };
        events.push(host_complete(span, pid, tid));
    }
    for w in &workers {
        events.push(meta(
            "thread_name",
            pid,
            *w as usize,
            &format!("worker {w}"),
        ));
    }
    if store_seen {
        events.push(meta("thread_name", pid, store_tid, "checkpoint store"));
    }
    let Some(Value::Array(all)) = doc.get("traceEvents").cloned() else {
        return doc;
    };
    let mut all = all;
    all.extend(events);
    doc.set("traceEvents", Value::Array(all));
    doc
}

/// Render `bundles` plus host telemetry plus critical-path flow
/// events.
///
/// `paths[i]` — when present — is the analyzed critical path of
/// `bundles[i]` (see [`crate::analysis::analyze`]); each cross-rank hop
/// it traversed becomes a Perfetto flow (`"ph": "s"` at the source
/// event, `"ph": "f"` at the arrival, shared id, name
/// `"critical-path"`, category `"cp"`), so the path reads as arrows
/// threading through the rank tracks. Without `paths` (or with an empty
/// slice) the output is byte-identical to [`chrome_trace_with_host`].
pub fn chrome_trace_with_flows(
    bundles: &[TraceBundle],
    host: Option<&HostReport>,
    paths: &[CriticalPath],
) -> Value {
    let mut doc = chrome_trace_with_host(bundles, host);
    let mut flows: Vec<Value> = Vec::new();
    let mut id = 0usize;
    for (pid, path) in paths.iter().enumerate().take(bundles.len()) {
        for hop in &path.hops {
            if hop.src_rank == hop.dst_rank {
                continue;
            }
            id += 1;
            let mut s = Value::object();
            s.set("ph", Value::String("s".into()));
            s.set("id", Value::Number(id as f64));
            s.set("name", Value::String("critical-path".into()));
            s.set("cat", Value::String("cp".into()));
            s.set("pid", Value::Number(pid as f64));
            s.set("tid", Value::Number(hop.src_rank as f64));
            s.set("ts", Value::Number(us(hop.src_time)));
            flows.push(s);
            let mut f = Value::object();
            f.set("ph", Value::String("f".into()));
            f.set("bp", Value::String("e".into()));
            f.set("id", Value::Number(id as f64));
            f.set("name", Value::String("critical-path".into()));
            f.set("cat", Value::String("cp".into()));
            f.set("pid", Value::Number(pid as f64));
            f.set("tid", Value::Number(hop.dst_rank as f64));
            f.set("ts", Value::Number(us(hop.dst_time)));
            flows.push(f);
        }
    }
    if flows.is_empty() {
        return doc;
    }
    let Some(Value::Array(all)) = doc.get("traceEvents").cloned() else {
        return doc;
    };
    let mut all = all;
    all.extend(flows);
    doc.set("traceEvents", Value::Array(all));
    doc
}

/// Render `bundles` as one Chrome trace document.
///
/// Simulation `i` is process `i` (named by its bundle label); rank `r`
/// is thread `r` of that process, and its network activity — if any —
/// thread `n_ranks + r` (named "rank r (net)").
pub fn chrome_trace(bundles: &[TraceBundle]) -> Value {
    let mut events: Vec<Value> = Vec::new();
    for (pid, bundle) in bundles.iter().enumerate() {
        let n_ranks = bundle.profile.ranks.len();
        events.push(meta("process_name", pid, 0, &bundle.label));
        let mut rank_seen = vec![false; n_ranks];
        let mut net_seen = vec![false; n_ranks];
        for span in &bundle.spans {
            let tid = match span.kind.track() {
                Track::Cpu => {
                    rank_seen[span.rank] = true;
                    span.rank
                }
                Track::Net => {
                    net_seen[span.rank] = true;
                    n_ranks + span.rank
                }
            };
            events.push(complete(span, pid, tid));
        }
        for (r, seen) in rank_seen.iter().enumerate() {
            if *seen {
                events.push(meta("thread_name", pid, r, &format!("rank {r}")));
            }
        }
        for (r, seen) in net_seen.iter().enumerate() {
            if *seen {
                events.push(meta(
                    "thread_name",
                    pid,
                    n_ranks + r,
                    &format!("rank {r} (net)"),
                ));
            }
        }
    }
    let mut doc = Value::object();
    doc.set("traceEvents", Value::Array(events));
    doc.set("displayTimeUnit", Value::String("ms".into()));
    doc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metrics;
    use crate::profile::CommProfile;
    use crate::tracer::SpanKind;

    fn bundle() -> TraceBundle {
        let spans = vec![
            SpanEvent {
                rank: 0,
                kind: SpanKind::Compute,
                start: 0.0,
                end: 1.0,
            },
            SpanEvent {
                rank: 1,
                kind: SpanKind::RecvWait,
                start: 0.0,
                end: 0.5,
            },
            SpanEvent {
                rank: 0,
                kind: SpanKind::RetransmitBackoff,
                start: 1.0,
                end: 1.5,
            },
        ];
        let profile = CommProfile::from_spans(&spans, 2);
        TraceBundle {
            label: "demo".into(),
            spans,
            edges: vec![],
            rank_nodes: vec![],
            metrics: Metrics::new(),
            profile,
        }
    }

    #[test]
    fn export_is_valid_json_with_per_rank_tracks() {
        let doc = chrome_trace(&[bundle()]);
        let text = serde_json::to_string_pretty(&doc);
        let parsed = serde_json::from_str(&text).unwrap();
        let events = parsed
            .get("traceEvents")
            .and_then(Value::as_array)
            .expect("traceEvents array");
        assert!(!events.is_empty());
        // One thread_name per CPU rank plus one for the net track.
        let thread_names: Vec<&Value> = events
            .iter()
            .filter(|e| e.get("name").and_then(Value::as_str) == Some("thread_name"))
            .collect();
        assert_eq!(thread_names.len(), 3);
        // Complete events carry microsecond timestamps.
        let compute = events
            .iter()
            .find(|e| e.get("name").and_then(Value::as_str) == Some("compute"))
            .unwrap();
        assert_eq!(compute.get("ph").and_then(Value::as_str), Some("X"));
        assert_eq!(compute.get("dur").and_then(Value::as_f64), Some(1e6));
        // The net span lands on the offset track.
        let net = events
            .iter()
            .find(|e| e.get("cat").and_then(Value::as_str) == Some("net"))
            .unwrap();
        assert_eq!(net.get("tid").and_then(Value::as_f64), Some(2.0));
    }

    #[test]
    fn host_capture_renders_as_its_own_process_with_worker_tracks() {
        use crate::host::{HostReport, HostSpan, HostTrack};
        let mut report = HostReport::default();
        report.spans.push(HostSpan {
            track: HostTrack::Worker(0),
            label: "job 0".into(),
            cat: "host.job",
            start: 0.0,
            end: 0.25,
            args: vec![("outcome", Value::String("ok".into()))],
        });
        report.spans.push(HostSpan {
            track: HostTrack::Worker(2),
            label: "steal".into(),
            cat: "host.steal",
            start: 0.1,
            end: 0.1,
            args: vec![],
        });
        report.spans.push(HostSpan {
            track: HostTrack::Store,
            label: "save".into(),
            cat: "host.store",
            start: 0.2,
            end: 0.21,
            args: vec![],
        });
        let doc = chrome_trace_with_host(&[bundle()], Some(&report));
        let text = serde_json::to_string(&doc);
        let parsed = serde_json::from_str(&text).unwrap();
        let events = parsed.get("traceEvents").and_then(Value::as_array).unwrap();
        // Host process is pid 1 (after the one sim bundle).
        let host_events: Vec<&Value> = events
            .iter()
            .filter(|e| e.get("pid").and_then(Value::as_f64) == Some(1.0))
            .collect();
        assert!(!host_events.is_empty(), "host process present");
        let names: Vec<&str> = host_events
            .iter()
            .filter(|e| e.get("name").and_then(Value::as_str) == Some("thread_name"))
            .filter_map(|e| e.get("args")?.get("name")?.as_str())
            .collect();
        assert_eq!(names, vec!["worker 0", "worker 2", "checkpoint store"]);
        // The store track lands after the last worker lane (tid 3).
        let save = host_events
            .iter()
            .find(|e| e.get("name").and_then(Value::as_str) == Some("save"))
            .unwrap();
        assert_eq!(save.get("tid").and_then(Value::as_f64), Some(3.0));
        // Job args survive the export.
        let job = host_events
            .iter()
            .find(|e| e.get("name").and_then(Value::as_str) == Some("job 0"))
            .unwrap();
        assert_eq!(
            job.get("args")
                .and_then(|a| a.get("outcome"))
                .and_then(Value::as_str),
            Some("ok")
        );
        // Simulated-time tracks are untouched alongside.
        assert!(events
            .iter()
            .any(|e| e.get("pid").and_then(Value::as_f64) == Some(0.0)
                && e.get("ph").and_then(Value::as_str) == Some("X")));
    }

    #[test]
    fn no_host_capture_is_exactly_the_plain_export() {
        let plain = serde_json::to_string(&chrome_trace(&[bundle()]));
        let merged = serde_json::to_string(&chrome_trace_with_host(&[bundle()], None));
        assert_eq!(plain, merged);
    }

    #[test]
    fn no_paths_is_exactly_the_host_export() {
        let host = serde_json::to_string(&chrome_trace_with_host(&[bundle()], None));
        let flows = serde_json::to_string(&chrome_trace_with_flows(&[bundle()], None, &[]));
        assert_eq!(host, flows);
    }

    #[test]
    fn critical_path_hops_render_as_well_formed_flow_pairs() {
        use crate::analysis::analyze;
        use crate::tracer::{CausalEdge, EdgeKind, RecordingTracer, Tracer};
        use std::collections::BTreeMap;

        // Rank 0 computes then sends; rank 1 waits for the message.
        let mut t = RecordingTracer::new();
        t.topology(&[0, 1]);
        t.span(0, SpanKind::Compute, 0.0, 1.0);
        t.span(0, SpanKind::Send, 1.0, 1.01);
        t.edge(&CausalEdge {
            kind: EdgeKind::Message,
            src_rank: 0,
            src_time: 1.0,
            dst_rank: 1,
            dst_time: 1.2,
            bytes: 8,
            wire_time: 0.2,
            fault_delay: 0.0,
        });
        t.span(1, SpanKind::Compute, 0.0, 0.1);
        t.span(1, SpanKind::RecvWait, 0.1, 1.2);
        t.span(1, SpanKind::Compute, 1.2, 1.5);
        let b = t.into_bundle("flow demo");
        let path = analyze(&b).critical_path;
        assert!(!path.hops.is_empty());

        let doc = chrome_trace_with_flows(&[b], None, std::slice::from_ref(&path));
        let parsed = serde_json::from_str(&serde_json::to_string(&doc)).unwrap();
        let events = parsed.get("traceEvents").and_then(Value::as_array).unwrap();
        // Group flow events by id: each id appears exactly twice, as an
        // "s"/"f" pair with matching name and category, timestamps
        // inside the path's time range, and tids on the hop's ranks.
        let mut by_id: BTreeMap<u64, Vec<&Value>> = BTreeMap::new();
        for e in events {
            let ph = e.get("ph").and_then(Value::as_str).unwrap_or("");
            if ph == "s" || ph == "f" {
                let id = e.get("id").and_then(Value::as_f64).expect("flow id") as u64;
                by_id.entry(id).or_default().push(e);
            }
        }
        assert_eq!(by_id.len(), path.hops.len());
        for (id, pair) in &by_id {
            assert_eq!(pair.len(), 2, "flow id {id} must have an s/f pair");
            assert_eq!(pair[0].get("ph").and_then(Value::as_str), Some("s"));
            assert_eq!(pair[1].get("ph").and_then(Value::as_str), Some("f"));
            assert_eq!(pair[1].get("bp").and_then(Value::as_str), Some("e"));
            for e in pair {
                assert_eq!(e.get("name").and_then(Value::as_str), Some("critical-path"));
                assert_eq!(e.get("cat").and_then(Value::as_str), Some("cp"));
                let ts = e.get("ts").and_then(Value::as_f64).unwrap();
                assert!((0.0..=1.5e6).contains(&ts));
            }
            let s_ts = pair[0].get("ts").and_then(Value::as_f64).unwrap();
            let f_ts = pair[1].get("ts").and_then(Value::as_f64).unwrap();
            assert!(s_ts <= f_ts, "flow start precedes its finish");
        }
        // The one hop's flow binds rank 0's track to rank 1's.
        let pair = by_id.values().next().unwrap();
        assert_eq!(pair[0].get("tid").and_then(Value::as_f64), Some(0.0));
        assert_eq!(pair[1].get("tid").and_then(Value::as_f64), Some(1.0));
    }

    #[test]
    fn empty_export_still_parses() {
        let doc = chrome_trace(&[]);
        let parsed = serde_json::from_str(&serde_json::to_string(&doc)).unwrap();
        assert_eq!(
            parsed
                .get("traceEvents")
                .and_then(Value::as_array)
                .map(Vec::len),
            Some(0)
        );
    }
}
