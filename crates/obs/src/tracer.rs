//! The [`Tracer`] trait and its two implementations.
//!
//! The discrete-event engine is generic over a `Tracer`; every clock
//! advance of every rank is reported as a [`SpanEvent`]. The
//! [`NullTracer`] makes all hooks empty inlined functions, so the
//! traced engine monomorphizes to exactly the untraced one. The
//! [`RecordingTracer`] stores spans and folds message activity into a
//! [`Metrics`] registry on the fly.

use crate::metrics::Metrics;

/// What a span of virtual time was spent on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// Busy compute (an `Op::Compute`).
    Compute,
    /// CPU-side send overhead (library call + injection, including
    /// re-injections for retransmitted messages).
    Send,
    /// Blocked in a receive waiting for the matching message.
    RecvWait,
    /// Inside a collective (barrier / allreduce / alltoall / bcast),
    /// including the wait for the slowest rank.
    Collective,
    /// Network-side: a dropped message waiting out its
    /// exponential-backoff retransmission timer.
    RetransmitBackoff,
    /// Network-side: queuing delay from connection-table multiplexing
    /// (§2 InfiniBand connection limit).
    MultiplexQueue,
}

/// Which per-rank track a span belongs to.
///
/// [`Track::Cpu`] spans tile each rank's timeline exactly: they are
/// contiguous, monotone, and their durations sum to the rank's final
/// clock (property-tested). [`Track::Net`] spans describe in-flight
/// message delays and may overlap CPU activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Track {
    /// The rank's own timeline.
    Cpu,
    /// Network-side delays attributed to the rank's messages.
    Net,
}

impl SpanKind {
    /// Stable lowercase name (trace event name, metrics key).
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Compute => "compute",
            SpanKind::Send => "send",
            SpanKind::RecvWait => "recv-wait",
            SpanKind::Collective => "collective",
            SpanKind::RetransmitBackoff => "retransmit-backoff",
            SpanKind::MultiplexQueue => "multiplex-queue",
        }
    }

    /// The track this kind of span lives on.
    pub fn track(self) -> Track {
        match self {
            SpanKind::Compute | SpanKind::Send | SpanKind::RecvWait | SpanKind::Collective => {
                Track::Cpu
            }
            SpanKind::RetransmitBackoff | SpanKind::MultiplexQueue => Track::Net,
        }
    }

    /// All kinds, for iteration.
    pub const ALL: [SpanKind; 6] = [
        SpanKind::Compute,
        SpanKind::Send,
        SpanKind::RecvWait,
        SpanKind::Collective,
        SpanKind::RetransmitBackoff,
        SpanKind::MultiplexQueue,
    ];
}

/// One span of virtual time on one rank's timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanEvent {
    /// The rank the span belongs to.
    pub rank: usize,
    /// What the time was spent on.
    pub kind: SpanKind,
    /// Start, in virtual seconds since simulation start.
    pub start: f64,
    /// End, in virtual seconds (`end >= start`).
    pub end: f64,
}

impl SpanEvent {
    /// Span duration in seconds.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// Everything known about one point-to-point message at post time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MessageRecord {
    /// Sending rank.
    pub from_rank: usize,
    /// Receiving rank.
    pub to_rank: usize,
    /// Sender's node.
    pub from_node: u32,
    /// Receiver's node.
    pub to_node: u32,
    /// Payload bytes.
    pub bytes: u64,
    /// Wire latency + serialization cost (fault-free part).
    pub wire_time: f64,
    /// Times the message was dropped before getting through.
    pub drops: u32,
    /// Total retransmission-backoff delay added.
    pub retransmit_delay: f64,
    /// Connection-multiplexing queue delay added.
    pub multiplex_delay: f64,
}

impl MessageRecord {
    /// Post-to-arrival latency including fault delays.
    pub fn latency(&self) -> f64 {
        self.wire_time + self.retransmit_delay + self.multiplex_delay
    }
}

/// What kind of happens-before dependency a [`CausalEdge`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// A point-to-point delivery: the receiver's clock cannot pass
    /// `dst_time` until the sender posted at `src_time`.
    Message,
    /// A collective release: every participant leaves together, gated
    /// by the straggler (or the root, for a broadcast) at `src_time`.
    Collective,
}

impl EdgeKind {
    /// Stable lowercase name (JSON export).
    pub fn name(self) -> &'static str {
        match self {
            EdgeKind::Message => "message",
            EdgeKind::Collective => "collective",
        }
    }
}

/// One happens-before edge of the causal event graph.
///
/// `dst_time` is bit-exact with the end of the CPU span the dependency
/// produced on the destination rank (both are the same computed `f64`),
/// so an analyzer can join edges to spans by `(dst_rank,
/// dst_time.to_bits())` without tolerance windows. Intra-rank program
/// order needs no edges — the CPU spans tile each rank's timeline, so
/// adjacency *is* the program-order edge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CausalEdge {
    /// The dependency's kind.
    pub kind: EdgeKind,
    /// Rank the dependency originates on (sender / straggler / root).
    pub src_rank: usize,
    /// Source-side event time: message post, or collective start.
    pub src_time: f64,
    /// Rank whose progress the dependency gates.
    pub dst_rank: usize,
    /// Destination-side event time: message arrival, or collective
    /// finish on `dst_rank`.
    pub dst_time: f64,
    /// Payload bytes (per-pair bytes for collectives).
    pub bytes: u64,
    /// Fault-free wire/operation cost inside `dst_time - src_time`.
    pub wire_time: f64,
    /// Fault-injected delay (retransmit backoff + multiplex queuing)
    /// inside `dst_time - src_time`, always at its tail.
    pub fault_delay: f64,
}

/// Instrumentation hooks the simulation engine calls.
///
/// All hooks default to no-ops; implementations override what they
/// need. Callers may guard expensive argument construction with
/// [`Tracer::enabled`], which constant-folds for the [`NullTracer`].
pub trait Tracer {
    /// Whether this tracer records anything at all.
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    /// One span of virtual time on `rank`'s timeline.
    #[inline]
    fn span(&mut self, rank: usize, kind: SpanKind, start: f64, end: f64) {
        let _ = (rank, kind, start, end);
    }

    /// A point-to-point message was posted.
    #[inline]
    fn message(&mut self, msg: &MessageRecord) {
        let _ = msg;
    }

    /// A scalar observation (e.g. connection-table occupancy).
    #[inline]
    fn gauge(&mut self, name: &'static str, value: f64) {
        let _ = (name, value);
    }

    /// One happens-before edge of the causal event graph.
    #[inline]
    fn edge(&mut self, edge: &CausalEdge) {
        let _ = edge;
    }

    /// The run's placement: `rank_nodes[r]` is rank `r`'s node. Called
    /// once, before any span or edge.
    #[inline]
    fn topology(&mut self, rank_nodes: &[u32]) {
        let _ = rank_nodes;
    }
}

/// The disabled tracer: every hook is an empty inlined function, so a
/// simulation over it compiles to exactly the untraced engine.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullTracer;

impl Tracer for NullTracer {
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }

    #[inline(always)]
    fn span(&mut self, _: usize, _: SpanKind, _: f64, _: f64) {}

    #[inline(always)]
    fn message(&mut self, _: &MessageRecord) {}

    #[inline(always)]
    fn gauge(&mut self, _: &'static str, _: f64) {}

    #[inline(always)]
    fn edge(&mut self, _: &CausalEdge) {}

    #[inline(always)]
    fn topology(&mut self, _: &[u32]) {}
}

/// Captures the full event stream of a simulation.
///
/// Spans are kept verbatim (in emission order, which is monotone per
/// rank); message activity is folded into a [`Metrics`] registry as it
/// arrives, so memory stays proportional to the program size.
#[derive(Debug, Clone, Default)]
pub struct RecordingTracer {
    /// Every span, in emission order.
    pub spans: Vec<SpanEvent>,
    /// Every causal edge, in emission order.
    pub edges: Vec<CausalEdge>,
    /// Node of each rank, as reported by [`Tracer::topology`].
    pub rank_nodes: Vec<u32>,
    /// Aggregated counters and histograms.
    pub metrics: Metrics,
    n_ranks: usize,
}

impl RecordingTracer {
    /// Fresh, empty tracer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of ranks seen so far (max rank + 1).
    pub fn n_ranks(&self) -> usize {
        self.n_ranks
    }

    /// Spans of one rank, in emission (= time) order.
    pub fn rank_spans(&self, rank: usize) -> impl Iterator<Item = &SpanEvent> {
        self.spans.iter().filter(move |s| s.rank == rank)
    }

    /// Build the compute/comm/wait attribution from the recorded spans.
    pub fn profile(&self) -> crate::profile::CommProfile {
        crate::profile::CommProfile::from_spans(&self.spans, self.n_ranks)
    }

    /// Package the recording as a [`TraceBundle`](crate::TraceBundle).
    pub fn into_bundle(self, label: impl Into<String>) -> crate::TraceBundle {
        let profile = self.profile();
        crate::TraceBundle {
            label: label.into(),
            spans: self.spans,
            edges: self.edges,
            rank_nodes: self.rank_nodes,
            metrics: self.metrics,
            profile,
        }
    }
}

impl Tracer for RecordingTracer {
    fn span(&mut self, rank: usize, kind: SpanKind, start: f64, end: f64) {
        self.n_ranks = self.n_ranks.max(rank + 1);
        if kind == SpanKind::RecvWait {
            self.metrics.observe("recv_wait_seconds", end - start);
        } else if kind == SpanKind::Collective {
            self.metrics.observe("collective_seconds", end - start);
        }
        self.spans.push(SpanEvent {
            rank,
            kind,
            start,
            end,
        });
    }

    fn message(&mut self, msg: &MessageRecord) {
        self.n_ranks = self.n_ranks.max(msg.from_rank.max(msg.to_rank) + 1);
        let m = &mut self.metrics;
        m.inc("messages_sent", 1);
        m.add("bytes_sent", msg.bytes);
        if msg.drops > 0 {
            m.inc("messages_dropped", 1);
            m.add("retransmits", msg.drops as u64);
        }
        if msg.multiplex_delay > 0.0 {
            m.inc("messages_multiplexed", 1);
        }
        m.link_bytes(msg.from_node, msg.to_node, msg.bytes);
        m.observe("message_latency_seconds", msg.latency());
    }

    fn gauge(&mut self, name: &'static str, value: f64) {
        self.metrics.gauge(name, value);
    }

    fn edge(&mut self, edge: &CausalEdge) {
        self.n_ranks = self.n_ranks.max(edge.src_rank.max(edge.dst_rank) + 1);
        self.edges.push(*edge);
    }

    fn topology(&mut self, rank_nodes: &[u32]) {
        self.rank_nodes = rank_nodes.to_vec();
        self.n_ranks = self.n_ranks.max(rank_nodes.len());
    }
}

/// Forwarding impl so engine entry points can take `&mut T`.
impl<T: Tracer + ?Sized> Tracer for &mut T {
    #[inline]
    fn enabled(&self) -> bool {
        (**self).enabled()
    }

    #[inline]
    fn span(&mut self, rank: usize, kind: SpanKind, start: f64, end: f64) {
        (**self).span(rank, kind, start, end)
    }

    #[inline]
    fn message(&mut self, msg: &MessageRecord) {
        (**self).message(msg)
    }

    #[inline]
    fn gauge(&mut self, name: &'static str, value: f64) {
        (**self).gauge(name, value)
    }

    #[inline]
    fn edge(&mut self, edge: &CausalEdge) {
        (**self).edge(edge)
    }

    #[inline]
    fn topology(&mut self, rank_nodes: &[u32]) {
        (**self).topology(rank_nodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_tracer_is_disabled() {
        assert!(!NullTracer.enabled());
        // And stays inert through the forwarding impl.
        let mut t = NullTracer;
        let fwd = &mut t;
        assert!(!fwd.enabled());
    }

    #[test]
    fn recording_tracer_captures_spans_and_counts() {
        let mut t = RecordingTracer::new();
        t.span(0, SpanKind::Compute, 0.0, 1.0);
        t.span(1, SpanKind::RecvWait, 0.0, 0.5);
        t.message(&MessageRecord {
            from_rank: 0,
            to_rank: 1,
            from_node: 0,
            to_node: 1,
            bytes: 4096,
            wire_time: 1e-5,
            drops: 2,
            retransmit_delay: 3e-4,
            multiplex_delay: 0.0,
        });
        assert_eq!(t.spans.len(), 2);
        assert_eq!(t.n_ranks(), 2);
        assert_eq!(t.metrics.counter("messages_sent"), 1);
        assert_eq!(t.metrics.counter("messages_dropped"), 1);
        assert_eq!(t.metrics.counter("retransmits"), 2);
        assert_eq!(t.metrics.counter("bytes_sent"), 4096);
        assert_eq!(t.rank_spans(1).count(), 1);
    }

    #[test]
    fn recording_tracer_captures_edges_and_topology() {
        let mut t = RecordingTracer::new();
        t.topology(&[0, 0, 1]);
        t.edge(&CausalEdge {
            kind: EdgeKind::Message,
            src_rank: 0,
            src_time: 0.0,
            dst_rank: 2,
            dst_time: 1.5e-5,
            bytes: 4096,
            wire_time: 1.5e-5,
            fault_delay: 0.0,
        });
        assert_eq!(t.rank_nodes, vec![0, 0, 1]);
        assert_eq!(t.edges.len(), 1);
        assert_eq!(t.n_ranks(), 3);
        let bundle = t.into_bundle("demo");
        assert_eq!(bundle.edges.len(), 1);
        assert_eq!(bundle.rank_nodes, vec![0, 0, 1]);
        assert_eq!(bundle.edges[0].kind.name(), "message");
        assert_eq!(EdgeKind::Collective.name(), "collective");
    }

    #[test]
    fn span_kinds_have_stable_names_and_tracks() {
        for k in SpanKind::ALL {
            assert!(!k.name().is_empty());
        }
        assert_eq!(SpanKind::Compute.track(), Track::Cpu);
        assert_eq!(SpanKind::RetransmitBackoff.track(), Track::Net);
        assert_eq!(SpanKind::MultiplexQueue.track(), Track::Net);
    }
}
