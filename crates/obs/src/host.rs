//! Host-side execution telemetry: wall-clock spans and metrics for the
//! machinery that *runs* the simulations, as opposed to the simulated
//! time the [`tracer`](crate::tracer) records.
//!
//! The simulator's tracer answers "where did the *virtual* seconds
//! go?"; this module answers "where did the *wall-clock* seconds go?"
//! — which worker lane executed which sweep point, how often workers
//! ran dry and stole, how long checkpoint writes took, which points
//! were retried or abandoned. The two timelines are exported side by
//! side by [`chrome::chrome_trace_with_host`](crate::chrome), so a
//! single Perfetto view shows real executor occupancy next to the
//! simulated-time tracks.
//!
//! # Zero cost when disabled
//!
//! Host telemetry is off by default and every recording hook begins
//! with [`is_enabled`] — a single relaxed atomic load that
//! branch-predicts false. Nothing is timed, allocated, or locked on
//! the disabled path; `--bench obs` measures the residue and CI holds
//! it under 2%. Instrumented call sites are *coarse* (per sweep job,
//! per steal, per checkpoint write — never per simulated event), so
//! the enabled path's mutex is far from contended.
//!
//! # Lifecycle
//!
//! [`enable`] clears any previous capture and starts the host clock;
//! [`take`] stops recording and returns the [`HostReport`]. The state
//! is process-global (like [`sink`](crate::sink)) so worker threads
//! report without any plumbing through the pool's API.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use serde_json::Value;

use crate::metrics::Metrics;

/// Which host timeline a span belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HostTrack {
    /// One executor worker lane (thread `w` of the pool).
    Worker(u32),
    /// The checkpoint store (saves and loads, any thread).
    Store,
}

/// One wall-clock span on a host track. Times are seconds since the
/// host clock's epoch (the moment of [`enable`]).
#[derive(Debug, Clone, PartialEq)]
pub struct HostSpan {
    /// The timeline this span renders on.
    pub track: HostTrack,
    /// Span name shown in the trace viewer ("job 5", "steal", …).
    pub label: String,
    /// Event category ("host.job", "host.steal", "host.store", …).
    pub cat: &'static str,
    /// Start, seconds since the host epoch.
    pub start: f64,
    /// End, seconds since the host epoch (>= start).
    pub end: f64,
    /// Extra key/value detail (outcome, attempts, index), rendered
    /// into the trace event's `args`.
    pub args: Vec<(&'static str, Value)>,
}

impl HostSpan {
    /// Span length in seconds.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// Everything one capture window recorded.
#[derive(Debug, Clone, Default)]
pub struct HostReport {
    /// Wall-clock spans, in emission order.
    pub spans: Vec<HostSpan>,
    /// Host counters and histograms (`host.*`, `store.*`).
    pub metrics: Metrics,
}

impl HostReport {
    /// Worker ids that recorded at least one span, ascending.
    pub fn workers(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = self
            .spans
            .iter()
            .filter_map(|s| match s.track {
                HostTrack::Worker(w) => Some(w),
                HostTrack::Store => None,
            })
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }
}

struct HostState {
    epoch: Option<Instant>,
    report: HostReport,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static STATE: Mutex<HostState> = Mutex::new(HostState {
    epoch: None,
    report: HostReport {
        spans: Vec::new(),
        metrics: Metrics::EMPTY,
    },
});

/// Whether host telemetry is recording. The only cost instrumented
/// code pays when telemetry is off.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Start (or restart) a capture window: clears any previous spans and
/// metrics and re-bases the host clock at *now*.
pub fn enable() {
    let mut state = STATE.lock().unwrap_or_else(|e| e.into_inner());
    state.epoch = Some(Instant::now());
    state.report = HostReport::default();
    ENABLED.store(true, Ordering::Release);
}

/// Stop recording and return the capture. `None` if telemetry was
/// never enabled (or was already taken).
pub fn take() -> Option<HostReport> {
    if !ENABLED.swap(false, Ordering::AcqRel) {
        return None;
    }
    let mut state = STATE.lock().unwrap_or_else(|e| e.into_inner());
    state.epoch = None;
    Some(std::mem::take(&mut state.report))
}

/// Seconds since the capture epoch — the timestamp for a span about to
/// start. `None` when telemetry is disabled, so call sites can skip
/// all further work:
///
/// ```
/// let t0 = columbia_obs::host::clock(); // None: telemetry off
/// // … the real work …
/// if let Some(t0) = t0 {
///     columbia_obs::host::span(
///         columbia_obs::host::HostTrack::Worker(0),
///         "host.job",
///         "job 3".into(),
///         t0,
///         vec![],
///     );
/// }
/// ```
#[inline]
pub fn clock() -> Option<f64> {
    if !is_enabled() {
        return None;
    }
    let state = STATE.lock().unwrap_or_else(|e| e.into_inner());
    state.epoch.map(|e| e.elapsed().as_secs_f64())
}

/// Record a span that started at `start` (a [`clock`] stamp) and ends
/// now. A no-op when telemetry is disabled — a capture can be torn
/// down while a worker is mid-span without losing anything but that
/// span.
pub fn span(
    track: HostTrack,
    cat: &'static str,
    label: String,
    start: f64,
    args: Vec<(&'static str, Value)>,
) {
    if !is_enabled() {
        return;
    }
    let mut state = STATE.lock().unwrap_or_else(|e| e.into_inner());
    let Some(epoch) = state.epoch else { return };
    let end = epoch.elapsed().as_secs_f64().max(start);
    state.report.spans.push(HostSpan {
        track,
        label,
        cat,
        start,
        end,
        args,
    });
}

/// Record an instantaneous event (a zero-length span): steals, cache
/// hits — things with a moment but no extent.
pub fn instant(
    track: HostTrack,
    cat: &'static str,
    label: String,
    args: Vec<(&'static str, Value)>,
) {
    if !is_enabled() {
        return;
    }
    let mut state = STATE.lock().unwrap_or_else(|e| e.into_inner());
    let Some(epoch) = state.epoch else { return };
    let t = epoch.elapsed().as_secs_f64();
    state.report.spans.push(HostSpan {
        track,
        label,
        cat,
        start: t,
        end: t,
        args,
    });
}

/// Increment host counter `name` by `by`.
#[inline]
pub fn count(name: &'static str, by: u64) {
    if !is_enabled() {
        return;
    }
    let mut state = STATE.lock().unwrap_or_else(|e| e.into_inner());
    state.report.metrics.inc(name, by);
}

/// Record an observation into host histogram `name`.
#[inline]
pub fn observe(name: &'static str, v: f64) {
    if !is_enabled() {
        return;
    }
    let mut state = STATE.lock().unwrap_or_else(|e| e.into_inner());
    state.report.metrics.observe(name, v);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The capture window is process-global; tests that drive it
    /// serialize here (test threads run in parallel).
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_hooks_are_no_ops() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        assert!(!is_enabled());
        assert_eq!(clock(), None);
        count("host.steals", 1);
        observe("host.queue_depth", 3.0);
        span(
            HostTrack::Worker(0),
            "host.job",
            "job 0".into(),
            0.0,
            vec![],
        );
        instant(HostTrack::Store, "host.store", "hit".into(), vec![]);
        assert!(take().is_none(), "nothing was enabled, nothing to take");
    }

    #[test]
    fn capture_lifecycle_records_and_drains() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        enable();
        assert!(is_enabled());
        let t0 = clock().expect("clock runs while enabled");
        std::thread::sleep(std::time::Duration::from_millis(2));
        span(
            HostTrack::Worker(1),
            "host.job",
            "job 7".into(),
            t0,
            vec![("index", Value::Number(7.0))],
        );
        instant(HostTrack::Worker(3), "host.steal", "steal".into(), vec![]);
        count("host.steals", 2);
        observe("store.write_seconds", 1e-3);
        let report = take().expect("capture was live");
        assert!(!is_enabled());
        assert_eq!(report.spans.len(), 2);
        let job = &report.spans[0];
        assert_eq!(job.track, HostTrack::Worker(1));
        assert!(job.duration() >= 0.002, "span covered the sleep");
        assert_eq!(report.spans[1].duration(), 0.0, "instants are zero-length");
        assert_eq!(report.metrics.counter("host.steals"), 2);
        assert_eq!(
            report
                .metrics
                .histogram("store.write_seconds")
                .map(|h| h.count()),
            Some(1)
        );
        assert_eq!(report.workers(), vec![1, 3]);
        assert!(take().is_none(), "a capture drains exactly once");
    }

    #[test]
    fn enable_clears_the_previous_capture() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        enable();
        count("host.jobs", 5);
        enable();
        let report = take().expect("second window live");
        assert_eq!(report.metrics.counter("host.jobs"), 0, "window restarted");
    }

    #[test]
    fn spans_recorded_from_worker_threads_land_in_one_report() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        enable();
        let handles: Vec<_> = (0..4u32)
            .map(|w| {
                std::thread::spawn(move || {
                    let t0 = clock().expect("enabled");
                    span(
                        HostTrack::Worker(w),
                        "host.job",
                        format!("job {w}"),
                        t0,
                        vec![],
                    );
                    count("host.jobs", 1);
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker");
        }
        let report = take().expect("live");
        assert_eq!(report.spans.len(), 4);
        assert_eq!(report.metrics.counter("host.jobs"), 4);
        assert_eq!(report.workers(), vec![0, 1, 2, 3]);
    }
}
