//! The metrics registry: counters, gauges, latency histograms, and
//! per-link byte totals.
//!
//! Keys are `&'static str` so the hot recording path never allocates
//! for a name; everything is held in `BTreeMap`s so JSON export is
//! deterministically ordered.

use std::collections::BTreeMap;

use serde_json::Value;

/// A log-bucketed latency histogram (seconds).
///
/// Buckets are powers of ten from 1 ns to 1000 s plus an overflow
/// bucket — wide enough for every virtual duration the simulator
/// produces, cheap enough to update per message.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    counts: [u64; Histogram::BUCKETS],
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: [0; Histogram::BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl Histogram {
    /// Decade buckets: `< 1e-9, < 1e-8, …, < 1e3`, plus overflow.
    pub const BUCKETS: usize = 14;

    /// Upper bound of bucket `i` in seconds (`None` = overflow).
    pub fn bucket_bound(i: usize) -> Option<f64> {
        (i + 1 < Self::BUCKETS).then(|| 10f64.powi(i as i32 - 9))
    }

    /// Record one observation.
    ///
    /// A bucket holds values strictly below its bound, so an
    /// observation sitting exactly on a power-of-ten boundary lands in
    /// the bucket *above* it. Zero and negative observations land in
    /// the lowest bucket (everything is `< 1e-9`). NaN observations
    /// are dropped — one poisoned sample must not turn `sum`/`mean`
    /// into NaN for the whole registry — which makes NaN the identity
    /// observation, mirroring how [`Histogram::merge`] treats an empty
    /// histogram.
    pub fn record(&mut self, v: f64) {
        if v.is_nan() {
            return;
        }
        let mut idx = Self::BUCKETS - 1;
        for i in 0..Self::BUCKETS - 1 {
            if Self::bucket_bound(i).is_some_and(|bound| v < bound) {
                idx = i;
                break;
            }
        }
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Fold `other`'s observations into `self`, bucket by bucket.
    ///
    /// Merging an empty histogram is the identity (and merging into an
    /// empty one copies `other`): the executor merges per-worker
    /// histograms into one registry, and idle workers contribute
    /// nothing.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Estimate the `p`-th percentile (0–100) of the observations.
    ///
    /// Uses the nearest-rank target within the decade buckets, linearly
    /// interpolated across the bucket that holds it: exact at the
    /// extremes (`p = 0` → min, `p = 100` → max), decade-resolution in
    /// between — the right fidelity for "where did the tail go"
    /// summaries without storing every sample. Returns 0 when empty;
    /// estimates are clamped to `[min, max]` so a sparse bucket can
    /// never report a value outside the observed range.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let p = p.clamp(0.0, 100.0);
        // The k-th smallest observation, k in [1, count]. The first and
        // last ranks are the observed extrema exactly.
        let target = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        if target <= 1 {
            return self.min;
        }
        if target >= self.count {
            return self.max;
        }
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= target {
                // Bucket i spans [bound(i-1), bound(i)); the edge
                // buckets borrow the observed extrema as their open
                // ends.
                let lo = if i == 0 {
                    self.min
                } else {
                    Self::bucket_bound(i - 1).unwrap_or(self.min).max(self.min)
                };
                let hi = Self::bucket_bound(i).unwrap_or(self.max).min(self.max);
                let hi = hi.max(lo);
                let frac = (target - seen) as f64 / c as f64;
                return (lo + frac * (hi - lo)).clamp(self.min, self.max);
            }
            seen += c;
        }
        self.max()
    }

    /// Render as JSON: count, sum, mean, min, max, non-empty buckets.
    pub fn to_value(&self) -> Value {
        let mut v = Value::object();
        v.set("count", Value::Number(self.count as f64));
        v.set("sum", Value::Number(self.sum));
        v.set("mean", Value::Number(self.mean()));
        v.set("min", Value::Number(self.min()));
        v.set("max", Value::Number(self.max()));
        let mut buckets = Value::object();
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let label = match Self::bucket_bound(i) {
                Some(b) => format!("lt_{b:.0e}"),
                None => "overflow".to_string(),
            };
            buckets.set(&label, Value::Number(c as f64));
        }
        v.set("buckets", buckets);
        v
    }
}

/// A registry of named counters, gauges, histograms, and per-link byte
/// totals for one simulation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Metrics {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, Histogram>,
    /// Bytes moved per directed `(from_node, to_node)` pair.
    link_bytes: BTreeMap<(u32, u32), u64>,
}

impl Metrics {
    /// A const-constructible empty registry, for static initializers
    /// (the process-global host-telemetry state in [`crate::host`]).
    pub const EMPTY: Metrics = Metrics {
        counters: BTreeMap::new(),
        gauges: BTreeMap::new(),
        histograms: BTreeMap::new(),
        link_bytes: BTreeMap::new(),
    };

    /// Fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increment counter `name` by `by`.
    pub fn inc(&mut self, name: &'static str, by: u64) {
        *self.counters.entry(name).or_insert(0) += by;
    }

    /// Alias of [`Metrics::inc`] reading better for byte totals.
    pub fn add(&mut self, name: &'static str, by: u64) {
        self.inc(name, by);
    }

    /// Current value of counter `name` (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Set gauge `name`.
    pub fn gauge(&mut self, name: &'static str, value: f64) {
        self.gauges.insert(name, value);
    }

    /// Current value of gauge `name`.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Record an observation into histogram `name`.
    pub fn observe(&mut self, name: &'static str, v: f64) {
        self.histograms.entry(name).or_default().record(v);
    }

    /// Histogram `name`, if it has observations.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Account `bytes` moved from `from_node` to `to_node`.
    pub fn link_bytes(&mut self, from_node: u32, to_node: u32, bytes: u64) {
        *self.link_bytes.entry((from_node, to_node)).or_insert(0) += bytes;
    }

    /// Per-link byte totals, heaviest first.
    pub fn links_by_bytes(&self) -> Vec<((u32, u32), u64)> {
        let mut v: Vec<_> = self.link_bytes.iter().map(|(&k, &b)| (k, b)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// Render the whole registry as ordered JSON.
    pub fn to_value(&self) -> Value {
        let mut v = Value::object();
        let mut counters = Value::object();
        for (k, c) in &self.counters {
            counters.set(k, Value::Number(*c as f64));
        }
        v.set("counters", counters);
        let mut gauges = Value::object();
        for (k, g) in &self.gauges {
            gauges.set(k, Value::Number(*g));
        }
        v.set("gauges", gauges);
        let mut hists = Value::object();
        for (k, h) in &self.histograms {
            hists.set(k, h.to_value());
        }
        v.set("histograms", hists);
        let links = self
            .links_by_bytes()
            .into_iter()
            .map(|((a, b), bytes)| {
                let mut e = Value::object();
                e.set("from_node", Value::Number(a as f64));
                e.set("to_node", Value::Number(b as f64));
                e.set("bytes", Value::Number(bytes as f64));
                e
            })
            .collect();
        v.set("link_bytes", Value::Array(links));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_stats() {
        let mut h = Histogram::default();
        for v in [1e-6, 2e-6, 5e-3, 40.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 40.005003).abs() < 1e-9);
        assert_eq!(h.min(), 1e-6);
        assert_eq!(h.max(), 40.0);
        let v = h.to_value();
        assert_eq!(v.get("count").and_then(Value::as_f64), Some(4.0));
        // 1e-6 and 2e-6 share the `< 1e-5` decade bucket.
        assert_eq!(
            v.get("buckets")
                .and_then(|b| b.get("lt_1e-5"))
                .and_then(Value::as_f64),
            Some(2.0)
        );
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = Histogram::default();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
    }

    /// Which bucket a single observation of `v` lands in.
    fn bucket_of(v: f64) -> usize {
        let mut h = Histogram::default();
        h.record(v);
        let val = h.to_value();
        let Value::Object(buckets) = val.get("buckets").unwrap().clone() else {
            panic!("buckets must be an object");
        };
        assert_eq!(buckets.len(), 1, "exactly one bucket holds the sample");
        let label = &buckets[0].0;
        if label == "overflow" {
            return Histogram::BUCKETS - 1;
        }
        (0..Histogram::BUCKETS - 1)
            .find(|&i| format!("lt_{:.0e}", Histogram::bucket_bound(i).unwrap()) == *label)
            .unwrap_or_else(|| panic!("unknown bucket label {label}"))
    }

    #[test]
    fn exact_power_of_ten_boundaries_land_in_the_bucket_above() {
        // Buckets are half-open `[prev, bound)`: a value exactly on
        // bucket i's bound is not `< bound`, so it belongs to bucket
        // i+1. Probing with the bound itself makes the test exact —
        // no assumption about the literal 1e-9 equaling `10f64.powi`.
        for i in 0..Histogram::BUCKETS - 1 {
            let bound = Histogram::bucket_bound(i).unwrap();
            assert_eq!(bucket_of(bound), i + 1, "bound of bucket {i}");
            // And a value just under the bound stays in bucket i (the
            // decade midpoint is comfortably inside).
            assert!(bucket_of(bound * 0.5) <= i, "half the bound of bucket {i}");
        }
        // The last bound (1e3) overflows: bucket BUCKETS-1 *is* the
        // overflow bucket.
        let top = Histogram::bucket_bound(Histogram::BUCKETS - 2).unwrap();
        assert_eq!(bucket_of(top), Histogram::BUCKETS - 1);
        assert_eq!(Histogram::bucket_bound(Histogram::BUCKETS - 1), None);
    }

    #[test]
    fn zero_and_negative_observations_land_in_the_lowest_bucket() {
        assert_eq!(bucket_of(0.0), 0);
        assert_eq!(bucket_of(-0.0), 0);
        assert_eq!(bucket_of(-1.0), 0);
        assert_eq!(bucket_of(-1e6), 0);
        let mut h = Histogram::default();
        h.record(0.0);
        h.record(-2.5);
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), -2.5);
        assert_eq!(h.max(), 0.0);
        assert_eq!(h.sum(), -2.5);
    }

    #[test]
    fn nan_observations_are_dropped() {
        let mut h = Histogram::default();
        h.record(f64::NAN);
        assert_eq!(h.count(), 0, "NaN is not an observation");
        assert_eq!(h.mean(), 0.0);
        // NaN between real samples must not poison the stats.
        h.record(1.0);
        h.record(f64::NAN);
        h.record(3.0);
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 4.0);
        assert_eq!(h.mean(), 2.0);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 3.0);
    }

    #[test]
    fn percentile_of_empty_is_zero_and_extremes_are_exact() {
        let h = Histogram::default();
        assert_eq!(h.percentile(50.0), 0.0);
        let mut h = Histogram::default();
        for v in [1e-6, 3e-6, 9e-6, 2e-3, 7.0] {
            h.record(v);
        }
        assert_eq!(h.percentile(0.0), 1e-6, "p0 is the minimum");
        assert_eq!(h.percentile(100.0), 7.0, "p100 is the maximum");
        // Out-of-range p clamps instead of extrapolating.
        assert_eq!(h.percentile(-5.0), 1e-6);
        assert_eq!(h.percentile(250.0), 7.0);
    }

    #[test]
    fn percentile_is_monotone_and_bucket_accurate() {
        let mut h = Histogram::default();
        // 90 observations in the [1e-5, 1e-4) decade, 10 in [1e-1, 1).
        for i in 0..90 {
            h.record(2e-5 + i as f64 * 1e-7);
        }
        for _ in 0..10 {
            h.record(0.5);
        }
        let p50 = h.percentile(50.0);
        let p95 = h.percentile(95.0);
        let p99 = h.percentile(99.0);
        assert!(
            p50 >= h.min() && p50 < 1e-4,
            "p50 in the bulk decade: {p50}"
        );
        assert!((1e-1..=0.5).contains(&p95), "p95 in the tail decade: {p95}");
        assert!(p99 >= p95, "percentiles are monotone");
        assert!(p95 >= p50);
        // A single-valued histogram reports that value at every p.
        let mut one = Histogram::default();
        one.record(42.0);
        for p in [0.0, 50.0, 95.0, 100.0] {
            assert_eq!(one.percentile(p), 42.0);
        }
    }

    #[test]
    fn merge_of_empty_histogram_is_the_identity() {
        let mut h = Histogram::default();
        for v in [1e-6, 5e-3, 40.0, -1.0] {
            h.record(v);
        }
        let before = h.clone();
        h.merge(&Histogram::default());
        assert_eq!(h, before, "merging an empty histogram changes nothing");

        // The mirror image: merging into an empty histogram copies.
        let mut empty = Histogram::default();
        empty.merge(&before);
        assert_eq!(empty, before);

        // And two empties stay empty (min/max sentinels untouched).
        let mut a = Histogram::default();
        a.merge(&Histogram::default());
        assert_eq!(a, Histogram::default());
        assert_eq!(a.min(), 0.0);
        assert_eq!(a.max(), 0.0);
    }

    #[test]
    fn merge_combines_counts_sums_and_extrema() {
        let mut a = Histogram::default();
        a.record(1e-6);
        a.record(2.0);
        let mut b = Histogram::default();
        b.record(1e-8);
        b.record(500.0);
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert!((a.sum() - (1e-6 + 2.0 + 1e-8 + 500.0)).abs() < 1e-12);
        assert_eq!(a.min(), 1e-8);
        assert_eq!(a.max(), 500.0);
        // Equivalent to recording everything into one histogram.
        let mut all = Histogram::default();
        for v in [1e-6, 2.0, 1e-8, 500.0] {
            all.record(v);
        }
        assert_eq!(a, all);
    }

    #[test]
    fn registry_counts_and_exports() {
        let mut m = Metrics::new();
        m.inc("messages_sent", 3);
        m.gauge("connection_occupancy", 1.5);
        m.observe("message_latency_seconds", 2e-6);
        m.link_bytes(0, 1, 100);
        m.link_bytes(1, 0, 300);
        m.link_bytes(0, 1, 50);
        assert_eq!(m.counter("messages_sent"), 3);
        assert_eq!(m.counter("never_touched"), 0);
        assert_eq!(m.links_by_bytes()[0], ((1, 0), 300));
        assert_eq!(m.links_by_bytes()[1], ((0, 1), 150));
        let text = serde_json::to_string_pretty(&m.to_value());
        let parsed = serde_json::from_str(&text).unwrap();
        assert_eq!(
            parsed
                .get("counters")
                .and_then(|c| c.get("messages_sent"))
                .and_then(Value::as_f64),
            Some(3.0)
        );
        assert_eq!(
            parsed
                .get("gauges")
                .and_then(|g| g.get("connection_occupancy"))
                .and_then(Value::as_f64),
            Some(1.5)
        );
    }
}
