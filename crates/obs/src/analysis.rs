//! Simulated-time performance analysis: turn one recorded simulation
//! into an explanation of where its makespan came from.
//!
//! The engine's tracer hooks capture two things (see
//! [`crate::tracer`]): CPU spans that tile each rank's timeline, and
//! happens-before [`CausalEdge`]s — one per message delivery and one
//! per collective release. Together they form the run's causal event
//! graph: intra-rank program order is span adjacency, and cross-rank
//! dependencies are the edges, whose `dst_time` is bit-exact with the
//! end of the span they produced, so joining needs no tolerance
//! windows.
//!
//! [`analyze`] extracts three views from that graph:
//!
//! * **Critical path** — walk backward from the makespan rank's finish.
//!   Inside a compute or send span the predecessor is the same rank's
//!   previous span; at a recv-wait or collective span whose end matches
//!   an edge, the predecessor is the edge's source event (the sender's
//!   post, the straggler's arrival, the broadcast root's clock), and
//!   the walk hops ranks. Every step attributes exactly the simulated
//!   time it traverses to one of five categories — compute, send,
//!   recv-wait, collective, fault-retransmit (the fault tail of a
//!   delivery) — so the category totals sum to the makespan exactly.
//! * **Load imbalance** — max/mean/p95 per-rank busy time (p95 via
//!   [`Histogram::percentile`]) and the fleet-wide idle fraction.
//! * **Communication matrix** — message/byte/cost totals per directed
//!   rank pair, carrying the node pair so inter-node traffic reads
//!   directly.
//!
//! Everything is a pure function of the [`TraceBundle`], so the output
//! is deterministic however the run was scheduled.

use std::collections::BTreeMap;

use serde_json::Value;

use crate::metrics::Histogram;
use crate::sink::TraceBundle;
use crate::tracer::{CausalEdge, EdgeKind, SpanEvent, SpanKind, Track};

/// Schema tag of the analysis JSON document (`repro --analyze`).
pub const ANALYSIS_SCHEMA: &str = "columbia-analysis-v1";

/// What a stretch of critical-path time was spent on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Category {
    /// Busy compute.
    Compute,
    /// CPU-side send overhead.
    Send,
    /// Blocked waiting for a message (its fault-free part).
    RecvWait,
    /// Inside a collective, including the wait for the straggler.
    Collective,
    /// The fault tail of a delivery: retransmit backoff plus multiplex
    /// queuing delay.
    FaultRetransmit,
}

impl Category {
    /// Stable lowercase name (report column, JSON key).
    pub fn name(self) -> &'static str {
        match self {
            Category::Compute => "compute",
            Category::Send => "send",
            Category::RecvWait => "recv-wait",
            Category::Collective => "collective",
            Category::FaultRetransmit => "fault-retransmit",
        }
    }

    /// All categories, in canonical report order.
    pub const ALL: [Category; 5] = [
        Category::Compute,
        Category::Send,
        Category::RecvWait,
        Category::Collective,
        Category::FaultRetransmit,
    ];
}

/// Seconds of critical-path time per [`Category`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Breakdown {
    /// Seconds attributed to [`Category::Compute`].
    pub compute: f64,
    /// Seconds attributed to [`Category::Send`].
    pub send: f64,
    /// Seconds attributed to [`Category::RecvWait`].
    pub recv_wait: f64,
    /// Seconds attributed to [`Category::Collective`].
    pub collective: f64,
    /// Seconds attributed to [`Category::FaultRetransmit`].
    pub fault_retransmit: f64,
}

impl Breakdown {
    /// Add `seconds` to `category`.
    pub fn add(&mut self, category: Category, seconds: f64) {
        *self.slot(category) += seconds;
    }

    /// Seconds attributed to `category`.
    pub fn get(&self, category: Category) -> f64 {
        match category {
            Category::Compute => self.compute,
            Category::Send => self.send,
            Category::RecvWait => self.recv_wait,
            Category::Collective => self.collective,
            Category::FaultRetransmit => self.fault_retransmit,
        }
    }

    fn slot(&mut self, category: Category) -> &mut f64 {
        match category {
            Category::Compute => &mut self.compute,
            Category::Send => &mut self.send,
            Category::RecvWait => &mut self.recv_wait,
            Category::Collective => &mut self.collective,
            Category::FaultRetransmit => &mut self.fault_retransmit,
        }
    }

    /// Sum over all categories.
    pub fn total(&self) -> f64 {
        Category::ALL.iter().map(|&c| self.get(c)).sum()
    }

    /// The largest category (first in canonical order on ties).
    pub fn dominant(&self) -> Category {
        let mut best = Category::ALL[0];
        for &c in &Category::ALL[1..] {
            if self.get(c) > self.get(best) {
                best = c;
            }
        }
        best
    }

    fn to_value(self) -> Value {
        let mut v = Value::object();
        for c in Category::ALL {
            v.set(c.name(), Value::Number(self.get(c)));
        }
        v
    }
}

/// One maximal stretch of the critical path on a single rank.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathSegment {
    /// The rank the time was spent on (for a delivery, the waiter).
    pub rank: usize,
    /// Attribution of the stretch.
    pub category: Category,
    /// Start, virtual seconds.
    pub start: f64,
    /// End, virtual seconds (`end >= start`).
    pub end: f64,
}

impl PathSegment {
    /// Segment duration in seconds.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// The simulated-time critical path of one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CriticalPath {
    /// Path segments in forward time order, adjacent same-rank
    /// same-category stretches merged.
    pub segments: Vec<PathSegment>,
    /// The causal edges the path traversed, forward order.
    pub hops: Vec<CausalEdge>,
    /// Sum of segment durations — equals `makespan` (exactly, modulo
    /// accumulated rounding of at most a few ULPs per segment).
    pub total: f64,
    /// The run's makespan (finish time of the slowest rank).
    pub makespan: f64,
    /// The rank whose finish defines the makespan (lowest on ties).
    pub end_rank: usize,
    /// Critical-path seconds per category.
    pub breakdown: Breakdown,
    /// Critical-path seconds per category, per rank on the path.
    pub by_rank: BTreeMap<usize, Breakdown>,
    /// Critical-path seconds per category, per node on the path
    /// (empty when the bundle has no recorded placement).
    pub by_node: BTreeMap<u32, Breakdown>,
    /// True if the walk hit its step cap (malformed input); the
    /// attributed `total` then under-covers the makespan.
    pub truncated: bool,
}

/// Per-rank busy-time statistics of one run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Imbalance {
    /// Ranks in the run.
    pub n_ranks: usize,
    /// Largest per-rank busy time (compute + active comm), seconds.
    pub max_busy: f64,
    /// Mean per-rank busy time, seconds.
    pub mean_busy: f64,
    /// 95th-percentile per-rank busy time (decade-bucket estimate).
    pub p95_busy: f64,
    /// Fraction of the `n_ranks × makespan` area spent not busy
    /// (blocked or finished early).
    pub idle_fraction: f64,
}

impl Imbalance {
    /// `max / mean` busy time — 1.0 is perfectly balanced; 0 when the
    /// run had no busy time at all.
    pub fn ratio(&self) -> f64 {
        if self.mean_busy > 0.0 {
            self.max_busy / self.mean_busy
        } else {
            0.0
        }
    }

    fn to_value(self) -> Value {
        let mut v = Value::object();
        v.set("n_ranks", Value::Number(self.n_ranks as f64));
        v.set("max_busy", Value::Number(self.max_busy));
        v.set("mean_busy", Value::Number(self.mean_busy));
        v.set("p95_busy", Value::Number(self.p95_busy));
        v.set("ratio", Value::Number(self.ratio()));
        v.set("idle_fraction", Value::Number(self.idle_fraction));
        v
    }
}

/// Aggregated traffic of one directed rank pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommPair {
    /// Sending rank.
    pub from_rank: usize,
    /// Receiving rank.
    pub to_rank: usize,
    /// Sender's node (0 when the bundle has no placement).
    pub from_node: u32,
    /// Receiver's node (0 when the bundle has no placement).
    pub to_node: u32,
    /// Messages sent.
    pub messages: u64,
    /// Payload bytes sent.
    pub bytes: u64,
    /// Total delivery cost, seconds (wire time + fault delays).
    pub cost: f64,
}

/// Everything [`analyze`] derives from one [`TraceBundle`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Analysis {
    /// The critical path and its attribution.
    pub critical_path: CriticalPath,
    /// Per-rank busy-time statistics.
    pub imbalance: Imbalance,
    /// Directed rank-pair traffic, ordered by `(from_rank, to_rank)`.
    pub comm_matrix: Vec<CommPair>,
}

impl Analysis {
    /// The heaviest communicating pair (by bytes, then cost, then
    /// pair order), if any traffic was recorded.
    pub fn heaviest_pair(&self) -> Option<&CommPair> {
        self.comm_matrix.iter().max_by(|a, b| {
            a.bytes.cmp(&b.bytes).then(
                a.cost
                    .partial_cmp(&b.cost)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then((b.from_rank, b.to_rank).cmp(&(a.from_rank, a.to_rank))),
            )
        })
    }

    /// Render as ordered JSON (one sim's entry of the
    /// [`ANALYSIS_SCHEMA`] document).
    pub fn to_value(&self) -> Value {
        let mut v = Value::object();
        let cp = &self.critical_path;
        v.set("makespan", Value::Number(cp.makespan));
        let mut c = Value::object();
        c.set("total", Value::Number(cp.total));
        c.set("end_rank", Value::Number(cp.end_rank as f64));
        c.set("truncated", Value::Bool(cp.truncated));
        c.set("breakdown", cp.breakdown.to_value());
        let by_rank = cp
            .by_rank
            .iter()
            .map(|(r, b)| {
                let mut e = Value::object();
                e.set("rank", Value::Number(*r as f64));
                e.set("breakdown", b.to_value());
                e
            })
            .collect();
        c.set("by_rank", Value::Array(by_rank));
        let by_node = cp
            .by_node
            .iter()
            .map(|(n, b)| {
                let mut e = Value::object();
                e.set("node", Value::Number(*n as f64));
                e.set("breakdown", b.to_value());
                e
            })
            .collect();
        c.set("by_node", Value::Array(by_node));
        let segments = cp
            .segments
            .iter()
            .map(|s| {
                let mut e = Value::object();
                e.set("rank", Value::Number(s.rank as f64));
                e.set("category", Value::String(s.category.name().into()));
                e.set("start", Value::Number(s.start));
                e.set("end", Value::Number(s.end));
                e
            })
            .collect();
        c.set("segments", Value::Array(segments));
        let hops = cp
            .hops
            .iter()
            .map(|h| {
                let mut e = Value::object();
                e.set("kind", Value::String(h.kind.name().into()));
                e.set("src_rank", Value::Number(h.src_rank as f64));
                e.set("src_time", Value::Number(h.src_time));
                e.set("dst_rank", Value::Number(h.dst_rank as f64));
                e.set("dst_time", Value::Number(h.dst_time));
                e
            })
            .collect();
        c.set("hops", Value::Array(hops));
        v.set("critical_path", c);
        v.set("imbalance", self.imbalance.to_value());
        let matrix = self
            .comm_matrix
            .iter()
            .map(|p| {
                let mut e = Value::object();
                e.set("from_rank", Value::Number(p.from_rank as f64));
                e.set("to_rank", Value::Number(p.to_rank as f64));
                e.set("from_node", Value::Number(p.from_node as f64));
                e.set("to_node", Value::Number(p.to_node as f64));
                e.set("messages", Value::Number(p.messages as f64));
                e.set("bytes", Value::Number(p.bytes as f64));
                e.set("cost", Value::Number(p.cost));
                e
            })
            .collect();
        v.set("comm_matrix", Value::Array(matrix));
        v
    }
}

/// Analyze one recorded simulation: critical path, imbalance, and the
/// communication matrix. Pure and deterministic — same bundle, same
/// answer, regardless of how the run was scheduled.
pub fn analyze(bundle: &TraceBundle) -> Analysis {
    Analysis {
        critical_path: critical_path(bundle),
        imbalance: imbalance(bundle),
        comm_matrix: comm_matrix(bundle),
    }
}

/// Number of ranks a bundle describes (profile size, topology size, or
/// max span/edge rank + 1 — whichever is largest, so hand-built test
/// bundles work too).
fn rank_count(bundle: &TraceBundle) -> usize {
    let mut n = bundle.profile.ranks.len().max(bundle.rank_nodes.len());
    for s in &bundle.spans {
        n = n.max(s.rank + 1);
    }
    for e in &bundle.edges {
        n = n.max(e.src_rank.max(e.dst_rank) + 1);
    }
    n
}

fn imbalance(bundle: &TraceBundle) -> Imbalance {
    let ranks = &bundle.profile.ranks;
    let makespan = bundle.profile.makespan;
    if ranks.is_empty() {
        return Imbalance::default();
    }
    let mut hist = Histogram::default();
    let mut max_busy = 0.0f64;
    let mut sum_busy = 0.0f64;
    for r in ranks {
        let busy = r.compute + r.comm;
        hist.record(busy);
        max_busy = max_busy.max(busy);
        sum_busy += busy;
    }
    let n = ranks.len();
    let area = n as f64 * makespan;
    Imbalance {
        n_ranks: n,
        max_busy,
        mean_busy: sum_busy / n as f64,
        p95_busy: hist.percentile(95.0),
        idle_fraction: if area > 0.0 {
            (1.0 - sum_busy / area).max(0.0)
        } else {
            0.0
        },
    }
}

fn comm_matrix(bundle: &TraceBundle) -> Vec<CommPair> {
    let node_of = |rank: usize| bundle.rank_nodes.get(rank).copied().unwrap_or(0);
    let mut pairs: BTreeMap<(usize, usize), CommPair> = BTreeMap::new();
    for e in &bundle.edges {
        if e.kind != EdgeKind::Message {
            continue;
        }
        let entry = pairs
            .entry((e.src_rank, e.dst_rank))
            .or_insert_with(|| CommPair {
                from_rank: e.src_rank,
                to_rank: e.dst_rank,
                from_node: node_of(e.src_rank),
                to_node: node_of(e.dst_rank),
                messages: 0,
                bytes: 0,
                cost: 0.0,
            });
        entry.messages += 1;
        entry.bytes += e.bytes;
        entry.cost += e.wire_time + e.fault_delay;
    }
    pairs.into_values().collect()
}

fn critical_path(bundle: &TraceBundle) -> CriticalPath {
    let n = rank_count(bundle);
    // Per-rank CPU spans, in (already monotone) emission order.
    let mut rank_spans: Vec<Vec<&SpanEvent>> = vec![Vec::new(); n];
    for s in &bundle.spans {
        if s.kind.track() == Track::Cpu {
            rank_spans[s.rank].push(s);
        }
    }
    // Arrival-keyed edge join: `(dst_rank, dst_time bits)` — the same
    // computed f64 as the matching span's end, so the key is exact.
    // Candidates queue in emission order and are consumed on use, so
    // coincident arrivals resolve deterministically and every hop makes
    // progress.
    let mut by_arrival: BTreeMap<(usize, u64), Vec<&CausalEdge>> = BTreeMap::new();
    for e in bundle.edges.iter().rev() {
        by_arrival
            .entry((e.dst_rank, e.dst_time.to_bits()))
            .or_default()
            .push(e); // reversed insert + pop() = consume in emission order
    }

    let totals: Vec<f64> = rank_spans
        .iter()
        .map(|spans| spans.last().map_or(0.0, |s| s.end))
        .collect();
    let makespan = totals.iter().fold(0.0f64, |a, &b| a.max(b));
    let mut end_rank = 0usize;
    for (r, &total) in totals.iter().enumerate() {
        if total > totals[end_rank] {
            end_rank = r;
        }
    }

    let mut cp = CriticalPath {
        makespan,
        end_rank,
        ..CriticalPath::default()
    };
    if n == 0 || makespan <= 0.0 {
        return cp;
    }

    // Backward walk. Segments accumulate newest-first and are merged
    // with their predecessor when contiguous on the same rank and
    // category; everything is reversed at the end.
    let mut segments: Vec<PathSegment> = Vec::new();
    let mut hops: Vec<CausalEdge> = Vec::new();
    let push = |segments: &mut Vec<PathSegment>,
                cp: &mut CriticalPath,
                rank: usize,
                category: Category,
                start: f64,
                end: f64| {
        if end <= start {
            return;
        }
        let d = end - start;
        cp.total += d;
        cp.breakdown.add(category, d);
        cp.by_rank.entry(rank).or_default().add(category, d);
        if let Some(&node) = bundle.rank_nodes.get(rank) {
            cp.by_node.entry(node).or_default().add(category, d);
        }
        if let Some(last) = segments.last_mut() {
            if last.rank == rank && last.category == category && last.start == end {
                last.start = start;
                return;
            }
        }
        segments.push(PathSegment {
            rank,
            category,
            start,
            end,
        });
    };
    // Consume the oldest pending edge arriving at exactly (rank, t).
    let mut take_edge = |kind: EdgeKind, rank: usize, t: f64| -> Option<CausalEdge> {
        let candidates = by_arrival.get_mut(&(rank, t.to_bits()))?;
        let idx = candidates.iter().rposition(|e| e.kind == kind)?;
        Some(*candidates.remove(idx))
    };

    let mut rank = end_rank;
    let mut t = makespan;
    // Each loop iteration either consumes an edge (finitely many) or
    // retreats within a rank's finite span list; the cap is a backstop
    // against malformed hand-built input, not a real bound.
    let cap = 4 * (bundle.spans.len() + bundle.edges.len()) + 16;
    let mut steps = 0usize;
    while t > 0.0 {
        steps += 1;
        if steps > cap {
            cp.truncated = true;
            break;
        }
        let spans = &rank_spans[rank];
        // The span with start < t <= end. Spans tile each rank's
        // timeline, so this is the unique span covering t.
        let idx = spans.partition_point(|s| s.start < t);
        if idx == 0 {
            break; // before this rank's first activity: origin reached
        }
        let s = spans[idx - 1];
        if s.end < t {
            // A gap (hand-built bundles only): skip the hole silently.
            t = s.end;
            continue;
        }
        match s.kind {
            SpanKind::Compute => {
                push(&mut segments, &mut cp, rank, Category::Compute, s.start, t);
                t = s.start;
            }
            SpanKind::Send => {
                push(&mut segments, &mut cp, rank, Category::Send, s.start, t);
                t = s.start;
            }
            SpanKind::RecvWait => {
                match take_edge(EdgeKind::Message, rank, t).filter(|e| e.src_time < t) {
                    Some(e) => {
                        // The delivery's fault delay sits at its tail;
                        // the rest of the hop is genuine message wait.
                        let fault = e.fault_delay.clamp(0.0, t - e.src_time);
                        push(
                            &mut segments,
                            &mut cp,
                            rank,
                            Category::FaultRetransmit,
                            t - fault,
                            t,
                        );
                        push(
                            &mut segments,
                            &mut cp,
                            rank,
                            Category::RecvWait,
                            e.src_time,
                            t - fault,
                        );
                        hops.push(e);
                        rank = e.src_rank;
                        t = e.src_time;
                    }
                    None => {
                        push(&mut segments, &mut cp, rank, Category::RecvWait, s.start, t);
                        t = s.start;
                    }
                }
            }
            SpanKind::Collective => {
                match take_edge(EdgeKind::Collective, rank, t).filter(|e| e.src_time < t) {
                    Some(e) => {
                        push(
                            &mut segments,
                            &mut cp,
                            rank,
                            Category::Collective,
                            e.src_time,
                            t,
                        );
                        hops.push(e);
                        rank = e.src_rank;
                        t = e.src_time;
                    }
                    None => {
                        push(
                            &mut segments,
                            &mut cp,
                            rank,
                            Category::Collective,
                            s.start,
                            t,
                        );
                        t = s.start;
                    }
                }
            }
            // rank_spans holds CPU-track spans only.
            SpanKind::RetransmitBackoff | SpanKind::MultiplexQueue => unreachable!(),
        }
    }
    segments.reverse();
    hops.reverse();
    cp.segments = segments;
    cp.hops = hops;
    cp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::CommProfile;
    use crate::tracer::RecordingTracer;
    use crate::tracer::Tracer;

    fn bundle_from(tracer: RecordingTracer) -> TraceBundle {
        tracer.into_bundle("test")
    }

    /// Two ranks: rank 0 computes 1 s then posts a message that arrives
    /// at 1.2 s (0.05 s of that is fault delay); rank 1 computes 0.1 s
    /// and waits for it, then computes 0.3 s more.
    fn two_rank_tracer() -> RecordingTracer {
        let mut t = RecordingTracer::new();
        t.topology(&[0, 1]);
        t.span(0, SpanKind::Compute, 0.0, 1.0);
        t.span(0, SpanKind::Send, 1.0, 1.01);
        t.edge(&CausalEdge {
            kind: EdgeKind::Message,
            src_rank: 0,
            src_time: 1.0,
            dst_rank: 1,
            dst_time: 1.2,
            bytes: 4096,
            wire_time: 0.15,
            fault_delay: 0.05,
        });
        t.span(1, SpanKind::Compute, 0.0, 0.1);
        t.span(1, SpanKind::RecvWait, 0.1, 1.2);
        t.span(1, SpanKind::Compute, 1.2, 1.5);
        t
    }

    #[test]
    fn critical_path_crosses_the_message_and_totals_the_makespan() {
        let a = analyze(&bundle_from(two_rank_tracer()));
        let cp = &a.critical_path;
        assert_eq!(cp.end_rank, 1);
        assert!((cp.makespan - 1.5).abs() < 1e-12);
        assert!(
            (cp.total - cp.makespan).abs() < 1e-9,
            "attributed {} vs makespan {}",
            cp.total,
            cp.makespan
        );
        assert!(!cp.truncated);
        // Path: rank0 compute [0,1] → hop → rank1 recv-wait [1,1.15],
        // fault [1.15,1.2], compute [1.2,1.5].
        assert_eq!(cp.hops.len(), 1);
        assert_eq!(cp.hops[0].src_rank, 0);
        assert!((cp.breakdown.compute - 1.3).abs() < 1e-12);
        assert!((cp.breakdown.recv_wait - 0.15).abs() < 1e-12);
        assert!((cp.breakdown.fault_retransmit - 0.05).abs() < 1e-12);
        assert_eq!(cp.breakdown.send, 0.0, "send overhead is off the path");
        // Segments are forward-ordered and contiguous per hop group.
        assert_eq!(cp.segments[0].rank, 0);
        assert_eq!(cp.segments[0].category, Category::Compute);
        for w in cp.segments.windows(2) {
            assert!(w[0].end <= w[1].start + 1e-12);
        }
        // Node attribution follows the recorded topology.
        assert!((cp.by_node[&0].compute - 1.0).abs() < 1e-12);
        assert!((cp.by_node[&1].compute - 0.3).abs() < 1e-12);
        assert_eq!(cp.breakdown.dominant(), Category::Compute);
    }

    #[test]
    fn comm_matrix_and_imbalance_summarize_the_run() {
        let a = analyze(&bundle_from(two_rank_tracer()));
        assert_eq!(a.comm_matrix.len(), 1);
        let p = &a.comm_matrix[0];
        assert_eq!((p.from_rank, p.to_rank), (0, 1));
        assert_eq!((p.from_node, p.to_node), (0, 1));
        assert_eq!(p.messages, 1);
        assert_eq!(p.bytes, 4096);
        assert!((p.cost - 0.2).abs() < 1e-12);
        assert_eq!(a.heaviest_pair().unwrap().bytes, 4096);
        let imb = &a.imbalance;
        assert_eq!(imb.n_ranks, 2);
        // Rank 0 busy 1.01 s, rank 1 busy 0.4 s.
        assert!((imb.max_busy - 1.01).abs() < 1e-12);
        assert!((imb.mean_busy - 0.705).abs() < 1e-12);
        assert!(imb.ratio() > 1.0);
        assert!(imb.idle_fraction > 0.0 && imb.idle_fraction < 1.0);
    }

    #[test]
    fn collective_hop_routes_through_the_straggler() {
        let mut t = RecordingTracer::new();
        t.topology(&[0, 0]);
        // Rank 1 is the straggler: computes 2 s, then the barrier costs
        // 0.5 s; rank 0 arrives at 0.3 s and waits.
        t.span(0, SpanKind::Compute, 0.0, 0.3);
        t.span(1, SpanKind::Compute, 0.0, 2.0);
        t.span(0, SpanKind::Collective, 0.3, 2.5);
        t.span(1, SpanKind::Collective, 2.0, 2.5);
        for dst in 0..2usize {
            t.edge(&CausalEdge {
                kind: EdgeKind::Collective,
                src_rank: 1,
                src_time: 2.0,
                dst_rank: dst,
                dst_time: 2.5,
                bytes: 0,
                wire_time: 0.5,
                fault_delay: 0.0,
            });
        }
        let a = analyze(&bundle_from(t));
        let cp = &a.critical_path;
        assert!((cp.total - cp.makespan).abs() < 1e-9);
        // The path is rank 1's compute plus the collective cost — rank
        // 0's wait for the straggler is not on it.
        assert!((cp.breakdown.compute - 2.0).abs() < 1e-12);
        assert!((cp.breakdown.collective - 0.5).abs() < 1e-12);
        assert!(
            cp.by_rank.keys().all(|&r| r == 1) || cp.by_rank.len() <= 2,
            "path stays on the straggler"
        );
        assert!((cp.by_rank[&1].compute - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_bundle_yields_an_empty_analysis() {
        let a = analyze(&TraceBundle::default());
        assert_eq!(a.critical_path.total, 0.0);
        assert!(a.critical_path.segments.is_empty());
        assert!(a.comm_matrix.is_empty());
        assert_eq!(a.imbalance.n_ranks, 0);
        // And the JSON rendering still parses.
        let parsed = serde_json::from_str(&serde_json::to_string(&a.to_value())).expect("parses");
        assert_eq!(
            parsed
                .get("critical_path")
                .and_then(|c| c.get("total"))
                .and_then(Value::as_f64),
            Some(0.0)
        );
    }

    #[test]
    fn metrics_only_bundle_is_harmless() {
        // The sweep-resilience summary bundle has metrics but no spans.
        let b = TraceBundle {
            label: "sweep resilience: X".into(),
            profile: CommProfile::from_spans(&[], 0),
            ..TraceBundle::default()
        };
        let a = analyze(&b);
        assert_eq!(a.critical_path.makespan, 0.0);
        assert!(!a.critical_path.truncated);
    }

    #[test]
    fn json_export_carries_schema_fields() {
        let a = analyze(&bundle_from(two_rank_tracer()));
        let text = serde_json::to_string_pretty(&a.to_value());
        let doc = serde_json::from_str(&text).expect("parses");
        let cp = doc.get("critical_path").expect("critical_path");
        assert!(cp.get("segments").and_then(Value::as_array).is_some());
        assert!(!cp
            .get("segments")
            .and_then(Value::as_array)
            .unwrap()
            .is_empty());
        assert_eq!(
            cp.get("breakdown")
                .and_then(|b| b.get("compute"))
                .and_then(Value::as_f64)
                .map(|v| (v - 1.3).abs() < 1e-9),
            Some(true)
        );
        assert!(doc.get("imbalance").is_some());
        assert_eq!(
            doc.get("comm_matrix")
                .and_then(Value::as_array)
                .map(Vec::len),
            Some(1)
        );
    }
}
