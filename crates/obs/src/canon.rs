//! Canonical (schedule-independent) ordering of trace event streams.
//!
//! The discrete-event engine's *outcomes* are schedule-independent, but
//! its raw emission order is not: the serial worklist interleaves ranks
//! in whatever order they become runnable, and a partitioned parallel
//! engine interleaves them differently again. Consumers that fold the
//! stream left-to-right into `f64` accumulators (histograms, per-phase
//! sums) or export it verbatim (the Chrome trace) would see those
//! orders, so byte-identity across engines requires a *canonical*
//! order.
//!
//! The canonical order is: topology and gauges first (they are emitted
//! before any span in both engines), then every buffered event of rank
//! 0, then rank 1, and so on. Each event has exactly one owner rank —
//! spans belong to [`SpanEvent::rank`], messages to the sender, message
//! edges to the source rank, and collective edges to the destination
//! rank — chosen so that both engines produce each rank's sub-stream in
//! that rank's program order. Replaying per-rank sub-streams in rank
//! order therefore yields one global order that is a pure function of
//! the simulation's inputs.
//!
//! [`EventBuffer`] is the per-owner staging structure (the parallel
//! engine keeps one per partition and merges them rank-by-rank);
//! [`CanonicalTracer`] wraps any downstream [`Tracer`] and applies the
//! reordering transparently for the serial engine. When the downstream
//! tracer is disabled nothing is buffered and every hook stays an
//! inlined no-op, preserving the engine's zero-overhead guarantee.

use crate::tracer::{CausalEdge, EdgeKind, MessageRecord, SpanEvent, SpanKind, Tracer};

/// One buffered trace event, tagged with what it was.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BufferedEvent {
    /// A span on the owner rank's timeline.
    Span(SpanEvent),
    /// A message posted by the owner rank.
    Message(MessageRecord),
    /// A causal edge owned per [`EventBuffer::owner_of_edge`].
    Edge(CausalEdge),
}

/// Per-rank staging of trace events, replayable in canonical order.
///
/// Also a [`Tracer`] itself (always enabled; topology and gauges are
/// dropped — the engine that owns the buffer forwards those directly),
/// so the engine's emission code can be generic over "real tracer or
/// staging buffer".
#[derive(Debug, Default)]
pub struct EventBuffer {
    per_rank: Vec<Vec<BufferedEvent>>,
}

impl EventBuffer {
    /// An empty buffer for `n` ranks.
    pub fn new(n: usize) -> Self {
        EventBuffer {
            per_rank: (0..n).map(|_| Vec::new()).collect(),
        }
    }

    /// The rank whose sub-stream an edge belongs to: the source for
    /// message edges (emitted at post time by the sender), the
    /// destination for collective edges (emitted per released rank).
    pub fn owner_of_edge(edge: &CausalEdge) -> usize {
        match edge.kind {
            EdgeKind::Message => edge.src_rank,
            EdgeKind::Collective => edge.dst_rank,
        }
    }

    /// Number of buffered events across all ranks.
    pub fn len(&self) -> usize {
        self.per_rank.iter().map(Vec::len).sum()
    }

    /// Whether nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.per_rank.iter().all(Vec::is_empty)
    }

    /// Forward rank `r`'s buffered events to `out` in buffer order,
    /// leaving the buffer intact (the caller clears or drops it).
    pub fn replay_rank<T: Tracer + ?Sized>(&self, r: usize, out: &mut T) {
        let Some(events) = self.per_rank.get(r) else {
            return;
        };
        for ev in events {
            match ev {
                BufferedEvent::Span(s) => out.span(s.rank, s.kind, s.start, s.end),
                BufferedEvent::Message(m) => out.message(m),
                BufferedEvent::Edge(e) => out.edge(e),
            }
        }
    }

    /// Replay every rank's events in rank order — the canonical order.
    pub fn replay_all<T: Tracer + ?Sized>(&self, out: &mut T) {
        for r in 0..self.per_rank.len() {
            self.replay_rank(r, out);
        }
    }
}

impl Tracer for EventBuffer {
    fn span(&mut self, rank: usize, kind: SpanKind, start: f64, end: f64) {
        self.per_rank[rank].push(BufferedEvent::Span(SpanEvent {
            rank,
            kind,
            start,
            end,
        }));
    }

    fn message(&mut self, msg: &MessageRecord) {
        self.per_rank[msg.from_rank].push(BufferedEvent::Message(*msg));
    }

    fn edge(&mut self, edge: &CausalEdge) {
        self.per_rank[Self::owner_of_edge(edge)].push(BufferedEvent::Edge(*edge));
    }

    // Topology and gauges are ordered before all spans already; the
    // engine forwards them to the downstream tracer directly.
}

/// A [`Tracer`] adapter that delivers events to `inner` in canonical
/// order: topology and gauges immediately, everything else staged in an
/// [`EventBuffer`] until [`CanonicalTracer::flush`].
///
/// When `inner` is disabled no buffer is allocated and all hooks are
/// no-ops, so wrapping the `NullTracer` costs nothing.
pub struct CanonicalTracer<'a, T: Tracer + ?Sized> {
    inner: &'a mut T,
    buf: Option<EventBuffer>,
}

impl<'a, T: Tracer + ?Sized> CanonicalTracer<'a, T> {
    /// Wrap `inner` for a simulation over `n` ranks.
    pub fn new(inner: &'a mut T, n: usize) -> Self {
        let buf = inner.enabled().then(|| EventBuffer::new(n));
        CanonicalTracer { inner, buf }
    }

    /// Replay everything staged so far into `inner`, in canonical
    /// order, and clear the stage. Must be called before the simulation
    /// result is returned (on success *and* on mid-run errors, so the
    /// tracer still sees what happened up to the failure).
    pub fn flush(&mut self) {
        if let Some(buf) = &mut self.buf {
            let buf = std::mem::take(buf);
            buf.replay_all(self.inner);
        }
    }
}

impl<T: Tracer + ?Sized> Tracer for CanonicalTracer<'_, T> {
    #[inline]
    fn enabled(&self) -> bool {
        self.inner.enabled()
    }

    #[inline]
    fn span(&mut self, rank: usize, kind: SpanKind, start: f64, end: f64) {
        if let Some(buf) = &mut self.buf {
            buf.span(rank, kind, start, end);
        }
    }

    #[inline]
    fn message(&mut self, msg: &MessageRecord) {
        if let Some(buf) = &mut self.buf {
            buf.message(msg);
        }
    }

    #[inline]
    fn edge(&mut self, edge: &CausalEdge) {
        if let Some(buf) = &mut self.buf {
            buf.edge(edge);
        }
    }

    #[inline]
    fn gauge(&mut self, name: &'static str, value: f64) {
        self.inner.gauge(name, value);
    }

    #[inline]
    fn topology(&mut self, rank_nodes: &[u32]) {
        self.inner.topology(rank_nodes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::{NullTracer, RecordingTracer};

    fn msg(from: usize, to: usize) -> MessageRecord {
        MessageRecord {
            from_rank: from,
            to_rank: to,
            from_node: 0,
            to_node: 0,
            bytes: 8,
            wire_time: 1e-6,
            drops: 0,
            retransmit_delay: 0.0,
            multiplex_delay: 0.0,
        }
    }

    fn edge(kind: EdgeKind, src: usize, dst: usize) -> CausalEdge {
        CausalEdge {
            kind,
            src_rank: src,
            src_time: 0.0,
            dst_rank: dst,
            dst_time: 1e-6,
            bytes: 8,
            wire_time: 1e-6,
            fault_delay: 0.0,
        }
    }

    #[test]
    fn replay_orders_by_owner_rank_then_emission() {
        let mut canon = RecordingTracer::new();
        {
            let mut t = CanonicalTracer::new(&mut canon, 3);
            t.topology(&[0, 0, 1]);
            // Emitted in a scrambled scheduler order.
            t.span(2, SpanKind::Compute, 0.0, 1.0);
            t.span(0, SpanKind::Compute, 0.0, 2.0);
            t.message(&msg(1, 0));
            t.edge(&edge(EdgeKind::Message, 1, 0)); // owner: src rank 1
            t.edge(&edge(EdgeKind::Collective, 2, 0)); // owner: dst rank 0
            t.span(0, SpanKind::Send, 2.0, 2.1);
            t.flush();
        }
        assert_eq!(canon.rank_nodes, vec![0, 0, 1]);
        // Rank 0's events (two spans + the collective edge) come first,
        // in emission order; then rank 1's message+edge; then rank 2.
        let ranks: Vec<usize> = canon.spans.iter().map(|s| s.rank).collect();
        assert_eq!(ranks, vec![0, 0, 2]);
        assert_eq!(canon.edges[0].kind, EdgeKind::Collective);
        assert_eq!(canon.edges[1].kind, EdgeKind::Message);
        assert_eq!(canon.metrics.counter("messages_sent"), 1);
    }

    #[test]
    fn disabled_inner_buffers_nothing() {
        let mut null = NullTracer;
        let mut t = CanonicalTracer::new(&mut null, 4);
        assert!(!t.enabled());
        assert!(t.buf.is_none());
        t.span(0, SpanKind::Compute, 0.0, 1.0);
        t.flush();
    }

    #[test]
    fn event_buffer_merges_across_buffers_per_rank() {
        // Two partition-local buffers over the same rank space; a
        // leader-merged replay interleaves them rank-by-rank.
        let mut a = EventBuffer::new(2);
        let mut b = EventBuffer::new(2);
        a.span(0, SpanKind::Compute, 0.0, 1.0);
        b.span(1, SpanKind::Compute, 0.0, 0.5);
        a.span(0, SpanKind::Send, 1.0, 1.1);
        assert_eq!(a.len(), 2);
        assert!(!a.is_empty());
        let mut out = RecordingTracer::new();
        for r in 0..2 {
            a.replay_rank(r, &mut out);
            b.replay_rank(r, &mut out);
        }
        let got: Vec<(usize, SpanKind)> = out.spans.iter().map(|s| (s.rank, s.kind)).collect();
        assert_eq!(
            got,
            vec![
                (0, SpanKind::Compute),
                (0, SpanKind::Send),
                (1, SpanKind::Compute)
            ]
        );
    }
}
