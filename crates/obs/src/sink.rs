//! The process-global trace sink.
//!
//! Experiments run many simulations behind several layers of workload
//! crates; threading a tracer through every API would bloat every
//! signature for a debugging concern. Instead, the executor
//! (`columbia-runtime`) asks this sink "is anyone collecting?" once
//! per simulation — one relaxed atomic load when disabled — and, when
//! the answer is yes, runs under a
//! [`RecordingTracer`](crate::RecordingTracer) and deposits the
//! resulting [`TraceBundle`] here. `repro --trace/--metrics` installs
//! the sink, runs the selected experiments, then drains it into the
//! export files.
//!
//! The sink is global and mutex-protected (not thread-local) so
//! simulations running on worker threads are captured too. A parallel
//! sweep executor wraps each sweep point in [`with_point`], which tags
//! every bundle recorded on that thread with its owning `(epoch,
//! point)` key; [`take`] orders bundles by that key, so a parallel run
//! drains in exactly the order the equivalent serial run would have —
//! bundles are attributed to their sweep point, never interleaved, and
//! the `sim N` labels are bit-identical regardless of scheduling.
//! Bundles recorded outside any sweep point keep arrival order,
//! slotted after the points of the most recently started sweep.
//!
//! The resilient sweep executor (`core::sweep::run_resilient`) uses
//! that out-of-point slot deliberately: after a sweep settles it
//! deposits one summary bundle (labelled `sweep resilience: <id>`)
//! carrying `sweep.*` counters — points, resumed, retries, panics,
//! timeouts, failures, checkpoint write errors — and a
//! `sweep.point_seconds` latency histogram, so `repro --metrics`
//! exports the campaign's resilience telemetry alongside the per-
//! simulation fabric counters, draining after that sweep's points.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use crate::metrics::Metrics;
use crate::profile::CommProfile;
use crate::tracer::{CausalEdge, SpanEvent};

/// Everything recorded about one simulation.
#[derive(Debug, Clone, Default)]
pub struct TraceBundle {
    /// Human label ("bt-mz 256x4", "sim 3", …).
    pub label: String,
    /// The span stream, in emission order.
    pub spans: Vec<SpanEvent>,
    /// The causal happens-before edges, in emission order.
    pub edges: Vec<CausalEdge>,
    /// Node of each rank (`rank_nodes[r]` is rank `r`'s node), empty
    /// for bundles without a recorded placement.
    pub rank_nodes: Vec<u32>,
    /// Aggregated counters/histograms.
    pub metrics: Metrics,
    /// The compute/comm/wait attribution.
    pub profile: CommProfile,
}

/// Canonical drain position of one recorded bundle: sweeps in start
/// order, points in index order, simulations within a point in the
/// order that point ran them (a point runs on exactly one thread, so
/// that order is well-defined and schedule-independent).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct SinkKey {
    epoch: u64,
    point: usize,
    sim: u64,
}

static ACTIVE: AtomicBool = AtomicBool::new(false);
static SINK: Mutex<Vec<(SinkKey, TraceBundle)>> = Mutex::new(Vec::new());
/// Count of sweep epochs started (see [`next_epoch`]).
static EPOCH: AtomicU64 = AtomicU64::new(0);
/// Arrival tiebreaker for bundles recorded outside any sweep point.
static ARRIVAL: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// The `(epoch, point)` this thread is currently executing, if any.
    static CTX: Cell<Option<(u64, usize)>> = const { Cell::new(None) };
    /// Simulations recorded so far within the current sweep point.
    static SIM_IN_POINT: Cell<u64> = const { Cell::new(0) };
}

/// Start collecting: clears any previous bundles and activates the
/// sink.
pub fn install() {
    let mut sink = SINK.lock().unwrap_or_else(|e| e.into_inner());
    sink.clear();
    ACTIVE.store(true, Ordering::Release);
}

/// Whether a collector is installed. Cheap enough to call per
/// simulation from any thread.
#[inline]
pub fn is_active() -> bool {
    ACTIVE.load(Ordering::Acquire)
}

/// Claim the next sweep epoch. A sweep executor calls this once per
/// plan, then wraps each point in [`with_point`] under the returned
/// epoch; epochs order whole sweeps against each other in [`take`].
pub fn next_epoch() -> u64 {
    EPOCH.fetch_add(1, Ordering::Relaxed) + 1
}

/// Run `f` attributed to sweep `point` of `epoch`: every bundle it
/// records (on this thread) is keyed to that point. Nests safely — the
/// previous attribution is restored on exit.
pub fn with_point<R>(epoch: u64, point: usize, f: impl FnOnce() -> R) -> R {
    let prev_ctx = CTX.with(|c| c.replace(Some((epoch, point))));
    let prev_sim = SIM_IN_POINT.with(|c| c.replace(0));
    struct Restore(Option<(u64, usize)>, u64);
    impl Drop for Restore {
        fn drop(&mut self) {
            CTX.with(|c| c.set(self.0));
            SIM_IN_POINT.with(|c| c.set(self.1));
        }
    }
    let _restore = Restore(prev_ctx, prev_sim);
    f()
}

/// Deposit one recorded simulation. A no-op when the sink is not
/// installed (the recording is dropped), so racing a `take` is safe.
pub fn record(bundle: TraceBundle) {
    if !is_active() {
        return;
    }
    let key = match CTX.with(|c| c.get()) {
        Some((epoch, point)) => {
            let sim = SIM_IN_POINT.with(|c| {
                let s = c.get();
                c.set(s + 1);
                s
            });
            SinkKey { epoch, point, sim }
        }
        // Outside any sweep point: keep arrival order, after the points
        // of the most recently started sweep.
        None => SinkKey {
            epoch: EPOCH.load(Ordering::Relaxed),
            point: usize::MAX,
            sim: ARRIVAL.fetch_add(1, Ordering::Relaxed),
        },
    };
    let mut sink = SINK.lock().unwrap_or_else(|e| e.into_inner());
    sink.push((key, bundle));
}

/// Stop collecting and return everything captured since [`install`],
/// in canonical order (sweep epoch, point index, per-point arrival) —
/// deterministic however many threads recorded. Labels gain their
/// final `sim N` prefix here, numbered in that order.
pub fn take() -> Vec<TraceBundle> {
    ACTIVE.store(false, Ordering::Release);
    let mut sink = SINK.lock().unwrap_or_else(|e| e.into_inner());
    let mut entries = std::mem::take(&mut *sink);
    drop(sink);
    entries.sort_by_key(|(key, _)| *key);
    entries
        .into_iter()
        .enumerate()
        .map(|(seq, (_, mut bundle))| {
            bundle.label = format!("sim {seq}: {}", bundle.label);
            bundle
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The sink is process-global, so the tests that drive its
    /// lifecycle serialize on this lock (test threads run in parallel).
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn sink_lifecycle() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        // Exercises the global state end-to-end.
        assert!(!is_active());
        record(TraceBundle {
            label: "dropped".into(),
            ..TraceBundle::default()
        });
        assert!(take().is_empty());

        install();
        assert!(is_active());
        record(TraceBundle {
            label: "a".into(),
            ..TraceBundle::default()
        });
        record(TraceBundle {
            label: "b".into(),
            ..TraceBundle::default()
        });
        let bundles = take();
        assert!(!is_active());
        assert_eq!(bundles.len(), 2);
        assert_eq!(bundles[0].label, "sim 0: a");
        assert_eq!(bundles[1].label, "sim 1: b");
        assert!(take().is_empty());
    }

    #[test]
    fn sweep_points_collate_canonically_across_threads() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        install();
        let epoch = next_epoch();
        // Two "workers" record points out of index order; point 1 even
        // records two simulations.
        let t1 = std::thread::spawn(move || {
            with_point(epoch, 2, || {
                record(TraceBundle {
                    label: "late point".into(),
                    ..TraceBundle::default()
                });
            });
        });
        t1.join().unwrap();
        let t0 = std::thread::spawn(move || {
            with_point(epoch, 1, || {
                record(TraceBundle {
                    label: "mid point, sim A".into(),
                    ..TraceBundle::default()
                });
                record(TraceBundle {
                    label: "mid point, sim B".into(),
                    ..TraceBundle::default()
                });
            });
        });
        t0.join().unwrap();
        with_point(epoch, 0, || {
            record(TraceBundle {
                label: "early point".into(),
                ..TraceBundle::default()
            });
        });
        let labels: Vec<String> = take().into_iter().map(|b| b.label).collect();
        assert_eq!(
            labels,
            vec![
                "sim 0: early point",
                "sim 1: mid point, sim A",
                "sim 2: mid point, sim B",
                "sim 3: late point",
            ]
        );
    }

    #[test]
    fn with_point_restores_previous_attribution() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        install();
        let epoch = next_epoch();
        with_point(epoch, 5, || {
            record(TraceBundle {
                label: "outer before".into(),
                ..TraceBundle::default()
            });
            with_point(epoch, 3, || {
                record(TraceBundle {
                    label: "inner".into(),
                    ..TraceBundle::default()
                });
            });
            record(TraceBundle {
                label: "outer after".into(),
                ..TraceBundle::default()
            });
        });
        let labels: Vec<String> = take().into_iter().map(|b| b.label).collect();
        assert_eq!(
            labels,
            vec!["sim 0: inner", "sim 1: outer before", "sim 2: outer after"]
        );
    }
}
