//! The process-global trace sink.
//!
//! Experiments run many simulations behind several layers of workload
//! crates; threading a tracer through every API would bloat every
//! signature for a debugging concern. Instead, the executor
//! (`columbia-runtime`) asks this sink "is anyone collecting?" once
//! per simulation — one relaxed atomic load when disabled — and, when
//! the answer is yes, runs under a
//! [`RecordingTracer`](crate::RecordingTracer) and deposits the
//! resulting [`TraceBundle`] here. `repro --trace/--metrics` installs
//! the sink, runs the selected experiments, then drains it into the
//! export files.
//!
//! The sink is global and mutex-protected (not thread-local) so
//! simulations running on worker threads are captured too. Bundles
//! carry a sequence number in arrival order, which makes concurrent
//! captures distinguishable even when labels repeat.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use crate::metrics::Metrics;
use crate::profile::CommProfile;
use crate::tracer::SpanEvent;

/// Everything recorded about one simulation.
#[derive(Debug, Clone, Default)]
pub struct TraceBundle {
    /// Human label ("bt-mz 256x4", "sim 3", …).
    pub label: String,
    /// The span stream, in emission order.
    pub spans: Vec<SpanEvent>,
    /// Aggregated counters/histograms.
    pub metrics: Metrics,
    /// The compute/comm/wait attribution.
    pub profile: CommProfile,
}

static ACTIVE: AtomicBool = AtomicBool::new(false);
static SINK: Mutex<Vec<TraceBundle>> = Mutex::new(Vec::new());

/// Start collecting: clears any previous bundles and activates the
/// sink.
pub fn install() {
    let mut sink = SINK.lock().unwrap_or_else(|e| e.into_inner());
    sink.clear();
    ACTIVE.store(true, Ordering::Release);
}

/// Whether a collector is installed. Cheap enough to call per
/// simulation from any thread.
#[inline]
pub fn is_active() -> bool {
    ACTIVE.load(Ordering::Acquire)
}

/// Deposit one recorded simulation. A no-op when the sink is not
/// installed (the recording is dropped), so racing a `take` is safe.
pub fn record(mut bundle: TraceBundle) {
    if !is_active() {
        return;
    }
    let mut sink = SINK.lock().unwrap_or_else(|e| e.into_inner());
    let seq = sink.len();
    bundle.label = format!("sim {seq}: {}", bundle.label);
    sink.push(bundle);
}

/// Stop collecting and return everything captured since
/// [`install`], in arrival order.
pub fn take() -> Vec<TraceBundle> {
    ACTIVE.store(false, Ordering::Release);
    let mut sink = SINK.lock().unwrap_or_else(|e| e.into_inner());
    std::mem::take(&mut *sink)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sink_lifecycle() {
        // Single test exercising the global state end-to-end (kept as
        // one test so parallel test threads cannot interleave).
        assert!(!is_active());
        record(TraceBundle {
            label: "dropped".into(),
            ..TraceBundle::default()
        });
        assert!(take().is_empty());

        install();
        assert!(is_active());
        record(TraceBundle {
            label: "a".into(),
            ..TraceBundle::default()
        });
        record(TraceBundle {
            label: "b".into(),
            ..TraceBundle::default()
        });
        let bundles = take();
        assert!(!is_active());
        assert_eq!(bundles.len(), 2);
        assert_eq!(bundles[0].label, "sim 0: a");
        assert_eq!(bundles[1].label, "sim 1: b");
        assert!(take().is_empty());
    }
}
