//! [`CommProfile`]: the compute / communication / wait attribution.
//!
//! Derived from a [`RecordingTracer`](crate::RecordingTracer)'s span
//! stream. CPU-track spans tile each rank's timeline, so summing them
//! by kind reproduces exactly where every virtual second went — the
//! simulator's analogue of the paper's per-application comm/exec
//! tables. Phases are delimited by collectives: phase *k* of a rank is
//! everything between its (k−1)-th and k-th collective, which matches
//! how the simulated workloads structure their time steps.

use serde_json::Value;

use crate::tracer::{SpanEvent, SpanKind, Track};

/// Where one rank's virtual time went.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RankProfile {
    /// The rank.
    pub rank: usize,
    /// Seconds in [`SpanKind::Compute`].
    pub compute: f64,
    /// Seconds actively communicating ([`SpanKind::Send`] overhead +
    /// [`SpanKind::Collective`]).
    pub comm: f64,
    /// Seconds blocked in [`SpanKind::RecvWait`].
    pub wait: f64,
    /// Finish time of the rank (end of its last CPU span).
    pub total: f64,
}

impl RankProfile {
    /// `compute + comm + wait` — equals [`RankProfile::total`] because
    /// CPU spans tile the timeline (property-tested).
    pub fn accounted(&self) -> f64 {
        self.compute + self.comm + self.wait
    }
}

/// One collective-delimited phase, aggregated over all ranks.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PhaseProfile {
    /// Phase index (0 = up to and including the first collective).
    pub phase: usize,
    /// Total compute seconds across ranks.
    pub compute: f64,
    /// Total active-communication seconds across ranks.
    pub comm: f64,
    /// Total blocked-wait seconds across ranks.
    pub wait: f64,
}

/// The full attribution of a simulated run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CommProfile {
    /// Per-rank breakdown, indexed by rank.
    pub ranks: Vec<RankProfile>,
    /// Per-phase breakdown (summed over ranks), in phase order.
    pub phases: Vec<PhaseProfile>,
    /// Finish time of the slowest rank.
    pub makespan: f64,
}

impl CommProfile {
    /// Fold a span stream (per-rank monotone, as the
    /// [`RecordingTracer`](crate::RecordingTracer) emits it) into the
    /// attribution.
    pub fn from_spans(spans: &[SpanEvent], n_ranks: usize) -> CommProfile {
        let mut ranks: Vec<RankProfile> = (0..n_ranks)
            .map(|rank| RankProfile {
                rank,
                ..RankProfile::default()
            })
            .collect();
        let mut phase_of = vec![0usize; n_ranks];
        let mut phases: Vec<PhaseProfile> = Vec::new();
        for s in spans {
            if s.kind.track() != Track::Cpu {
                continue;
            }
            let r = &mut ranks[s.rank];
            let d = s.duration();
            let phase = phase_of[s.rank];
            if phases.len() <= phase {
                phases.resize_with(phase + 1, PhaseProfile::default);
            }
            let p = &mut phases[phase];
            p.phase = phase;
            match s.kind {
                SpanKind::Compute => {
                    r.compute += d;
                    p.compute += d;
                }
                SpanKind::Send | SpanKind::Collective => {
                    r.comm += d;
                    p.comm += d;
                }
                SpanKind::RecvWait => {
                    r.wait += d;
                    p.wait += d;
                }
                SpanKind::RetransmitBackoff | SpanKind::MultiplexQueue => unreachable!(),
            }
            r.total = r.total.max(s.end);
            if s.kind == SpanKind::Collective {
                phase_of[s.rank] += 1;
            }
        }
        let makespan = ranks.iter().map(|r| r.total).fold(0.0, f64::max);
        CommProfile {
            ranks,
            phases,
            makespan,
        }
    }

    /// The `n` ranks that spent the most time blocked, worst first —
    /// the "who stalled" question a slow run poses.
    pub fn hotspots(&self, n: usize) -> Vec<&RankProfile> {
        let mut v: Vec<&RankProfile> = self.ranks.iter().collect();
        v.sort_by(|a, b| {
            b.wait
                .partial_cmp(&a.wait)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.rank.cmp(&b.rank))
        });
        v.truncate(n);
        v
    }

    /// Mean communication fraction (`(comm + wait) / total`) across
    /// ranks with non-zero totals.
    pub fn comm_fraction(&self) -> f64 {
        let busy: Vec<&RankProfile> = self.ranks.iter().filter(|r| r.total > 0.0).collect();
        if busy.is_empty() {
            return 0.0;
        }
        busy.iter()
            .map(|r| (r.comm + r.wait) / r.total)
            .sum::<f64>()
            / busy.len() as f64
    }

    /// Render as ordered JSON (per rank, per phase, makespan).
    pub fn to_value(&self) -> Value {
        let mut v = Value::object();
        v.set("makespan", Value::Number(self.makespan));
        v.set("comm_fraction", Value::Number(self.comm_fraction()));
        let ranks = self
            .ranks
            .iter()
            .map(|r| {
                let mut e = Value::object();
                e.set("rank", Value::Number(r.rank as f64));
                e.set("compute", Value::Number(r.compute));
                e.set("comm", Value::Number(r.comm));
                e.set("wait", Value::Number(r.wait));
                e.set("total", Value::Number(r.total));
                e
            })
            .collect();
        v.set("ranks", Value::Array(ranks));
        let phases = self
            .phases
            .iter()
            .map(|p| {
                let mut e = Value::object();
                e.set("phase", Value::Number(p.phase as f64));
                e.set("compute", Value::Number(p.compute));
                e.set("comm", Value::Number(p.comm));
                e.set("wait", Value::Number(p.wait));
                e
            })
            .collect();
        v.set("phases", Value::Array(phases));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(rank: usize, kind: SpanKind, start: f64, end: f64) -> SpanEvent {
        SpanEvent {
            rank,
            kind,
            start,
            end,
        }
    }

    #[test]
    fn attribution_tiles_the_timeline() {
        let spans = vec![
            span(0, SpanKind::Compute, 0.0, 1.0),
            span(0, SpanKind::Send, 1.0, 1.1),
            span(1, SpanKind::RecvWait, 0.0, 1.2),
            span(0, SpanKind::Collective, 1.1, 2.0),
            span(1, SpanKind::Collective, 1.2, 2.0),
            // phase 1 after the collective
            span(0, SpanKind::Compute, 2.0, 2.5),
        ];
        let p = CommProfile::from_spans(&spans, 2);
        assert!((p.ranks[0].accounted() - p.ranks[0].total).abs() < 1e-12);
        assert!((p.ranks[1].accounted() - p.ranks[1].total).abs() < 1e-12);
        assert!((p.makespan - 2.5).abs() < 1e-12);
        assert_eq!(p.phases.len(), 2);
        assert!((p.phases[0].compute - 1.0).abs() < 1e-12);
        assert!((p.phases[1].compute - 0.5).abs() < 1e-12);
        // Rank 1 waited the longest.
        assert_eq!(p.hotspots(1)[0].rank, 1);
    }

    #[test]
    fn net_spans_do_not_pollute_the_cpu_attribution() {
        let spans = vec![
            span(0, SpanKind::Compute, 0.0, 1.0),
            span(0, SpanKind::RetransmitBackoff, 0.5, 5.0),
            span(0, SpanKind::MultiplexQueue, 5.0, 6.0),
        ];
        let p = CommProfile::from_spans(&spans, 1);
        assert!((p.ranks[0].total - 1.0).abs() < 1e-12);
        assert!((p.makespan - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_profile_is_zero() {
        let p = CommProfile::from_spans(&[], 0);
        assert_eq!(p.makespan, 0.0);
        assert_eq!(p.comm_fraction(), 0.0);
        assert!(p.hotspots(3).is_empty());
    }

    #[test]
    fn json_export_parses() {
        let spans = vec![span(0, SpanKind::Compute, 0.0, 2.0)];
        let p = CommProfile::from_spans(&spans, 1);
        let parsed = serde_json::from_str(&serde_json::to_string(&p.to_value())).unwrap();
        assert_eq!(parsed.get("makespan").and_then(Value::as_f64), Some(2.0));
        assert_eq!(
            parsed.get("ranks").and_then(Value::as_array).unwrap().len(),
            1
        );
    }
}
