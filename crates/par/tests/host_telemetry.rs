//! Host-telemetry capture through real pool runs.
//!
//! Lives in its own integration binary (own process) because the host
//! capture window is process-global: the pool runs in `columbia-par`'s
//! unit tests execute concurrently and would bleed spans into any
//! capture opened there.

use std::sync::Mutex;
use std::time::Duration;

use columbia_obs::host;
use columbia_par::{JobStatus, RunOptions, ThreadPool};

/// Captures are process-global; every test serializes here.
static TEST_LOCK: Mutex<()> = Mutex::new(());

#[test]
fn pool_runs_record_one_span_per_job() {
    let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    host::enable();
    let pool = ThreadPool::new(4);
    let out = pool.run((0..32u64).map(|i| move || i * 2).collect::<Vec<_>>());
    assert_eq!(out.len(), 32);
    let report = host::take().expect("capture live");
    let jobs = report.spans.iter().filter(|s| s.cat == "host.job").count();
    assert_eq!(jobs, 32, "one host span per job");
    assert_eq!(report.metrics.counter("host.jobs"), 32);
    assert!(!report.workers().is_empty(), "worker lanes attributed");
    assert!(
        report.metrics.histogram("host.queue_depth").is_some(),
        "own-deque pops observe remaining depth"
    );
}

#[test]
fn a_drained_worker_records_its_steals() {
    let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    host::enable();
    // deal(4, 2): worker 0 owns [0, 2], worker 1 owns [1, 3]. Worker 0
    // pops its LIFO tail (job 2) and sleeps on it; worker 1 drains its
    // own deque and must steal job 0 from worker 0's FIFO head.
    let pool = ThreadPool::new(2);
    pool.run(
        (0..4u64)
            .map(|i| {
                move || {
                    if i == 2 {
                        std::thread::sleep(Duration::from_millis(100));
                    }
                    i
                }
            })
            .collect::<Vec<_>>(),
    );
    let report = host::take().expect("capture live");
    assert!(
        report.metrics.counter("host.steals") >= 1,
        "the drained worker stole from the sleeper's deque"
    );
    let steal = report
        .spans
        .iter()
        .find(|s| s.cat == "host.steal")
        .expect("steal instant recorded");
    assert_eq!(steal.duration(), 0.0, "steals are instants");
}

#[test]
fn governed_runs_attribute_attempts_retries_and_outcomes() {
    let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    host::enable();
    let jobs: Vec<Box<dyn Fn() -> u32 + Send + Sync>> =
        vec![Box::new(|| 1), Box::new(|| panic!("always fails"))];
    let opts = RunOptions {
        max_retries: 1,
        backoff_base: Duration::from_millis(1),
        ..RunOptions::default()
    };
    let statuses = ThreadPool::new(1).run_governed(jobs, &opts, |_| false);
    assert_eq!(statuses.len(), 2);
    let report = host::take().expect("capture live");
    assert_eq!(report.metrics.counter("host.retries"), 1, "one retry");
    assert_eq!(report.metrics.counter("host.panics"), 1, "final failure");
    assert!(
        report.metrics.histogram("host.backoff_seconds").is_some(),
        "backoff sleeps are observed"
    );
    let outcome_of = |idx: usize| -> &str {
        report
            .spans
            .iter()
            .filter(|s| s.cat == "host.job")
            .filter_map(|s| {
                let is_idx = s
                    .args
                    .iter()
                    .any(|(k, v)| *k == "index" && v.as_f64() == Some(idx as f64));
                let outcome = s
                    .args
                    .iter()
                    .find(|(k, _)| *k == "outcome")
                    .and_then(|(_, v)| v.as_str());
                if is_idx {
                    outcome
                } else {
                    None
                }
            })
            .next()
            .expect("job span with outcome")
    };
    assert_eq!(outcome_of(0), "ok");
    assert_eq!(outcome_of(1), "panicked");
    let span1 = report
        .spans
        .iter()
        .find(|s| s.label == "job 1")
        .expect("job 1 span");
    assert!(
        span1
            .args
            .iter()
            .any(|(k, v)| *k == "attempts" && v.as_f64() == Some(2.0)),
        "span carries the attempt count: {:?}",
        span1.args
    );
}

#[test]
fn fail_fast_skips_render_as_instants() {
    let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    host::enable();
    let jobs: Vec<Box<dyn Fn() -> Result<u32, u32> + Send + Sync>> = (0..6u32)
        .map(|i| {
            Box::new(move || if i == 1 { Err(i) } else { Ok(i) })
                as Box<dyn Fn() -> Result<u32, u32> + Send + Sync>
        })
        .collect();
    let opts = RunOptions {
        fail_fast: true,
        ..RunOptions::default()
    };
    let statuses = ThreadPool::new(1).run_governed(jobs, &opts, |r| r.is_err());
    let skipped = statuses
        .iter()
        .filter(|s| matches!(s, JobStatus::Skipped))
        .count();
    assert_eq!(skipped, 4, "jobs above the failure were skipped");
    let report = host::take().expect("capture live");
    let skip_instants = report.spans.iter().filter(|s| s.cat == "host.skip").count();
    assert_eq!(skip_instants, 4, "one instant per skipped job");
    // The rejected-value job reads "failed", not "ok".
    let failed_span = report
        .spans
        .iter()
        .find(|s| {
            s.args
                .iter()
                .any(|(k, v)| *k == "outcome" && v.as_str() == Some("failed"))
        })
        .expect("failed outcome span");
    assert_eq!(failed_span.label, "job 1");
}

#[test]
fn disabled_telemetry_leaves_no_trace() {
    let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    assert!(!host::is_enabled());
    let pool = ThreadPool::new(4);
    let out = pool.run((0..16u64).map(|i| move || i).collect::<Vec<_>>());
    assert_eq!(out.len(), 16);
    assert!(host::take().is_none(), "nothing captured while disabled");
    // And a later capture starts empty — no leakage from the run above.
    host::enable();
    let report = host::take().expect("fresh window");
    assert_eq!(report.spans.len(), 0);
    assert_eq!(report.metrics.counter("host.jobs"), 0);
}
