//! `columbia-par` — a std-only work-stealing thread pool for
//! embarrassingly-parallel sweep execution, with an execution-
//! resilience layer (panic isolation, per-job deadlines, bounded
//! retry) layered on top.
//!
//! Every figure in the paper is a sweep: independent simulation points
//! (CPU counts, fabrics, fault ladders) whose results are reduced in a
//! canonical order. This crate fans those points out across OS threads
//! while keeping the reduction deterministic: jobs are identified by
//! their index, results land in index-order slots, and the caller reads
//! them back as if the whole sweep had run serially. A parallel run is
//! therefore bit-identical to a serial run regardless of how the
//! scheduler interleaves the work — the property the repo's
//! determinism gate (`repro --jobs N` vs `--jobs 1`) enforces.
//!
//! Scheduling is work-stealing over per-worker deques: each worker owns
//! a LIFO tail of its own deque (cache-friendly for the jobs it was
//! dealt) and steals from the FIFO head of its siblings when it runs
//! dry, so a straggler point cannot strand the rest of the sweep behind
//! it. There are no dependencies beyond `std` — the deques are
//! mutex-guarded, which is plenty for sweep points that each run a
//! whole discrete-event simulation (milliseconds to seconds per job).
//!
//! # Resilience
//!
//! Long characterization campaigns die ugly: one panicking point used
//! to poison the whole pool, and one hung point used to block the sweep
//! forever. The pool therefore never lets a job failure escape as a
//! pool failure:
//!
//! * every job runs under [`catch_unwind`] — a panic becomes a typed
//!   [`JobFailure::Panicked`] in that job's result slot while the
//!   worker moves on to the next job;
//! * [`ThreadPool::run_governed`] adds per-job wall-clock deadlines
//!   (a straggler becomes [`JobFailure::DeadlineExceeded`] and is
//!   abandoned), bounded retry with seeded deterministic backoff, and
//!   an optional fail-fast mode that stops *starting* jobs above the
//!   lowest failed index while still joining every in-flight worker;
//! * lock poisoning and channel teardown are absorbed into typed
//!   results ([`JobStatus::Lost`], [`JobFailure::Panicked`]) instead of
//!   aborting the pool.
//!
//! Abandoned attempts (deadline overruns) keep running on their own
//! detached thread, but they only ever write into a channel whose
//! receiving half the pool has already dropped — a send to a closed
//! channel is a no-op — so a straggler can never scribble on a result
//! slot the pool has moved past.
//!
//! # Host telemetry
//!
//! Every worker lane reports wall-clock execution through
//! [`columbia_obs::host`] when a capture is enabled (`repro --trace`):
//! one span per job (index, attempts, outcome), an instant per steal,
//! queue-depth and backoff observations, and `host.*` counters for
//! jobs, steals, retries, panics, and deadline overruns. When no
//! capture is live every hook is one relaxed atomic load — the
//! `--bench obs` host-overhead bench holds the disabled path under 2%.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use columbia_obs::host::{self, HostTrack};
use serde_json::Value;

/// Number of worker threads the platform comfortably supports; the
/// default for `repro --jobs`.
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Why one job produced no value.
#[derive(Debug, Clone, PartialEq)]
pub enum JobFailure {
    /// The job panicked on its final attempt; the payload is the
    /// panic message (or a placeholder for non-string payloads).
    Panicked {
        /// Rendered panic payload.
        message: String,
    },
    /// The job's final attempt overran its wall-clock deadline and was
    /// abandoned by the watchdog.
    DeadlineExceeded {
        /// The configured per-attempt deadline.
        deadline: Duration,
    },
}

impl std::fmt::Display for JobFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobFailure::Panicked { message } => write!(f, "panicked: {message}"),
            JobFailure::DeadlineExceeded { deadline } => {
                write!(f, "exceeded its {:.3}s deadline", deadline.as_secs_f64())
            }
        }
    }
}

/// What one governed job produced, and what it cost.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome<T> {
    /// The job's value, or its typed failure after every attempt was
    /// exhausted.
    pub result: Result<T, JobFailure>,
    /// Attempts made (1 = first try succeeded; retries = attempts - 1).
    pub attempts: u32,
    /// Wall clock from first attempt start to settlement (includes
    /// backoff sleeps between retries).
    pub elapsed: Duration,
}

/// Per-job status of a governed run.
#[derive(Debug, Clone, PartialEq)]
pub enum JobStatus<T> {
    /// The job ran (possibly after retries) and settled.
    Done(JobOutcome<T>),
    /// Fail-fast mode cancelled the job before it started: a
    /// lower-indexed job had already failed.
    Skipped,
    /// The job's result slot was never filled — a pool invariant was
    /// violated (worker lost). Surfaced as data instead of a panic so
    /// one broken slot cannot abort a campaign.
    Lost,
}

impl<T> JobStatus<T> {
    /// The settled outcome, if the job ran.
    pub fn outcome(&self) -> Option<&JobOutcome<T>> {
        match self {
            JobStatus::Done(o) => Some(o),
            _ => None,
        }
    }
}

/// Knobs for [`ThreadPool::run_governed`].
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Per-attempt wall-clock deadline. `None` disables the watchdog
    /// (attempts run inline on the worker; nothing is ever abandoned).
    pub deadline: Option<Duration>,
    /// Retries after a panicked or timed-out attempt (0 = one attempt).
    pub max_retries: u32,
    /// Seed for the deterministic retry backoff schedule.
    pub backoff_seed: u64,
    /// Base unit of the exponential backoff (attempt `k` sleeps
    /// `base * 2^k`, jittered deterministically from the seed).
    pub backoff_base: Duration,
    /// When true, a failed job (panic, deadline, or a value the
    /// caller's `is_failure` predicate rejects) stops *later*-indexed
    /// jobs from starting; already-running jobs are joined normally.
    pub fail_fast: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            deadline: None,
            max_retries: 0,
            backoff_seed: 0,
            backoff_base: Duration::from_millis(10),
            fail_fast: false,
        }
    }
}

/// The deterministic backoff before retry `attempt` (0-based) of job
/// `index`: exponential in the attempt, jittered to 50–150% by a
/// splitmix64 stream of `(seed, index, attempt)`. Same inputs, same
/// schedule — a resumed campaign retries on the same cadence.
pub fn backoff_delay(seed: u64, index: usize, attempt: u32, base: Duration) -> Duration {
    let mut z = seed
        .wrapping_add((index as u64).wrapping_mul(0x9e3779b97f4a7c15))
        .wrapping_add((attempt as u64 + 1).wrapping_mul(0xbf58476d1ce4e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^= z >> 31;
    // Jitter in [0.5, 1.5): half the lattice plus a uniform fraction.
    let jitter = 0.5 + (z >> 11) as f64 / (1u64 << 53) as f64;
    let scale = (1u32 << attempt.min(16)) as f64;
    base.mul_f64(scale * jitter)
}

/// Render a caught panic payload as a message.
pub fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Deal job indices round-robin across `workers` deques so every
/// worker starts with a local run of jobs; stealing rebalances
/// stragglers.
fn deal(n: usize, workers: usize) -> Vec<Mutex<VecDeque<usize>>> {
    (0..workers)
        .map(|w| Mutex::new((w..n).step_by(workers).collect()))
        .collect()
}

/// Claim the next job index for worker `w`: own deque first (LIFO
/// tail), then steal from siblings (FIFO head) — classic work stealing.
/// `None` means every deque is drained and the remaining work is
/// claimed: this worker is done.
///
/// Under a live host capture each successful claim reports: own-deque
/// pops observe the remaining depth (`host.queue_depth`), steals bump
/// `host.steals` and drop an instant on the thief's lane.
fn next_job(queues: &[Mutex<VecDeque<usize>>], w: usize) -> Option<usize> {
    let (own, depth) = {
        let mut q = queues[w].lock().unwrap_or_else(|e| e.into_inner());
        (q.pop_back(), q.len())
    };
    if own.is_some() {
        if host::is_enabled() {
            host::observe("host.queue_depth", depth as f64);
        }
        return own;
    }
    for v in 1..queues.len() {
        let victim = (w + v) % queues.len();
        let stolen = queues[victim]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop_front();
        if let Some(idx) = stolen {
            if host::is_enabled() {
                host::count("host.steals", 1);
                host::instant(
                    HostTrack::Worker(w as u32),
                    "host.steal",
                    format!("steal job {idx}"),
                    vec![("victim", Value::Number(victim as f64))],
                );
            }
            return Some(idx);
        }
    }
    None
}

/// Record one settled job as a span on worker `w`'s host lane. A no-op
/// when `start` is `None` — i.e. no capture was live when the job
/// began, so nothing was timed.
fn record_job_span(w: usize, idx: usize, start: Option<f64>, attempts: u32, outcome: &str) {
    let Some(start) = start else { return };
    host::count("host.jobs", 1);
    host::span(
        HostTrack::Worker(w as u32),
        "host.job",
        format!("job {idx}"),
        start,
        vec![
            ("index", Value::Number(idx as f64)),
            ("attempts", Value::Number(f64::from(attempts))),
            ("outcome", Value::String(outcome.to_string())),
        ],
    );
}

/// A fixed-size pool description. Threads are spawned per [`ThreadPool::run`] call
/// (scoped, so jobs may borrow from the caller), not kept hot: sweep
/// points are coarse enough that spawn cost is noise, and holding no
/// global state keeps the pool trivially correct under nested use.
#[derive(Debug, Clone, Copy)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// A pool of `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        ThreadPool {
            threads: threads.max(1),
        }
    }

    /// A pool sized to the machine.
    pub fn default_size() -> Self {
        ThreadPool::new(available_parallelism())
    }

    /// Worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run every job and return each result **in job index order**,
    /// isolating panics: a panicking job yields `Err(JobFailure)` in
    /// its own slot while every other job still runs to completion —
    /// the pool is never poisoned.
    ///
    /// With one worker (or one job) no threads are spawned and the jobs
    /// run in index order on the caller's thread — the serial path that
    /// parallel runs must be bit-identical to.
    pub fn run_caught<T, F>(&self, jobs: Vec<F>) -> Vec<Result<T, JobFailure>>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        let n = jobs.len();
        let attempt = |f: F| {
            catch_unwind(AssertUnwindSafe(f)).map_err(|p| JobFailure::Panicked {
                message: panic_message(p),
            })
        };
        if self.threads == 1 || n <= 1 {
            // Serial execution is "worker 0" on the host timeline.
            return jobs
                .into_iter()
                .enumerate()
                .map(|(idx, f)| {
                    let t0 = host::clock();
                    let out = attempt(f);
                    record_job_span(0, idx, t0, 1, if out.is_ok() { "ok" } else { "panicked" });
                    out
                })
                .collect();
        }
        let workers = self.threads.min(n);
        // Job slots: taken exactly once, by whichever worker claims the
        // index. Result slots are written exactly once at that index.
        let job_slots: Vec<Mutex<Option<F>>> =
            jobs.into_iter().map(|f| Mutex::new(Some(f))).collect();
        let result_slots: Vec<Mutex<Option<Result<T, JobFailure>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        let queues = deal(n, workers);
        std::thread::scope(|scope| {
            for w in 0..workers {
                let queues = &queues;
                let job_slots = &job_slots;
                let result_slots = &result_slots;
                scope.spawn(move || {
                    while let Some(idx) = next_job(queues, w) {
                        // A job index is dealt to exactly one deque, so
                        // the take can only miss if that invariant broke;
                        // the empty slot is then reported as `Lost` by
                        // the collation below instead of aborting here.
                        let Some(f) = job_slots[idx]
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .take()
                        else {
                            continue;
                        };
                        let t0 = host::clock();
                        let out = attempt(f);
                        record_job_span(w, idx, t0, 1, if out.is_ok() { "ok" } else { "panicked" });
                        *result_slots[idx].lock().unwrap_or_else(|e| e.into_inner()) = Some(out);
                    }
                });
            }
        });
        result_slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap_or_else(|e| e.into_inner())
                    .unwrap_or(Err(JobFailure::Panicked {
                        message: "result slot never filled (worker lost)".to_string(),
                    }))
            })
            .collect()
    }

    /// Run every job and return the results **in job index order**,
    /// regardless of which worker finished which job when.
    ///
    /// Built on [`ThreadPool::run_caught`], so a panicking job no
    /// longer poisons the pool: every other job completes first, then
    /// the lowest-indexed panic is re-raised on the calling thread.
    pub fn run<T, F>(&self, jobs: Vec<F>) -> Vec<T>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        let mut out = Vec::new();
        for (idx, r) in self.run_caught(jobs).into_iter().enumerate() {
            match r {
                Ok(t) => out.push(t),
                Err(failure) => panic!("pool job {idx} {failure}"),
            }
        }
        out
    }

    /// Map `f` over `items`, collating results in item order.
    pub fn map<I, T, F>(&self, items: Vec<I>, f: F) -> Vec<T>
    where
        I: Send,
        T: Send,
        F: Fn(I) -> T + Sync,
    {
        let f = &f;
        self.run(
            items
                .into_iter()
                .map(|item| move || f(item))
                .collect::<Vec<_>>(),
        )
    }

    /// Run every job under the resilience policy in `opts`: panics are
    /// isolated per attempt, attempts may be bounded by a wall-clock
    /// deadline, failed attempts are retried up to `max_retries` times
    /// on a seeded deterministic backoff, and — when `fail_fast` is set
    /// — a failure (including a value `is_failure` rejects) stops
    /// later-indexed jobs from *starting*, while every in-flight worker
    /// is still joined before this returns.
    ///
    /// Statuses come back in job index order. Jobs must be `Fn` (not
    /// `FnOnce`) so they can be re-invoked on retry, and `'static` so a
    /// deadline overrun can be abandoned to a detached watchdog thread
    /// without borrowing from the pool's stack frame.
    pub fn run_governed<T, F>(
        &self,
        jobs: Vec<F>,
        opts: &RunOptions,
        is_failure: impl Fn(&T) -> bool + Sync,
    ) -> Vec<JobStatus<T>>
    where
        T: Send + 'static,
        F: Fn() -> T + Send + Sync + 'static,
    {
        let n = jobs.len();
        let jobs: Vec<Arc<F>> = jobs.into_iter().map(Arc::new).collect();
        // Lowest failed index so far; fail-fast skips indices above it.
        let cancel_floor = AtomicUsize::new(usize::MAX);
        let claim = |idx: usize, w: usize| {
            if opts.fail_fast && idx > cancel_floor.load(Ordering::Acquire) {
                if host::is_enabled() {
                    host::instant(
                        HostTrack::Worker(w as u32),
                        "host.skip",
                        format!("skip job {idx}"),
                        vec![("index", Value::Number(idx as f64))],
                    );
                }
                return JobStatus::Skipped;
            }
            let t0 = host::clock();
            let outcome = settle_job(&jobs[idx], idx, opts);
            let failed = match &outcome.result {
                Ok(t) => is_failure(t),
                Err(_) => true,
            };
            let label = match &outcome.result {
                Ok(_) if failed => "failed",
                Ok(_) => "ok",
                Err(JobFailure::Panicked { .. }) => "panicked",
                Err(JobFailure::DeadlineExceeded { .. }) => "deadline",
            };
            record_job_span(w, idx, t0, outcome.attempts, label);
            if failed && opts.fail_fast {
                cancel_floor.fetch_min(idx, Ordering::AcqRel);
            }
            JobStatus::Done(outcome)
        };
        let workers = if n <= 1 { 1 } else { self.threads.min(n) };
        if workers == 1 {
            // The serial path every parallel run must be equivalent to:
            // jobs settle in index order on the calling thread.
            return (0..n).map(|idx| claim(idx, 0)).collect();
        }
        let status_slots: Vec<Mutex<Option<JobStatus<T>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        let queues = deal(n, workers);
        std::thread::scope(|scope| {
            for w in 0..workers {
                let queues = &queues;
                let claim = &claim;
                let status_slots = &status_slots;
                scope.spawn(move || {
                    while let Some(idx) = next_job(queues, w) {
                        let status = claim(idx, w);
                        *status_slots[idx].lock().unwrap_or_else(|e| e.into_inner()) = Some(status);
                    }
                });
            }
        });
        status_slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap_or_else(|e| e.into_inner())
                    .unwrap_or(JobStatus::Lost)
            })
            .collect()
    }
}

/// Run one governed job to settlement: attempt (inline, or on a
/// watchdog-supervised thread when a deadline is set), retry on panic
/// or deadline overrun with deterministic backoff, and report the
/// final result plus attempt count and wall clock.
fn settle_job<T, F>(job: &Arc<F>, index: usize, opts: &RunOptions) -> JobOutcome<T>
where
    T: Send + 'static,
    F: Fn() -> T + Send + Sync + 'static,
{
    let start = Instant::now();
    let mut attempts = 0u32;
    loop {
        attempts += 1;
        let result = match opts.deadline {
            None => catch_unwind(AssertUnwindSafe(|| job())).map_err(|p| JobFailure::Panicked {
                message: panic_message(p),
            }),
            Some(deadline) => attempt_with_deadline(Arc::clone(job), deadline),
        };
        match result {
            Ok(t) => {
                return JobOutcome {
                    result: Ok(t),
                    attempts,
                    elapsed: start.elapsed(),
                }
            }
            Err(failure) => {
                if attempts <= opts.max_retries {
                    let delay =
                        backoff_delay(opts.backoff_seed, index, attempts - 1, opts.backoff_base);
                    if host::is_enabled() {
                        host::count("host.retries", 1);
                        host::observe("host.backoff_seconds", delay.as_secs_f64());
                    }
                    std::thread::sleep(delay);
                    continue;
                }
                if host::is_enabled() {
                    match &failure {
                        JobFailure::Panicked { .. } => host::count("host.panics", 1),
                        JobFailure::DeadlineExceeded { .. } => {
                            host::count("host.deadline_exceeded", 1)
                        }
                    }
                }
                return JobOutcome {
                    result: Err(failure),
                    attempts,
                    elapsed: start.elapsed(),
                };
            }
        }
    }
}

/// One attempt under a wall-clock deadline: the job runs on its own
/// thread and reports through a channel; the worker waits at most
/// `deadline`. On overrun the thread is abandoned (detached) — its
/// eventual send lands in a closed channel and is dropped, so it can
/// never write into state the pool still owns.
fn attempt_with_deadline<T, F>(job: Arc<F>, deadline: Duration) -> Result<T, JobFailure>
where
    T: Send + 'static,
    F: Fn() -> T + Send + Sync + 'static,
{
    let (tx, rx) = mpsc::sync_channel::<Result<T, String>>(1);
    let handle = std::thread::spawn(move || {
        let out = catch_unwind(AssertUnwindSafe(|| job())).map_err(panic_message);
        // The receiver may be gone (deadline already fired); a failed
        // send just drops the late result.
        let _ = tx.send(out);
    });
    match rx.recv_timeout(deadline) {
        Ok(Ok(t)) => {
            let _ = handle.join();
            Ok(t)
        }
        Ok(Err(message)) => {
            let _ = handle.join();
            Err(JobFailure::Panicked { message })
        }
        Err(mpsc::RecvTimeoutError::Timeout) => {
            // Abandon the straggler: dropping `rx` closes the channel,
            // dropping `handle` detaches the thread. It owns an Arc
            // clone of the job and a dead sender — nothing the pool
            // still reads.
            drop(rx);
            drop(handle);
            Err(JobFailure::DeadlineExceeded { deadline })
        }
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            // The attempt thread died without sending — only possible
            // if the runtime tore it down around the catch_unwind.
            let _ = handle.join();
            Err(JobFailure::Panicked {
                message: "attempt thread terminated without reporting".to_string(),
            })
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
    use std::time::Duration;

    #[test]
    fn results_come_back_in_index_order() {
        let pool = ThreadPool::new(4);
        // Early jobs sleep longest, so completion order inverts
        // submission order — collation must not care.
        let jobs: Vec<_> = (0..16u64)
            .map(|i| {
                move || {
                    std::thread::sleep(Duration::from_millis(16 - i));
                    i * 10
                }
            })
            .collect();
        let out = pool.run(jobs);
        assert_eq!(out, (0..16u64).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_pool_runs_serially_in_order() {
        let pool = ThreadPool::new(1);
        let order = Mutex::new(Vec::new());
        let jobs: Vec<_> = (0..8usize)
            .map(|i| {
                let order = &order;
                move || {
                    order.lock().unwrap().push(i);
                    i
                }
            })
            .collect();
        let out = pool.run(jobs);
        assert_eq!(out, (0..8).collect::<Vec<_>>());
        assert_eq!(*order.lock().unwrap(), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let count = AtomicU64::new(0);
        let pool = ThreadPool::new(7);
        let jobs: Vec<_> = (0..100)
            .map(|_| {
                let count = &count;
                move || count.fetch_add(1, Ordering::Relaxed)
            })
            .collect();
        let out = pool.run(jobs);
        assert_eq!(out.len(), 100);
        assert_eq!(count.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn more_threads_than_jobs_is_fine() {
        let pool = ThreadPool::new(32);
        assert_eq!(pool.map(vec![1, 2, 3], |x| x * x), vec![1, 4, 9]);
    }

    #[test]
    fn zero_jobs_and_zero_threads_degrade_gracefully() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.threads(), 1);
        let out: Vec<i32> = pool.run(Vec::<fn() -> i32>::new());
        assert!(out.is_empty());
    }

    #[test]
    fn map_borrows_captured_state() {
        let base = 100u64;
        let pool = ThreadPool::new(3);
        let out = pool.map((0..10u64).collect(), |i| base + i);
        assert_eq!(out[9], 109);
    }

    #[test]
    fn parallelism_is_real() {
        // With 4 workers, 4 sleeping jobs overlap: total wall clock is
        // well under the serial sum. (Generous bound for slow CI.)
        let pool = ThreadPool::new(4);
        let start = std::time::Instant::now();
        pool.run(
            (0..4)
                .map(|_| || std::thread::sleep(Duration::from_millis(100)))
                .collect::<Vec<_>>(),
        );
        assert!(start.elapsed() < Duration::from_millis(350));
    }

    #[test]
    fn a_panicking_job_does_not_poison_the_pool() {
        let pool = ThreadPool::new(4);
        let jobs: Vec<Box<dyn FnOnce() -> u64 + Send>> = (0..16u64)
            .map(|i| {
                Box::new(move || {
                    if i == 5 {
                        panic!("point {i} exploded");
                    }
                    i
                }) as Box<dyn FnOnce() -> u64 + Send>
            })
            .collect();
        let out = pool.run_caught(jobs);
        for (i, r) in out.iter().enumerate() {
            if i == 5 {
                let Err(JobFailure::Panicked { message }) = r else {
                    panic!("job 5 must report its panic, got {r:?}");
                };
                assert!(message.contains("point 5 exploded"));
            } else {
                assert_eq!(*r, Ok(i as u64), "job {i} must survive job 5's panic");
            }
        }
    }

    #[test]
    fn run_repropagates_the_lowest_indexed_panic_after_all_jobs() {
        let ran = AtomicU64::new(0);
        let pool = ThreadPool::new(3);
        let jobs: Vec<Box<dyn FnOnce() -> u64 + Send>> = (0..8u64)
            .map(|i| {
                let ran = &ran;
                Box::new(move || {
                    ran.fetch_add(1, Ordering::Relaxed);
                    if i == 2 || i == 6 {
                        panic!("boom {i}");
                    }
                    i
                }) as Box<dyn FnOnce() -> u64 + Send>
            })
            .collect();
        let err = catch_unwind(AssertUnwindSafe(|| pool.run(jobs))).unwrap_err();
        let msg = panic_message(err);
        assert!(msg.contains("pool job 2"), "lowest index wins: {msg}");
        assert_eq!(ran.load(Ordering::Relaxed), 8, "all jobs still ran");
    }

    #[test]
    fn governed_retry_until_success_counts_attempts() {
        let pool = ThreadPool::new(2);
        let flaky = Arc::new(AtomicU32::new(0));
        let flaky2 = Arc::clone(&flaky);
        let jobs: Vec<Box<dyn Fn() -> u32 + Send + Sync>> = vec![
            Box::new(|| 7),
            Box::new(move || {
                let n = flaky2.fetch_add(1, Ordering::Relaxed);
                if n < 2 {
                    panic!("flaky attempt {n}");
                }
                42
            }),
        ];
        let opts = RunOptions {
            max_retries: 3,
            backoff_base: Duration::from_millis(1),
            ..RunOptions::default()
        };
        let out = pool.run_governed(jobs, &opts, |_| false);
        let JobStatus::Done(o0) = &out[0] else {
            panic!("{out:?}")
        };
        assert_eq!(o0.result, Ok(7));
        assert_eq!(o0.attempts, 1);
        let JobStatus::Done(o1) = &out[1] else {
            panic!("{out:?}")
        };
        assert_eq!(o1.result, Ok(42));
        assert_eq!(o1.attempts, 3, "two failures then success");
    }

    #[test]
    fn governed_retries_are_bounded() {
        let pool = ThreadPool::new(1);
        let tries = Arc::new(AtomicU32::new(0));
        let tries2 = Arc::clone(&tries);
        let jobs: Vec<Box<dyn Fn() -> u32 + Send + Sync>> = vec![Box::new(move || {
            tries2.fetch_add(1, Ordering::Relaxed);
            panic!("always fails");
        })];
        let opts = RunOptions {
            max_retries: 2,
            backoff_base: Duration::from_millis(1),
            ..RunOptions::default()
        };
        let out = pool.run_governed(jobs, &opts, |_| false);
        let JobStatus::Done(o) = &out[0] else {
            panic!("{out:?}")
        };
        assert!(matches!(o.result, Err(JobFailure::Panicked { .. })));
        assert_eq!(o.attempts, 3, "1 try + 2 retries");
        assert_eq!(tries.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn deadline_abandons_a_hung_job_and_the_sweep_survives() {
        let pool = ThreadPool::new(2);
        let jobs: Vec<Box<dyn Fn() -> u32 + Send + Sync>> = vec![
            Box::new(|| 1),
            Box::new(|| {
                // Hangs far past the deadline; the watchdog abandons it.
                std::thread::sleep(Duration::from_secs(5));
                2
            }),
            Box::new(|| 3),
        ];
        let opts = RunOptions {
            deadline: Some(Duration::from_millis(50)),
            ..RunOptions::default()
        };
        let start = Instant::now();
        let out = pool.run_governed(jobs, &opts, |_| false);
        assert!(
            start.elapsed() < Duration::from_secs(3),
            "the hung job must not block the sweep"
        );
        assert_eq!(out[0].outcome().unwrap().result, Ok(1));
        assert_eq!(out[2].outcome().unwrap().result, Ok(3));
        let JobStatus::Done(o) = &out[1] else {
            panic!("{out:?}")
        };
        assert!(matches!(o.result, Err(JobFailure::DeadlineExceeded { .. })));
    }

    #[test]
    fn fail_fast_skips_above_the_lowest_failure_but_settles_every_slot() {
        let pool = ThreadPool::new(1);
        // Serial claims run in index order: 0..=3 run, 3 fails, and
        // everything above the failure is skipped without running.
        let ran = Arc::new(Mutex::new(Vec::new()));
        let jobs: Vec<Box<dyn Fn() -> Result<u32, u32> + Send + Sync>> = (0..8u32)
            .map(|i| {
                let ran = Arc::clone(&ran);
                Box::new(move || {
                    ran.lock().unwrap().push(i);
                    if i == 3 {
                        Err(i)
                    } else {
                        Ok(i)
                    }
                }) as Box<dyn Fn() -> Result<u32, u32> + Send + Sync>
            })
            .collect();
        let opts = RunOptions {
            fail_fast: true,
            ..RunOptions::default()
        };
        let out = pool.run_governed(jobs, &opts, |r| r.is_err());
        // Every slot settled: Done or Skipped, never Lost.
        assert!(out.iter().all(|s| *s != JobStatus::Lost));
        for i in 0..=3 {
            assert!(
                matches!(out[i], JobStatus::Done(_)),
                "job {i} (at or below the failure) must run: {out:?}"
            );
        }
        for (i, s) in out.iter().enumerate().skip(4) {
            assert_eq!(*s, JobStatus::Skipped, "job {i} is above the failure");
        }
        assert_eq!(*ran.lock().unwrap(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn fail_fast_with_many_workers_joins_in_flight_jobs_and_runs_lower_indices() {
        let pool = ThreadPool::new(4);
        let ran = Arc::new(AtomicU32::new(0));
        let jobs: Vec<Box<dyn Fn() -> Result<u32, u32> + Send + Sync>> = (0..16u32)
            .map(|i| {
                let ran = Arc::clone(&ran);
                Box::new(move || {
                    ran.fetch_add(1, Ordering::Relaxed);
                    // Index 2 fails after a short delay; lower indices
                    // must still settle as Done whatever the schedule.
                    if i == 2 {
                        std::thread::sleep(Duration::from_millis(5));
                        Err(i)
                    } else {
                        std::thread::sleep(Duration::from_millis(1));
                        Ok(i)
                    }
                }) as Box<dyn Fn() -> Result<u32, u32> + Send + Sync>
            })
            .collect();
        let opts = RunOptions {
            fail_fast: true,
            ..RunOptions::default()
        };
        let out = pool.run_governed(jobs, &opts, |r| r.is_err());
        // No slot is ever Lost: skipped or settled, and the scope join
        // means no worker is still writing after this returns.
        for (i, s) in out.iter().enumerate() {
            assert_ne!(*s, JobStatus::Lost, "job {i}");
        }
        // Everything at or below the lowest failure ran.
        for (i, s) in out.iter().enumerate().take(3) {
            assert!(matches!(s, JobStatus::Done(_)), "job {i}: {s:?}");
        }
        let JobStatus::Done(o2) = &out[2] else {
            panic!("{out:?}")
        };
        assert_eq!(o2.result, Ok(Err(2)), "job 2 failed with its typed error");
    }

    #[test]
    fn backoff_schedule_is_deterministic_and_grows() {
        let base = Duration::from_millis(10);
        let a = backoff_delay(42, 3, 0, base);
        let b = backoff_delay(42, 3, 0, base);
        assert_eq!(a, b, "same seed, same delay");
        assert_ne!(
            backoff_delay(42, 3, 0, base),
            backoff_delay(43, 3, 0, base),
            "seed changes the jitter"
        );
        // Exponential growth dominates the jitter band.
        assert!(backoff_delay(42, 3, 4, base) > backoff_delay(42, 3, 1, base) * 2);
        // Jitter stays within [0.5, 1.5) of the exponential step.
        for attempt in 0..6 {
            let d = backoff_delay(7, 11, attempt, base);
            let step = base * (1 << attempt);
            assert!(
                d >= step / 2 && d < step + step / 2,
                "attempt {attempt}: {d:?}"
            );
        }
    }

    #[test]
    fn governed_zero_jobs_is_fine() {
        let pool = ThreadPool::new(4);
        let out: Vec<JobStatus<u32>> =
            pool.run_governed(Vec::<fn() -> u32>::new(), &RunOptions::default(), |_| false);
        assert!(out.is_empty());
    }
}
