//! `columbia-par` — a std-only work-stealing thread pool for
//! embarrassingly-parallel sweep execution.
//!
//! Every figure in the paper is a sweep: independent simulation points
//! (CPU counts, fabrics, fault ladders) whose results are reduced in a
//! canonical order. This crate fans those points out across OS threads
//! while keeping the reduction deterministic: jobs are identified by
//! their index, results land in index-order slots, and the caller reads
//! them back as if the whole sweep had run serially. A parallel run is
//! therefore bit-identical to a serial run regardless of how the
//! scheduler interleaves the work — the property the repo's
//! determinism gate (`repro --jobs N` vs `--jobs 1`) enforces.
//!
//! Scheduling is work-stealing over per-worker deques: each worker owns
//! a LIFO tail of its own deque (cache-friendly for the jobs it was
//! dealt) and steals from the FIFO head of its siblings when it runs
//! dry, so a straggler point cannot strand the rest of the sweep behind
//! it. There are no dependencies beyond `std` — the deques are
//! mutex-guarded, which is plenty for sweep points that each run a
//! whole discrete-event simulation (milliseconds to seconds per job).

use std::collections::VecDeque;
use std::sync::Mutex;

/// Number of worker threads the platform comfortably supports; the
/// default for `repro --jobs`.
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A fixed-size pool description. Threads are spawned per [`ThreadPool::run`] call
/// (scoped, so jobs may borrow from the caller), not kept hot: sweep
/// points are coarse enough that spawn cost is noise, and holding no
/// global state keeps the pool trivially correct under nested use.
#[derive(Debug, Clone, Copy)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// A pool of `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        ThreadPool {
            threads: threads.max(1),
        }
    }

    /// A pool sized to the machine.
    pub fn default_size() -> Self {
        ThreadPool::new(available_parallelism())
    }

    /// Worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run every job and return the results **in job index order**,
    /// regardless of which worker finished which job when.
    ///
    /// With one worker (or one job) no threads are spawned and the jobs
    /// run in index order on the caller's thread — the serial path that
    /// parallel runs must be bit-identical to.
    pub fn run<T, F>(&self, jobs: Vec<F>) -> Vec<T>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        let n = jobs.len();
        if self.threads == 1 || n <= 1 {
            return jobs.into_iter().map(|f| f()).collect();
        }
        let workers = self.threads.min(n);
        // Job slots: taken exactly once, by whichever worker claims the
        // index. Result slots are written exactly once at that index.
        let job_slots: Vec<Mutex<Option<F>>> =
            jobs.into_iter().map(|f| Mutex::new(Some(f))).collect();
        let result_slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
        // Deal indices round-robin so every worker starts with a local
        // run of jobs; stealing rebalances stragglers.
        let queues: Vec<Mutex<VecDeque<usize>>> = (0..workers)
            .map(|w| Mutex::new((w..n).step_by(workers).collect()))
            .collect();
        std::thread::scope(|scope| {
            for w in 0..workers {
                let queues = &queues;
                let job_slots = &job_slots;
                let result_slots = &result_slots;
                scope.spawn(move || {
                    loop {
                        // Own deque first (LIFO tail), then steal from
                        // siblings (FIFO head) — classic work stealing.
                        let mut job = queues[w]
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .pop_back();
                        if job.is_none() {
                            for v in 1..workers {
                                let victim = (w + v) % workers;
                                job = queues[victim]
                                    .lock()
                                    .unwrap_or_else(|e| e.into_inner())
                                    .pop_front();
                                if job.is_some() {
                                    break;
                                }
                            }
                        }
                        // Jobs only ever move from the deques into
                        // execution, so once every deque is empty the
                        // remaining work is claimed — this worker is done.
                        let Some(idx) = job else { return };
                        let f = job_slots[idx]
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .take()
                            .expect("a job index is dealt to exactly one deque");
                        let out = f();
                        *result_slots[idx].lock().unwrap_or_else(|e| e.into_inner()) = Some(out);
                    }
                });
            }
        });
        result_slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap_or_else(|e| e.into_inner())
                    .expect("every job slot is claimed and completed exactly once")
            })
            .collect()
    }

    /// Map `f` over `items`, collating results in item order.
    pub fn map<I, T, F>(&self, items: Vec<I>, f: F) -> Vec<T>
    where
        I: Send,
        T: Send,
        F: Fn(I) -> T + Sync,
    {
        let f = &f;
        self.run(
            items
                .into_iter()
                .map(|item| move || f(item))
                .collect::<Vec<_>>(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::Duration;

    #[test]
    fn results_come_back_in_index_order() {
        let pool = ThreadPool::new(4);
        // Early jobs sleep longest, so completion order inverts
        // submission order — collation must not care.
        let jobs: Vec<_> = (0..16u64)
            .map(|i| {
                move || {
                    std::thread::sleep(Duration::from_millis(16 - i));
                    i * 10
                }
            })
            .collect();
        let out = pool.run(jobs);
        assert_eq!(out, (0..16u64).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_pool_runs_serially_in_order() {
        let pool = ThreadPool::new(1);
        let order = Mutex::new(Vec::new());
        let jobs: Vec<_> = (0..8usize)
            .map(|i| {
                let order = &order;
                move || {
                    order.lock().unwrap().push(i);
                    i
                }
            })
            .collect();
        let out = pool.run(jobs);
        assert_eq!(out, (0..8).collect::<Vec<_>>());
        assert_eq!(*order.lock().unwrap(), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let count = AtomicU64::new(0);
        let pool = ThreadPool::new(7);
        let jobs: Vec<_> = (0..100)
            .map(|_| {
                let count = &count;
                move || count.fetch_add(1, Ordering::Relaxed)
            })
            .collect();
        let out = pool.run(jobs);
        assert_eq!(out.len(), 100);
        assert_eq!(count.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn more_threads_than_jobs_is_fine() {
        let pool = ThreadPool::new(32);
        assert_eq!(pool.map(vec![1, 2, 3], |x| x * x), vec![1, 4, 9]);
    }

    #[test]
    fn zero_jobs_and_zero_threads_degrade_gracefully() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.threads(), 1);
        let out: Vec<i32> = pool.run(Vec::<fn() -> i32>::new());
        assert!(out.is_empty());
    }

    #[test]
    fn map_borrows_captured_state() {
        let base = 100u64;
        let pool = ThreadPool::new(3);
        let out = pool.map((0..10u64).collect(), |i| base + i);
        assert_eq!(out[9], 109);
    }

    #[test]
    fn parallelism_is_real() {
        // With 4 workers, 4 sleeping jobs overlap: total wall clock is
        // well under the serial sum. (Generous bound for slow CI.)
        let pool = ThreadPool::new(4);
        let start = std::time::Instant::now();
        pool.run(
            (0..4)
                .map(|_| || std::thread::sleep(Duration::from_millis(100)))
                .collect::<Vec<_>>(),
        );
        assert!(start.elapsed() < Duration::from_millis(350));
    }
}
