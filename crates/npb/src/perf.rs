//! NPB performance sweeps: the engine behind Fig. 6 (node-type
//! comparison) and Fig. 8 (compiler comparison).

use columbia_machine::cluster::{ClusterConfig, NodeId};
use columbia_machine::node::NodeKind;
use columbia_runtime::compiler::CompilerVersion;
use columbia_runtime::exec::{execute, ExecConfig, SpecOp, WorkloadSpec};
use columbia_simnet::SimError;

use crate::class::NpbClass;
use crate::profile::BenchmarkProfile;
use crate::{bt, cg, ft, mg};

/// The four single-zone benchmarks the paper selects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NpbBenchmark {
    /// Conjugate gradient.
    Cg,
    /// 3-D FFT spectral solver.
    Ft,
    /// Multigrid.
    Mg,
    /// Block-tridiagonal application.
    Bt,
}

impl NpbBenchmark {
    /// All four, in Fig. 6's panel order.
    pub const ALL: [NpbBenchmark; 4] = [
        NpbBenchmark::Cg,
        NpbBenchmark::Ft,
        NpbBenchmark::Mg,
        NpbBenchmark::Bt,
    ];

    /// Benchmark name.
    pub fn name(self) -> &'static str {
        match self {
            NpbBenchmark::Cg => "CG",
            NpbBenchmark::Ft => "FT",
            NpbBenchmark::Mg => "MG",
            NpbBenchmark::Bt => "BT",
        }
    }

    /// Analytic profile at a class.
    pub fn profile(self, class: NpbClass) -> BenchmarkProfile {
        match self {
            NpbBenchmark::Cg => cg::profile(class),
            NpbBenchmark::Ft => ft::profile(class),
            NpbBenchmark::Mg => mg::profile(class),
            NpbBenchmark::Bt => bt::profile(class),
        }
    }

    /// MPI workload spec for `np` ranks over `iters` iterations.
    pub fn spec_mpi(self, class: NpbClass, np: usize, iters: u32) -> WorkloadSpec {
        match self {
            NpbBenchmark::Cg => cg::spec_mpi(class, np, iters),
            NpbBenchmark::Ft => ft::spec_mpi(class, np, iters),
            NpbBenchmark::Mg => mg::spec_mpi(class, np, iters),
            NpbBenchmark::Bt => bt::spec_mpi(class, np, iters),
        }
    }
}

impl std::fmt::Display for NpbBenchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Programming paradigm of a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Paradigm {
    /// One MPI rank per CPU.
    Mpi,
    /// One process, one OpenMP thread per CPU.
    OpenMp,
}

impl Paradigm {
    /// Both paradigms, MPI first (Fig. 6's rows).
    pub const ALL: [Paradigm; 2] = [Paradigm::Mpi, Paradigm::OpenMp];

    /// Label.
    pub fn name(self) -> &'static str {
        match self {
            Paradigm::Mpi => "MPI",
            Paradigm::OpenMp => "OpenMP",
        }
    }
}

/// Iterations actually simulated per sweep point (results are
/// per-iteration rates, so a short, representative run suffices).
const SIM_ITERS: u32 = 2;

/// Simulated per-CPU Gflop/s for one configuration — one point of
/// Fig. 6 (with `compiler = 7.1`) or Fig. 8 (varying `compiler`).
/// A failed simulation (deadlock, watchdog, …) surfaces as the
/// [`SimError`] rather than a panic.
pub fn gflops_per_cpu(
    bench: NpbBenchmark,
    class: NpbClass,
    kind: NodeKind,
    paradigm: Paradigm,
    cpus: u32,
    compiler: CompilerVersion,
) -> Result<f64, SimError> {
    assert!((1..=512).contains(&cpus));
    let cluster = ClusterConfig::uniform(kind, 1);
    let prof = bench.profile(class);
    let (spec, mut cfg) = match paradigm {
        Paradigm::Mpi => {
            let spec = bench.spec_mpi(class, cpus as usize, SIM_ITERS);
            let cfg = ExecConfig::single_node(cluster, NodeId(0), cpus as usize, 1);
            (spec, cfg)
        }
        Paradigm::OpenMp => {
            let mut spec = WorkloadSpec::with_ranks(1);
            for _ in 0..SIM_ITERS {
                spec.ranks[0].push(SpecOp::Work(prof.omp_phase(cpus as usize)));
            }
            let cfg = ExecConfig::single_node(cluster, NodeId(0), 1, cpus as usize);
            (spec, cfg)
        }
    };
    cfg.compiler = compiler;
    let out = execute(&spec, &cfg)?;
    let flops = prof.flops_per_iter * SIM_ITERS as f64;
    Ok(flops / out.makespan / cpus as f64 / 1.0e9)
}

#[cfg(test)]
mod tests {
    use super::*;

    const V71: CompilerVersion = CompilerVersion::V7_1;

    /// Healthy-machine shorthand: these sweeps must never fail.
    fn gflops_per_cpu(
        bench: NpbBenchmark,
        class: NpbClass,
        kind: NodeKind,
        paradigm: Paradigm,
        cpus: u32,
        compiler: CompilerVersion,
    ) -> f64 {
        super::gflops_per_cpu(bench, class, kind, paradigm, cpus, compiler).unwrap()
    }

    #[test]
    fn single_cpu_rates_are_sub_gflops() {
        // Fig. 6's y-axes live under ~1.5 Gflop/s per CPU.
        for bench in NpbBenchmark::ALL {
            let g = gflops_per_cpu(bench, NpbClass::A, NodeKind::Bx2b, Paradigm::Mpi, 1, V71);
            assert!(g > 0.05 && g < 1.9, "{bench}: {g}");
        }
    }

    #[test]
    fn openmp_scales_better_on_bx2_than_3700() {
        // Fig. 6: "the four OpenMP benchmarks scaled much better on
        // both types of BX2 than on 3700 when the number of threads is
        // four or more. With 128 threads, the difference can be as
        // large as 2x for both FT and BT."
        for bench in [NpbBenchmark::Ft, NpbBenchmark::Bt] {
            let b3 = gflops_per_cpu(
                bench,
                NpbClass::B,
                NodeKind::Altix3700,
                Paradigm::OpenMp,
                128,
                V71,
            );
            let bb = gflops_per_cpu(
                bench,
                NpbClass::B,
                NodeKind::Bx2b,
                Paradigm::OpenMp,
                128,
                V71,
            );
            let ratio = bb / b3;
            assert!(
                ratio > 1.5,
                "{bench}: OpenMP 128-thread BX2b/3700 = {ratio}"
            );
        }
    }

    #[test]
    fn openmp_node_gap_is_small_at_low_threads() {
        let b3 = gflops_per_cpu(
            NpbBenchmark::Ft,
            NpbClass::B,
            NodeKind::Altix3700,
            Paradigm::OpenMp,
            2,
            V71,
        );
        let bb = gflops_per_cpu(
            NpbBenchmark::Ft,
            NpbClass::B,
            NodeKind::Bx2a,
            Paradigm::OpenMp,
            2,
            V71,
        );
        let ratio = bb / b3;
        assert!(ratio < 1.25, "gap at 2 threads should be small: {ratio}");
    }

    #[test]
    fn ft_mpi_about_2x_on_bx2_at_256() {
        // Fig. 6: "on 256 processors, FT runs about twice as fast on
        // BX2 than on 3700".
        let f3 = gflops_per_cpu(
            NpbBenchmark::Ft,
            NpbClass::B,
            NodeKind::Altix3700,
            Paradigm::Mpi,
            256,
            V71,
        );
        let fb = gflops_per_cpu(
            NpbBenchmark::Ft,
            NpbClass::B,
            NodeKind::Bx2a,
            Paradigm::Mpi,
            256,
            V71,
        );
        let ratio = fb / f3;
        assert!((1.5..2.6).contains(&ratio), "ratio={ratio}");
    }

    #[test]
    fn mg_and_bt_jump_on_bx2b_at_64() {
        // Fig. 6: "At about 64 processors, both MG and BT exhibit a
        // performance jump (~50%) on BX2b comparing to BX2a … a result
        // of a larger L3 cache."
        for bench in [NpbBenchmark::Mg, NpbBenchmark::Bt] {
            let a = gflops_per_cpu(bench, NpbClass::B, NodeKind::Bx2a, Paradigm::Mpi, 64, V71);
            let b = gflops_per_cpu(bench, NpbClass::B, NodeKind::Bx2b, Paradigm::Mpi, 64, V71);
            let jump = b / a;
            assert!(jump > 1.3, "{bench}: BX2b/BX2a at 64 = {jump}");
        }
    }

    #[test]
    fn mpi_scales_reasonably_to_256() {
        // MPI per-CPU rate should not collapse by 256 ranks.
        let g1 = gflops_per_cpu(
            NpbBenchmark::Bt,
            NpbClass::B,
            NodeKind::Bx2b,
            Paradigm::Mpi,
            1,
            V71,
        );
        let g256 = gflops_per_cpu(
            NpbBenchmark::Bt,
            NpbClass::B,
            NodeKind::Bx2b,
            Paradigm::Mpi,
            256,
            V71,
        );
        assert!(g256 > 0.25 * g1, "g1={g1} g256={g256}");
    }

    #[test]
    fn openmp_beats_mpi_at_small_counts_and_loses_at_scale() {
        // §4.1.2: "OpenMP versions demonstrated better performance on a
        // small number of CPUs, but MPI versions scaled much better."
        let omp4 = gflops_per_cpu(
            NpbBenchmark::Mg,
            NpbClass::B,
            NodeKind::Bx2b,
            Paradigm::OpenMp,
            4,
            V71,
        );
        let mpi4 = gflops_per_cpu(
            NpbBenchmark::Mg,
            NpbClass::B,
            NodeKind::Bx2b,
            Paradigm::Mpi,
            4,
            V71,
        );
        assert!(omp4 > 0.9 * mpi4, "omp4={omp4} mpi4={mpi4}");
        let omp256 = gflops_per_cpu(
            NpbBenchmark::Mg,
            NpbClass::B,
            NodeKind::Bx2b,
            Paradigm::OpenMp,
            256,
            V71,
        );
        let mpi256 = gflops_per_cpu(
            NpbBenchmark::Mg,
            NpbClass::B,
            NodeKind::Bx2b,
            Paradigm::Mpi,
            256,
            V71,
        );
        assert!(mpi256 > omp256, "omp256={omp256} mpi256={mpi256}");
    }

    #[test]
    fn compiler_study_shapes() {
        use CompilerVersion::*;
        // Fig. 8 panels, all on BX2b OpenMP.
        let run = |bench, v, t| {
            gflops_per_cpu(bench, NpbClass::B, NodeKind::Bx2b, Paradigm::OpenMp, t, v)
        };
        // CG: all compilers similar.
        let cg: Vec<f64> = CompilerVersion::ALL
            .iter()
            .map(|&v| run(NpbBenchmark::Cg, v, 16))
            .collect();
        let spread =
            cg.iter().fold(0.0f64, |m, &x| m.max(x)) / cg.iter().fold(f64::MAX, |m, &x| m.min(x));
        assert!(spread < 1.05, "CG spread {spread}");
        // FT: 9.0b best.
        assert!(run(NpbBenchmark::Ft, V9_0Beta, 16) > run(NpbBenchmark::Ft, V8_0, 16));
        // MG crossover: 7.1 wins at 16 threads, 8.1 between 32 and 128.
        assert!(run(NpbBenchmark::Mg, V7_1, 16) > run(NpbBenchmark::Mg, V8_1, 16));
        assert!(run(NpbBenchmark::Mg, V8_1, 64) > run(NpbBenchmark::Mg, V7_1, 64));
    }
}
