//! Analytic benchmark profiles feeding the simulator.
//!
//! A [`BenchmarkProfile`] is everything the executor needs to cost a
//! benchmark besides its communication structure: per-iteration flop
//! and memory-traffic totals (derived from the problem sizes the NPB
//! specification fixes), the resident data volume (for cache-residency
//! effects), the fraction of peak the inner loops reach on an
//! Itanium2, and the OpenMP parallelization traits.

use columbia_runtime::compiler::KernelClass;
use columbia_runtime::compute::WorkPhase;

/// Static cost profile of one benchmark at one class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchmarkProfile {
    /// Total floating-point operations per timed iteration.
    pub flops_per_iter: f64,
    /// Total memory traffic per timed iteration, bytes.
    pub mem_bytes_per_iter: f64,
    /// Resident data volume, bytes (split across ranks/threads).
    pub total_bytes: u64,
    /// Timed iterations the benchmark runs.
    pub iterations: u32,
    /// Fraction of Itanium2 peak the compute kernels reach.
    pub efficiency: f64,
    /// OpenMP serial fraction.
    pub serial_fraction: f64,
    /// OpenMP cross-brick traffic share (shared-array access pattern).
    pub remote_share: f64,
    /// Dominant loop shape for the compiler model.
    pub kernel: KernelClass,
}

impl BenchmarkProfile {
    /// Total flops over the full run.
    pub fn total_flops(&self) -> f64 {
        self.flops_per_iter * self.iterations as f64
    }

    /// The per-rank compute phase for one iteration when the data is
    /// split `np` ways (MPI decomposition).
    pub fn rank_phase(&self, np: usize) -> WorkPhase {
        let np = np as f64;
        WorkPhase::new(
            self.flops_per_iter / np,
            self.mem_bytes_per_iter / np,
            (self.total_bytes as f64 / np) as u64,
            self.efficiency,
            self.kernel,
        )
        .with_serial_fraction(self.serial_fraction)
        .with_remote_share(self.remote_share)
    }

    /// The whole-benchmark phase for a shared-memory (OpenMP) run: one
    /// rank owns everything; the thread team splits it internally.
    ///
    /// The per-worker working set is the shared volume divided by the
    /// team, which is what decides cache residency per CPU.
    pub fn omp_phase(&self, threads: usize) -> WorkPhase {
        let mut p = self.rank_phase(1);
        p.working_set = (self.total_bytes as f64 / threads.max(1) as f64) as u64;
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> BenchmarkProfile {
        BenchmarkProfile {
            flops_per_iter: 1.0e9,
            mem_bytes_per_iter: 4.0e9,
            total_bytes: 4 << 30,
            iterations: 20,
            efficiency: 0.1,
            serial_fraction: 0.02,
            remote_share: 0.5,
            kernel: KernelClass::Fourier,
        }
    }

    #[test]
    fn total_flops_multiplies_iterations() {
        assert_eq!(profile().total_flops(), 2.0e10);
    }

    #[test]
    fn rank_phase_splits_everything() {
        let p = profile().rank_phase(16);
        assert_eq!(p.flops, 1.0e9 / 16.0);
        assert_eq!(p.mem_bytes, 4.0e9 / 16.0);
        assert_eq!(p.working_set, (4u64 << 30) / 16);
        assert_eq!(p.remote_share, 0.5);
    }

    #[test]
    fn omp_phase_keeps_totals_splits_working_set() {
        let p = profile().omp_phase(64);
        assert_eq!(p.flops, 1.0e9);
        assert_eq!(p.working_set, (4u64 << 30) / 64);
    }
}
