//! NPB BT: block-tridiagonal simulated CFD application.
//!
//! "BT tests nearest neighbor communication": the ADI factorization
//! sweeps x, y, z each time step, solving 5×5 block-tridiagonal systems
//! along every line, with face exchanges between the partitioned ranks.
//! The real mini-run builds a diffusion-like implicit system and
//! advances it with `columbia_kernels::btsolve`.

use columbia_kernels::btsolve::{block_thomas, Mat5, Vec5, NVAR};
use columbia_runtime::compiler::KernelClass;
use columbia_runtime::exec::{SpecOp, WorkloadSpec};

use crate::class::NpbClass;
use crate::mg::push_halo;
use crate::profile::BenchmarkProfile;

/// Grid edge and time steps per class (NPB3.1 BT sizes).
pub fn size(class: NpbClass) -> (usize, u32) {
    match class {
        NpbClass::S => (12, 60),
        NpbClass::W => (24, 200),
        NpbClass::A => (64, 200),
        NpbClass::B => (102, 200),
        NpbClass::C => (162, 200),
        NpbClass::D => (408, 250),
    }
}

/// Analytic profile.
///
/// ~3200 flops per point per step (the published BT operation counts);
/// ~61 resident words per point (U, RHS, forcing, auxiliaries, and one
/// direction's LHS blocks) ≈ 500 bytes; ~325 words of traffic per point
/// per step (the LHS blocks are built, read, and retired every sweep),
/// which is what makes BT memory-bound on the Itanium2.
pub fn profile(class: NpbClass) -> BenchmarkProfile {
    let (n, iterations) = size(class);
    let n3 = (n * n * n) as f64;
    BenchmarkProfile {
        flops_per_iter: 3200.0 * n3,
        mem_bytes_per_iter: 2600.0 * n3,
        total_bytes: (500.0 * n3) as u64,
        iterations,
        efficiency: 0.25,
        serial_fraction: 0.03,
        remote_share: 0.60,
        kernel: KernelClass::BlockSolver,
    }
}

/// MPI spec: per step, three directional sweeps, each exchanging
/// subdomain faces with the two neighbours of that direction before
/// its share of the solve work.
pub fn spec_mpi(class: NpbClass, np: usize, iters: u32) -> WorkloadSpec {
    assert!(np >= 1);
    let prof = profile(class);
    let (n, _) = size(class);
    let mut spec = WorkloadSpec::with_ranks(np);
    // Face of the per-rank subdomain: 5 variables × 8 bytes.
    let face_bytes = (((n * n * n) as f64 / np as f64).powf(2.0 / 3.0) * 8.0 * NVAR as f64) as u64;
    // Neighbour distances standing in for the 3-D rank grid.
    let px = (np as f64).cbrt().round().max(1.0) as usize;
    let dists = [1usize, px, (px * px).max(1)];
    let mut sweep_phase = prof.rank_phase(np);
    sweep_phase.flops /= 3.0;
    sweep_phase.mem_bytes /= 3.0;
    for it in 0..iters {
        for (r, ops) in spec.ranks.iter_mut().enumerate() {
            for (s, &d) in dists.iter().enumerate() {
                let tag = (it as u64) * 100 + (s as u64) * 10;
                push_halo(
                    ops,
                    r,
                    np,
                    d.min(np.saturating_sub(1)).max(1),
                    face_bytes.max(64),
                    tag,
                );
                ops.push(SpecOp::Work(sweep_phase));
            }
        }
    }
    spec
}

/// Result of a real host-scale BT run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BtRunResult {
    /// Initial RHS norm.
    pub initial_rhs: f64,
    /// Final RHS norm after the steps.
    pub final_rhs: f64,
}

impl BtRunResult {
    /// Verification: the implicit update damps the residual strongly.
    pub fn verified(&self) -> bool {
        self.final_rhs < self.initial_rhs * 1e-3 && self.final_rhs.is_finite()
    }
}

/// Run a real miniature BT: advance `∂u/∂t = ∇²u`-like coupled system
/// with ADI sweeps of 5×5 block-tridiagonal solves along each axis.
pub fn run_real(class: NpbClass) -> BtRunResult {
    let (n, steps) = size(class);
    assert!(n <= 24, "host-scale real runs use classes S/W");
    let steps = steps.min(20);
    // State: u[i][j][k] is a 5-vector.
    let mut u = vec![[0.0f64; NVAR]; n * n * n];
    let idx = |i: usize, j: usize, k: usize| (i * n + j) * n + k;
    for i in 0..n {
        for j in 0..n {
            for k in 0..n {
                for (v, x) in u[idx(i, j, k)].iter_mut().enumerate() {
                    *x = ((i + 2 * j + 3 * k + v) % 7) as f64 - 3.0 + (v as f64) * 0.1;
                }
            }
        }
    }
    // Implicit blocks: diagonal dominance from the time term.
    let mut diag_block = [[0.0; NVAR]; NVAR];
    let mut off_block = [[0.0; NVAR]; NVAR];
    for v in 0..NVAR {
        diag_block[v][v] = 4.0;
        off_block[v][v] = -1.0;
        if v + 1 < NVAR {
            // Weak inter-variable coupling, as in the real flux
            // Jacobians.
            diag_block[v][v + 1] = 0.2;
            diag_block[v + 1][v] = 0.2;
        }
    }
    let rhs_norm = |u: &Vec<Vec5>| -> f64 {
        (u.iter().flat_map(|p| p.iter()).map(|x| x * x).sum::<f64>() / u.len() as f64).sqrt()
    };
    let initial = rhs_norm(&u);
    let lower = vec![off_block; n];
    let diag: Vec<Mat5> = vec![diag_block; n];
    let upper = vec![off_block; n];
    for _ in 0..steps {
        // x-sweep: lines along i.
        for j in 0..n {
            for k in 0..n {
                let mut line: Vec<Vec5> = (0..n).map(|i| u[idx(i, j, k)]).collect();
                block_thomas(&lower, &diag, &upper, &mut line);
                for (i, val) in line.into_iter().enumerate() {
                    u[idx(i, j, k)] = val;
                }
            }
        }
        // y-sweep.
        for i in 0..n {
            for k in 0..n {
                let mut line: Vec<Vec5> = (0..n).map(|j| u[idx(i, j, k)]).collect();
                block_thomas(&lower, &diag, &upper, &mut line);
                for (j, val) in line.into_iter().enumerate() {
                    u[idx(i, j, k)] = val;
                }
            }
        }
        // z-sweep.
        for i in 0..n {
            for j in 0..n {
                let mut line: Vec<Vec5> = (0..n).map(|k| u[idx(i, j, k)]).collect();
                block_thomas(&lower, &diag, &upper, &mut line);
                for (k, val) in line.into_iter().enumerate() {
                    u[idx(i, j, k)] = val;
                }
            }
        }
    }
    BtRunResult {
        initial_rhs: initial,
        final_rhs: rhs_norm(&u),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_s_real_run_verifies() {
        let r = run_real(NpbClass::S);
        assert!(r.verified(), "{r:?}");
    }

    #[test]
    fn profile_iterations_and_scale() {
        let a = profile(NpbClass::A);
        let b = profile(NpbClass::B);
        assert_eq!(a.iterations, 200);
        assert!(b.flops_per_iter > 3.5 * a.flops_per_iter);
    }

    #[test]
    fn spec_has_three_sweeps_per_step() {
        let spec = spec_mpi(NpbClass::A, 8, 2);
        let works = spec.ranks[0]
            .iter()
            .filter(|o| matches!(o, SpecOp::Work(_)))
            .count();
        assert_eq!(works, 6, "three sweeps × two steps");
    }

    #[test]
    fn sends_are_matched() {
        let np = 27;
        let spec = spec_mpi(NpbClass::S, np, 1);
        for (r, ops) in spec.ranks.iter().enumerate() {
            for op in ops {
                if let SpecOp::Send { to, tag, .. } = op {
                    let matched = spec.ranks[*to].iter().any(
                        |o| matches!(o, SpecOp::Recv { from, tag: t } if *from == r && t == tag),
                    );
                    assert!(matched, "rank {r} send to {to} tag {tag} unmatched");
                }
            }
        }
    }

    #[test]
    fn bt_working_set_crosses_l3_near_64_ranks() {
        // Fig. 6: the BX2b (9 MB L3) pulls ahead of the BX2a (6 MB) at
        // ~64 CPUs because the class-B per-rank working set falls
        // between the two cache sizes there.
        let p = profile(NpbClass::B);
        let ws64 = p.total_bytes / 64;
        assert!(
            ws64 > 6 * 1024 * 1024 && ws64 < 9 * 1024 * 1024,
            "ws at 64 ranks = {} MB",
            ws64 / (1024 * 1024)
        );
    }
}
