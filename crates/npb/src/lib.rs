//! The NAS Parallel Benchmarks subset the paper runs (§3.2, §4.1.2,
//! §4.4): three kernels — MG, CG, FT — and one simulated application,
//! BT, in both MPI and OpenMP flavours.
//!
//! Each benchmark module carries three layers:
//!
//! 1. a **real mini-implementation** built on `columbia-kernels`
//!    (multigrid V-cycles, CG power iteration, 3-D FFT evolution, ADI
//!    block-tridiagonal sweeps) that executes small classes on the host
//!    and self-verifies;
//! 2. an **analytic profile** ([`profile::BenchmarkProfile`]): flop and
//!    memory-traffic counts per iteration, resident bytes, efficiency,
//!    and parallelization traits, derived from the problem sizes;
//! 3. a **workload-spec generator** that emits the benchmark's
//!    communication structure (halo exchanges, transposes, reductions)
//!    for the discrete-event simulator at Columbia scale.
//!
//! [`perf`] ties them together into the per-CPU Gflop/s sweeps of
//! Fig. 6 and the compiler study of Fig. 8.

pub mod bt;
pub mod cg;
pub mod class;
pub mod ft;
pub mod mg;
pub mod perf;
pub mod profile;

pub use class::NpbClass;
pub use perf::{gflops_per_cpu, NpbBenchmark, Paradigm};
pub use profile::BenchmarkProfile;
