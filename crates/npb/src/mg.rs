//! NPB MG: multigrid V-cycles on a periodic `n³` Poisson problem.
//!
//! "MG tests long- and short-distance communication": every V-cycle
//! level exchanges halos, and coarse levels reach topologically far
//! ranks. The real mini-run drives `columbia_kernels::mg`; the
//! simulator spec emits per-level halo exchanges plus the norm
//! allreduce.

use columbia_kernels::grid::Grid3;
use columbia_kernels::mg as kmg;
use columbia_runtime::compiler::KernelClass;
use columbia_runtime::exec::{SpecOp, WorkloadSpec};

use crate::class::NpbClass;
use crate::profile::BenchmarkProfile;

/// Grid edge and iteration count per class (NPB3.1 MG sizes).
pub fn size(class: NpbClass) -> (usize, u32) {
    match class {
        NpbClass::S => (32, 4),
        NpbClass::W => (128, 4),
        NpbClass::A => (256, 4),
        NpbClass::B => (256, 20),
        NpbClass::C => (512, 20),
        NpbClass::D => (1024, 50),
    }
}

/// Analytic profile.
///
/// Per V-cycle: ~58 flops/fine point summed over the level hierarchy
/// (×8/7); ~12 array passes of traffic; resident data is the u/v/r
/// triple over the hierarchy, ~27.4 bytes × n³ each… ×8-byte words.
pub fn profile(class: NpbClass) -> BenchmarkProfile {
    let (n, iterations) = size(class);
    let n3 = (n * n * n) as f64;
    BenchmarkProfile {
        flops_per_iter: kmg::vcycle_flops(n),
        mem_bytes_per_iter: 110.0 * n3,
        total_bytes: (27.4 * n3) as u64,
        iterations,
        efficiency: 0.15,
        serial_fraction: 0.02,
        remote_share: 0.45,
        kernel: KernelClass::Multigrid,
    }
}

/// Safe halo exchange: both sends posted eagerly before either receive,
/// so any neighbour ordering is deadlock-free.
pub fn push_halo(ops: &mut Vec<SpecOp>, r: usize, np: usize, dist: usize, bytes: u64, tag: u64) {
    if np < 2 || dist == 0 || dist >= np {
        return;
    }
    let up = (r + dist) % np;
    let down = (r + np - dist) % np;
    ops.push(SpecOp::Send { to: up, bytes, tag });
    if down != up {
        ops.push(SpecOp::Send {
            to: down,
            bytes,
            tag: tag + 1,
        });
        ops.push(SpecOp::Recv {
            from: up,
            tag: tag + 1,
        });
    }
    ops.push(SpecOp::Recv { from: down, tag });
}

/// MPI workload spec: `iters` V-cycles on `np` ranks.
///
/// Each cycle: the partitioned compute phase, halo exchanges on the
/// three finest levels (face sizes halving per level), a far-neighbour
/// exchange standing in for the coarse levels, and the residual-norm
/// allreduce.
pub fn spec_mpi(class: NpbClass, np: usize, iters: u32) -> WorkloadSpec {
    assert!(np >= 1);
    let prof = profile(class);
    let (n, _) = size(class);
    let mut spec = WorkloadSpec::with_ranks(np);
    // Face of the per-rank subdomain, two halo cells deep.
    let face_bytes = (((n * n * n) as f64 / np as f64).powf(2.0 / 3.0) * 8.0 * 2.0) as u64;
    for it in 0..iters {
        for (r, ops) in spec.ranks.iter_mut().enumerate() {
            ops.push(SpecOp::Work(prof.rank_phase(np)));
            let base = (it as u64) * 1000;
            // Three finest levels: neighbour distance 1, sizes halving.
            for level in 0..3u64 {
                let bytes = face_bytes >> level;
                push_halo(ops, r, np, 1, bytes.max(64), base + level * 10);
            }
            // Coarse levels reach far ranks with small messages.
            push_halo(ops, r, np, (np / 2).max(1), 256, base + 100);
            ops.push(SpecOp::AllReduce { bytes: 8 });
        }
    }
    spec
}

/// Result of a real host-scale MG run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MgRunResult {
    /// Initial residual L2 norm.
    pub initial_residual: f64,
    /// Final residual L2 norm after the class's V-cycles.
    pub final_residual: f64,
    /// Convergence factor per cycle (geometric mean).
    pub rate_per_cycle: f64,
}

impl MgRunResult {
    /// NPB-style verification: multigrid must contract the residual by
    /// a healthy factor every cycle.
    pub fn verified(&self) -> bool {
        self.final_residual < self.initial_residual && self.rate_per_cycle < 0.5
    }
}

/// Run MG for real at a (small) class on the host.
pub fn run_real(class: NpbClass) -> MgRunResult {
    let (n, iters) = size(class);
    assert!(n <= 64, "host-scale real runs are class S only (n={n})");
    let mut v = Grid3::from_fn(n, n, n, |i, j, k| {
        // NPB MG charges ±1 at scattered points; a deterministic
        // variant keeps the run reproducible.
        match (7 * i + 5 * j + 3 * k) % 97 {
            0 => 1.0,
            48 => -1.0,
            _ => 0.0,
        }
    });
    kmg::remove_mean(&mut v);
    let mut u = Grid3::zeros(n, n, n);
    let initial = kmg::residual(&v, &u).norm_l2();
    for _ in 0..iters {
        kmg::v_cycle(&mut u, &v, 2, 2);
    }
    let final_r = kmg::residual(&v, &u).norm_l2();
    MgRunResult {
        initial_residual: initial,
        final_residual: final_r,
        rate_per_cycle: (final_r / initial).powf(1.0 / iters as f64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_s_real_run_verifies() {
        let r = run_real(NpbClass::S);
        assert!(r.verified(), "{r:?}");
        assert!(r.final_residual < r.initial_residual * 1e-2);
    }

    #[test]
    fn profiles_grow_with_class() {
        let a = profile(NpbClass::A);
        let c = profile(NpbClass::C);
        assert!(c.flops_per_iter > 7.0 * a.flops_per_iter);
        assert!(c.total_bytes > 7 * a.total_bytes);
    }

    #[test]
    fn class_b_reruns_class_a_grid_longer() {
        let (na, ia) = size(NpbClass::A);
        let (nb, ib) = size(NpbClass::B);
        assert_eq!(na, nb);
        assert!(ib > ia);
    }

    #[test]
    fn spec_has_per_rank_programs_and_collectives() {
        let spec = spec_mpi(NpbClass::B, 16, 2);
        assert_eq!(spec.nranks(), 16);
        for ops in &spec.ranks {
            let allreduces = ops
                .iter()
                .filter(|o| matches!(o, SpecOp::AllReduce { .. }))
                .count();
            assert_eq!(allreduces, 2, "one norm allreduce per cycle");
            assert!(ops.iter().any(|o| matches!(o, SpecOp::Send { .. })));
        }
    }

    #[test]
    fn single_rank_spec_has_no_messages() {
        let spec = spec_mpi(NpbClass::A, 1, 1);
        assert!(spec.ranks[0]
            .iter()
            .all(|o| !matches!(o, SpecOp::Send { .. } | SpecOp::Recv { .. })));
    }

    #[test]
    fn halo_helper_is_symmetric() {
        // Every Send must have a matching Recv on the partner.
        let np = 6;
        let mut all: Vec<Vec<SpecOp>> = vec![Vec::new(); np];
        for (r, ops) in all.iter_mut().enumerate() {
            push_halo(ops, r, np, 1, 128, 0);
        }
        let sends: Vec<(usize, usize, u64)> = all
            .iter()
            .enumerate()
            .flat_map(|(r, ops)| {
                ops.iter().filter_map(move |o| match o {
                    SpecOp::Send { to, tag, .. } => Some((r, *to, *tag)),
                    _ => None,
                })
            })
            .collect();
        for (from, to, tag) in sends {
            let matched = all[to]
                .iter()
                .any(|o| matches!(o, SpecOp::Recv { from: f, tag: t } if *f == from && *t == tag));
            assert!(matched, "unmatched send {from}->{to} tag {tag}");
        }
    }
}
