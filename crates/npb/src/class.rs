//! NPB problem classes.
//!
//! Classes grow roughly 4× in work per step: S (sample) and W
//! (workstation) for testing, A/B/C for benchmarking, D for capability
//! runs. (The multi-zone E/F classes the paper introduces live in
//! `columbia-npbmz`.)

use serde::{Deserialize, Serialize};

/// An NPB problem class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum NpbClass {
    /// Sample size — seconds on one CPU; used by the test suite's real
    /// runs.
    S,
    /// Workstation size.
    W,
    /// Class A.
    A,
    /// Class B — the size Fig. 6 and Fig. 8 report.
    B,
    /// Class C.
    C,
    /// Class D.
    D,
}

impl NpbClass {
    /// All classes, smallest first.
    pub const ALL: [NpbClass; 6] = [
        NpbClass::S,
        NpbClass::W,
        NpbClass::A,
        NpbClass::B,
        NpbClass::C,
        NpbClass::D,
    ];

    /// One-letter name.
    pub fn name(self) -> &'static str {
        match self {
            NpbClass::S => "S",
            NpbClass::W => "W",
            NpbClass::A => "A",
            NpbClass::B => "B",
            NpbClass::C => "C",
            NpbClass::D => "D",
        }
    }
}

impl std::fmt::Display for NpbClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_smallest_first() {
        assert!(NpbClass::S < NpbClass::A);
        assert!(NpbClass::B < NpbClass::D);
    }

    #[test]
    fn names() {
        assert_eq!(NpbClass::B.to_string(), "B");
        assert_eq!(NpbClass::ALL.len(), 6);
    }
}
