//! NPB FT: spectral solver driven by repeated 3-D FFTs.
//!
//! "FT tests all-to-all communication": the distributed transform
//! transposes the pencil decomposition every iteration, moving the
//! whole dataset through the network — the benchmark where Fig. 6 sees
//! FT run "about twice as fast on BX2 than on 3700" at 256 CPUs.

use columbia_kernels::complex::Complex;
use columbia_kernels::fft as kfft;
use columbia_runtime::compiler::KernelClass;
use columbia_runtime::exec::{SpecOp, WorkloadSpec};

use crate::class::NpbClass;
use crate::profile::BenchmarkProfile;

/// Grid dimensions and iteration count per class (NPB3.1 FT sizes).
pub fn size(class: NpbClass) -> ((usize, usize, usize), u32) {
    match class {
        NpbClass::S => ((64, 64, 64), 6),
        NpbClass::W => ((128, 128, 32), 6),
        NpbClass::A => ((256, 256, 128), 6),
        NpbClass::B => ((512, 256, 256), 20),
        NpbClass::C => ((512, 512, 512), 20),
        NpbClass::D => ((2048, 1024, 1024), 25),
    }
}

/// Analytic profile.
///
/// Per iteration: one 3-D FFT (`5 N log₂N` flops) plus the evolve and
/// checksum passes. Memory traffic is inflated ~5× over the minimal
/// stream: the transposed-axis passes reload cache lines nearly
/// element-wise, which is what makes FT bandwidth-bound at high thread
/// counts.
pub fn profile(class: NpbClass) -> BenchmarkProfile {
    let ((ni, nj, nk), iterations) = size(class);
    let n = (ni * nj * nk) as f64;
    BenchmarkProfile {
        flops_per_iter: 5.0 * n * n.log2() + 8.0 * n,
        mem_bytes_per_iter: 5.0 * 128.0 * n,
        total_bytes: (40.0 * n) as u64,
        iterations,
        efficiency: 0.35,
        serial_fraction: 0.02,
        remote_share: 0.70,
        kernel: KernelClass::Fourier,
    }
}

/// MPI spec: per iteration, the local pencil FFTs plus the transpose
/// all-to-all moving the full field (`16·N/np²` bytes per pair).
pub fn spec_mpi(class: NpbClass, np: usize, iters: u32) -> WorkloadSpec {
    assert!(np >= 1);
    let prof = profile(class);
    let ((ni, nj, nk), _) = size(class);
    let n = ni * nj * nk;
    let bytes_per_pair = ((16 * n) / (np * np).max(1)) as u64;
    let mut spec = WorkloadSpec::with_ranks(np);
    for _ in 0..iters {
        for ops in spec.ranks.iter_mut() {
            ops.push(SpecOp::Work(prof.rank_phase(np)));
            if np >= 2 {
                ops.push(SpecOp::AllToAll {
                    bytes_per_pair: bytes_per_pair.max(256),
                });
            }
            ops.push(SpecOp::AllReduce { bytes: 16 }); // checksum
        }
    }
    spec
}

/// Result of a real host-scale FT run.
#[derive(Debug, Clone, PartialEq)]
pub struct FtRunResult {
    /// Checksum after each iteration (NPB prints these).
    pub checksums: Vec<Complex>,
    /// Round-trip error of a final inverse transform.
    pub roundtrip_error: f64,
}

impl FtRunResult {
    /// Verification: the evolution is energy-stable (|checksum| tracks
    /// the decaying exponential) and the transform round-trips.
    pub fn verified(&self) -> bool {
        self.roundtrip_error < 1e-8
            && self
                .checksums
                .windows(2)
                .all(|w| w[1].abs() <= w[0].abs() * 1.001)
    }
}

/// Run FT for real at a (small) class: evolve
/// `u(t) = FFT⁻¹( e^{−4απ²|k|²t} · FFT(u₀) )` for the class's
/// iterations, checksumming every step.
pub fn run_real(class: NpbClass) -> FtRunResult {
    let ((ni, nj, nk), iters) = size(class);
    assert!(
        ni * nj * nk <= 1 << 19,
        "host-scale real runs are class S only"
    );
    let mut field = kfft::Field3::zeros(ni, nj, nk);
    // Deterministic pseudo-random initial condition.
    let mut state = 0x2545F4914F6CDD1Du64;
    for v in field.data.iter_mut() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let a = (state >> 11) as f64 / (1u64 << 53) as f64;
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let b = (state >> 11) as f64 / (1u64 << 53) as f64;
        *v = Complex::new(a, b);
    }
    let original = field.clone();
    // Forward transform once.
    kfft::fft3(&mut field);
    let freq = field.clone();
    let alpha = 1.0e-6;
    let mut checksums = Vec::with_capacity(iters as usize);
    for t in 1..=iters {
        // Evolve in frequency space.
        let mut evolved = freq.clone();
        let (di, dj, dk) = evolved.dims;
        for i in 0..di {
            for j in 0..dj {
                for k in 0..dk {
                    let kb = |x: usize, n: usize| {
                        let s = if x > n / 2 {
                            x as i64 - n as i64
                        } else {
                            x as i64
                        };
                        (s * s) as f64
                    };
                    let k2 = kb(i, di) + kb(j, dj) + kb(k, dk);
                    let decay = (-4.0 * alpha * std::f64::consts::PI.powi(2) * k2 * t as f64).exp();
                    let v = evolved.get(i, j, k).scale(decay);
                    evolved.set(i, j, k, v);
                }
            }
        }
        kfft::ifft3(&mut evolved);
        // NPB checksum: sum over a scattered index progression.
        let mut cs = Complex::ZERO;
        let n = di * dj * dk;
        for q in 0..1024.min(n) {
            let idx = (q * 17 + 3) % n;
            cs += evolved.data[idx];
        }
        checksums.push(cs.scale(1.0 / 1024.0));
    }
    // Round-trip check on the untouched spectrum.
    let mut back = freq.clone();
    kfft::ifft3(&mut back);
    let err = back
        .data
        .iter()
        .zip(&original.data)
        .map(|(a, b)| (*a - *b).abs())
        .fold(0.0f64, f64::max);
    FtRunResult {
        checksums,
        roundtrip_error: err,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_s_real_run_verifies() {
        let r = run_real(NpbClass::S);
        assert!(r.verified(), "roundtrip={}", r.roundtrip_error);
        assert_eq!(r.checksums.len(), 6);
    }

    #[test]
    fn checksums_decay_monotonically() {
        let r = run_real(NpbClass::S);
        for w in r.checksums.windows(2) {
            assert!(w[1].abs() <= w[0].abs() * 1.001);
        }
    }

    #[test]
    fn profile_flops_match_fft_accounting() {
        let ((ni, nj, nk), _) = size(NpbClass::A);
        let n = ni * nj * nk;
        let p = profile(NpbClass::A);
        assert!(p.flops_per_iter > kfft::fft_flops(n));
        assert!(p.flops_per_iter < 2.0 * kfft::fft_flops(n));
    }

    #[test]
    fn alltoall_bytes_conserve_field_volume() {
        let np = 16;
        let spec = spec_mpi(NpbClass::B, np, 1);
        let per_pair = spec.ranks[0]
            .iter()
            .find_map(|o| match o {
                SpecOp::AllToAll { bytes_per_pair } => Some(*bytes_per_pair),
                _ => None,
            })
            .unwrap();
        let ((ni, nj, nk), _) = size(NpbClass::B);
        let total_moved = per_pair as usize * np * (np - 1);
        let field_bytes = 16 * ni * nj * nk;
        // Moving (np-1)/np of the field ≈ the whole field.
        assert!(total_moved > field_bytes / 2 && total_moved < field_bytes * 2);
    }

    #[test]
    fn single_rank_has_no_alltoall() {
        let spec = spec_mpi(NpbClass::A, 1, 2);
        assert!(spec.ranks[0]
            .iter()
            .all(|o| !matches!(o, SpecOp::AllToAll { .. })));
    }
}
