//! NPB CG: conjugate-gradient eigenvalue estimation.
//!
//! "CG tests irregular memory access and communication": the sparse
//! matvec gathers random columns, and the distributed version reduces
//! partial sums across the processor grid every inner iteration. The
//! real mini-run drives `columbia_kernels::cg`'s power iteration; the
//! spec emits the per-inner-iteration reductions and transpose
//! exchanges.

use columbia_kernels::cg as kcg;
use columbia_runtime::compiler::KernelClass;
use columbia_runtime::exec::{SpecOp, WorkloadSpec};

use crate::class::NpbClass;
use crate::profile::BenchmarkProfile;

/// Problem shape per class: unknowns, nonzeros per row, outer
/// iterations, eigenvalue shift (NPB3.1 CG table).
pub fn size(class: NpbClass) -> (usize, usize, u32, f64) {
    match class {
        NpbClass::S => (1_400, 7, 15, 10.0),
        NpbClass::W => (7_000, 8, 15, 12.0),
        NpbClass::A => (14_000, 11, 15, 20.0),
        NpbClass::B => (75_000, 13, 75, 60.0),
        NpbClass::C => (150_000, 15, 75, 110.0),
        NpbClass::D => (1_500_000, 21, 100, 500.0),
    }
}

/// Inner CG iterations per outer step (fixed at 25 in the spec).
pub const INNER_ITERS: u32 = 25;

/// Analytic profile. One outer iteration = 25 inner CG steps; each
/// streams the matrix (12 bytes per stored nonzero) and four vectors.
pub fn profile(class: NpbClass) -> BenchmarkProfile {
    let (n, nz_row, iterations, _) = size(class);
    let nnz = (n * nz_row) as f64;
    let flops_inner = kcg::cg_iter_flops(n, n * nz_row);
    BenchmarkProfile {
        flops_per_iter: flops_inner * INNER_ITERS as f64,
        mem_bytes_per_iter: INNER_ITERS as f64 * (nnz * 12.0 + 4.0 * n as f64 * 8.0),
        total_bytes: (nnz * 12.0 + 5.0 * n as f64 * 8.0) as u64,
        iterations,
        efficiency: 0.20,
        serial_fraction: 0.02,
        remote_share: 0.40,
        kernel: KernelClass::ConjugateGradient,
    }
}

/// MPI spec: `iters` outer steps on `np` ranks. Per inner iteration:
/// the partitioned matvec work, a transpose exchange with the opposite
/// rank of the processor grid, and the two dot-product allreduces.
pub fn spec_mpi(class: NpbClass, np: usize, iters: u32) -> WorkloadSpec {
    assert!(np >= 1);
    let prof = profile(class);
    let (n, _, _, _) = size(class);
    let mut spec = WorkloadSpec::with_ranks(np);
    let exch_bytes = ((n / np.max(1)) * 8) as u64;
    // Split the outer iteration's work evenly over inner steps.
    let mut inner_phase = prof.rank_phase(np);
    inner_phase.flops /= INNER_ITERS as f64;
    inner_phase.mem_bytes /= INNER_ITERS as f64;
    for it in 0..iters {
        for inner in 0..INNER_ITERS {
            for (r, ops) in spec.ranks.iter_mut().enumerate() {
                ops.push(SpecOp::Work(inner_phase));
                if np >= 2 {
                    let partner = (r + np / 2) % np;
                    let tag = (it as u64) << 32 | (inner as u64) << 8;
                    ops.push(SpecOp::Send {
                        to: partner,
                        bytes: exch_bytes.max(64),
                        tag: tag + (r.min(partner)) as u64,
                    });
                    ops.push(SpecOp::Recv {
                        from: partner,
                        tag: tag + (r.min(partner)) as u64,
                    });
                }
                ops.push(SpecOp::AllReduce { bytes: 8 });
                ops.push(SpecOp::AllReduce { bytes: 8 });
            }
        }
    }
    spec
}

/// Result of a real host-scale CG run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CgRunResult {
    /// Final ζ estimate.
    pub zeta: f64,
    /// Change in ζ over the last outer iteration.
    pub final_drift: f64,
    /// Shift used.
    pub shift: f64,
}

impl CgRunResult {
    /// Verification: ζ settled just above the class shift.
    pub fn verified(&self) -> bool {
        self.zeta > self.shift
            && self.zeta < self.shift + 1.5
            && self.final_drift.abs() < 1e-2 * self.zeta
    }
}

/// Run CG for real at a (small) class.
pub fn run_real(class: NpbClass) -> CgRunResult {
    let (n, nz_row, iters, shift) = size(class);
    assert!(n <= 14_000, "host-scale real runs use classes S/W/A");
    let a = kcg::npb_matrix(n, nz_row, 314_159);
    let mut x = vec![1.0; n];
    let mut zeta = 0.0;
    let mut prev = 0.0;
    for _ in 0..iters {
        prev = zeta;
        zeta = kcg::power_iteration_step(&a, &mut x, shift, INNER_ITERS);
    }
    CgRunResult {
        zeta,
        final_drift: zeta - prev,
        shift,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_s_real_run_verifies() {
        let r = run_real(NpbClass::S);
        assert!(r.verified(), "{r:?}");
    }

    #[test]
    fn class_w_real_run_verifies() {
        let r = run_real(NpbClass::W);
        assert!(r.verified(), "{r:?}");
    }

    #[test]
    fn profile_scales_with_class() {
        let a = profile(NpbClass::A);
        let b = profile(NpbClass::B);
        assert!(b.flops_per_iter > 5.0 * a.flops_per_iter);
        assert!(b.iterations > a.iterations);
    }

    #[test]
    fn spec_inner_loop_structure() {
        let spec = spec_mpi(NpbClass::A, 8, 1);
        let ops = &spec.ranks[0];
        let works = ops.iter().filter(|o| matches!(o, SpecOp::Work(_))).count();
        let reduces = ops
            .iter()
            .filter(|o| matches!(o, SpecOp::AllReduce { .. }))
            .count();
        assert_eq!(works, INNER_ITERS as usize);
        assert_eq!(reduces, 2 * INNER_ITERS as usize);
    }

    #[test]
    fn transpose_partners_are_mutual() {
        let np = 12;
        let spec = spec_mpi(NpbClass::S, np, 1);
        for (r, ops) in spec.ranks.iter().enumerate() {
            for op in ops {
                if let SpecOp::Send { to, tag, .. } = op {
                    let matched = spec.ranks[*to].iter().any(
                        |o| matches!(o, SpecOp::Recv { from, tag: t } if *from == r && t == tag),
                    );
                    assert!(matched, "rank {r} send to {to} unmatched");
                }
            }
        }
    }
}
