//! Property-based tests over the MD simulator's physical invariants.

use columbia_md::MdSystem;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn newtons_third_law_holds(seed in 0u64..10_000) {
        // Total force on an isolated periodic system is exactly zero.
        let mut sys = MdSystem::fcc(4, 0.8, 0.7, seed);
        sys.compute_forces_cells();
        let mut net = [0.0f64; 3];
        for f in &sys.force {
            for a in 0..3 {
                net[a] += f[a];
            }
        }
        for a in 0..3 {
            prop_assert!(net[a].abs() < 1e-8, "net force {net:?}");
        }
    }

    #[test]
    fn momentum_conserved_for_any_seed_and_dt(
        seed in 0u64..10_000,
        dt in 0.0005f64..0.003,
    ) {
        let mut sys = MdSystem::fcc(4, 0.8, 0.5, seed);
        let p0 = sys.momentum();
        for _ in 0..10 {
            sys.step(dt);
        }
        let p1 = sys.momentum();
        for a in 0..3 {
            prop_assert!((p1[a] - p0[a]).abs() < 1e-7);
        }
    }

    #[test]
    fn positions_stay_in_the_box(seed in 0u64..10_000) {
        let mut sys = MdSystem::fcc(4, 0.8, 1.0, seed);
        for _ in 0..10 {
            sys.step(0.002);
        }
        for p in &sys.pos {
            for x in p {
                prop_assert!((0.0..sys.box_len + 1e-12).contains(x));
            }
        }
    }

    #[test]
    fn temperature_scales_with_initialization(
        t_lo in 0.1f64..0.4,
        mult in 2.0f64..4.0,
    ) {
        let cold = MdSystem::fcc(4, 0.8, t_lo, 7);
        let hot = MdSystem::fcc(4, 0.8, t_lo * mult, 7);
        let ratio = hot.temperature() / cold.temperature();
        prop_assert!((ratio - mult).abs() / mult < 0.05, "ratio={ratio} want {mult}");
    }
}
