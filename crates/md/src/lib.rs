//! Molecular dynamics (§3.3, §4.6.3).
//!
//! The paper's MD study uses "a generic molecular dynamics code based
//! on the Velocity Verlet algorithm": Lennard-Jones interactions cut
//! off at 5.0, atoms initialized on an fcc lattice with randomized
//! velocities, spatial decomposition into per-processor boxes with
//! purely local communication, and a weak-scaling experiment assigning
//! 64,000 atoms per processor (Table 5: near-perfect scaling to 2,040
//! CPUs, 130.56 million atoms).
//!
//! * [`system`] — the real simulator: fcc init, cell lists, truncated
//!   LJ forces, velocity Verlet, energy/momentum accounting;
//! * [`scaling`] — the Table 5 weak-scaling runner on the machine
//!   model (spatial decomposition, six-face ghost exchange).

pub mod scaling;
pub mod system;

pub use scaling::{weak_scaling_point, WeakScalingPoint, ATOMS_PER_CPU};
pub use system::MdSystem;
