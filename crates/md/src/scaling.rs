//! Table 5: weak scaling of the MD code on the machine model.
//!
//! "This is a weak scaling exercise: we assign 64,000 atoms to each
//! processor … For 2040 processors, we simulated 130.56 million atoms.
//! The entire simulation was run for 100 steps. Results show almost
//! perfect scalability all the way up to 2040 processors. The
//! communication costs are insignificant for this test case."
//!
//! The spatial decomposition gives each rank a box whose six faces
//! exchange ghost-atom shells with the neighbouring boxes — entirely
//! local communication, which is why the scaling holds.

use columbia_machine::cluster::{ClusterConfig, NodeId};
use columbia_machine::node::NodeKind;
use columbia_npb::mg::push_halo;
use columbia_runtime::compiler::KernelClass;
use columbia_runtime::compute::WorkPhase;
use columbia_runtime::exec::{execute, ExecConfig, SpecOp, WorkloadSpec};
use columbia_runtime::placement::{Placement, PlacementStrategy};
use columbia_simnet::{FaultPlan, SimError};

use crate::system::neighbours_per_atom;

/// Atoms per processor in the weak-scaling exercise.
pub const ATOMS_PER_CPU: u64 = 64_000;

/// Steps the paper times.
pub const STEPS: u32 = 100;

/// Reduced density of the test case.
pub const DENSITY: f64 = 0.8;

/// One row of Table 5.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeakScalingPoint {
    /// Processor count.
    pub cpus: u32,
    /// Atoms simulated.
    pub atoms: u64,
    /// Wall-clock seconds per step.
    pub seconds_per_step: f64,
    /// Mean communication seconds per step.
    pub comm_per_step: f64,
}

impl WeakScalingPoint {
    /// Parallel efficiency relative to a reference point.
    pub fn efficiency_vs(&self, reference: &WeakScalingPoint) -> f64 {
        reference.seconds_per_step / self.seconds_per_step
    }
}

/// Flops per atom per step: ~45 flops per pair interaction (distance,
/// LJ kernel, accumulation), halved for Newton's third law, plus the
/// integrator.
pub fn flops_per_atom() -> f64 {
    45.0 * neighbours_per_atom(DENSITY) / 2.0 + 60.0
}

/// Simulate one weak-scaling point on `cpus` processors spread over as
/// many BX2b nodes as needed (NUMAlink4, as Table 5's caption says).
/// A failed simulation surfaces as its typed [`SimError`] diagnosis.
pub fn weak_scaling_point(cpus: u32) -> Result<WeakScalingPoint, SimError> {
    assert!(cpus >= 1);
    // Production runs steer clear of the boot cpuset: at most 508
    // CPUs per node (§4.6.2). Full-node 512-CPU requests still pack
    // densely and take the hit.
    let cap = if cpus.is_multiple_of(512) { 512 } else { 508 };
    let nodes_needed = cpus.div_ceil(cap).max(1);
    let cluster = ClusterConfig::uniform(NodeKind::Bx2b, nodes_needed);
    let nodes: Vec<NodeId> = (0..nodes_needed).map(NodeId).collect();
    let strategy = if cap == 512 {
        PlacementStrategy::Dense
    } else {
        PlacementStrategy::DenseCapped(cap)
    };
    let placement = Placement::new(&cluster, &nodes, cpus as usize, 1, strategy);

    // Per-rank per-step work.
    let atoms = ATOMS_PER_CPU as f64;
    let phase = WorkPhase::new(
        atoms * flops_per_atom(),
        // Neighbour scans stream position triples repeatedly; the cell
        // list keeps it to a few passes over ~27 cells per atom.
        atoms * 27.0 * 24.0,
        (atoms * 6.0 * 8.0) as u64,
        0.20,
        KernelClass::ParticleForce,
    );
    // Ghost shell: atoms within one cutoff of a face. Box edge for
    // 64,000 atoms at ρ=0.8 is (64000/0.8)^(1/3) ≈ 43σ; a face shell
    // of depth 5σ holds ~ 43²·5·0.8 ≈ 7,400 atoms, 24 bytes each.
    let side = (atoms / DENSITY).cbrt();
    let shell_atoms = side * side * crate::system::CUTOFF * DENSITY;
    let ghost_bytes = (shell_atoms * 24.0) as u64;

    let np = cpus as usize;
    let mut spec = WorkloadSpec::with_ranks(np);
    const SIM_STEPS: u32 = 2;
    // Neighbour distances in the 3-D process grid.
    let px = (np as f64).cbrt().round().max(1.0) as usize;
    for step in 0..SIM_STEPS {
        for (r, ops) in spec.ranks.iter_mut().enumerate() {
            ops.push(SpecOp::Work(phase));
            if np >= 2 {
                for (axis, d) in [1usize, px, (px * px).max(1)].into_iter().enumerate() {
                    push_halo(
                        ops,
                        r,
                        np,
                        d.min(np - 1).max(1),
                        ghost_bytes,
                        step as u64 * 100 + axis as u64 * 10,
                    );
                }
            }
        }
    }
    let cfg = ExecConfig {
        cluster,
        nodes,
        inter: columbia_machine::cluster::InterNodeFabric::NumaLink4,
        mpt: columbia_simnet::fabric::MptVersion::Beta,
        placement,
        compiler: columbia_runtime::compiler::CompilerVersion::V7_1,
        pinning: columbia_runtime::pinning::Pinning::Pinned,
        faults: FaultPlan::none(),
    };
    let out = execute(&spec, &cfg)?;
    Ok(WeakScalingPoint {
        cpus,
        atoms: ATOMS_PER_CPU * cpus as u64,
        seconds_per_step: out.makespan / SIM_STEPS as f64,
        comm_per_step: out.mean_comm() / SIM_STEPS as f64,
    })
}

/// The processor counts Table 5 reports (508 rather than 512 in a
/// node: full-node runs overlap the boot cpuset, §4.6.2).
pub const TABLE5_CPUS: [u32; 7] = [1, 8, 64, 256, 508, 1008, 2040];

#[cfg(test)]
mod tests {
    use super::*;

    /// Healthy-machine shorthand: these sweeps must never fail.
    fn weak_scaling_point(cpus: u32) -> WeakScalingPoint {
        super::weak_scaling_point(cpus).unwrap()
    }

    #[test]
    fn atom_counts_match_paper() {
        let p = weak_scaling_point(2040);
        assert_eq!(p.atoms, 130_560_000, "130.56 million atoms at 2040 CPUs");
    }

    #[test]
    fn weak_scaling_is_nearly_perfect() {
        let base = weak_scaling_point(1);
        for cpus in [64, 508, 2040] {
            let p = weak_scaling_point(cpus);
            let eff = p.efficiency_vs(&base);
            assert!(eff > 0.93, "cpus={cpus} efficiency={eff}");
        }
    }

    #[test]
    fn full_node_512_dips_from_the_boot_cpuset() {
        // A dense 512-CPU allocation overlaps the CPUs reserved for
        // system software (§4.6.2) — the reason the sweep uses 508.
        let full = weak_scaling_point(512);
        let spared = weak_scaling_point(508);
        assert!(full.seconds_per_step > 1.05 * spared.seconds_per_step);
    }

    #[test]
    fn communication_is_insignificant() {
        let p = weak_scaling_point(256);
        assert!(
            p.comm_per_step < 0.05 * p.seconds_per_step,
            "comm={} total={}",
            p.comm_per_step,
            p.seconds_per_step
        );
    }

    #[test]
    fn step_time_is_order_hundreds_of_ms() {
        // 64,000 atoms × ~9,500 flops at ~1 Gflop/s sustained.
        let p = weak_scaling_point(1);
        assert!(
            (0.05..5.0).contains(&p.seconds_per_step),
            "sec/step={}",
            p.seconds_per_step
        );
    }

    #[test]
    fn multi_node_counts_span_nodes() {
        // 1008 and 2040 CPUs require 2 and 4 Altix nodes.
        let p = weak_scaling_point(1008);
        assert!(p.seconds_per_step > 0.0);
        let q = weak_scaling_point(2040);
        assert!(q.seconds_per_step < 1.1 * p.seconds_per_step);
    }
}
