//! The real Lennard-Jones molecular dynamics simulator.
//!
//! Reduced units (σ = ε = m = 1). Atoms start on a face-centred-cubic
//! lattice with randomized velocities at a target temperature (§3.3),
//! interact through the truncated 12-6 potential, and advance with the
//! velocity Verlet integrator — "the most complete form of the Verlet
//! algorithm", giving positions and velocities at the same instant.
//! Forces are evaluated through a cell list, with an O(N²) reference
//! path retained for the ablation bench and cross-checks.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// Interaction cutoff radius (the paper uses 5.0).
pub const CUTOFF: f64 = 5.0;

/// A 3-vector.
pub type V3 = [f64; 3];

/// State of an MD simulation in a periodic cubic box.
#[derive(Debug, Clone)]
pub struct MdSystem {
    /// Atom positions.
    pub pos: Vec<V3>,
    /// Atom velocities.
    pub vel: Vec<V3>,
    /// Current forces.
    pub force: Vec<V3>,
    /// Box edge length.
    pub box_len: f64,
}

impl MdSystem {
    /// Build `cells³` fcc unit cells (4 atoms each) at reduced density
    /// `rho`, with Maxwell-ish random velocities at `temperature`,
    /// zero total momentum.
    pub fn fcc(cells: usize, rho: f64, temperature: f64, seed: u64) -> Self {
        assert!(cells >= 1 && rho > 0.0);
        let n = 4 * cells * cells * cells;
        let a = (4.0 / rho).cbrt(); // fcc lattice constant
        let box_len = a * cells as f64;
        let mut pos = Vec::with_capacity(n);
        let basis = [
            [0.0, 0.0, 0.0],
            [0.5, 0.5, 0.0],
            [0.5, 0.0, 0.5],
            [0.0, 0.5, 0.5],
        ];
        for i in 0..cells {
            for j in 0..cells {
                for k in 0..cells {
                    for b in basis {
                        pos.push([
                            (i as f64 + b[0]) * a,
                            (j as f64 + b[1]) * a,
                            (k as f64 + b[2]) * a,
                        ]);
                    }
                }
            }
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut vel: Vec<V3> = (0..n)
            .map(|_| {
                let s = (temperature).sqrt();
                [
                    s * gauss(&mut rng),
                    s * gauss(&mut rng),
                    s * gauss(&mut rng),
                ]
            })
            .collect();
        // Remove centre-of-mass drift.
        let mut com = [0.0f64; 3];
        for v in &vel {
            for d in 0..3 {
                com[d] += v[d];
            }
        }
        for v in &mut vel {
            for d in 0..3 {
                v[d] -= com[d] / n as f64;
            }
        }
        let mut sys = MdSystem {
            pos,
            vel,
            force: vec![[0.0; 3]; n],
            box_len,
        };
        sys.compute_forces_cells();
        sys
    }

    /// Atom count.
    pub fn len(&self) -> usize {
        self.pos.len()
    }

    /// Whether the system has no atoms.
    pub fn is_empty(&self) -> bool {
        self.pos.is_empty()
    }

    /// Minimum-image displacement from atom `i` to atom `j`.
    #[inline]
    fn min_image(&self, i: usize, j: usize) -> V3 {
        let mut d = [0.0; 3];
        for (a, slot) in d.iter_mut().enumerate() {
            let mut x = self.pos[j][a] - self.pos[i][a];
            x -= self.box_len * (x / self.box_len).round();
            *slot = x;
        }
        d
    }

    /// Truncated LJ pair force magnitude/r and energy at squared
    /// distance `r2`.
    #[inline]
    fn lj(r2: f64) -> (f64, f64) {
        let inv2 = 1.0 / r2;
        let inv6 = inv2 * inv2 * inv2;
        let inv12 = inv6 * inv6;
        // F/r = 24(2 r⁻¹² − r⁻⁶)/r²,  U = 4(r⁻¹² − r⁻⁶)
        (24.0 * (2.0 * inv12 - inv6) * inv2, 4.0 * (inv12 - inv6))
    }

    /// O(N²) reference force evaluation; returns potential energy.
    pub fn compute_forces_naive(&mut self) -> f64 {
        let n = self.len();
        let rc2 = CUTOFF * CUTOFF;
        for f in self.force.iter_mut() {
            *f = [0.0; 3];
        }
        let mut pot = 0.0;
        for i in 0..n {
            for j in i + 1..n {
                let d = self.min_image(i, j);
                let r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
                if r2 < rc2 {
                    let (fr, u) = Self::lj(r2);
                    pot += u;
                    for (a, &da) in d.iter().enumerate() {
                        self.force[i][a] -= fr * da;
                        self.force[j][a] += fr * da;
                    }
                }
            }
        }
        pot
    }

    /// Cell-list force evaluation (the production path); returns
    /// potential energy. Parallelized over atoms with rayon.
    pub fn compute_forces_cells(&mut self) -> f64 {
        let n = self.len();
        let rc2 = CUTOFF * CUTOFF;
        let ncell = (self.box_len / CUTOFF).floor().max(1.0) as usize;
        if ncell < 3 {
            // Box too small for a meaningful cell decomposition: the
            // reference path is already correct.
            return self.compute_forces_naive();
        }
        let cell_len = self.box_len / ncell as f64;
        // Bin atoms.
        let mut cells: Vec<Vec<usize>> = vec![Vec::new(); ncell * ncell * ncell];
        let cell_of = |p: &V3| -> usize {
            let mut c = [0usize; 3];
            for a in 0..3 {
                let mut x = p[a] % self.box_len;
                if x < 0.0 {
                    x += self.box_len;
                }
                c[a] = ((x / cell_len) as usize).min(ncell - 1);
            }
            (c[0] * ncell + c[1]) * ncell + c[2]
        };
        for (i, p) in self.pos.iter().enumerate() {
            cells[cell_of(p)].push(i);
        }
        // For each atom, scan its 27 neighbouring cells.
        let pos = &self.pos;
        let box_len = self.box_len;
        let results: Vec<(V3, f64)> = (0..n)
            .into_par_iter()
            .map(|i| {
                let mut f = [0.0f64; 3];
                let mut pot = 0.0;
                let ci = {
                    let mut c = [0usize; 3];
                    for a in 0..3 {
                        let mut x = pos[i][a] % box_len;
                        if x < 0.0 {
                            x += box_len;
                        }
                        c[a] = ((x / cell_len) as usize).min(ncell - 1);
                    }
                    c
                };
                for dx in -1i64..=1 {
                    for dy in -1i64..=1 {
                        for dz in -1i64..=1 {
                            let cx = (ci[0] as i64 + dx).rem_euclid(ncell as i64) as usize;
                            let cy = (ci[1] as i64 + dy).rem_euclid(ncell as i64) as usize;
                            let cz = (ci[2] as i64 + dz).rem_euclid(ncell as i64) as usize;
                            for &j in &cells[(cx * ncell + cy) * ncell + cz] {
                                if j == i {
                                    continue;
                                }
                                let mut d = [0.0f64; 3];
                                let mut r2 = 0.0;
                                for a in 0..3 {
                                    let mut x = pos[j][a] - pos[i][a];
                                    x -= box_len * (x / box_len).round();
                                    d[a] = x;
                                    r2 += x * x;
                                }
                                if r2 < rc2 && r2 > 0.0 {
                                    let (fr, u) = Self::lj(r2);
                                    pot += 0.5 * u; // half: each pair seen twice
                                    for a in 0..3 {
                                        f[a] -= fr * d[a];
                                    }
                                }
                            }
                        }
                    }
                }
                (f, pot)
            })
            .collect();
        let mut pot = 0.0;
        for (i, (f, p)) in results.into_iter().enumerate() {
            self.force[i] = f;
            pot += p;
        }
        pot
    }

    /// One velocity Verlet step of size `dt`; returns the potential
    /// energy at the new positions.
    pub fn step(&mut self, dt: f64) -> f64 {
        let n = self.len();
        // Half-kick + drift.
        for i in 0..n {
            for a in 0..3 {
                self.vel[i][a] += 0.5 * dt * self.force[i][a];
                self.pos[i][a] += dt * self.vel[i][a];
                self.pos[i][a] = self.pos[i][a].rem_euclid(self.box_len);
            }
        }
        // New forces, second half-kick.
        let pot = self.compute_forces_cells();
        for i in 0..n {
            for a in 0..3 {
                self.vel[i][a] += 0.5 * dt * self.force[i][a];
            }
        }
        pot
    }

    /// Kinetic energy.
    pub fn kinetic_energy(&self) -> f64 {
        0.5 * self
            .vel
            .iter()
            .map(|v| v[0] * v[0] + v[1] * v[1] + v[2] * v[2])
            .sum::<f64>()
    }

    /// Total momentum vector.
    pub fn momentum(&self) -> V3 {
        let mut p = [0.0; 3];
        for v in &self.vel {
            for a in 0..3 {
                p[a] += v[a];
            }
        }
        p
    }

    /// Instantaneous temperature (equipartition).
    pub fn temperature(&self) -> f64 {
        2.0 * self.kinetic_energy() / (3.0 * self.len() as f64)
    }
}

fn gauss(rng: &mut StdRng) -> f64 {
    // Box-Muller.
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Approximate interaction count per atom at density `rho` with the
/// 5.0 cutoff — the flop-count input for the scaling model.
pub fn neighbours_per_atom(rho: f64) -> f64 {
    rho * 4.0 / 3.0 * std::f64::consts::PI * CUTOFF.powi(3)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_system() -> MdSystem {
        // 6³ fcc cells at ρ=0.8: 864 atoms, box ≈ 10.3 > 2×cutoff.
        MdSystem::fcc(6, 0.8, 0.5, 42)
    }

    #[test]
    fn fcc_counts_and_box() {
        let s = small_system();
        assert_eq!(s.len(), 4 * 6 * 6 * 6);
        let a = (4.0f64 / 0.8).cbrt();
        assert!((s.box_len - 6.0 * a).abs() < 1e-12);
    }

    #[test]
    fn initial_momentum_is_zero() {
        let s = small_system();
        for p in s.momentum() {
            assert!(p.abs() < 1e-9, "momentum={p}");
        }
    }

    #[test]
    fn cell_list_matches_naive_forces() {
        let mut s1 = small_system();
        let mut s2 = s1.clone();
        let p1 = s1.compute_forces_naive();
        let p2 = s2.compute_forces_cells();
        assert!((p1 - p2).abs() / p1.abs() < 1e-10, "pot {p1} vs {p2}");
        for (f1, f2) in s1.force.iter().zip(&s2.force) {
            for a in 0..3 {
                assert!((f1[a] - f2[a]).abs() < 1e-8, "{f1:?} vs {f2:?}");
            }
        }
    }

    #[test]
    fn lattice_forces_are_tiny() {
        // A perfect fcc lattice is an equilibrium: net forces ≈ 0.
        let mut s = MdSystem::fcc(6, 0.8, 0.0, 1);
        s.compute_forces_cells();
        let max_f = s
            .force
            .iter()
            .flat_map(|f| f.iter())
            .fold(0.0f64, |m, &x| m.max(x.abs()));
        assert!(max_f < 1e-8, "max force {max_f}");
    }

    #[test]
    fn energy_is_conserved_over_verlet_steps() {
        let mut s = small_system();
        let pot0 = s.compute_forces_cells();
        let e0 = pot0 + s.kinetic_energy();
        let mut e_final = e0;
        for _ in 0..50 {
            let pot = s.step(0.002);
            e_final = pot + s.kinetic_energy();
        }
        let drift = ((e_final - e0) / e0).abs();
        assert!(drift < 5e-3, "energy drift {drift} (e0={e0}, e={e_final})");
    }

    #[test]
    fn momentum_is_conserved() {
        let mut s = small_system();
        for _ in 0..20 {
            s.step(0.002);
        }
        for p in s.momentum() {
            assert!(p.abs() < 1e-6, "momentum={p}");
        }
    }

    #[test]
    fn temperature_matches_initialization_roughly() {
        let s = MdSystem::fcc(6, 0.8, 0.5, 7);
        let t = s.temperature();
        assert!((0.35..0.65).contains(&t), "T={t}");
    }

    #[test]
    fn neighbour_count_is_large_at_cutoff_5() {
        // ρ·(4/3)π·5³ ≈ 419 at ρ=0.8 — the 5.0 cutoff makes this an
        // expensive force field.
        let n = neighbours_per_atom(0.8);
        assert!((350.0..500.0).contains(&n), "{n}");
    }
}
