//! Hardware model of the Columbia supercluster.
//!
//! Columbia (NASA Ames, 2004) was a cluster of twenty 512-processor SGI
//! Altix nodes. Twelve nodes were Altix 3700 systems; eight were the
//! double-density 3700 BX2, five of which used faster 1.6 GHz Itanium2
//! parts with 9 MB L3 caches. This crate models, mechanistically, the
//! pieces of that machine whose interaction the SC 2005 paper measures:
//!
//! * the Itanium2 processor ([`processor`]): clock, dual multiply-add
//!   issue, the L1/L2/L3 cache hierarchy (L1 holds no floating-point
//!   data), and the 128-entry floating-point register file;
//! * the C-Brick packaging ([`brick`]): four CPUs per brick on the 3700,
//!   eight on the BX2, with two CPUs sharing each front-side bus — the
//!   mechanism behind the paper's §4.2 "CPU stride" observations;
//! * the memory system ([`memory`]): STREAM-style sustained bandwidth as
//!   a function of how many CPUs share a bus and of cache residency;
//! * the NUMAlink fat-tree topology ([`topology`]): hop distances between
//!   CPUs inside a node, doubled link bandwidth on the BX2 (NUMAlink4);
//! * node ([`node`]) and cluster ([`cluster`]) configuration, including
//!   the InfiniBand connection-limit formula from §2 of the paper that
//!   caps pure-MPI runs at three Altix nodes;
//! * calibration constants ([`calib`]) tying model parameters to the
//!   numbers the paper publishes.
//!
//! Everything here is a *performance model*, not a functional simulator:
//! it answers "how long does this take / how many bytes per second", and
//! the discrete-event engine in `columbia-simnet` composes those answers
//! into end-to-end benchmark timings.

pub mod brick;
pub mod calib;
pub mod cluster;
pub mod memory;
pub mod node;
pub mod processor;
pub mod topology;

pub use cluster::{ClusterConfig, CpuId, NodeId};
pub use node::{NodeKind, NodeModel};
pub use processor::ProcessorModel;

/// One gigabyte per second, in bytes per second.
pub const GB: f64 = 1.0e9;
/// One gigaflop per second, in flop/s.
pub const GFLOP: f64 = 1.0e9;
/// One microsecond, in seconds.
pub const MICRO: f64 = 1.0e-6;
