//! Altix node models: the 3700, the BX2a, and the BX2b.
//!
//! Columbia is built from 512-CPU single-system-image Altix nodes. The
//! paper distinguishes three flavours (its §4.1 shorthand):
//!
//! | | 3700 | BX2a | BX2b |
//! |---|---|---|---|
//! | CPU | 1.5 GHz / 6 MB | 1.5 GHz / 6 MB | 1.6 GHz / 9 MB |
//! | interconnect | NUMAlink3, 3.2 GB/s | NUMAlink4, 6.4 GB/s | NUMAlink4, 6.4 GB/s |
//! | packaging | 4 CPU/brick, 32/rack | 8 CPU/brick, 64/rack | 8 CPU/brick, 64/rack |
//! | peak | 3.07 Tflop/s | 3.07 Tflop/s | 3.28 Tflop/s |

use serde::{Deserialize, Serialize};

use crate::brick::CBrick;
use crate::calib;
use crate::processor::ProcessorModel;
use crate::topology::NumaLinkGen;

/// The three Altix node flavours present in Columbia.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    /// Original Altix 3700: 1.5 GHz/6 MB CPUs on NUMAlink3.
    Altix3700,
    /// BX2 with 1.5 GHz/6 MB CPUs ("BX2a" in the paper's shorthand).
    Bx2a,
    /// BX2 with 1.6 GHz/9 MB CPUs ("BX2b"); the four-node NUMAlink4
    /// capability subsystem is built from these.
    Bx2b,
}

impl NodeKind {
    /// All three flavours, in the order the paper's figures present them.
    pub const ALL: [NodeKind; 3] = [NodeKind::Altix3700, NodeKind::Bx2a, NodeKind::Bx2b];

    /// Display name matching the paper's shorthand.
    pub fn name(self) -> &'static str {
        match self {
            NodeKind::Altix3700 => "3700",
            NodeKind::Bx2a => "BX2a",
            NodeKind::Bx2b => "BX2b",
        }
    }
}

impl std::fmt::Display for NodeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Full model of one 512-CPU Altix node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeModel {
    /// Which flavour this node is.
    pub kind: NodeKind,
    /// Processor model (clock + caches).
    pub processor: ProcessorModel,
    /// C-Brick packaging.
    pub brick: CBrick,
    /// NUMAlink generation wiring the bricks together.
    pub numalink: NumaLinkGen,
    /// CPUs in the node (512 everywhere on Columbia).
    pub cpus: u32,
    /// Global shared memory in bytes (~1 TB per node).
    pub memory_bytes: u64,
}

impl NodeModel {
    /// Construct the canonical Columbia node of a given flavour.
    pub fn new(kind: NodeKind) -> Self {
        let (processor, brick, numalink) = match kind {
            NodeKind::Altix3700 => (
                ProcessorModel::itanium2_1500(),
                CBrick::altix3700(),
                NumaLinkGen::NumaLink3,
            ),
            NodeKind::Bx2a => (
                ProcessorModel::itanium2_1500(),
                CBrick::bx2(),
                NumaLinkGen::NumaLink4,
            ),
            NodeKind::Bx2b => (
                ProcessorModel::itanium2_1600(),
                CBrick::bx2(),
                NumaLinkGen::NumaLink4,
            ),
        };
        NodeModel {
            kind,
            processor,
            brick,
            numalink,
            cpus: 512,
            memory_bytes: 1 << 40, // 1 TB
        }
    }

    /// Theoretical peak of the whole node in Tflop/s (Table 1).
    pub fn peak_tflops(&self) -> f64 {
        self.cpus as f64 * self.processor.peak_flops() / 1.0e12
    }

    /// Peak NUMAlink bandwidth shared by one C-Brick, bytes/s (Table 1:
    /// 3.2 GB/s on the 3700, 6.4 GB/s on the BX2).
    pub fn brick_link_bandwidth(&self) -> f64 {
        self.numalink.link_bandwidth()
    }

    /// Memory available to each CPU when a benchmark divides the node
    /// evenly (HPCC sizes arrays to 75% of this).
    pub fn memory_per_cpu(&self) -> u64 {
        self.memory_bytes / self.cpus as u64
    }

    /// Render the node's Table-1 row as `(characteristic, value)` pairs.
    pub fn table1_row(&self) -> Vec<(&'static str, String)> {
        vec![
            ("Architecture", "NUMAflex, SSI".to_string()),
            ("# Processors", self.cpus.to_string()),
            (
                "Packaging",
                format!("{} CPUs/rack", self.brick.cpus_per_rack),
            ),
            (
                "Processor",
                format!(
                    "Itanium2 {} GHz/{} MB",
                    self.processor.clock_ghz,
                    self.processor.caches.l3_bytes / (1024 * 1024)
                ),
            ),
            ("Interconnect", self.numalink.name().to_string()),
            (
                "Bandwidth",
                format!("{:.1} GB/s", self.brick_link_bandwidth() / 1.0e9),
            ),
            (
                "Th. peak perf.",
                format!("{:.2} Tflop/s", self.peak_tflops()),
            ),
            ("Memory", "1 TB".to_string()),
        ]
    }

    /// Baseline efficiency for memory-bound CFD kernels on this node.
    pub fn cfd_base_efficiency(&self) -> f64 {
        calib::cfd_base_efficiency(self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_peaks() {
        assert!((NodeModel::new(NodeKind::Altix3700).peak_tflops() - 3.072).abs() < 1e-9);
        assert!((NodeModel::new(NodeKind::Bx2a).peak_tflops() - 3.072).abs() < 1e-9);
        assert!((NodeModel::new(NodeKind::Bx2b).peak_tflops() - 3.2768).abs() < 1e-9);
    }

    #[test]
    fn table1_bandwidths() {
        assert!((NodeModel::new(NodeKind::Altix3700).brick_link_bandwidth() - 3.2e9).abs() < 1.0);
        assert!((NodeModel::new(NodeKind::Bx2a).brick_link_bandwidth() - 6.4e9).abs() < 1.0);
        assert!((NodeModel::new(NodeKind::Bx2b).brick_link_bandwidth() - 6.4e9).abs() < 1.0);
    }

    #[test]
    fn bx2b_has_faster_clock_and_bigger_cache() {
        let a = NodeModel::new(NodeKind::Bx2a);
        let b = NodeModel::new(NodeKind::Bx2b);
        assert!(b.processor.clock_ghz > a.processor.clock_ghz);
        assert!(b.processor.caches.l3_bytes > a.processor.caches.l3_bytes);
    }

    #[test]
    fn memory_per_cpu_is_2gb() {
        for kind in NodeKind::ALL {
            assert_eq!(NodeModel::new(kind).memory_per_cpu(), 1 << 31);
        }
    }

    #[test]
    fn table1_row_shape() {
        let row = NodeModel::new(NodeKind::Bx2b).table1_row();
        assert_eq!(row.len(), 8);
        assert_eq!(row[3].1, "Itanium2 1.6 GHz/9 MB");
        assert_eq!(row[4].1, "NUMAlink4");
    }

    #[test]
    fn display_names_match_paper() {
        assert_eq!(NodeKind::Altix3700.to_string(), "3700");
        assert_eq!(NodeKind::Bx2a.to_string(), "BX2a");
        assert_eq!(NodeKind::Bx2b.to_string(), "BX2b");
    }
}
