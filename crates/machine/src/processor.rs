//! The Intel Itanium2 processor model.
//!
//! The predominant CPU on Columbia is a 64-bit Itanium2 (Madison) that
//! issues two multiply-add operations per cycle — four flops — for a peak
//! of 6.0 Gflop/s at 1.5 GHz (6.4 Gflop/s for the 1.6 GHz parts in the
//! BX2b nodes). Its memory hierarchy is unusual in one way the paper
//! calls out: the 32 KB L1 data cache *cannot hold floating-point data*,
//! so FP loads are serviced from the 256 KB L2 at best; the large
//! 128-entry FP register file mitigates the resulting load/spill
//! pressure.

use serde::{Deserialize, Serialize};

use crate::GFLOP;

/// Sizes of the three on-chip data caches, in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheHierarchy {
    /// L1 data cache (32 KB). Integer data only: the Itanium2 bypasses
    /// L1 for floating-point loads and stores.
    pub l1_bytes: u64,
    /// L2 unified cache (256 KB); the first level that holds FP data.
    pub l2_bytes: u64,
    /// L3 on-die cache: 6 MB on the 1.5 GHz parts, 9 MB on the 1.6 GHz
    /// parts used by the five fastest BX2 nodes.
    pub l3_bytes: u64,
}

impl CacheHierarchy {
    /// Hierarchy of the 1.5 GHz Madison used in the 3700 and BX2a nodes.
    pub const fn madison_6mb() -> Self {
        CacheHierarchy {
            l1_bytes: 32 * 1024,
            l2_bytes: 256 * 1024,
            l3_bytes: 6 * 1024 * 1024,
        }
    }

    /// Hierarchy of the 1.6 GHz Madison9M used in the BX2b nodes.
    pub const fn madison_9mb() -> Self {
        CacheHierarchy {
            l1_bytes: 32 * 1024,
            l2_bytes: 256 * 1024,
            l3_bytes: 9 * 1024 * 1024,
        }
    }

    /// Which cache level a floating-point working set of `bytes` resides
    /// in during steady state. Level 1 is never returned for FP data.
    pub fn fp_resident_level(&self, bytes: u64) -> CacheLevel {
        if bytes <= self.l2_bytes {
            CacheLevel::L2
        } else if bytes <= self.l3_bytes {
            CacheLevel::L3
        } else {
            CacheLevel::Memory
        }
    }
}

/// The cache level that services a working set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CacheLevel {
    /// L1 data cache (integer data only on Itanium2).
    L1,
    /// L2 unified cache.
    L2,
    /// L3 on-die cache.
    L3,
    /// Local main memory behind the SHUB.
    Memory,
}

/// Performance model of one Itanium2 CPU.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProcessorModel {
    /// Core clock in GHz (1.5 or 1.6 on Columbia).
    pub clock_ghz: f64,
    /// Flops retired per cycle at peak: two multiply-adds = 4.
    pub flops_per_cycle: f64,
    /// Number of architectural floating-point registers (128).
    pub fp_registers: u32,
    /// On-chip cache sizes.
    pub caches: CacheHierarchy,
}

impl ProcessorModel {
    /// The 1.5 GHz / 6 MB part (Altix 3700 and BX2a nodes).
    pub const fn itanium2_1500() -> Self {
        ProcessorModel {
            clock_ghz: 1.5,
            flops_per_cycle: 4.0,
            fp_registers: 128,
            caches: CacheHierarchy::madison_6mb(),
        }
    }

    /// The 1.6 GHz / 9 MB part (BX2b nodes).
    pub const fn itanium2_1600() -> Self {
        ProcessorModel {
            clock_ghz: 1.6,
            flops_per_cycle: 4.0,
            fp_registers: 128,
            caches: CacheHierarchy::madison_9mb(),
        }
    }

    /// Theoretical peak floating-point rate in flop/s.
    pub fn peak_flops(&self) -> f64 {
        self.clock_ghz * GFLOP * self.flops_per_cycle
    }

    /// Theoretical peak in Gflop/s (the unit the paper reports).
    pub fn peak_gflops(&self) -> f64 {
        self.peak_flops() / GFLOP
    }

    /// Time in seconds to retire `flops` floating-point operations at a
    /// given fraction of peak (`efficiency` in (0, 1]).
    pub fn compute_seconds(&self, flops: f64, efficiency: f64) -> f64 {
        assert!(
            efficiency > 0.0 && efficiency <= 1.0,
            "efficiency must be in (0,1], got {efficiency}"
        );
        flops / (self.peak_flops() * efficiency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_matches_paper_table1() {
        // Table 1: 1.5 GHz part peaks at 6.0 Gflop/s, 1.6 GHz at 6.4.
        assert!((ProcessorModel::itanium2_1500().peak_gflops() - 6.0).abs() < 1e-12);
        assert!((ProcessorModel::itanium2_1600().peak_gflops() - 6.4).abs() < 1e-12);
    }

    #[test]
    fn node_peak_matches_paper_table1() {
        // Table 1: 512 CPUs at 6.0 Gflop/s = 3.07 Tflop/s; at 6.4 = 3.28.
        let tflops_1500 = 512.0 * ProcessorModel::itanium2_1500().peak_gflops() / 1000.0;
        let tflops_1600 = 512.0 * ProcessorModel::itanium2_1600().peak_gflops() / 1000.0;
        assert!((tflops_1500 - 3.072).abs() < 1e-9);
        assert!((tflops_1600 - 3.2768).abs() < 1e-9);
    }

    #[test]
    fn fp_data_never_lives_in_l1() {
        let c = CacheHierarchy::madison_6mb();
        assert_eq!(c.fp_resident_level(1), CacheLevel::L2);
        assert_eq!(c.fp_resident_level(256 * 1024), CacheLevel::L2);
        assert_eq!(c.fp_resident_level(256 * 1024 + 1), CacheLevel::L3);
        assert_eq!(c.fp_resident_level(6 * 1024 * 1024 + 1), CacheLevel::Memory);
    }

    #[test]
    fn bigger_l3_keeps_bigger_sets_on_chip() {
        let small = CacheHierarchy::madison_6mb();
        let big = CacheHierarchy::madison_9mb();
        let ws = 8 * 1024 * 1024; // 8 MB working set
        assert_eq!(small.fp_resident_level(ws), CacheLevel::Memory);
        assert_eq!(big.fp_resident_level(ws), CacheLevel::L3);
    }

    #[test]
    fn compute_seconds_scales_inversely_with_efficiency() {
        let p = ProcessorModel::itanium2_1500();
        let full = p.compute_seconds(6.0e9, 1.0);
        let half = p.compute_seconds(6.0e9, 0.5);
        assert!((full - 1.0).abs() < 1e-12);
        assert!((half - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "efficiency")]
    fn zero_efficiency_rejected() {
        ProcessorModel::itanium2_1500().compute_seconds(1.0, 0.0);
    }
}
