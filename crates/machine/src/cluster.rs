//! Cluster-level configuration of Columbia.
//!
//! Twenty 512-CPU Altix nodes — twelve 3700s and eight BX2s, five of the
//! BX2s being the faster "BX2b" flavour — joined by an InfiniBand switch
//! (low-latency MPI) and 10-GigE (user access / I/O). Four of the BX2b
//! nodes are additionally coupled with NUMAlink4 into a 2,048-CPU,
//! 13 Tflop/s shared-memory-capable capability subsystem.
//!
//! §2 also gives the constraint this crate must expose: each node has 8
//! InfiniBand cards of 64 K connections each, so a *pure MPI* job on
//! `n ≥ 2` nodes can use at most
//! `floor(sqrt(cards × connections / (n−1)))` processes per node — the
//! reason runs on four or more nodes must be hybrid MPI+OpenMP.

use serde::{Deserialize, Serialize};

use crate::calib;
use crate::node::{NodeKind, NodeModel};

/// Identifies one Altix node (box) in the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// Identifies one CPU globally: node + dense in-node index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CpuId {
    /// Which Altix node the CPU lives in.
    pub node: NodeId,
    /// Dense CPU index within the node (0..512).
    pub cpu: u32,
}

impl CpuId {
    /// Construct a CPU id.
    pub fn new(node: u32, cpu: u32) -> Self {
        CpuId {
            node: NodeId(node),
            cpu,
        }
    }
}

/// The inter-node fabric a multi-node run communicates over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InterNodeFabric {
    /// NUMAlink4 coupling (only the four-BX2b capability subsystem).
    NumaLink4,
    /// The Voltaire InfiniBand switch, reachable from every node.
    InfiniBand,
}

impl InterNodeFabric {
    /// Name as the paper writes it.
    pub fn name(self) -> &'static str {
        match self {
            InterNodeFabric::NumaLink4 => "NUMAlink4",
            InterNodeFabric::InfiniBand => "InfiniBand",
        }
    }
}

impl std::fmt::Display for InterNodeFabric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Static description of the whole supercluster.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Node flavour of each of the boxes, indexed by [`NodeId`].
    pub nodes: Vec<NodeKind>,
    /// Indices of the BX2b nodes linked into the NUMAlink4 subsystem.
    pub numalink4_subsystem: Vec<NodeId>,
    /// InfiniBand cards installed per node.
    pub ib_cards_per_node: u32,
    /// Connections supported by each card.
    pub ib_connections_per_card: u64,
}

impl ClusterConfig {
    /// The full 20-node Columbia configuration as installed in 2004:
    /// twelve 3700s, three BX2a, five BX2b, with four BX2b nodes in the
    /// NUMAlink4 capability subsystem.
    pub fn columbia() -> Self {
        let mut nodes = vec![NodeKind::Altix3700; 12];
        nodes.extend(vec![NodeKind::Bx2a; 3]);
        nodes.extend(vec![NodeKind::Bx2b; 5]);
        let numalink4_subsystem = (15..19).map(NodeId).collect();
        ClusterConfig {
            nodes,
            numalink4_subsystem,
            ib_cards_per_node: calib::IB_CARDS_PER_NODE,
            ib_connections_per_card: calib::IB_CONNECTIONS_PER_CARD,
        }
    }

    /// A homogeneous test cluster of `n` nodes of one flavour, all
    /// NUMAlink4-coupled when the flavour is a BX2.
    pub fn uniform(kind: NodeKind, n: u32) -> Self {
        let numalink4_subsystem = if kind == NodeKind::Altix3700 {
            vec![]
        } else {
            (0..n).map(NodeId).collect()
        };
        ClusterConfig {
            nodes: vec![kind; n as usize],
            numalink4_subsystem,
            ib_cards_per_node: calib::IB_CARDS_PER_NODE,
            ib_connections_per_card: calib::IB_CONNECTIONS_PER_CARD,
        }
    }

    /// Total CPU count (10,240 for the real machine).
    pub fn total_cpus(&self) -> u32 {
        self.nodes.len() as u32 * 512
    }

    /// Model for one node.
    pub fn node_model(&self, id: NodeId) -> NodeModel {
        NodeModel::new(self.nodes[id.0 as usize])
    }

    /// Whether all of `ids` sit inside the NUMAlink4 subsystem, i.e. a
    /// multi-node run across them may use NUMAlink4.
    pub fn numalink4_reachable(&self, ids: &[NodeId]) -> bool {
        ids.iter().all(|id| self.numalink4_subsystem.contains(id))
    }

    /// Maximum per-node process count for a *pure MPI* job over
    /// InfiniBand across `n_nodes` nodes (§2 connection-limit formula).
    ///
    /// Each of the `p` processes on a node opens a connection to every
    /// process on the other `n−1` nodes (`p·(n−1)` peers), so the node
    /// needs `p² (n−1)` connections out of `cards × per_card`.
    pub fn max_pure_mpi_procs_per_node(&self, n_nodes: u32) -> u32 {
        assert!(n_nodes >= 2, "the limit only applies across nodes");
        let budget = self.ib_cards_per_node as u64 * self.ib_connections_per_card;
        ((budget / (n_nodes as u64 - 1)) as f64).sqrt().floor() as u32
    }

    /// Whether a pure-MPI job can use all 512 CPUs of each of
    /// `n_nodes` nodes. The paper: possible up to three nodes, not four.
    pub fn pure_mpi_fully_usable(&self, n_nodes: u32) -> bool {
        self.max_pure_mpi_procs_per_node(n_nodes) >= 512
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn columbia_has_10240_cpus() {
        let c = ClusterConfig::columbia();
        assert_eq!(c.nodes.len(), 20);
        assert_eq!(c.total_cpus(), 10_240);
    }

    #[test]
    fn columbia_node_mix() {
        let c = ClusterConfig::columbia();
        let count = |k: NodeKind| c.nodes.iter().filter(|&&n| n == k).count();
        assert_eq!(count(NodeKind::Altix3700), 12);
        // Eight BX2 total, five of them the 1.6 GHz/9 MB flavour.
        assert_eq!(count(NodeKind::Bx2a) + count(NodeKind::Bx2b), 8);
        assert_eq!(count(NodeKind::Bx2b), 5);
    }

    #[test]
    fn numalink4_subsystem_is_four_bx2b_nodes() {
        let c = ClusterConfig::columbia();
        assert_eq!(c.numalink4_subsystem.len(), 4);
        for id in &c.numalink4_subsystem {
            assert_eq!(c.nodes[id.0 as usize], NodeKind::Bx2b);
        }
        // 2048 CPUs at 6.4 Gflop/s each = 13.1 Tflop/s (§2: "13 Tflop/s
        // peak capability platform").
        let peak_tflops = 4.0 * c.node_model(c.numalink4_subsystem[0]).peak_tflops();
        assert!((peak_tflops - 13.1072).abs() < 1e-9);
    }

    #[test]
    fn pure_mpi_limit_matches_paper() {
        let c = ClusterConfig::columbia();
        // §2: "a pure MPI code can only fully utilize up to three Altix
        // nodes"; four or more require a hybrid paradigm.
        assert!(c.pure_mpi_fully_usable(2));
        assert!(c.pure_mpi_fully_usable(3));
        assert!(!c.pure_mpi_fully_usable(4));
    }

    #[test]
    fn pure_mpi_limit_decreases_with_node_count() {
        let c = ClusterConfig::columbia();
        let mut prev = u32::MAX;
        for n in 2..=8 {
            let p = c.max_pure_mpi_procs_per_node(n);
            assert!(p <= prev);
            prev = p;
        }
    }

    #[test]
    fn uniform_cluster_reachability() {
        let c = ClusterConfig::uniform(NodeKind::Bx2b, 4);
        let ids: Vec<NodeId> = (0..4).map(NodeId).collect();
        assert!(c.numalink4_reachable(&ids));
        let c3700 = ClusterConfig::uniform(NodeKind::Altix3700, 4);
        assert!(!c3700.numalink4_reachable(&ids));
    }

    #[test]
    fn fabric_names() {
        assert_eq!(InterNodeFabric::NumaLink4.to_string(), "NUMAlink4");
        assert_eq!(InterNodeFabric::InfiniBand.to_string(), "InfiniBand");
    }
}
