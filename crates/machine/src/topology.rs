//! NUMAlink fat-tree topology inside an Altix node.
//!
//! The Altix 3700 wires its C-Bricks with NUMAlink3 through a fat-tree
//! of router bricks, so bisection bandwidth scales linearly with CPU
//! count; the BX2 uses NUMAlink4 at twice the link bandwidth. Because a
//! BX2 brick carries eight CPUs instead of four, a BX2 node of the same
//! CPU count has *half the bricks* and therefore a shallower tree —
//! this, together with the faster links, is why the paper's random-ring
//! latency curves separate at large CPU counts (Fig. 5).
//!
//! The model: C-Bricks are leaves of a radix-[`ROUTER_RADIX`] fat tree.
//! Two CPUs on the same front-side bus communicate through their SHUB
//! (distance 0 router hops); CPUs in the same brick cross the brick's
//! internal SHUB pair (1 hop); otherwise the path climbs to the lowest
//! common ancestor router and back down (2 hops per level).

use serde::{Deserialize, Serialize};

use crate::brick::CBrick;
use crate::calib;

/// Ports per router brick in the fat tree (R-Brick radix).
pub const ROUTER_RADIX: u32 = 8;

/// NUMAlink interconnect generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NumaLinkGen {
    /// NUMAlink3: 3.2 GB/s per brick (Altix 3700).
    NumaLink3,
    /// NUMAlink4: 6.4 GB/s per brick (BX2), also used to couple the
    /// four-node 2048-CPU capability subsystem.
    NumaLink4,
}

impl NumaLinkGen {
    /// Peak bandwidth of one link, bytes per second.
    pub fn link_bandwidth(self) -> f64 {
        match self {
            NumaLinkGen::NumaLink3 => calib::NUMALINK3_BANDWIDTH,
            NumaLinkGen::NumaLink4 => calib::NUMALINK4_BANDWIDTH,
        }
    }

    /// Human-readable name (Table 1 spelling).
    pub fn name(self) -> &'static str {
        match self {
            NumaLinkGen::NumaLink3 => "NUMAlink3",
            NumaLinkGen::NumaLink4 => "NUMAlink4",
        }
    }
}

/// Fat-tree hop model for one Altix node.
#[derive(Debug, Clone, Copy)]
pub struct NodeTopology {
    brick: CBrick,
}

impl NodeTopology {
    /// Build the topology for a node using the given brick packaging.
    pub fn new(brick: CBrick) -> Self {
        NodeTopology { brick }
    }

    /// Router hops between two CPUs (dense numbering within the node).
    ///
    /// * same bus: 0 (SHUB-local)
    /// * same brick: 1 (across the brick's SHUBs)
    /// * different bricks: `2 * lca_level` through the router tree.
    pub fn hops(&self, a: u32, b: u32) -> u32 {
        if a == b {
            return 0;
        }
        if self.brick.bus_of(a) == self.brick.bus_of(b) {
            return 0;
        }
        let (ba, bb) = (self.brick.brick_of(a), self.brick.brick_of(b));
        if ba == bb {
            return 1;
        }
        2 * lca_level(ba, bb)
    }

    /// Worst-case hop count among the first `cpus` CPUs of the node.
    pub fn diameter(&self, cpus: u32) -> u32 {
        if cpus <= 1 {
            return 0;
        }
        self.hops(0, cpus - 1)
    }

    /// Mean hop count over uniformly random distinct CPU pairs drawn
    /// from the first `cpus` CPUs; closed-form from the brick layout.
    ///
    /// Used by the random-ring latency model.
    pub fn mean_random_hops(&self, cpus: u32) -> f64 {
        if cpus <= 1 {
            return 0.0;
        }
        // Exact expectation by summing over pair categories. CPU counts
        // here are ≤ 512, so the O(bricks²) enumeration is trivial.
        let n = cpus as u64;
        let total_pairs = (n * (n - 1) / 2) as f64;
        let per_bus = self.brick.cpus_per_bus as u64;
        let per_brick = self.brick.cpus_per_brick as u64;
        let full_bricks = n / per_brick;
        let rem = n % per_brick;

        let mut weighted = 0.0;
        // Same-bus pairs cost 0 hops: skip. Same-brick different-bus: 1.
        let same_brick_pairs = |c: u64| -> u64 {
            let buses = c / per_bus;
            let rem_c = c % per_bus;
            let pairs = |k: u64| k * k.saturating_sub(1) / 2;
            let same_bus = buses * pairs(per_bus) + pairs(rem_c);
            pairs(c) - same_bus
        };
        for brick in 0..full_bricks {
            let _ = brick;
            weighted += same_brick_pairs(per_brick) as f64 * 1.0;
        }
        if rem > 0 {
            weighted += same_brick_pairs(rem) as f64 * 1.0;
        }
        // Cross-brick pairs.
        let nbricks = full_bricks + (rem > 0) as u64;
        for i in 0..nbricks {
            let ci = if i < full_bricks { per_brick } else { rem };
            for j in (i + 1)..nbricks {
                let cj = if j < full_bricks { per_brick } else { rem };
                let hops = 2 * lca_level(i as u32, j as u32);
                weighted += (ci * cj) as f64 * hops as f64;
            }
        }
        weighted / total_pairs
    }

    /// Distinct hop counts among the first `cpus` CPUs, each with a
    /// representative partner for CPU 0, sorted by hop count.
    ///
    /// Any pair `(a, b)` with `a, b < cpus` has a hop count that appears
    /// in this list: hops depend only on the bus/brick relationship and
    /// the router-tree LCA level, and if bricks at LCA level `L` exist
    /// among the first `cpus` CPUs then so does the pair
    /// `(0, first CPU of brick R^(L-1))` with the same level. Cost
    /// caches (`simnet`'s `CachedFabric`) use the representatives to
    /// evaluate a fabric once per equivalence class instead of once per
    /// message.
    pub fn hop_classes(&self, cpus: u32) -> Vec<(u32, u32)> {
        let mut classes: Vec<(u32, u32)> = Vec::new();
        for b in 0..cpus {
            let h = self.hops(0, b);
            if !classes.iter().any(|&(hops, _)| hops == h) {
                classes.push((h, b));
            }
        }
        classes.sort_unstable();
        classes
    }
}

/// Level of the lowest common ancestor of two leaves in a radix-R tree
/// (1 = siblings under one first-level router).
fn lca_level(mut a: u32, mut b: u32) -> u32 {
    let mut level = 0;
    while a != b {
        a /= ROUTER_RADIX;
        b /= ROUTER_RADIX;
        level += 1;
    }
    level
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo3700() -> NodeTopology {
        NodeTopology::new(CBrick::altix3700())
    }

    fn topo_bx2() -> NodeTopology {
        NodeTopology::new(CBrick::bx2())
    }

    #[test]
    fn bus_mates_are_zero_hops() {
        assert_eq!(topo3700().hops(0, 1), 0);
        assert_eq!(topo_bx2().hops(6, 7), 0);
    }

    #[test]
    fn brick_mates_are_one_hop() {
        assert_eq!(topo3700().hops(0, 2), 1);
        assert_eq!(topo3700().hops(0, 3), 1);
        assert_eq!(topo_bx2().hops(0, 5), 1);
    }

    #[test]
    fn cross_brick_goes_through_routers() {
        // 3700: CPUs 0 and 4 are in adjacent bricks under one router.
        assert_eq!(topo3700().hops(0, 4), 2);
        // Far-apart bricks climb more levels.
        assert!(topo3700().hops(0, 511) > topo3700().hops(0, 4));
    }

    #[test]
    fn bx2_is_never_farther_than_3700() {
        let t3 = topo3700();
        let tb = topo_bx2();
        for cpus in [4u32, 16, 64, 128, 256, 512] {
            assert!(
                tb.diameter(cpus) <= t3.diameter(cpus),
                "cpus={cpus}: bx2 {} vs 3700 {}",
                tb.diameter(cpus),
                t3.diameter(cpus)
            );
            assert!(tb.mean_random_hops(cpus) <= t3.mean_random_hops(cpus) + 1e-12);
        }
    }

    #[test]
    fn mean_hops_grows_with_cpu_count() {
        let t = topo3700();
        let mut prev = -1.0;
        for cpus in [2u32, 8, 32, 128, 512] {
            let m = t.mean_random_hops(cpus);
            assert!(m >= prev, "cpus={cpus}");
            prev = m;
        }
    }

    #[test]
    fn mean_hops_bounded_by_diameter() {
        for t in [topo3700(), topo_bx2()] {
            for cpus in [2u32, 6, 10, 100, 512] {
                assert!(t.mean_random_hops(cpus) <= t.diameter(cpus) as f64 + 1e-12);
            }
        }
    }

    #[test]
    fn hop_classes_cover_every_pair() {
        for t in [topo3700(), topo_bx2()] {
            for cpus in [1u32, 2, 4, 8, 100, 512] {
                let classes = t.hop_classes(cpus);
                // Sorted, unique, representatives reproduce their class.
                for w in classes.windows(2) {
                    assert!(w[0].0 < w[1].0);
                }
                for &(h, rep) in &classes {
                    assert!(rep < cpus);
                    assert_eq!(t.hops(0, rep), h);
                }
                // Every pair's hop count appears as a class.
                for a in 0..cpus {
                    for b in 0..cpus {
                        let h = t.hops(a, b);
                        assert!(
                            classes.iter().any(|&(hops, _)| hops == h),
                            "cpus={cpus} pair=({a},{b}) hops={h} missing"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn hop_classes_known_values_at_512() {
        // 3700: 4 CPUs/brick → 128 bricks → LCA levels 1..3.
        let c3 = topo3700().hop_classes(512);
        assert_eq!(
            c3.iter().map(|&(h, _)| h).collect::<Vec<_>>(),
            vec![0, 1, 2, 4, 6]
        );
        // BX2: 8 CPUs/brick → 64 bricks → LCA levels 1..2.
        let cb = topo_bx2().hop_classes(512);
        assert_eq!(
            cb.iter().map(|&(h, _)| h).collect::<Vec<_>>(),
            vec![0, 1, 2, 4]
        );
    }

    #[test]
    fn lca_level_basics() {
        assert_eq!(lca_level(0, 0), 0);
        assert_eq!(lca_level(0, 1), 1);
        assert_eq!(lca_level(0, 7), 1);
        assert_eq!(lca_level(0, 8), 2);
        assert_eq!(lca_level(63, 64), 3);
    }

    #[test]
    fn numalink_names_and_bandwidths() {
        assert_eq!(NumaLinkGen::NumaLink3.name(), "NUMAlink3");
        assert_eq!(NumaLinkGen::NumaLink4.name(), "NUMAlink4");
        assert!(NumaLinkGen::NumaLink4.link_bandwidth() > NumaLinkGen::NumaLink3.link_bandwidth());
    }
}
