//! Memory-system performance model.
//!
//! Sustained bandwidth on the Altix is governed by three mechanisms the
//! paper measures directly:
//!
//! 1. **Bus sharing** (§4.2): two CPUs share each front-side bus. One
//!    STREAM process drives ~3.8 GB/s; when its bus-mate is also
//!    streaming, each gets ~2 GB/s. Strided placement (every 2nd or 4th
//!    CPU) restores the single-process figure — 1.9x on triad.
//! 2. **Cache residency**: working sets that fit in L3 (6 MB or 9 MB)
//!    run well above memory speed — the source of the ~50% MG/BT jump
//!    on BX2b at ≥64 CPUs (Fig. 6) and of OVERFLOW-D's BX2b advantage.
//! 3. **NUMA locality** (§4.3): a remote load through the directory
//!    protocol costs [`calib::NUMA_REMOTE_PENALTY`]× a local one, which
//!    is what thread pinning protects against.

use serde::{Deserialize, Serialize};

use crate::brick::CBrick;
use crate::calib;
use crate::node::{NodeKind, NodeModel};
use crate::processor::CacheLevel;

/// STREAM kernel selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StreamOp {
    /// `c[i] = a[i]`
    Copy,
    /// `b[i] = s * c[i]`
    Scale,
    /// `c[i] = a[i] + b[i]`
    Add,
    /// `a[i] = b[i] + s * c[i]`
    Triad,
}

impl StreamOp {
    /// All four operations in STREAM's canonical order.
    pub const ALL: [StreamOp; 4] = [
        StreamOp::Copy,
        StreamOp::Scale,
        StreamOp::Add,
        StreamOp::Triad,
    ];

    /// Bytes moved per vector element (8-byte doubles).
    pub fn bytes_per_element(self) -> u64 {
        match self {
            StreamOp::Copy | StreamOp::Scale => 16,
            StreamOp::Add | StreamOp::Triad => 24,
        }
    }

    /// Flops per element (0 for copy, 1 for scale/add, 2 for triad).
    pub fn flops_per_element(self) -> u64 {
        match self {
            StreamOp::Copy => 0,
            StreamOp::Scale | StreamOp::Add => 1,
            StreamOp::Triad => 2,
        }
    }

    /// Relative sustained-bandwidth factor from the calibration table.
    pub fn calib_factor(self) -> f64 {
        calib::STREAM_OP_FACTOR[self as usize].1
    }

    /// Lower-case name as STREAM prints it.
    pub fn name(self) -> &'static str {
        calib::STREAM_OP_FACTOR[self as usize].0
    }
}

/// Memory model for one node flavour.
#[derive(Debug, Clone, Copy)]
pub struct MemoryModel {
    kind: NodeKind,
    brick: CBrick,
}

impl MemoryModel {
    /// Model for a node of the given flavour.
    pub fn new(node: &NodeModel) -> Self {
        MemoryModel {
            kind: node.kind,
            brick: node.brick,
        }
    }

    /// Sustained local-memory bandwidth for one CPU, bytes/s, when
    /// `sharers` CPUs on its bus are simultaneously streaming
    /// (`sharers >= 1` counts the CPU itself).
    pub fn stream_bandwidth(&self, op: StreamOp, sharers: u32) -> f64 {
        assert!(sharers >= 1, "a CPU always shares with itself");
        let base = if sharers == 1 {
            calib::BUS_BANDWIDTH * calib::STREAM_SINGLE_FRACTION
        } else {
            calib::BUS_BANDWIDTH / sharers as f64
        };
        let edge = if self.kind == NodeKind::Altix3700 {
            calib::STREAM_3700_EDGE
        } else {
            1.0
        };
        base * op.calib_factor() * edge
    }

    /// Effective bandwidth multiplier for a per-CPU floating-point
    /// working set of `bytes`: >1 when the set is cache-resident.
    pub fn cache_speedup(&self, node: &NodeModel, working_set_bytes: u64) -> f64 {
        match node.processor.caches.fp_resident_level(working_set_bytes) {
            CacheLevel::L1 | CacheLevel::L2 => calib::CACHE_L2_SPEEDUP,
            CacheLevel::L3 => calib::CACHE_L3_SPEEDUP,
            CacheLevel::Memory => 1.0,
        }
    }

    /// Average access-time multiplier when a fraction `remote_fraction`
    /// of loads are serviced by a remote SHUB (pinning model input).
    pub fn numa_penalty(&self, remote_fraction: f64) -> f64 {
        assert!((0.0..=1.0).contains(&remote_fraction));
        1.0 + remote_fraction * (calib::NUMA_REMOTE_PENALTY - 1.0)
    }

    /// Bus-sharer count for a CPU given the set of active CPUs in its
    /// node (dense in-node numbering).
    pub fn sharers(&self, cpu: u32, active: &[u32]) -> u32 {
        self.brick.bus_sharers(cpu, active).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(kind: NodeKind) -> (NodeModel, MemoryModel) {
        let node = NodeModel::new(kind);
        let mem = MemoryModel::new(&node);
        (node, mem)
    }

    #[test]
    fn single_cpu_triad_near_3_8_gbs() {
        let (_, mem) = model(NodeKind::Bx2b);
        let bw = mem.stream_bandwidth(StreamOp::Triad, 1);
        assert!((3.5e9..3.9e9).contains(&bw), "bw={bw:.3e}");
    }

    #[test]
    fn dense_triad_near_2_gbs_each() {
        let (_, mem) = model(NodeKind::Bx2b);
        let bw = mem.stream_bandwidth(StreamOp::Triad, 2);
        assert!((1.8e9..2.1e9).contains(&bw), "bw={bw:.3e}");
    }

    #[test]
    fn stride_gain_is_about_1_9x() {
        let (_, mem) = model(NodeKind::Altix3700);
        let gain =
            mem.stream_bandwidth(StreamOp::Triad, 1) / mem.stream_bandwidth(StreamOp::Triad, 2);
        assert!((gain - 1.9).abs() < 0.05, "gain={gain}");
    }

    #[test]
    fn the_3700_keeps_its_1pct_stream_edge() {
        let (_, m3) = model(NodeKind::Altix3700);
        let (_, mb) = model(NodeKind::Bx2b);
        let ratio =
            m3.stream_bandwidth(StreamOp::Triad, 2) / mb.stream_bandwidth(StreamOp::Triad, 2);
        assert!((ratio - 1.01).abs() < 1e-6);
    }

    #[test]
    fn bx2b_keeps_more_working_sets_in_cache() {
        let (n_a, m_a) = model(NodeKind::Bx2a);
        let (n_b, m_b) = model(NodeKind::Bx2b);
        let ws = 7 * 1024 * 1024; // between 6 MB and 9 MB
        assert_eq!(m_a.cache_speedup(&n_a, ws), 1.0);
        assert!(m_b.cache_speedup(&n_b, ws) > 1.0);
    }

    #[test]
    fn numa_penalty_is_linear_in_remote_fraction() {
        let (_, mem) = model(NodeKind::Bx2b);
        assert!((mem.numa_penalty(0.0) - 1.0).abs() < 1e-12);
        let full = mem.numa_penalty(1.0);
        assert!((full - calib::NUMA_REMOTE_PENALTY).abs() < 1e-12);
        let half = mem.numa_penalty(0.5);
        assert!((half - (1.0 + full) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn stream_op_bytes_and_flops() {
        assert_eq!(StreamOp::Copy.bytes_per_element(), 16);
        assert_eq!(StreamOp::Triad.bytes_per_element(), 24);
        assert_eq!(StreamOp::Copy.flops_per_element(), 0);
        assert_eq!(StreamOp::Triad.flops_per_element(), 2);
        assert_eq!(StreamOp::Scale.name(), "scale");
    }

    #[test]
    #[should_panic(expected = "shares with itself")]
    fn zero_sharers_rejected() {
        let (_, mem) = model(NodeKind::Bx2b);
        mem.stream_bandwidth(StreamOp::Copy, 0);
    }
}
