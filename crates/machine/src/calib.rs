//! Calibration constants, each tied to a number the paper publishes.
//!
//! The reproduction is judged on *shape* — who wins, by what factor,
//! where the knees fall — so every tunable in the performance model
//! lives here, next to a citation of the measurement it is calibrated
//! against. Nothing else in the workspace hard-codes a magic timing
//! constant.

use crate::node::NodeKind;

/// Fraction of DGEMM peak the Altix achieves with the vendor BLAS.
///
/// §4.1.1: "performance (5.75 GFlop/s)" on the 6.4 Gflop/s BX2b part is
/// ~90% of peak, "improved by 6% versus runs on 3700 or BX2a" — i.e. the
/// efficiency is the same on all three and the 6% is the clock ratio.
pub const DGEMM_EFFICIENCY: f64 = 0.898;

/// Peak bandwidth of one front-side bus (two CPUs share it), bytes/s.
///
/// §4.2: one STREAM process reaches ~3.8 GB/s; two processes on the same
/// bus reach ~2 GB/s each, so the bus saturates near 4.0 GB/s.
pub const BUS_BANDWIDTH: f64 = 4.0e9;

/// Fraction of the bus a single unshared STREAM process can drive.
///
/// §4.2: "-3.8 GB/s" for one CPU out of a 4.0 GB/s bus.
pub const STREAM_SINGLE_FRACTION: f64 = 0.95;

/// STREAM triad advantage of the 3700 over either BX2 flavour.
///
/// §4.1.1: "STREAM Triad ... 1% better performance on a 3700"; the paper
/// found no architectural explanation, so we carry it as a bare factor.
pub const STREAM_3700_EDGE: f64 = 1.01;

/// Relative sustained-bandwidth weight of each STREAM operation.
///
/// Copy and scale move two vectors per iteration, add and triad three;
/// effective GB/s differs slightly in practice.
pub const STREAM_OP_FACTOR: [(&str, f64); 4] = [
    ("copy", 1.00),
    ("scale", 0.99),
    ("add", 0.97),
    ("triad", 0.97),
];

/// Shared-memory MPI copy bandwidth per GHz of core clock, bytes/s.
///
/// Bus-mate MPI transfers are memcpy-bound through the cache hierarchy,
/// so they scale with processor speed — the reason Fig. 5's Natural
/// Ring bandwidth "correlates with processor speed" while Ping-Pong
/// (cross-brick pairs) correlates with the interconnect.
pub const SHM_COPY_BYTES_PER_GHZ: f64 = 1.30e9;

/// Cap on in-node MPI streaming as a multiple of the memcpy rate; even
/// over NUMAlink the copy in/out of MPI buffers limits one stream.
pub const SHM_COPY_LINK_CAP: f64 = 1.45;

/// MPI point-to-point software overhead per message, seconds.
///
/// The SGI MPT send/receive path costs on the order of a microsecond;
/// Fig. 5 shows in-node ping-pong latencies of a few microseconds that
/// are "remarkably consistent" across node types at small CPU counts.
pub const MPI_OVERHEAD: f64 = 0.9e-6;

/// Additional latency per NUMAlink router hop, seconds.
///
/// Fig. 5, Random Ring: latency grows as communication distance grows
/// with CPU count; the BX2's double-density packing halves the hop
/// count for a given CPU count, which is why its random-ring latency
/// pulls ahead at ≥64 CPUs.
pub const NUMALINK_HOP_LATENCY: f64 = 0.25e-6;

/// NUMAlink3 peak link bandwidth, bytes/s (Table 1: 3.2 GB/s).
pub const NUMALINK3_BANDWIDTH: f64 = 3.2e9;

/// NUMAlink4 peak link bandwidth, bytes/s (Table 1: 6.4 GB/s).
pub const NUMALINK4_BANDWIDTH: f64 = 6.4e9;

/// Fraction of raw NUMAlink bandwidth a single MPI stream sustains.
///
/// Fig. 5: in-node ping-pong bandwidth tops out well below the link
/// peak (protocol + copy overheads).
pub const NUMALINK_MPI_FRACTION: f64 = 0.55;

/// One-way latency of the InfiniBand switch path, seconds.
///
/// Fig. 10: a "substantial penalty" over NUMAlink4's microsecond-scale
/// latency; Voltaire ISR 9288 + MPT measured several microseconds.
pub const INFINIBAND_LATENCY: f64 = 5.5e-6;

/// Sustained InfiniBand bandwidth per stream, bytes/s (4x IB, ~1 GB/s
/// signalling, ~0.8 GB/s payload under MPI).
pub const INFINIBAND_BANDWIDTH: f64 = 0.8e9;

/// Extra latency per additional node crossed by InfiniBand traffic.
///
/// Fig. 10: four-node latencies are worse than two-node because more
/// tested pairs are off-node and the switch path lengthens.
pub const INFINIBAND_NODE_HOP_LATENCY: f64 = 1.2e-6;

/// Random-ring InfiniBand contention exponent.
///
/// Fig. 10 "Random Ring" shows severe scalability problems: most flows
/// cross the switch simultaneously and share cards. We model effective
/// per-flow bandwidth as `INFINIBAND_BANDWIDTH / (flows_per_card ^ IB_CONTENTION_EXP)`.
pub const IB_CONTENTION_EXP: f64 = 1.15;

/// Slowdown multiplier of the *released* MPT runtime (mpt1.llr) on
/// InfiniBand collectives, relative to the beta (mpt1.llb).
///
/// §4.6.2: on 256 CPUs SP-MZ over IB was 40% slower with the released
/// library; the beta brought IB within a few percent of NUMAlink4, and
/// the anomaly shrinks as CPU count grows.
pub const MPT_RELEASED_IB_PENALTY: f64 = 1.40;

/// NUMA remote-to-local memory latency ratio within an Altix node.
///
/// §4.3: improper placement "can increase memory access time"; directory
/// protocol remote reads cost 2-3x local. Drives the pinning model.
pub const NUMA_REMOTE_PENALTY: f64 = 2.6;

/// Probability per parallel region that an unpinned thread has migrated
/// off the CPU adjacent to its first-touch memory (Fig. 7 calibration).
pub const UNPINNED_MIGRATION_RATE: f64 = 0.55;

/// OpenMP fork-join overhead per parallel region, seconds, per thread
/// doubling (Fig. 9: OpenMP scaling "very limited" beyond a few threads).
pub const OMP_FORK_JOIN_BASE: f64 = 2.0e-6;

/// Serial (non-parallelizable) fraction of a typical OpenMP loop nest in
/// the applications (Table 2: INS3D thread scaling decays beyond 8).
pub const OMP_SERIAL_FRACTION: f64 = 0.045;

/// Throughput derate when a 512-CPU run overlaps the boot cpuset.
///
/// §4.6.2: full 512-CPU in-node runs "dropped by 10-15%" because the
/// benchmark shared CPUs with system software; 508-CPU runs recover.
pub const BOOT_CPUSET_PENALTY: f64 = 0.875;

/// Cache-residency speedups for floating-point working sets, relative
/// to streaming from memory. Fig. 6: MG and BT jump ~50% on BX2b once
/// the per-CPU working set drops into the larger L3.
pub const CACHE_L3_SPEEDUP: f64 = 1.5;
/// Speedup when the working set fits in L2 (small per-CPU partitions).
pub const CACHE_L2_SPEEDUP: f64 = 1.8;

/// InfiniBand cards per Altix node (§2: `N_cards = 8 per node`).
pub const IB_CARDS_PER_NODE: u32 = 8;

/// Connections supported per InfiniBand card (§2: 64 K per card).
pub const IB_CONNECTIONS_PER_CARD: u64 = 64 * 1024;

/// Baseline fraction of peak a node type sustains on memory-bound CFD
/// kernels, before cache effects. BX2b's edge beyond clock comes from
/// the 9 MB L3 (§4.1.4: "reduction in BX2b computation time can be
/// attributed to its larger L3 cache").
pub fn cfd_base_efficiency(kind: NodeKind) -> f64 {
    match kind {
        NodeKind::Altix3700 => 0.060,
        NodeKind::Bx2a => 0.060,
        NodeKind::Bx2b => 0.062,
    }
}

/// I/O stall per OVERFLOW-D step on the shared-filesystem-less cluster
/// (§4.6.4: runs "may therefore have been affected ... by I/O
/// activities"), seconds per step per node used.
pub const OVERFLOWD_IO_STALL: f64 = 0.012;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dgemm_efficiency_reproduces_5_75_gflops() {
        // 6.4 Gflop/s * 0.898 = 5.75 Gflop/s (paper §4.1.1).
        let sustained = 6.4 * DGEMM_EFFICIENCY;
        assert!((sustained - 5.75).abs() < 0.01, "got {sustained}");
    }

    #[test]
    fn bus_split_reproduces_stream_numbers() {
        // One process: 3.8 GB/s. Two sharing: 2.0 GB/s each.
        let single = BUS_BANDWIDTH * STREAM_SINGLE_FRACTION;
        assert!((single - 3.8e9).abs() < 1e7);
        let shared = BUS_BANDWIDTH / 2.0;
        assert!((shared - 2.0e9).abs() < 1e7);
        // §4.2: strided triad is 1.9x the dense figure.
        assert!((single / shared - 1.9).abs() < 0.01);
    }

    #[test]
    fn numalink4_doubles_numalink3() {
        assert!((NUMALINK4_BANDWIDTH / NUMALINK3_BANDWIDTH - 2.0).abs() < 1e-12);
    }

    #[test]
    fn infiniband_slower_than_numalink() {
        const { assert!(INFINIBAND_LATENCY > MPI_OVERHEAD) };
        const { assert!(INFINIBAND_BANDWIDTH < NUMALINK3_BANDWIDTH) };
    }

    #[test]
    fn stream_op_factors_cover_all_four_ops() {
        let names: Vec<&str> = STREAM_OP_FACTOR.iter().map(|(n, _)| *n).collect();
        assert_eq!(names, ["copy", "scale", "add", "triad"]);
        for (_, f) in STREAM_OP_FACTOR {
            assert!(f > 0.9 && f <= 1.0);
        }
    }
}
