//! C-Brick packaging: the computational building block of the Altix.
//!
//! An Altix 3700 C-Brick holds four Itanium2 CPUs in two *nodes* (in
//! SGI's terminology, a node here is a CPU pair), 8 GB of local memory,
//! and a two-controller SHUB ASIC. Each SHUB interfaces two CPUs to
//! memory, I/O, and the NUMAlink fabric; the two CPUs of a pair share
//! one front-side bus to the SHUB. The BX2 C-Brick is the double-density
//! version: eight CPUs, 16 GB, four SHUBs per brick, which halves the
//! NUMAlink cabling distance per CPU and doubles inter-brick bandwidth
//! (NUMAlink4: 6.4 GB/s vs NUMAlink3: 3.2 GB/s).
//!
//! The bus sharing is what the paper's §4.2 "CPU stride" experiment
//! exposes: a single STREAM process sees ~3.8 GB/s, two processes on the
//! same bus see ~2 GB/s each, and running on every second CPU restores
//! the single-process figure (1.9x triad improvement).

use serde::{Deserialize, Serialize};

/// Packaging parameters of one C-Brick.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CBrick {
    /// CPUs packaged per brick: 4 on the 3700, 8 on the BX2.
    pub cpus_per_brick: u32,
    /// CPUs sharing one front-side bus / SHUB port (2 on both models).
    pub cpus_per_bus: u32,
    /// Local memory per brick in bytes (8 GB on 3700, 16 GB on BX2).
    pub memory_bytes: u64,
    /// SHUB ASICs per brick (2 on 3700, 4 on BX2).
    pub shubs: u32,
    /// CPUs per rack: 32 for the 3700, 64 for the double-density BX2.
    pub cpus_per_rack: u32,
}

impl CBrick {
    /// Altix 3700 C-Brick.
    pub const fn altix3700() -> Self {
        CBrick {
            cpus_per_brick: 4,
            cpus_per_bus: 2,
            memory_bytes: 8 * (1 << 30),
            shubs: 2,
            cpus_per_rack: 32,
        }
    }

    /// Altix 3700 BX2 C-Brick (double density).
    pub const fn bx2() -> Self {
        CBrick {
            cpus_per_brick: 8,
            cpus_per_bus: 2,
            memory_bytes: 16 * (1 << 30),
            shubs: 4,
            cpus_per_rack: 64,
        }
    }

    /// Index of the brick containing a CPU, for CPUs numbered densely
    /// from zero within a node.
    pub fn brick_of(&self, cpu: u32) -> u32 {
        cpu / self.cpus_per_brick
    }

    /// Index of the front-side bus (bus pairs are numbered densely
    /// across the node) that a CPU sits on.
    pub fn bus_of(&self, cpu: u32) -> u32 {
        cpu / self.cpus_per_bus
    }

    /// How many of the CPUs in `active` (dense CPU numbers within a
    /// node) share a bus with `cpu`, including `cpu` itself if present.
    ///
    /// This is the contention count the memory model uses to derate
    /// STREAM bandwidth.
    pub fn bus_sharers(&self, cpu: u32, active: &[u32]) -> u32 {
        let bus = self.bus_of(cpu);
        active.iter().filter(|&&c| self.bus_of(c) == bus).count() as u32
    }

    /// Memory available per CPU in bytes.
    pub fn memory_per_cpu(&self) -> u64 {
        self.memory_bytes / self.cpus_per_brick as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_models_pack_two_cpus_per_bus() {
        assert_eq!(CBrick::altix3700().cpus_per_bus, 2);
        assert_eq!(CBrick::bx2().cpus_per_bus, 2);
    }

    #[test]
    fn bx2_doubles_density_same_memory_per_cpu() {
        let a = CBrick::altix3700();
        let b = CBrick::bx2();
        assert_eq!(b.cpus_per_brick, 2 * a.cpus_per_brick);
        assert_eq!(b.cpus_per_rack, 2 * a.cpus_per_rack);
        assert_eq!(a.memory_per_cpu(), b.memory_per_cpu());
        assert_eq!(a.memory_per_cpu(), 2 * (1 << 30)); // 2 GB per CPU
    }

    #[test]
    fn dense_placement_shares_buses_strided_does_not() {
        let b = CBrick::bx2();
        // Dense: CPUs 0..4 — CPU 0 shares its bus with CPU 1.
        let dense: Vec<u32> = (0..4).collect();
        assert_eq!(b.bus_sharers(0, &dense), 2);
        // Stride 2: CPUs 0,2,4,6 — each bus has one active CPU.
        let strided: Vec<u32> = (0..8).step_by(2).map(|c| c as u32).collect();
        for &c in &strided {
            assert_eq!(b.bus_sharers(c, &strided), 1);
        }
    }

    #[test]
    fn brick_and_bus_indexing() {
        let b = CBrick::altix3700();
        assert_eq!(b.brick_of(0), 0);
        assert_eq!(b.brick_of(3), 0);
        assert_eq!(b.brick_of(4), 1);
        assert_eq!(b.bus_of(0), 0);
        assert_eq!(b.bus_of(1), 0);
        assert_eq!(b.bus_of(2), 1);
        let bx = CBrick::bx2();
        assert_eq!(bx.brick_of(7), 0);
        assert_eq!(bx.brick_of(8), 1);
    }
}
