//! Property-based tests over the machine model invariants.

use columbia_machine::brick::CBrick;
use columbia_machine::memory::{MemoryModel, StreamOp};
use columbia_machine::node::{NodeKind, NodeModel};
use columbia_machine::topology::NodeTopology;
use proptest::prelude::*;

fn any_kind() -> impl Strategy<Value = NodeKind> {
    prop::sample::select(vec![NodeKind::Altix3700, NodeKind::Bx2a, NodeKind::Bx2b])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hop_distance_is_a_metric(
        a in 0u32..512,
        b in 0u32..512,
        c in 0u32..512,
        kind in any_kind(),
    ) {
        let topo = NodeTopology::new(NodeModel::new(kind).brick);
        // Symmetry and identity.
        prop_assert_eq!(topo.hops(a, b), topo.hops(b, a));
        prop_assert_eq!(topo.hops(a, a), 0);
        // Triangle inequality (with the +1 brick-internal hop slack:
        // the tree metric satisfies it exactly).
        prop_assert!(topo.hops(a, c) <= topo.hops(a, b) + topo.hops(b, c) + 1);
    }

    #[test]
    fn bus_sharers_counts_are_consistent(
        cpus in prop::collection::btree_set(0u32..64, 1..32),
    ) {
        let brick = CBrick::bx2();
        let active: Vec<u32> = cpus.into_iter().collect();
        for &c in &active {
            let sharers = brick.bus_sharers(c, &active);
            prop_assert!(sharers >= 1, "a CPU shares with itself");
            prop_assert!(sharers <= brick.cpus_per_bus);
        }
    }

    #[test]
    fn stream_bandwidth_decreases_with_sharers(kind in any_kind(), op_idx in 0usize..4) {
        let node = NodeModel::new(kind);
        let mem = MemoryModel::new(&node);
        let op = StreamOp::ALL[op_idx];
        let solo = mem.stream_bandwidth(op, 1);
        let shared = mem.stream_bandwidth(op, 2);
        prop_assert!(solo > shared);
        prop_assert!(shared > 0.0);
    }

    #[test]
    fn numa_penalty_monotone(kind in any_kind(), f1 in 0.0f64..1.0, f2 in 0.0f64..1.0) {
        let node = NodeModel::new(kind);
        let mem = MemoryModel::new(&node);
        let (lo, hi) = if f1 <= f2 { (f1, f2) } else { (f2, f1) };
        prop_assert!(mem.numa_penalty(lo) <= mem.numa_penalty(hi) + 1e-15);
        prop_assert!(mem.numa_penalty(lo) >= 1.0);
    }

    #[test]
    fn compute_seconds_scales_linearly_with_flops(
        kind in any_kind(),
        flops in 1.0f64..1e12,
        eff in 0.01f64..1.0,
    ) {
        let p = NodeModel::new(kind).processor;
        let t1 = p.compute_seconds(flops, eff);
        let t2 = p.compute_seconds(2.0 * flops, eff);
        prop_assert!((t2 / t1 - 2.0).abs() < 1e-9);
    }
}
