//! Property-based tests over placement and the compute model.

use columbia_machine::cluster::{ClusterConfig, NodeId};
use columbia_machine::node::{NodeKind, NodeModel};
use columbia_runtime::compiler::KernelClass;
use columbia_runtime::compute::{NodeComputeModel, WorkPhase};
use columbia_runtime::placement::{Placement, PlacementStrategy};
use proptest::prelude::*;
use std::collections::HashSet;

fn any_kind() -> impl Strategy<Value = NodeKind> {
    prop::sample::select(vec![NodeKind::Altix3700, NodeKind::Bx2a, NodeKind::Bx2b])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn placement_never_double_books_a_cpu(
        ranks in 1usize..100,
        threads in 1usize..4,
        stride in 1u32..4,
    ) {
        prop_assume!(ranks * threads * stride as usize <= 512);
        let cluster = ClusterConfig::uniform(NodeKind::Bx2b, 1);
        let strategy = if stride == 1 {
            PlacementStrategy::Dense
        } else {
            PlacementStrategy::Strided(stride)
        };
        let p = Placement::single_node(&cluster, NodeId(0), ranks, threads, strategy);
        let mut seen = HashSet::new();
        for row in &p.cpus {
            for c in row {
                prop_assert!(seen.insert((c.node, c.cpu)), "CPU {c:?} double-booked");
                prop_assert!(c.cpu < 512);
            }
        }
        prop_assert_eq!(p.total_cpus(), ranks * threads);
    }

    #[test]
    fn capped_placement_respects_the_cap(
        ranks in 1usize..1000,
        cap in 100u32..508,
    ) {
        let nodes_needed = (ranks as u32).div_ceil(cap).max(1);
        let cluster = ClusterConfig::uniform(NodeKind::Bx2b, nodes_needed);
        let nodes: Vec<NodeId> = (0..nodes_needed).map(NodeId).collect();
        let p = Placement::new(&cluster, &nodes, ranks, 1, PlacementStrategy::DenseCapped(cap));
        for node in &p.nodes {
            let active = p.active_on_node(*node);
            prop_assert!(active.len() as u32 <= cap);
            prop_assert!(active.iter().all(|&c| c < cap));
        }
        prop_assert!(!p.boot_cpuset_overlap);
    }

    #[test]
    fn phase_time_is_monotone_in_flops_and_bytes(
        kind in any_kind(),
        flops in 1e6f64..1e12,
        bytes in 1e6f64..1e11,
        threads in 1u32..32,
    ) {
        let model = NodeComputeModel::baseline(NodeModel::new(kind), threads);
        let base = WorkPhase::new(flops, bytes, 64 << 20, 0.2, KernelClass::BlockSolver);
        let mut more_flops = base;
        more_flops.flops *= 2.0;
        let mut more_bytes = base;
        more_bytes.mem_bytes *= 2.0;
        let t0 = model.seconds(&base, threads);
        prop_assert!(t0 > 0.0);
        prop_assert!(model.seconds(&more_flops, threads) >= t0);
        prop_assert!(model.seconds(&more_bytes, threads) >= t0);
    }

    #[test]
    fn more_threads_never_slower_modulo_overhead(
        kind in any_kind(),
        flops in 1e9f64..1e12,
    ) {
        // For a compute-dominated phase, doubling the team must not
        // slow it down (fork-join overhead is microseconds).
        let phase = WorkPhase::new(flops, 1.0, 64 << 20, 0.3, KernelClass::BlockSolver);
        let model = NodeComputeModel::baseline(NodeModel::new(kind), 64);
        let t1 = model.seconds(&phase, 1);
        let t8 = model.seconds(&phase, 8);
        prop_assert!(t8 <= t1 * 1.001, "t1={t1} t8={t8}");
    }

    #[test]
    fn bx2b_never_loses_to_bx2a(
        flops in 1e6f64..1e12,
        bytes in 1e6f64..1e10,
        ws_mb in 1u64..64,
    ) {
        // Same link generation, faster clock, bigger cache: the BX2b
        // must dominate the BX2a on any single phase.
        let phase = WorkPhase::new(flops, bytes, ws_mb << 20, 0.15, KernelClass::Multigrid);
        let a = NodeComputeModel::baseline(NodeModel::new(NodeKind::Bx2a), 1);
        let b = NodeComputeModel::baseline(NodeModel::new(NodeKind::Bx2b), 1);
        prop_assert!(b.seconds(&phase, 1) <= a.seconds(&phase, 1) * 1.0001);
    }
}
