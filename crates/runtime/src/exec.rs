//! The executor: cost a [`WorkloadSpec`] and run it through the
//! discrete-event engine.
//!
//! Workload crates (NPB, NPB-MZ, MD, the CFD applications) describe
//! each benchmark as per-rank programs of [`SpecOp`]s — compute phases
//! plus communication. The executor resolves every compute phase to
//! seconds using the [`NodeComputeModel`] for the rank's node (its
//! thread team, placement sharers, compiler, pinning), then hands the
//! resulting [`Op`] programs to `columbia_simnet::simulate` on the
//! configured fabric.

use columbia_machine::cluster::{ClusterConfig, InterNodeFabric, NodeId};
use columbia_obs::{sink, NullTracer, RecordingTracer, Tracer};
use columbia_simnet::engine::{simulate_traced_on, Op, SimOutcome};
use columbia_simnet::fabric::{CachedFabric, ClusterFabric, MptVersion};
use columbia_simnet::fault::{
    ConnectionLimit, ConnectionPolicy, FaultPlan, DEFAULT_MULTIPLEX_QUEUE_PENALTY,
};
use columbia_simnet::SimError;

use crate::compiler::CompilerVersion;
use crate::compute::{NodeComputeModel, WorkPhase};
use crate::pinning::Pinning;
use crate::placement::Placement;

/// One instruction of a rank's *workload-level* program.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecOp {
    /// A compute phase, costed by the machine model at execution time.
    Work(WorkPhase),
    /// Point-to-point send.
    Send {
        /// Destination rank.
        to: usize,
        /// Payload size in bytes.
        bytes: u64,
        /// Match tag.
        tag: u64,
    },
    /// Blocking receive.
    Recv {
        /// Source rank.
        from: usize,
        /// Match tag.
        tag: u64,
    },
    /// Pairwise halo exchange.
    Exchange {
        /// Partner rank.
        with: usize,
        /// Bytes each way.
        bytes: u64,
        /// Match tag.
        tag: u64,
    },
    /// Barrier over all ranks.
    Barrier,
    /// Allreduce of `bytes` per rank.
    AllReduce {
        /// Contribution size in bytes.
        bytes: u64,
    },
    /// All-to-all of `bytes_per_pair` between every ordered pair.
    AllToAll {
        /// Per-pair payload in bytes.
        bytes_per_pair: u64,
    },
    /// Broadcast from `root`.
    Bcast {
        /// Broadcasting rank.
        root: usize,
        /// Payload in bytes.
        bytes: u64,
    },
}

/// Per-rank programs for a whole benchmark run.
#[derive(Debug, Clone, Default)]
pub struct WorkloadSpec {
    /// One program per MPI rank (or MLP group).
    pub ranks: Vec<Vec<SpecOp>>,
}

impl WorkloadSpec {
    /// A spec with `n` empty rank programs.
    pub fn with_ranks(n: usize) -> Self {
        WorkloadSpec {
            ranks: vec![Vec::new(); n],
        }
    }

    /// Number of ranks.
    pub fn nranks(&self) -> usize {
        self.ranks.len()
    }

    /// Total op count across ranks (diagnostics).
    pub fn total_ops(&self) -> usize {
        self.ranks.iter().map(Vec::len).sum()
    }
}

/// Everything needed to execute a spec on the simulated machine.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Cluster composition.
    pub cluster: ClusterConfig,
    /// Nodes the run spans.
    pub nodes: Vec<NodeId>,
    /// Inter-node fabric (ignored for single-node runs).
    pub inter: InterNodeFabric,
    /// MPT runtime version.
    pub mpt: MptVersion,
    /// Rank/thread placement.
    pub placement: Placement,
    /// Compiler the binaries were built with.
    pub compiler: CompilerVersion,
    /// Pinning discipline.
    pub pinning: Pinning,
    /// Faults active during the run (drops, link/CPU degradation,
    /// connection limits); [`FaultPlan::none`] for a healthy machine.
    pub faults: FaultPlan,
}

impl ExecConfig {
    /// Baseline single-node config: dense placement, pinned, compiler
    /// 7.1 — the defaults used for most of the paper's measurements.
    pub fn single_node(cluster: ClusterConfig, node: NodeId, ranks: usize, threads: usize) -> Self {
        let placement = Placement::single_node(
            &cluster,
            node,
            ranks,
            threads,
            crate::placement::PlacementStrategy::Dense,
        );
        ExecConfig {
            cluster,
            nodes: vec![node],
            inter: InterNodeFabric::NumaLink4,
            mpt: MptVersion::Beta,
            placement,
            compiler: CompilerVersion::V7_1,
            pinning: Pinning::Pinned,
            faults: FaultPlan::none(),
        }
    }

    /// Total worker CPUs (the paper's "number of CPUs").
    pub fn total_cpus(&self) -> usize {
        self.placement.total_cpus()
    }

    /// The fabric implied by this configuration.
    pub fn fabric(&self) -> ClusterFabric {
        ClusterFabric::new(
            self.cluster.clone(),
            self.inter,
            self.mpt,
            self.total_cpus() as u32,
        )
    }

    /// The compute model for one rank.
    fn model_for_rank(&self, rank: usize) -> NodeComputeModel {
        let home = self.placement.rank_cpu(rank);
        let node = self.cluster.node_model(home.node);
        let units = self.total_cpus() as u32;
        let pool = 512u32.min(units.max(2));
        NodeComputeModel::new(
            node,
            self.compiler,
            self.pinning,
            units,
            pool,
            self.placement.mean_bus_sharers(&self.cluster),
            self.placement.boot_cpuset_overlap,
        )
    }

    /// The fault plan to simulate under: the configured plan, with the
    /// paper's §2 InfiniBand connection limit filled in automatically
    /// for multi-node IB runs that did not set one. The default policy
    /// multiplexes (graceful degradation) rather than failing, matching
    /// how MPT actually behaves when contexts run short.
    fn effective_faults(&self) -> FaultPlan {
        let mut plan = self.faults.clone();
        if plan.connection_limit.is_none()
            && self.inter == InterNodeFabric::InfiniBand
            && self.nodes.len() > 1
        {
            plan.connection_limit = Some(ConnectionLimit {
                cards_per_node: self.cluster.ib_cards_per_node,
                connections_per_card: self.cluster.ib_connections_per_card,
                policy: ConnectionPolicy::Multiplex {
                    queue_penalty: DEFAULT_MULTIPLEX_QUEUE_PENALTY,
                },
            });
        }
        plan
    }
}

/// Execute `spec` under `cfg`, returning per-rank timelines.
///
/// Every failure mode is a typed [`SimError`]: a spec whose rank count
/// disagrees with the placement is a [`SimError::PlacementMismatch`], a
/// malformed workload that deadlocks comes back as
/// [`SimError::Deadlock`] with per-rank diagnostics, and fault plans
/// can surface [`SimError::ConnectionsExhausted`] or
/// [`SimError::WatchdogTimeout`].
pub fn execute(spec: &WorkloadSpec, cfg: &ExecConfig) -> Result<SimOutcome, SimError> {
    if !sink::is_active() {
        return execute_traced(spec, cfg, &mut NullTracer);
    }
    // A collector is installed (`repro --trace/--metrics`): record the
    // run and deposit the bundle — even on error, so a deadlocked or
    // watchdog-killed run still leaves its partial timeline behind.
    let mut tracer = RecordingTracer::new();
    let result = execute_traced(spec, cfg, &mut tracer);
    let label = format!(
        "{} ranks x {} threads on {} node(s)",
        cfg.placement.ranks(),
        cfg.placement.threads(),
        cfg.nodes.len()
    );
    sink::record(tracer.into_bundle(label));
    result
}

/// Execute `spec` under `cfg`, reporting every span of virtual time to
/// `tracer`.
///
/// This is [`execute`] with the observer made explicit: pass
/// [`NullTracer`] for the zero-overhead path (what `execute` does when
/// no trace sink is installed) or a [`RecordingTracer`] to capture
/// per-rank timelines, fabric counters, and a
/// [`CommProfile`](columbia_obs::CommProfile).
pub fn execute_traced<T: Tracer>(
    spec: &WorkloadSpec,
    cfg: &ExecConfig,
    tracer: &mut T,
) -> Result<SimOutcome, SimError> {
    if spec.nranks() != cfg.placement.ranks() {
        return Err(SimError::PlacementMismatch {
            programs: spec.nranks(),
            placements: cfg.placement.ranks(),
        });
    }
    let threads = cfg.placement.threads() as u32;
    let programs: Vec<Vec<Op>> = spec
        .ranks
        .iter()
        .enumerate()
        .map(|(r, ops)| {
            let model = cfg.model_for_rank(r);
            ops.iter()
                .map(|op| match op {
                    SpecOp::Work(phase) => Op::Compute(model.seconds(phase, threads)),
                    SpecOp::Send { to, bytes, tag } => Op::Send {
                        to: *to,
                        bytes: *bytes,
                        tag: *tag,
                    },
                    SpecOp::Recv { from, tag } => Op::Recv {
                        from: *from,
                        tag: *tag,
                    },
                    SpecOp::Exchange { with, bytes, tag } => Op::Exchange {
                        with: *with,
                        bytes: *bytes,
                        tag: *tag,
                    },
                    SpecOp::Barrier => Op::Barrier,
                    SpecOp::AllReduce { bytes } => Op::AllReduce { bytes: *bytes },
                    SpecOp::AllToAll { bytes_per_pair } => Op::AllToAll {
                        bytes_per_pair: *bytes_per_pair,
                    },
                    SpecOp::Bcast { root, bytes } => Op::Bcast {
                        root: *root,
                        bytes: *bytes,
                    },
                })
                .collect()
        })
        .collect();
    // Precompute the pair-class cost tables and run the monomorphized
    // engine path; bit-identical to the dynamic, uncached path
    // (property-tested in simnet), just without the per-message
    // topology walk and vtable hop.
    let fabric = CachedFabric::new(cfg.fabric());
    let plan = cfg.effective_faults();
    simulate_traced_on(
        programs.as_slice(),
        &cfg.placement.rank_cpus(),
        &fabric,
        &plan,
        tracer,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::KernelClass;
    use columbia_machine::node::NodeKind;

    fn phase() -> WorkPhase {
        WorkPhase::new(1.0e9, 1.0e8, 1 << 20, 0.2, KernelClass::BlockSolver)
    }

    fn cfg(ranks: usize, threads: usize) -> ExecConfig {
        ExecConfig::single_node(
            ClusterConfig::uniform(NodeKind::Bx2b, 1),
            NodeId(0),
            ranks,
            threads,
        )
    }

    #[test]
    fn compute_only_spec_runs() {
        let mut spec = WorkloadSpec::with_ranks(4);
        for r in &mut spec.ranks {
            r.push(SpecOp::Work(phase()));
        }
        let out = execute(&spec, &cfg(4, 1)).unwrap();
        assert_eq!(out.ranks.len(), 4);
        assert!(out.makespan > 0.0);
        // Identical work ⇒ near-identical finish times.
        let t0 = out.ranks[0].total;
        for r in &out.ranks {
            assert!((r.total - t0).abs() < 1e-12);
        }
    }

    #[test]
    fn more_ranks_less_time_per_rank_workload() {
        // Strong scaling: same total work split across ranks.
        let total_flops = 4.0e10;
        let run = |n: usize| {
            let mut spec = WorkloadSpec::with_ranks(n);
            for r in &mut spec.ranks {
                let mut p = phase();
                p.flops = total_flops / n as f64;
                p.mem_bytes = 0.0;
                r.push(SpecOp::Work(p));
                r.push(SpecOp::Barrier);
            }
            execute(&spec, &cfg(n, 1)).unwrap().makespan
        };
        let t8 = run(8);
        let t32 = run(32);
        assert!(t32 < t8 / 2.0, "t8={t8} t32={t32}");
    }

    #[test]
    fn exchange_ring_executes() {
        let n = 16;
        let mut spec = WorkloadSpec::with_ranks(n);
        for (r, prog) in spec.ranks.iter_mut().enumerate() {
            let partner = r ^ 1; // pairwise neighbours
            prog.push(SpecOp::Work(phase()));
            prog.push(SpecOp::Exchange {
                with: partner,
                bytes: 65536,
                tag: (r.min(partner)) as u64,
            });
        }
        let out = execute(&spec, &cfg(n, 1)).unwrap();
        assert!(out.ranks.iter().all(|r| r.comm > 0.0));
    }

    #[test]
    fn hybrid_threads_speed_up_work() {
        let mut spec = WorkloadSpec::with_ranks(4);
        for r in &mut spec.ranks {
            r.push(SpecOp::Work(phase()));
        }
        let t1 = execute(&spec, &cfg(4, 1)).unwrap().makespan;
        let t4 = execute(&spec, &cfg(4, 4)).unwrap().makespan;
        assert!(t4 < t1, "t1={t1} t4={t4}");
        assert!(t4 > t1 / 4.0, "thread scaling can't be super-linear here");
    }

    #[test]
    fn rank_mismatch_is_a_typed_error() {
        let spec = WorkloadSpec::with_ranks(3);
        let err = execute(&spec, &cfg(4, 1)).unwrap_err();
        assert_eq!(
            err,
            SimError::PlacementMismatch {
                programs: 3,
                placements: 4
            }
        );
    }

    #[test]
    fn deadlock_is_reported_with_diagnosis() {
        let mut spec = WorkloadSpec::with_ranks(2);
        spec.ranks[0].push(SpecOp::Recv { from: 1, tag: 0 });
        spec.ranks[1].push(SpecOp::Recv { from: 0, tag: 0 });
        let err = execute(&spec, &cfg(2, 1)).unwrap_err();
        assert_eq!(err.stuck_ranks(), vec![0, 1]);
        assert!(err.to_string().contains("deadlock"));
    }

    #[test]
    fn fault_plan_inflates_makespan() {
        let mk = |plan: FaultPlan| {
            let n = 8;
            let mut spec = WorkloadSpec::with_ranks(n);
            for (r, prog) in spec.ranks.iter_mut().enumerate() {
                prog.push(SpecOp::Work(phase()));
                prog.push(SpecOp::Send {
                    to: (r + 1) % n,
                    bytes: 65536,
                    tag: 1,
                });
                prog.push(SpecOp::Recv {
                    from: (r + n - 1) % n,
                    tag: 1,
                });
            }
            let mut c = cfg(n, 1);
            c.faults = plan;
            execute(&spec, &c).unwrap()
        };
        let clean = mk(FaultPlan::none());
        let faulted = mk(FaultPlan::with_drops(3, 0.5));
        assert!(faulted.makespan >= clean.makespan);
        assert!(faulted.faults.dropped_messages > 0);
        assert!(!clean.faults.any());
    }
}
