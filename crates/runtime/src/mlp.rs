//! Multi-Level Parallelism (MLP), Taft's NASA Ames paradigm (§3.4).
//!
//! MLP gets its coarse-grain parallelism by `fork`ing independent
//! processes and its fine grain from OpenMP threads inside each. All
//! data communication happens by *direct memory referencing* through
//! shared-memory arenas — there is no message-passing library in the
//! path, so a boundary exchange costs a memcpy into the arena plus a
//! synchronization, both at shared-memory speed. That is why INS3D's
//! per-iteration times (Table 2) are dominated by compute and load
//! balance rather than communication.

use columbia_machine::calib;
use columbia_machine::node::NodeModel;

/// Cost model for MLP group communication inside one Altix node.
#[derive(Debug, Clone, Copy)]
pub struct MlpModel {
    node: NodeModel,
    /// Fault-injected stretch on arena traffic (≥ 1; 1 = healthy).
    slowdown: f64,
}

impl MlpModel {
    /// MLP on the given node flavour.
    pub fn new(node: NodeModel) -> Self {
        MlpModel {
            node,
            slowdown: 1.0,
        }
    }

    /// The same model on degraded shared memory: arena copies take
    /// `factor`× longer (a slow brick's router stretches every remote
    /// reference). Group barriers stretch with it, since they ride the
    /// same links.
    pub fn with_slowdown(mut self, factor: f64) -> Self {
        assert!(factor >= 1.0, "slowdown must not speed the arena up");
        self.slowdown = factor;
        self
    }

    /// Seconds to archive `bytes` of boundary data into the shared
    /// arena (one memcpy at processor-bound shared-memory speed).
    pub fn arena_write(&self, bytes: u64) -> f64 {
        let bw = self.node.processor.clock_ghz * calib::SHM_COPY_BYTES_PER_GHZ;
        self.slowdown * bytes as f64 / bw
    }

    /// Seconds to read a neighbour's boundary data back out.
    pub fn arena_read(&self, bytes: u64) -> f64 {
        self.arena_write(bytes)
    }

    /// Synchronization of `groups` forked processes through shared
    /// flags: a fetch-and-op tree, nanoseconds per level.
    pub fn group_barrier(&self, groups: u32) -> f64 {
        if groups <= 1 {
            return 0.0;
        }
        // A cache-line ping per tree level; remote line transfer is a
        // hop-latency-scale event.
        self.slowdown * (groups as f64).log2().ceil() * 2.0 * calib::NUMALINK_HOP_LATENCY
    }

    /// Full boundary-exchange cost for a group: write own boundary,
    /// synchronize, read neighbours' contributions.
    pub fn exchange(&self, groups: u32, write_bytes: u64, read_bytes: u64) -> f64 {
        self.arena_write(write_bytes) + self.group_barrier(groups) + self.arena_read(read_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use columbia_machine::node::NodeKind;

    #[test]
    fn arena_copies_run_at_memcpy_speed() {
        let m = MlpModel::new(NodeModel::new(NodeKind::Bx2b));
        let t = m.arena_write(1 << 30); // 1 GB
        let bw = (1u64 << 30) as f64 / t;
        assert!((bw - 1.6 * calib::SHM_COPY_BYTES_PER_GHZ).abs() / bw < 1e-9);
    }

    #[test]
    fn mlp_exchange_is_cheap_relative_to_mpi_scale_messages() {
        // 1 MB of boundary data exchanged among 36 groups costs well
        // under a millisecond — the paper's Table 2 shows INS3D times
        // dominated by compute, not communication.
        let m = MlpModel::new(NodeModel::new(NodeKind::Bx2b));
        let t = m.exchange(36, 1 << 20, 1 << 20);
        assert!(t < 1.5e-3, "t={t}");
    }

    #[test]
    fn barrier_scales_logarithmically() {
        let m = MlpModel::new(NodeModel::new(NodeKind::Bx2b));
        assert_eq!(m.group_barrier(1), 0.0);
        let b8 = m.group_barrier(8);
        let b64 = m.group_barrier(64);
        assert!(b64 > b8);
        assert!(b64 < 3.0 * b8);
    }

    #[test]
    fn faster_clock_copies_faster() {
        let slow = MlpModel::new(NodeModel::new(NodeKind::Altix3700));
        let fast = MlpModel::new(NodeModel::new(NodeKind::Bx2b));
        assert!(fast.arena_write(1 << 20) < slow.arena_write(1 << 20));
    }

    #[test]
    fn slowdown_stretches_the_whole_exchange() {
        let healthy = MlpModel::new(NodeModel::new(NodeKind::Bx2b));
        let degraded = healthy.with_slowdown(3.0);
        let (h, d) = (
            healthy.exchange(16, 1 << 20, 1 << 20),
            degraded.exchange(16, 1 << 20, 1 << 20),
        );
        assert!((d - 3.0 * h).abs() / h < 1e-12, "h={h} d={d}");
        // A unit slowdown is exactly the healthy model.
        let unit = healthy.with_slowdown(1.0);
        assert_eq!(unit.exchange(16, 1 << 20, 1 << 20), h);
    }
}
