//! Rank/thread-to-CPU placement.
//!
//! A [`Placement`] fixes, for every (rank, thread) pair, the physical
//! CPU it runs on. Placement matters three ways on Columbia:
//!
//! * bus sharing — dense placement puts two workers on each front-side
//!   bus and halves their STREAM bandwidth (§4.2);
//! * topology distance — ranks packed in one brick talk faster than
//!   ranks spread across the router tree;
//! * the boot cpuset — full 512-CPU runs overlap the CPUs reserved for
//!   system software and lose 10–15% (§4.6.2); 508-CPU runs do not.

use columbia_machine::cluster::{ClusterConfig, CpuId, NodeId};

/// How CPUs are assigned within each node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementStrategy {
    /// Consecutive CPUs: 0, 1, 2, … (the default `dplace` layout).
    Dense,
    /// Every `k`-th CPU: 0, k, 2k, … — the §4.2 "CPU stride" layout
    /// that gives each worker a private bus at stride ≥ 2.
    Strided(u32),
    /// Consecutive CPUs but at most `cap` per node — how the batch
    /// scheduler steers production runs clear of the boot cpuset
    /// (§4.6.2: 508-CPU runs recover the 512-CPU loss).
    DenseCapped(u32),
}

/// A concrete assignment of ranks × threads to CPUs.
#[derive(Debug, Clone)]
pub struct Placement {
    /// `cpus[rank][thread]` is the physical CPU of that worker.
    pub cpus: Vec<Vec<CpuId>>,
    /// Nodes actually used, in order of first use.
    pub nodes: Vec<NodeId>,
    /// Whether the run overlaps the boot cpuset (512 CPUs of a node
    /// requested, including the reserved ones).
    pub boot_cpuset_overlap: bool,
}

impl Placement {
    /// Build a placement of `ranks` ranks × `threads` threads each over
    /// the given nodes of `cluster`, filling nodes in blocks.
    ///
    /// Panics if the requested workers exceed the capacity of the node
    /// list under the chosen strategy.
    pub fn new(
        cluster: &ClusterConfig,
        nodes: &[NodeId],
        ranks: usize,
        threads: usize,
        strategy: PlacementStrategy,
    ) -> Self {
        assert!(ranks >= 1 && threads >= 1);
        let (stride, cap) = match strategy {
            PlacementStrategy::Dense => (1, 512),
            PlacementStrategy::Strided(k) => {
                assert!(k >= 1, "stride must be positive");
                (k, 512)
            }
            PlacementStrategy::DenseCapped(cap) => {
                assert!((1..=512).contains(&cap), "cap must be in 1..=512");
                (1, cap)
            }
        };
        let node_cpus = 512u32;
        let slots_per_node = (node_cpus / stride).min(cap);
        let workers = (ranks * threads) as u32;
        assert!(
            workers <= slots_per_node * nodes.len() as u32,
            "placement overflow: {workers} workers > {} slots",
            slots_per_node * nodes.len() as u32
        );
        let mut cpus = Vec::with_capacity(ranks);
        let mut used_nodes: Vec<NodeId> = Vec::new();
        let mut w = 0u32;
        for _ in 0..ranks {
            let mut row = Vec::with_capacity(threads);
            for _ in 0..threads {
                let node = nodes[(w / slots_per_node) as usize];
                let cpu = (w % slots_per_node) * stride;
                if !used_nodes.contains(&node) {
                    used_nodes.push(node);
                }
                row.push(CpuId { node, cpu });
                w += 1;
            }
            cpus.push(row);
        }
        let boot_cpuset_overlap = {
            // Overlap occurs when any node is filled to its last CPU.
            let mut per_node = std::collections::HashMap::new();
            for row in &cpus {
                for c in row {
                    let e = per_node.entry(c.node).or_insert(0u32);
                    *e = (*e).max(c.cpu + 1);
                }
            }
            per_node.values().any(|&hi| hi >= node_cpus)
        };
        let _ = cluster; // capacity check uses the fixed 512-CPU nodes
        Placement {
            cpus,
            nodes: used_nodes,
            boot_cpuset_overlap,
        }
    }

    /// Single-node convenience constructor.
    pub fn single_node(
        cluster: &ClusterConfig,
        node: NodeId,
        ranks: usize,
        threads: usize,
        strategy: PlacementStrategy,
    ) -> Self {
        Placement::new(cluster, &[node], ranks, threads, strategy)
    }

    /// Number of ranks placed.
    pub fn ranks(&self) -> usize {
        self.cpus.len()
    }

    /// Threads per rank (uniform).
    pub fn threads(&self) -> usize {
        self.cpus[0].len()
    }

    /// Total workers (ranks × threads) — the paper's "number of CPUs".
    pub fn total_cpus(&self) -> usize {
        self.ranks() * self.threads()
    }

    /// The home CPU of a rank (its thread 0).
    pub fn rank_cpu(&self, rank: usize) -> CpuId {
        self.cpus[rank][0]
    }

    /// Home CPUs of all ranks, for the simulator's placement input.
    pub fn rank_cpus(&self) -> Vec<CpuId> {
        (0..self.ranks()).map(|r| self.rank_cpu(r)).collect()
    }

    /// Active in-node CPU indices for the node of the given CPU — the
    /// sharer set for the memory model.
    pub fn active_on_node(&self, node: NodeId) -> Vec<u32> {
        let mut v: Vec<u32> = self
            .cpus
            .iter()
            .flatten()
            .filter(|c| c.node == node)
            .map(|c| c.cpu)
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Mean number of bus sharers over all workers (1.0 = every worker
    /// owns its bus, 2.0 = fully dense).
    pub fn mean_bus_sharers(&self, cluster: &ClusterConfig) -> f64 {
        let mut total = 0.0f64;
        let mut n = 0.0f64;
        for node in &self.nodes {
            let brick = cluster.node_model(*node).brick;
            let active = self.active_on_node(*node);
            for &c in &active {
                total += brick.bus_sharers(c, &active) as f64;
                n += 1.0;
            }
        }
        total / n.max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use columbia_machine::node::NodeKind;

    fn cluster() -> ClusterConfig {
        ClusterConfig::uniform(NodeKind::Bx2b, 4)
    }

    #[test]
    fn dense_single_node_layout() {
        let c = cluster();
        let p = Placement::single_node(&c, NodeId(0), 4, 2, PlacementStrategy::Dense);
        assert_eq!(p.total_cpus(), 8);
        assert_eq!(p.cpus[0][0], CpuId::new(0, 0));
        assert_eq!(p.cpus[0][1], CpuId::new(0, 1));
        assert_eq!(p.cpus[3][1], CpuId::new(0, 7));
        assert!(!p.boot_cpuset_overlap);
        assert!((p.mean_bus_sharers(&c) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn strided_placement_owns_buses() {
        let c = cluster();
        let p = Placement::single_node(&c, NodeId(0), 8, 1, PlacementStrategy::Strided(2));
        assert_eq!(p.cpus[1][0].cpu, 2);
        assert_eq!(p.cpus[7][0].cpu, 14);
        assert!((p.mean_bus_sharers(&c) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stride_four_also_supported() {
        let c = cluster();
        let p = Placement::single_node(&c, NodeId(0), 4, 1, PlacementStrategy::Strided(4));
        let cpus: Vec<u32> = p.cpus.iter().map(|r| r[0].cpu).collect();
        assert_eq!(cpus, vec![0, 4, 8, 12]);
    }

    #[test]
    fn multi_node_block_fill() {
        let c = cluster();
        let nodes: Vec<NodeId> = (0..4).map(NodeId).collect();
        let p = Placement::new(&c, &nodes, 1024, 2, PlacementStrategy::Dense);
        assert_eq!(p.total_cpus(), 2048);
        assert_eq!(p.nodes.len(), 4);
        // First node holds the first 512 workers = ranks 0..256.
        assert_eq!(p.cpus[255][1].node, NodeId(0));
        assert_eq!(p.cpus[256][0].node, NodeId(1));
        assert!(p.boot_cpuset_overlap);
    }

    #[test]
    fn full_node_overlaps_boot_cpuset_508_does_not() {
        let c = cluster();
        let full = Placement::single_node(&c, NodeId(0), 512, 1, PlacementStrategy::Dense);
        assert!(full.boot_cpuset_overlap);
        let spared = Placement::single_node(&c, NodeId(0), 508, 1, PlacementStrategy::Dense);
        assert!(!spared.boot_cpuset_overlap);
    }

    #[test]
    #[should_panic(expected = "placement overflow")]
    fn overflow_detected() {
        let c = cluster();
        let _ = Placement::single_node(&c, NodeId(0), 513, 1, PlacementStrategy::Dense);
    }

    #[test]
    #[should_panic(expected = "placement overflow")]
    fn stride_reduces_capacity() {
        let c = cluster();
        let _ = Placement::single_node(&c, NodeId(0), 300, 1, PlacementStrategy::Strided(2));
    }

    #[test]
    fn rank_cpus_returns_thread_zero_homes() {
        let c = cluster();
        let p = Placement::single_node(&c, NodeId(0), 3, 4, PlacementStrategy::Dense);
        let homes = p.rank_cpus();
        assert_eq!(
            homes,
            vec![CpuId::new(0, 0), CpuId::new(0, 4), CpuId::new(0, 8)]
        );
    }
}
