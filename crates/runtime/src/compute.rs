//! Roofline + Amdahl cost model for one rank's compute phase.
//!
//! A [`WorkPhase`] describes what a rank does between communications:
//! how many flops it retires, how many bytes it moves from memory, how
//! big its per-worker working set is (cache residency), what fraction
//! of peak its inner loops can reach, and how much of it cannot be
//! multi-threaded. [`NodeComputeModel`] turns that into seconds on a
//! given node flavour for a given OpenMP team, composing:
//!
//! * the processor's peak and the workload's efficiency (× the
//!   compiler's code-generation factor, §4.4);
//! * memory bandwidth derated by bus sharing (§4.2) and boosted by
//!   cache residency — the BX2b's 9 MB L3 shows up here (Fig. 6);
//! * the pinning penalty on memory accesses (§4.3);
//! * Amdahl serial fraction + fork-join overhead for the thread team
//!   (Fig. 9: OpenMP scaling is "very limited");
//! * the boot-cpuset derate for full 512-CPU runs (§4.6.2).

use columbia_machine::calib;
use columbia_machine::memory::{MemoryModel, StreamOp};
use columbia_machine::node::NodeModel;

use crate::compiler::{CompilerVersion, KernelClass};
use crate::pinning::Pinning;

/// One compute phase of one rank (totals across its thread team).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkPhase {
    /// Floating-point operations retired in the phase.
    pub flops: f64,
    /// Bytes moved between memory and the cache hierarchy.
    pub mem_bytes: f64,
    /// Per-worker resident working set in bytes (decides cache level).
    pub working_set: u64,
    /// Fraction of processor peak the compute part reaches with the
    /// baseline (7.1) compiler; workload-specific.
    pub efficiency: f64,
    /// Fraction of the phase that cannot be multi-threaded.
    pub serial_fraction: f64,
    /// Fraction of memory traffic that crosses C-Brick boundaries when
    /// the thread team spans multiple bricks (OpenMP codes touching
    /// shared arrays); this is what NUMAlink4's doubled bandwidth
    /// accelerates in Fig. 6's OpenMP curves.
    pub remote_share: f64,
    /// Dominant loop shape, for the compiler model.
    pub kernel: KernelClass,
}

impl WorkPhase {
    /// A phase with the default application serial fraction.
    pub fn new(
        flops: f64,
        mem_bytes: f64,
        working_set: u64,
        efficiency: f64,
        kernel: KernelClass,
    ) -> Self {
        WorkPhase {
            flops,
            mem_bytes,
            working_set,
            efficiency,
            serial_fraction: calib::OMP_SERIAL_FRACTION,
            remote_share: 0.0,
            kernel,
        }
    }

    /// Set the cross-brick traffic share for shared-memory codes.
    pub fn with_remote_share(mut self, r: f64) -> Self {
        assert!((0.0..=1.0).contains(&r));
        self.remote_share = r;
        self
    }

    /// Override the serial fraction (poorly-threaded solvers like the
    /// INS3D line relaxation carry a much larger one).
    pub fn with_serial_fraction(mut self, s: f64) -> Self {
        assert!((0.0..=1.0).contains(&s));
        self.serial_fraction = s;
        self
    }
}

/// Execution context costing [`WorkPhase`]s on one node flavour.
#[derive(Debug, Clone, Copy)]
pub struct NodeComputeModel {
    node: NodeModel,
    compiler: CompilerVersion,
    pinning: Pinning,
    /// Parallel units of the whole job (Fig. 8's x-axis) for the
    /// compiler factor: threads for OpenMP codes, processes for MPI.
    units: u32,
    /// CPU pool an unpinned thread can wander over.
    pool_cpus: u32,
    /// Mean bus sharers under the active placement (1.0 strided, 2.0
    /// dense).
    sharers: f64,
    /// Whether the run overlaps the boot cpuset.
    boot_overlap: bool,
}

impl NodeComputeModel {
    /// Build a model.
    pub fn new(
        node: NodeModel,
        compiler: CompilerVersion,
        pinning: Pinning,
        units: u32,
        pool_cpus: u32,
        sharers: f64,
        boot_overlap: bool,
    ) -> Self {
        assert!(sharers >= 1.0);
        NodeComputeModel {
            node,
            compiler,
            pinning,
            units,
            pool_cpus,
            sharers,
            boot_overlap,
        }
    }

    /// Pinned, dense, default-compiler model — the common baseline.
    pub fn baseline(node: NodeModel, units: u32) -> Self {
        NodeComputeModel::new(
            node,
            CompilerVersion::V7_1,
            Pinning::Pinned,
            units,
            units,
            2.0,
            false,
        )
    }

    /// The node this model costs work on.
    pub fn node(&self) -> &NodeModel {
        &self.node
    }

    /// Per-worker sustained memory bandwidth, bytes/s, given bus
    /// sharing, cache residency, and the pinning penalty.
    fn worker_bandwidth(&self, phase: &WorkPhase, threads: u32) -> f64 {
        let mem = MemoryModel::new(&self.node);
        // Interpolate between the unshared and fully-shared bus points.
        let single = mem.stream_bandwidth(StreamOp::Triad, 1);
        let shared = mem.stream_bandwidth(StreamOp::Triad, 2);
        let f = (self.sharers - 1.0).clamp(0.0, 1.0);
        let bus = single + (shared - single) * f;
        let cache = mem.cache_speedup(&self.node, phase.working_set);
        let local = bus * cache;
        // Cross-brick share of a multi-brick thread team goes over
        // NUMAlink: each SHUB (2 CPUs) drives one link of the node's
        // generation, so per-CPU remote bandwidth doubles on the BX2.
        let thread_bricks = threads.div_ceil(self.node.brick.cpus_per_brick).max(1);
        // Even a single worker pays remote-access costs when its data
        // cannot fit one brick's local memory: pages land on other
        // bricks and stream over NUMAlink (the large single-CPU BX2b
        // advantage of the big CFD codes, Tables 2/3).
        let data_bricks = ((phase.working_set as f64 * threads as f64)
            / self.node.brick.memory_bytes as f64)
            .ceil()
            .max(1.0) as u32;
        let bricks = thread_bricks.max(data_bricks);
        let remote_frac = phase.remote_share * (1.0 - 1.0 / bricks as f64);
        let eff = if remote_frac > 0.0 {
            let remote_bw = self.node.brick_link_bandwidth() / 4.0;
            1.0 / ((1.0 - remote_frac) / local + remote_frac / remote_bw)
        } else {
            local
        };
        let numa = self.pinning.memory_penalty(threads, self.pool_cpus);
        eff / numa
    }

    /// Seconds to execute `phase` with a team of `threads` workers.
    ///
    /// Cache residency accelerates *both* terms — a working set inside
    /// L3 removes stalls from the compute pipeline as much as from the
    /// streaming loops (§4.1.4 attributes the BX2b computation-time
    /// reduction to its larger L3). The compiler factor likewise
    /// scales the whole phase: on the in-order Itanium2, code
    /// generation quality governs how well memory latency is hidden.
    pub fn seconds(&self, phase: &WorkPhase, threads: u32) -> f64 {
        assert!(threads >= 1);
        let cache = MemoryModel::new(&self.node).cache_speedup(&self.node, phase.working_set);
        let cf = self.compiler.factor(phase.kernel, self.units);
        let eff = phase.efficiency * cf * cache;
        // An unpinned thread team also loses compute throughput: every
        // migration abandons warm caches, stalling the pipeline (a
        // weaker effect than the remote-memory tax, hence the square
        // root). Single processes stay put (§4.3: pure process mode is
        // barely affected).
        let migration = if threads > 1 {
            self.pinning.memory_penalty(threads, self.pool_cpus).sqrt()
        } else {
            1.0
        };
        let t_comp = phase.flops * migration / (self.node.processor.peak_flops() * eff);
        let bw = self.worker_bandwidth(phase, threads) * cf;
        let t_mem = phase.mem_bytes / bw;
        let t1 = t_comp.max(t_mem);
        let mut t = if threads == 1 {
            t1
        } else {
            let tf = threads as f64;
            let parallel = (t_comp / tf).max(t_mem / tf);
            let serial = phase.serial_fraction * t1;
            let fork_join = calib::OMP_FORK_JOIN_BASE * tf.log2().ceil();
            serial + (1.0 - phase.serial_fraction) * parallel + fork_join
        };
        if self.boot_overlap {
            t /= calib::BOOT_CPUSET_PENALTY;
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use columbia_machine::node::NodeKind;

    fn bx2b() -> NodeModel {
        NodeModel::new(NodeKind::Bx2b)
    }

    fn node3700() -> NodeModel {
        NodeModel::new(NodeKind::Altix3700)
    }

    fn cpu_phase() -> WorkPhase {
        // Compute-bound: lots of flops, negligible memory traffic.
        WorkPhase::new(1.0e10, 1.0e6, 64 << 20, 0.9, KernelClass::Streaming)
    }

    fn mem_phase() -> WorkPhase {
        // Memory-bound: big streaming traffic, out-of-cache.
        WorkPhase::new(1.0e8, 1.0e10, 64 << 20, 0.1, KernelClass::Streaming)
    }

    #[test]
    fn compute_bound_phase_tracks_peak() {
        let m = NodeComputeModel::baseline(bx2b(), 1);
        let t = m.seconds(&cpu_phase(), 1);
        // 1e10 flops at 6.4e9*0.9 ≈ 1.736 s
        assert!((t - 1.0e10 / (6.4e9 * 0.9)).abs() < 1e-9);
    }

    #[test]
    fn bx2b_faster_than_3700_on_compute() {
        let mb = NodeComputeModel::baseline(bx2b(), 1);
        let m3 = NodeComputeModel::baseline(node3700(), 1);
        let ratio = m3.seconds(&cpu_phase(), 1) / mb.seconds(&cpu_phase(), 1);
        assert!((ratio - 6.4 / 6.0).abs() < 1e-6);
    }

    #[test]
    fn memory_bound_phase_tracks_bandwidth() {
        let m = NodeComputeModel::baseline(bx2b(), 1);
        let t = m.seconds(&mem_phase(), 1);
        // 1e10 bytes at ~2 GB/s (dense sharing) ≈ 5 s.
        assert!((4.5..5.6).contains(&t), "t={t}");
    }

    #[test]
    fn strided_placement_speeds_memory_phase() {
        let dense = NodeComputeModel::new(
            bx2b(),
            CompilerVersion::V7_1,
            Pinning::Pinned,
            1,
            1,
            2.0,
            false,
        );
        let strided = NodeComputeModel::new(
            bx2b(),
            CompilerVersion::V7_1,
            Pinning::Pinned,
            1,
            1,
            1.0,
            false,
        );
        let gain = dense.seconds(&mem_phase(), 1) / strided.seconds(&mem_phase(), 1);
        assert!((gain - 1.9).abs() < 0.05, "gain={gain}");
    }

    #[test]
    fn cache_resident_set_faster_on_bx2b_than_bx2a() {
        // 7 MB per-worker set: in L3 on BX2b (9 MB), out on BX2a (6 MB).
        let ws = 7 << 20;
        let phase = WorkPhase::new(1.0e8, 5.0e9, ws, 0.1, KernelClass::Multigrid);
        let ma = NodeComputeModel::baseline(NodeModel::new(NodeKind::Bx2a), 1);
        let mb = NodeComputeModel::baseline(bx2b(), 1);
        let ratio = ma.seconds(&phase, 1) / mb.seconds(&phase, 1);
        // Fig. 6: ~50% jump attributed to the larger L3.
        assert!(ratio > 1.4, "ratio={ratio}");
    }

    #[test]
    fn thread_scaling_obeys_amdahl() {
        let m = NodeComputeModel::baseline(bx2b(), 8);
        let phase = cpu_phase().with_serial_fraction(0.1);
        let t1 = m.seconds(&phase, 1);
        let t8 = m.seconds(&phase, 8);
        let speedup = t1 / t8;
        let ideal = 1.0 / (0.1 + 0.9 / 8.0);
        assert!(
            (speedup - ideal).abs() / ideal < 0.05,
            "speedup={speedup} ideal={ideal}"
        );
    }

    #[test]
    fn unpinned_thread_teams_pay_on_memory() {
        let pinned = NodeComputeModel::new(
            bx2b(),
            CompilerVersion::V7_1,
            Pinning::Pinned,
            32,
            128,
            2.0,
            false,
        );
        let unpinned = NodeComputeModel::new(
            bx2b(),
            CompilerVersion::V7_1,
            Pinning::Unpinned,
            32,
            128,
            2.0,
            false,
        );
        let ratio = unpinned.seconds(&mem_phase(), 32) / pinned.seconds(&mem_phase(), 32);
        assert!(ratio > 1.5, "ratio={ratio}");
        // Compute-bound work is unaffected by pinning.
        let ratio_cpu = unpinned.seconds(&cpu_phase(), 1) / pinned.seconds(&cpu_phase(), 1);
        assert!((ratio_cpu - 1.0).abs() < 1e-9);
    }

    #[test]
    fn boot_cpuset_costs_10_to_15_pct() {
        let clean = NodeComputeModel::new(
            bx2b(),
            CompilerVersion::V7_1,
            Pinning::Pinned,
            1,
            1,
            2.0,
            false,
        );
        let dirty = NodeComputeModel::new(
            bx2b(),
            CompilerVersion::V7_1,
            Pinning::Pinned,
            1,
            1,
            2.0,
            true,
        );
        let ratio = dirty.seconds(&cpu_phase(), 1) / clean.seconds(&cpu_phase(), 1);
        assert!(ratio > 1.10 && ratio < 1.16, "ratio={ratio}");
    }

    #[test]
    fn compiler_factor_feeds_through() {
        let v71 = NodeComputeModel::new(
            bx2b(),
            CompilerVersion::V7_1,
            Pinning::Pinned,
            64,
            64,
            2.0,
            false,
        );
        let v80 = NodeComputeModel::new(
            bx2b(),
            CompilerVersion::V8_0,
            Pinning::Pinned,
            64,
            64,
            2.0,
            false,
        );
        let phase = WorkPhase::new(1.0e10, 1.0e6, 100 * 1024, 0.2, KernelClass::Fourier);
        assert!(v80.seconds(&phase, 1) > v71.seconds(&phase, 1));
    }

    #[test]
    #[should_panic(expected = "threads >= 1")]
    fn zero_threads_rejected() {
        NodeComputeModel::baseline(bx2b(), 1).seconds(&cpu_phase(), 0);
    }
}
