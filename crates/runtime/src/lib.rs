//! Virtual programming models on top of the Columbia machine model.
//!
//! The paper runs its workloads under four paradigms — pure MPI, pure
//! OpenMP, hybrid MPI+OpenMP, and NASA's MLP (fork + shared-memory
//! arenas) — under different thread/process placements, with and
//! without pinning, compiled by four Intel compiler versions. Each of
//! those knobs is a module here:
//!
//! * [`placement`] — maps ranks and threads to physical CPUs (dense,
//!   strided, multi-node block), tracking which CPUs are active so the
//!   memory model can count bus sharers; models the §4.6.2 boot-cpuset
//!   interference of full 512-CPU runs;
//! * [`pinning`] — the §4.3 pinning model: unpinned threads migrate
//!   away from their first-touch pages and pay remote-access penalties;
//! * [`compiler`] — per-(version, kernel-shape) code-generation factors
//!   calibrated to Fig. 8 and Table 4;
//! * [`compute`] — the roofline + Amdahl node compute model: costs one
//!   [`WorkPhase`] on a node flavour for a thread team;
//! * [`mlp`] — Multi-Level Parallelism: fork-spawned groups exchanging
//!   boundary data through shared-memory arenas;
//! * [`exec`] — the executor tying it together: a [`WorkloadSpec`]
//!   (per-rank programs of work and communication) is costed and fed to
//!   the `columbia-simnet` discrete-event engine.

pub mod compiler;
pub mod compute;
pub mod exec;
pub mod mlp;
pub mod pinning;
pub mod placement;

pub use compiler::{CompilerVersion, KernelClass};
pub use compute::{NodeComputeModel, WorkPhase};
pub use exec::{execute, execute_traced, ExecConfig, SpecOp, WorkloadSpec};
pub use pinning::Pinning;
pub use placement::{Placement, PlacementStrategy};
