//! Thread/process pinning model (§4.3).
//!
//! On a NUMA Altix node, memory pages land where first touched. A
//! pinned thread keeps executing next to its pages; an unpinned thread
//! is free to migrate, after which its loads cross the router fabric
//! to the SHUB that owns the pages — [`columbia_machine::calib::NUMA_REMOTE_PENALTY`]
//! times slower. The paper's Fig. 7 shows the effect on hybrid SP-MZ:
//! pure-process runs barely notice, but runs spawning many OpenMP
//! threads per process degrade severely without pinning, and worse the
//! more CPUs participate.
//!
//! The model: each parallel region, an unpinned worker has migrated
//! with probability [`columbia_machine::calib::UNPINNED_MIGRATION_RATE`];
//! a migrated worker's remote-access fraction grows with how far the
//! scheduler can scatter it, i.e. with the log of the CPU pool size.

use columbia_machine::calib;

/// Whether workers are pinned to CPUs.
///
/// The paper lists three pinning methods (`MPI_DSM_*` variables,
/// `dplace`, explicit system calls); they are behaviourally equivalent
/// for the model, so one boolean captures them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pinning {
    /// Workers pinned (all paper results except the Fig. 7 "no
    /// pinning" curves).
    Pinned,
    /// Workers free to migrate.
    Unpinned,
}

impl Pinning {
    /// Expected fraction of memory accesses served remotely for a rank
    /// running `threads` OpenMP threads inside a pool of `pool_cpus`
    /// candidate CPUs.
    ///
    /// Pinned workers always access locally. Unpinned single-thread
    /// processes rarely migrate off their memory (the OS keeps them
    /// near), matching Fig. 7's near-identical `64x1` curves; thread
    /// teams fan out and suffer.
    pub fn remote_fraction(self, threads: u32, pool_cpus: u32) -> f64 {
        match self {
            Pinning::Pinned => 0.0,
            Pinning::Unpinned => {
                if threads <= 1 {
                    // Pure process mode: slight degradation only.
                    0.03
                } else {
                    let team = (threads - 1) as f64 / threads as f64;
                    let scatter = (pool_cpus.max(2) as f64).log2() / 10.0;
                    (calib::UNPINNED_MIGRATION_RATE * team * (0.5 + scatter)).min(0.9)
                }
            }
        }
    }

    /// Memory-time multiplier implied by the remote fraction.
    pub fn memory_penalty(self, threads: u32, pool_cpus: u32) -> f64 {
        1.0 + self.remote_fraction(threads, pool_cpus) * (calib::NUMA_REMOTE_PENALTY - 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinned_is_always_local() {
        for t in [1, 2, 8, 64] {
            for p in [4, 64, 512] {
                assert_eq!(Pinning::Pinned.remote_fraction(t, p), 0.0);
                assert_eq!(Pinning::Pinned.memory_penalty(t, p), 1.0);
            }
        }
    }

    #[test]
    fn pure_process_mode_barely_affected() {
        // Fig. 7: "Pure process mode (e.g. 64x1) is less influenced by
        // pinning."
        let pen = Pinning::Unpinned.memory_penalty(1, 64);
        assert!(pen < 1.1, "penalty={pen}");
    }

    #[test]
    fn penalty_grows_with_threads() {
        let p64 = |t| Pinning::Unpinned.memory_penalty(t, 64);
        assert!(p64(2) > p64(1));
        assert!(p64(8) > p64(2));
        assert!(p64(32) > p64(8));
    }

    #[test]
    fn penalty_grows_with_pool_size() {
        // Fig. 7: "The impact becomes even more profound as the number
        // of CPUs increases."
        let p = |cpus| Pinning::Unpinned.memory_penalty(16, cpus);
        assert!(p(128) > p(32));
        assert!(p(512) > p(128));
    }

    #[test]
    fn remote_fraction_bounded() {
        for t in [2, 16, 64] {
            for p in [16, 512, 2048] {
                let f = Pinning::Unpinned.remote_fraction(t, p);
                assert!((0.0..=0.9).contains(&f));
            }
        }
    }

    #[test]
    fn substantial_hybrid_penalty_at_scale() {
        // Unpinned 32-thread teams on 128 CPUs should be at least
        // ~1.5x slower on memory — Fig. 7 shows multi-x gaps.
        let pen = Pinning::Unpinned.memory_penalty(32, 128);
        assert!(pen > 1.5, "penalty={pen}");
    }
}
