//! Intel compiler version model (§4.4).
//!
//! Columbia had four Intel Fortran compilers installed: 7.1 (the
//! default), 8.0, 8.1 (latest official), and a 9.0 beta. The paper's
//! finding is that *no version wins everywhere*: 8.0 was worst in most
//! cases, 9.0b excelled on FT, MG preferred 7.1/8.0 below 32 threads
//! but 8.1/9.0b above (turning around again past 128), CG was
//! indifferent, and the applications (Table 4) saw either nothing
//! (INS3D) or a low-CPU-count 7.1 advantage (OVERFLOW-D).
//!
//! We cannot re-implement four Fortran code generators; instead each
//! version carries an explicit per-kernel-shape efficiency factor,
//! calibrated to Fig. 8 / Table 4 — a documented substitution (see
//! DESIGN.md). The *mechanism* (different versions scheduling
//! different loop shapes differently, with thread-count-dependent
//! crossovers) is preserved.

use serde::{Deserialize, Serialize};

/// An installed Intel compiler version.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CompilerVersion {
    /// 7.1(.042) — the system default.
    V7_1,
    /// 8.0(.070).
    V8_0,
    /// 8.1(.026) — latest official release at the time.
    V8_1,
    /// 9.0(.012) beta.
    V9_0Beta,
}

impl CompilerVersion {
    /// All four versions in release order.
    pub const ALL: [CompilerVersion; 4] = [
        CompilerVersion::V7_1,
        CompilerVersion::V8_0,
        CompilerVersion::V8_1,
        CompilerVersion::V9_0Beta,
    ];

    /// Version string as `module load` would show it.
    pub fn name(self) -> &'static str {
        match self {
            CompilerVersion::V7_1 => "7.1",
            CompilerVersion::V8_0 => "8.0",
            CompilerVersion::V8_1 => "8.1",
            CompilerVersion::V9_0Beta => "9.0b",
        }
    }
}

impl std::fmt::Display for CompilerVersion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The loop shapes that dominate each workload — what the code
/// generator actually differentiates on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KernelClass {
    /// Sparse matrix-vector products and irregular gathers (NPB CG).
    ConjugateGradient,
    /// Butterfly loops with strided complex accesses (NPB FT).
    Fourier,
    /// Stencil smoothing over a grid hierarchy (NPB MG).
    Multigrid,
    /// Dense 5×5 block solves along pencils (NPB BT / SP, BT-MZ, SP-MZ).
    BlockSolver,
    /// Gauss-Seidel line relaxation sweeps (INS3D).
    LineRelaxation,
    /// Pipelined LU-SGS hyperplane sweeps (OVERFLOW-D).
    LuSgs,
    /// Long-vector streaming (STREAM, DGEMM handled by BLAS).
    Streaming,
    /// Short-range force loops over neighbour lists (MD).
    ParticleForce,
}

impl CompilerVersion {
    /// Code-generation efficiency factor for a kernel shape when the
    /// run uses `units` parallel workers (threads for OpenMP codes,
    /// processes for MPI codes — Fig. 8's x-axis).
    ///
    /// Factors are relative to compiler 7.1 at small scale = 1.0.
    pub fn factor(self, kernel: KernelClass, units: u32) -> f64 {
        use CompilerVersion::*;
        use KernelClass::*;
        match kernel {
            // "All the compilers gave similar results on the CG
            // benchmark."
            ConjugateGradient => match self {
                V8_0 => 0.99,
                _ => 1.0,
            },
            // "The beta version of 9.0 performed very well on FT";
            // 8.0 produced the worst results in most cases.
            Fourier => match self {
                V7_1 => 1.0,
                V8_0 => 0.88,
                V8_1 => 0.97,
                V9_0Beta => 1.09,
            },
            // MG: "between 32 and 128 threads the 8.1 and 9.0b
            // compilers outperformed the 7.1 and 8.0; however, below 32
            // threads, the 7.1 and 8.0 compilers performed 20-30%
            // better... The scaling also turns around above 128."
            Multigrid => {
                let (lo, mid, hi) = match self {
                    V7_1 => (1.00, 1.00, 1.00),
                    V8_0 => (0.98, 0.85, 0.85),
                    V8_1 => (0.78, 1.12, 0.95),
                    V9_0Beta => (0.80, 1.15, 0.97),
                };
                if units < 32 {
                    lo
                } else if units <= 128 {
                    mid
                } else {
                    hi
                }
            }
            // BT: 8.0 worst, rest close.
            BlockSolver => match self {
                V7_1 => 1.0,
                V8_0 => 0.90,
                V8_1 => 0.98,
                V9_0Beta => 1.0,
            },
            // Table 4: INS3D "negligible difference" between 7.1/8.1.
            LineRelaxation => match self {
                V8_0 => 0.97,
                _ => 1.0,
            },
            // Table 4: OVERFLOW-D 7.1 superior "by 20-40% when running
            // on less than 64 processors, but almost identical on
            // larger counts".
            LuSgs => {
                if units < 64 {
                    match self {
                        V7_1 => 1.0,
                        V8_0 => 0.72,
                        V8_1 => 0.75,
                        V9_0Beta => 0.80,
                    }
                } else {
                    match self {
                        V8_0 => 0.97,
                        _ => 1.0,
                    }
                }
            }
            // Bandwidth-bound code: the compiler hardly matters.
            Streaming => 1.0,
            ParticleForce => match self {
                V8_0 => 0.96,
                _ => 1.0,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use CompilerVersion::*;
    use KernelClass::*;

    #[test]
    fn cg_is_compiler_insensitive() {
        for v in CompilerVersion::ALL {
            for units in [1, 32, 256] {
                let f = v.factor(ConjugateGradient, units);
                assert!((f - 1.0).abs() < 0.02, "{v} {units} {f}");
            }
        }
    }

    #[test]
    fn ft_beta_wins_v80_loses() {
        let units = 64;
        let f: Vec<f64> = CompilerVersion::ALL
            .iter()
            .map(|v| v.factor(Fourier, units))
            .collect();
        // 9.0b best, 8.0 worst.
        assert!(f[3] > f[0] && f[0] > f[1]);
        assert!(f[1] < f[2]);
    }

    #[test]
    fn mg_crossover_at_32_threads() {
        // Below 32 threads 7.1 beats 8.1 by 20-30%.
        let below = V7_1.factor(Multigrid, 16) / V8_1.factor(Multigrid, 16);
        assert!(below > 1.2 && below < 1.35, "ratio={below}");
        // Between 32 and 128, 8.1 wins.
        assert!(V8_1.factor(Multigrid, 64) > V7_1.factor(Multigrid, 64));
        // Above 128 the ordering turns again.
        assert!(V7_1.factor(Multigrid, 256) > V8_1.factor(Multigrid, 256));
    }

    #[test]
    fn ins3d_sees_negligible_compiler_difference() {
        let a = V7_1.factor(LineRelaxation, 36);
        let b = V8_1.factor(LineRelaxation, 36);
        assert!((a - b).abs() < 0.01);
    }

    #[test]
    fn overflowd_71_advantage_fades_at_64_procs() {
        let small = V7_1.factor(LuSgs, 32) / V8_1.factor(LuSgs, 32);
        assert!((1.2..=1.4).contains(&small), "ratio={small}");
        let large = V7_1.factor(LuSgs, 128) / V8_1.factor(LuSgs, 128);
        assert!((large - 1.0).abs() < 0.01);
    }

    #[test]
    fn names_render() {
        assert_eq!(V7_1.to_string(), "7.1");
        assert_eq!(V9_0Beta.to_string(), "9.0b");
    }

    #[test]
    fn v80_worst_in_most_cases() {
        // Count kernels where 8.0 is strictly the minimum at 64 units.
        let mut worst = 0;
        let kernels = [
            ConjugateGradient,
            Fourier,
            Multigrid,
            BlockSolver,
            LineRelaxation,
            LuSgs,
            ParticleForce,
        ];
        for k in kernels {
            let f80 = V8_0.factor(k, 64);
            if CompilerVersion::ALL
                .iter()
                .filter(|&&v| v != V8_0)
                .all(|v| v.factor(k, 64) >= f80)
            {
                worst += 1;
            }
        }
        assert!(
            worst >= 5,
            "8.0 should be worst in most cases, was in {worst}"
        );
    }
}
