//! A real miniature artificial-compressibility solver.
//!
//! The incompressible formulation gives no equation of state for
//! pressure; artificial compressibility adds `∂p/∂τ + β ∇·u = 0` and
//! iterates in pseudo-time τ until `∇·u → 0`. Each sub-iteration here
//! relaxes the implied pressure system with the line Gauss-Seidel
//! kernel (the production scheme per §3.4) and corrects the velocity
//! with the new pressure gradient — a projection-flavoured variant
//! that preserves the paper's cost structure: a handful of line sweeps
//! per sub-iteration, 10–30 sub-iterations per physical step.

use columbia_kernels::grid::Grid3;
use columbia_kernels::linegs::{line_sweep, LineGsCoeffs};

/// State of the miniature solver on one block.
#[derive(Debug, Clone)]
pub struct AcSolver {
    /// Velocity components.
    pub u: Grid3,
    /// Velocity components.
    pub v: Grid3,
    /// Velocity components.
    pub w: Grid3,
    /// Pressure.
    pub p: Grid3,
    /// Artificial compressibility parameter β.
    pub beta: f64,
    /// Divergence tolerance ending the pseudo-time loop.
    pub tolerance: f64,
}

impl AcSolver {
    /// A duct-flow test case: solenoidal background flow plus a
    /// mid-frequency divergent perturbation the pseudo-time loop must
    /// remove (line relaxation damps mid and high frequencies well —
    /// the regime the production solver operates in).
    pub fn duct(n: usize, beta: f64) -> Self {
        assert!(n >= 8);
        use std::f64::consts::PI;
        let f = |i: usize, j: usize, k: usize| {
            let (x, y, z) = (
                i as f64 / n as f64,
                j as f64 / n as f64,
                k as f64 / n as f64,
            );
            (x, y, z)
        };
        // div u = 0.2 cos(6πx) + 0.1 cos(6πz): zero-mean, mode 3.
        let u = Grid3::from_fn(n, n, n, |i, j, k| {
            let (x, y, _) = f(i, j, k);
            (PI * y).sin() + 0.2 * (6.0 * PI * x).sin() / (6.0 * PI)
        });
        let v = Grid3::from_fn(n, n, n, |i, j, k| {
            let (x, _, _) = f(i, j, k);
            0.3 * (PI * x).cos()
        });
        let w = Grid3::from_fn(n, n, n, |i, j, k| {
            let (_, y, z) = f(i, j, k);
            0.1 * y + 0.1 * (6.0 * PI * z).sin() / (6.0 * PI)
        });
        AcSolver {
            u,
            v,
            w,
            p: Grid3::zeros(n, n, n),
            beta,
            tolerance: 1e-4,
        }
    }

    /// Maximum absolute velocity divergence over interior points
    /// (central differences; boundary divergence is governed by the
    /// boundary conditions, not the pseudo-time loop).
    pub fn max_divergence(&self) -> f64 {
        let (ni, nj, nk) = self.u.dims();
        let n = ni as f64;
        let mut worst = 0.0f64;
        for i in 1..ni - 1 {
            for j in 1..nj - 1 {
                for k in 1..nk - 1 {
                    let div = (self.u.get(i + 1, j, k) - self.u.get(i - 1, j, k)) * 0.5 * n
                        + (self.v.get(i, j + 1, k) - self.v.get(i, j - 1, k)) * 0.5 * n
                        + (self.w.get(i, j, k + 1) - self.w.get(i, j, k - 1)) * 0.5 * n;
                    worst = worst.max(div.abs());
                }
            }
        }
        worst
    }

    /// One pseudo-time sub-iteration: relax the discrete pressure
    /// Poisson system `∇²(δp) = ∇·u` with line Gauss-Seidel, then
    /// correct the velocity with the pressure-increment gradient. The
    /// β parameter sets how aggressively the correction is applied —
    /// larger artificial compressibility couples pressure and
    /// divergence more strongly, as in the production scheme.
    pub fn sub_iteration(&mut self) {
        let (ni, nj, nk) = self.u.dims();
        let n = ni as f64;
        // RHS of the unscaled 7-point operator: A δp = −div / n².
        let mut rhs = Grid3::zeros(ni, nj, nk);
        for i in 0..ni {
            for j in 0..nj {
                for k in 0..nk {
                    let ip = (i + 1).min(ni - 1);
                    let im = i.saturating_sub(1);
                    let jp = (j + 1).min(nj - 1);
                    let jm = j.saturating_sub(1);
                    let kp = (k + 1).min(nk - 1);
                    let km = k.saturating_sub(1);
                    let div = (self.u.get(ip, j, k) - self.u.get(im, j, k)) * 0.5 * n
                        + (self.v.get(i, jp, k) - self.v.get(i, jm, k)) * 0.5 * n
                        + (self.w.get(i, j, kp) - self.w.get(i, j, km)) * 0.5 * n;
                    rhs.set(i, j, k, -div / (n * n));
                }
            }
        }
        // A few line sweeps on the pressure increment (δp starts at
        // 0) — the non-factored line relaxation of §3.4.
        let coeffs = LineGsCoeffs {
            diag: 6.2,
            off: 1.0,
        };
        let mut dp = Grid3::zeros(ni, nj, nk);
        for _ in 0..4 {
            line_sweep(&mut dp, &rhs, coeffs);
        }
        // Velocity correction u ← u − relax·∇(δp), p ← p + δp. The
        // relaxation approaches 1 as β grows.
        let relax = self.beta / (self.beta + 2.0);
        for i in 0..ni {
            for j in 0..nj {
                for k in 0..nk {
                    let ip = (i + 1).min(ni - 1);
                    let im = i.saturating_sub(1);
                    let jp = (j + 1).min(nj - 1);
                    let jm = j.saturating_sub(1);
                    let kp = (k + 1).min(nk - 1);
                    let km = k.saturating_sub(1);
                    let gx = (dp.get(ip, j, k) - dp.get(im, j, k)) * 0.5 * n;
                    let gy = (dp.get(i, jp, k) - dp.get(i, jm, k)) * 0.5 * n;
                    let gz = (dp.get(i, j, kp) - dp.get(i, j, km)) * 0.5 * n;
                    self.u.set(i, j, k, self.u.get(i, j, k) - relax * gx);
                    self.v.set(i, j, k, self.v.get(i, j, k) - relax * gy);
                    self.w.set(i, j, k, self.w.get(i, j, k) - relax * gz);
                    self.p.set(i, j, k, self.p.get(i, j, k) + dp.get(i, j, k));
                }
            }
        }
    }

    /// Run one physical time step: sub-iterate until the divergence
    /// tolerance or `max_subiters`; returns sub-iterations used.
    pub fn physical_step(&mut self, max_subiters: u32) -> u32 {
        let mut used = 0;
        while used < max_subiters {
            if self.max_divergence() < self.tolerance {
                break;
            }
            self.sub_iteration();
            used += 1;
        }
        used
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn divergence_decreases_monotonically_at_first() {
        let mut s = AcSolver::duct(12, 10.0);
        let d0 = s.max_divergence();
        s.sub_iteration();
        let d1 = s.max_divergence();
        assert!(d1 < d0, "d0={d0} d1={d1}");
    }

    #[test]
    fn pseudo_time_converges_within_30_subiters() {
        // §3.4: "the number ranges from 10 to 30 sub-iterations."
        let mut s = AcSolver::duct(12, 10.0);
        s.tolerance = 0.035 * s.max_divergence();
        let used = s.physical_step(30);
        assert!(
            (10..=30).contains(&used),
            "sub-iterations used: {used} (div={})",
            s.max_divergence()
        );
        assert!(s.max_divergence() <= s.tolerance);
    }

    #[test]
    fn already_divergence_free_needs_no_subiters() {
        let mut s = AcSolver::duct(10, 10.0);
        s.tolerance = 1e12; // everything passes
        assert_eq!(s.physical_step(30), 0);
    }

    #[test]
    fn pressure_field_develops() {
        let mut s = AcSolver::duct(10, 10.0);
        for _ in 0..5 {
            s.sub_iteration();
        }
        assert!(s.p.norm_inf() > 0.0);
    }

    #[test]
    fn beta_controls_coupling_strength() {
        let mut weak = AcSolver::duct(12, 2.0);
        let mut strong = AcSolver::duct(12, 20.0);
        let d0 = weak.max_divergence();
        for _ in 0..5 {
            weak.sub_iteration();
            strong.sub_iteration();
        }
        assert!(strong.max_divergence() < weak.max_divergence());
        assert!(weak.max_divergence() < d0);
    }
}
