//! INS3D: incompressible Navier-Stokes turbopump simulations (§3.4,
//! §4.1.3, Table 2, Table 4).
//!
//! INS3D solves the incompressible equations with Kwak's artificial
//! compressibility: a pressure time-derivative is added to the
//! continuity equation, and each physical time step iterates in
//! pseudo-time until the velocity divergence falls below tolerance
//! (typically 10–30 sub-iterations). The matrix equation is relaxed by
//! a non-factored Gauss-Seidel line scheme, and the code parallelizes
//! with NASA's MLP: forked groups + shared-memory arenas + OpenMP.
//!
//! * [`solver`] — a real miniature artificial-compressibility solver
//!   (divergence-driven pseudo-time loop over line relaxations);
//! * [`perf`] — the Table 2 runner: 66-million-point turbopump system,
//!   36 MLP groups × 1–14 OpenMP threads, 3700 vs BX2b, and the
//!   Table 4 compiler comparison.

pub mod perf;
pub mod solver;

pub use perf::{iteration_seconds, Ins3dConfig};
pub use solver::AcSolver;
