//! Table 2 / Table 4 runner: INS3D on the turbopump grid system.
//!
//! The paper's experiment: the 66-million-point, 267-block turbopump
//! grid, run under MLP with a fixed 36 groups and 1–14 OpenMP threads
//! per group, on the 3700 and the BX2b, with the 7.1 and 8.1 Fortran
//! compilers. Observations the model reproduces:
//!
//! * BX2b ≈ 50% faster per iteration (clock + the 9 MB L3 holding the
//!   line-solver's per-block hot set);
//! * good thread scaling to 8 threads, decaying beyond (the line
//!   relaxation carries a large serial fraction);
//! * negligible 7.1-vs-8.1 compiler difference (Table 4);
//! * MLP communication (shared-arena copies) is a minor cost.

use columbia_machine::node::{NodeKind, NodeModel};
use columbia_overset::group_blocks;
use columbia_overset::systems::turbopump;
use columbia_runtime::compiler::{CompilerVersion, KernelClass};
use columbia_runtime::compute::{NodeComputeModel, WorkPhase};
use columbia_runtime::mlp::MlpModel;
use columbia_runtime::pinning::Pinning;

/// Pseudo-time sub-iterations per physical step (§3.4: 10–30).
pub const SUBITERS: u32 = 20;

/// Flops per point per sub-iteration (RHS assembly + line solves).
pub const FLOPS_PER_POINT: f64 = 1200.0;

/// Memory traffic per point per sub-iteration, bytes.
pub const BYTES_PER_POINT: f64 = 950.0;

/// Hot working set per point: the line solver walks a few planes of
/// the current block (~30 bytes/point live) — between the 6 MB and
/// 9 MB L3 sizes for typical turbopump blocks, which is where the
/// BX2b's Table 2 advantage beyond clock comes from.
pub const HOT_BYTES_PER_POINT: f64 = 30.0;

/// Serial (un-threaded) fraction of a sub-iteration: the line
/// relaxation's recurrences limit loop-level OpenMP (Table 2's decay
/// beyond 8 threads).
pub const SERIAL_FRACTION: f64 = 0.25;

/// One Table 2 configuration.
#[derive(Debug, Clone, Copy)]
pub struct Ins3dConfig {
    /// Node flavour (Table 2 compares 3700 and BX2b).
    pub kind: NodeKind,
    /// MLP groups (36 in the paper's scaling study).
    pub groups: usize,
    /// OpenMP threads per group.
    pub threads: usize,
    /// Fortran compiler (Table 4: 7.1 vs 8.1).
    pub compiler: CompilerVersion,
}

impl Ins3dConfig {
    /// The paper's fixed-36-group configuration.
    pub fn table2(kind: NodeKind, threads: usize) -> Self {
        Ins3dConfig {
            kind,
            groups: 36,
            threads,
            compiler: CompilerVersion::V7_1,
        }
    }

    /// Total CPUs.
    pub fn total_cpus(&self) -> usize {
        self.groups * self.threads
    }
}

/// Seconds per physical time step (the Table 2 metric — 720 steps make
/// one inducer rotation).
pub fn iteration_seconds(cfg: &Ins3dConfig) -> f64 {
    assert!(cfg.groups >= 1 && cfg.threads >= 1);
    assert!(cfg.total_cpus() <= 512, "INS3D runs inside one Altix node");
    let system = turbopump(1.0);
    let node = NodeModel::new(cfg.kind);
    // Zone-to-group balance (or the whole system for one group).
    let max_load = if cfg.groups == 1 {
        system.total_points()
    } else {
        group_blocks(&system, cfg.groups).max_load()
    };
    let mean_block = system.total_points() / system.len() as u64;
    let model = NodeComputeModel::new(
        node,
        cfg.compiler,
        Pinning::Pinned,
        cfg.total_cpus() as u32,
        cfg.total_cpus() as u32,
        2.0,
        false,
    );
    let phase = WorkPhase::new(
        max_load as f64 * FLOPS_PER_POINT,
        max_load as f64 * BYTES_PER_POINT,
        mean_block * HOT_BYTES_PER_POINT as u64,
        0.045,
        KernelClass::LineRelaxation,
    )
    .with_serial_fraction(SERIAL_FRACTION);
    let compute = model.seconds(&phase, cfg.threads as u32) * SUBITERS as f64;
    // MLP boundary exchange per sub-iteration: each group archives its
    // fringe into the shared arena and reads its neighbours'.
    let mlp = MlpModel::new(node);
    let fringe_bytes: u64 = system
        .blocks
        .iter()
        .map(|b| b.fringe_points() * 4 * 8)
        .sum::<u64>()
        / cfg.groups.max(1) as u64;
    let comm = mlp.exchange(cfg.groups as u32, fringe_bytes, fringe_bytes) * SUBITERS as f64;
    compute + comm
}

/// Extension trait used by the Table 2 runner.
trait MaxLoad {
    fn max_load(&self) -> u64;
}

impl MaxLoad for columbia_overset::Grouping {
    fn max_load(&self) -> u64 {
        *self.load.iter().max().unwrap_or(&0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(kind: NodeKind, threads: usize) -> f64 {
        iteration_seconds(&Ins3dConfig::table2(kind, threads))
    }

    #[test]
    fn bx2b_is_about_50_pct_faster() {
        // Table 2: "the BX2b demonstrates approximately 50% faster
        // iteration time."
        for threads in [1usize, 4, 8] {
            let ratio = t(NodeKind::Altix3700, threads) / t(NodeKind::Bx2b, threads);
            assert!(
                (1.3..1.8).contains(&ratio),
                "threads={threads} ratio={ratio}"
            );
        }
    }

    #[test]
    fn thread_scaling_matches_table2_shape() {
        // BX2b column of Table 2: 825.2 → 508.4 → 331.8 → 287.7 →
        // 247.6 for 1, 2, 4, 8, 14 threads.
        let t1 = t(NodeKind::Bx2b, 1);
        let t2 = t(NodeKind::Bx2b, 2);
        let t8 = t(NodeKind::Bx2b, 8);
        let t14 = t(NodeKind::Bx2b, 14);
        let s2 = t1 / t2;
        let s8 = t1 / t8;
        let s14 = t1 / t14;
        assert!(
            (1.4..1.8).contains(&s2),
            "2-thread speedup {s2} (paper 1.62)"
        );
        assert!(
            (2.4..3.4).contains(&s8),
            "8-thread speedup {s8} (paper 2.87)"
        );
        assert!(
            (2.9..3.9).contains(&s14),
            "14-thread speedup {s14} (paper 3.33)"
        );
        // Decay beyond 8 threads: the 8→14 gain is small.
        assert!(s14 / s8 < 1.25, "scaling must decay beyond 8 threads");
    }

    #[test]
    fn single_group_baseline_is_much_slower() {
        let base = iteration_seconds(&Ins3dConfig {
            kind: NodeKind::Bx2b,
            groups: 1,
            threads: 1,
            compiler: CompilerVersion::V7_1,
        });
        let g36 = t(NodeKind::Bx2b, 1);
        let speedup = base / g36;
        // Table 2: 26430 / 825.2 ≈ 32x on 36 groups.
        assert!(
            (24.0..36.0).contains(&speedup),
            "36-group speedup {speedup}"
        );
    }

    #[test]
    fn compiler_difference_is_negligible() {
        // Table 4: "negligible difference in runtime per iteration".
        let v71 = iteration_seconds(&Ins3dConfig {
            compiler: CompilerVersion::V7_1,
            ..Ins3dConfig::table2(NodeKind::Bx2b, 4)
        });
        let v81 = iteration_seconds(&Ins3dConfig {
            compiler: CompilerVersion::V8_1,
            ..Ins3dConfig::table2(NodeKind::Bx2b, 4)
        });
        assert!((v71 / v81 - 1.0).abs() < 0.02, "{v71} vs {v81}");
    }

    #[test]
    fn groups_must_fit_the_node() {
        let cfg = Ins3dConfig::table2(NodeKind::Bx2b, 14);
        assert_eq!(cfg.total_cpus(), 504); // the paper's largest run
        assert!(iteration_seconds(&cfg) > 0.0);
    }

    #[test]
    #[should_panic(expected = "inside one Altix node")]
    fn oversubscription_rejected() {
        let cfg = Ins3dConfig {
            kind: NodeKind::Bx2b,
            groups: 36,
            threads: 16,
            compiler: CompilerVersion::V7_1,
        };
        iteration_seconds(&cfg);
    }
}
