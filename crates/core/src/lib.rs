//! `columbia` — a full reproduction of *An Application-Based
//! Performance Characterization of the Columbia Supercluster*
//! (Biswas, Djomehri, Hood, Jin, Kiris, Saini — SC 2005).
//!
//! Columbia was NASA's 10,240-processor SGI Altix supercluster. The
//! paper characterizes it with the HPC Challenge microbenchmarks, a
//! subset of the NAS Parallel Benchmarks (including the multi-zone
//! versions), a Lennard-Jones molecular dynamics code, and two
//! production overset-grid CFD applications (INS3D, OVERFLOW-D). This
//! workspace rebuilds all of that in Rust: a calibrated machine model
//! and discrete-event cluster simulator stand in for the hardware we
//! do not have (see `DESIGN.md` for the substitution table), while
//! every benchmark algorithm is implemented for real and verified on
//! the host.
//!
//! Quick start:
//!
//! ```
//! use columbia::experiments::{run, Experiment};
//!
//! // Regenerate the paper's Table 1 (node characteristics).
//! let report = run(Experiment::Table1);
//! assert!(report.to_text().contains("NUMAlink4"));
//! ```
//!
//! The sub-crates are re-exported under their domain names:
//! [`machine`], [`simnet`], [`runtime`], [`kernels`], [`hpcc`],
//! [`npb`], [`npbmz`], [`md`], [`overset`], [`ins3d`], [`overflowd`].

pub use columbia_hpcc as hpcc;
pub use columbia_ins3d as ins3d;
pub use columbia_kernels as kernels;
pub use columbia_machine as machine;
pub use columbia_md as md;
pub use columbia_npb as npb;
pub use columbia_npbmz as npbmz;
pub use columbia_obs as obs;
pub use columbia_overflowd as overflowd;
pub use columbia_overset as overset;
pub use columbia_par as par;
pub use columbia_runtime as runtime;
pub use columbia_simnet as simnet;

pub mod experiments;
pub mod manifest;
pub mod obs_report;
pub mod report;
pub mod spec;
pub mod store;
pub mod sweep;

pub use experiments::{run, run_with_jobs, Experiment};
pub use manifest::{ManifestBuilder, ResilienceSummary, RunManifest, Volatile};
pub use obs_report::{analysis_report, hotspot_report};
pub use report::{Report, ReportError};
pub use spec::{compile, load_and_compile, spec_hash, Spec, SpecError, SPEC_SCHEMA};
pub use store::{PointKey, PointStore, StoreError};
pub use sweep::{PointError, PointOutput, ResilienceOptions, SweepOutcome, SweepPlan, SweepStats};

/// Assert a computed `f64` matches a golden value within a relative
/// tolerance: `assert_close!(actual, expected, rel)`, optionally with a
/// context label as the fourth argument.
///
/// This is the comparison the golden-value regression suite
/// (`tests/golden_values.rs`) is built on. On failure the message spells
/// out the update path: golden values are changed *deliberately* —
/// re-derive the constant, update it in the test alongside a note in
/// EXPERIMENTS.md explaining what moved, never loosen the tolerance to
/// make a drift pass.
#[macro_export]
macro_rules! assert_close {
    ($actual:expr, $expected:expr, $rel:expr $(,)?) => {
        $crate::assert_close!($actual, $expected, $rel, stringify!($actual))
    };
    ($actual:expr, $expected:expr, $rel:expr, $what:expr $(,)?) => {{
        let actual: f64 = $actual;
        let expected: f64 = $expected;
        let rel: f64 = $rel;
        let diff = (actual - expected).abs();
        let tol = rel * expected.abs();
        assert!(
            diff <= tol,
            "{}: got {actual:.6e}, golden value is {expected:.6e} \
             (off by {:.2}%, tolerance {:.2}%)\n\
             If this change is intentional, update the golden value and \
             record the model change in EXPERIMENTS.md; do not widen the \
             tolerance.",
            $what,
            100.0 * diff / expected.abs(),
            100.0 * rel,
        );
    }};
}
