//! Sweep decomposition and the parallel sweep executor.
//!
//! Every experiment is a *sweep*: a list of independent points (one
//! discrete-event simulation each — a CPU count, a fabric, a fault
//! scenario) whose results are collated into a [`Report`] in a fixed,
//! paper-given order. A [`SweepPlan`] makes that structure explicit:
//! the report skeleton, the ordered list of [`SweepPoint`] jobs, and a
//! collation step. [`SweepPlan::run`] executes the points on a
//! [`ThreadPool`] — points may finish in any order, but every
//! [`PointOutput`] is keyed by its sweep index and reduced in canonical
//! order, so the resulting report is **bit-identical** to a serial run
//! regardless of scheduling (property-tested, and enforced by the CI
//! determinism gate diffing `repro --jobs 2` against `--jobs 1`).
//!
//! Error semantics are also canonical: every point runs to completion
//! and the error of the *lowest-indexed* failing point is returned, so
//! a parallel run cannot surface a different failure than the serial
//! one just because a later point crashed first.

use columbia_obs::sink;
use columbia_par::ThreadPool;
use columbia_simnet::SimError;

use crate::report::Report;

/// What one sweep point contributes to the report.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PointOutput {
    /// Rows this point appends, in order.
    pub rows: Vec<Vec<String>>,
    /// Notes this point appends (after all rows, in point order).
    pub notes: Vec<String>,
    /// Experiment-specific scalars for custom collation (e.g. the
    /// degraded sweep's per-scenario seconds-per-step, from which the
    /// collator derives the slowdown column).
    pub values: Vec<f64>,
}

impl PointOutput {
    /// A single-row output.
    pub fn row(cells: Vec<String>) -> Self {
        PointOutput {
            rows: vec![cells],
            ..PointOutput::default()
        }
    }

    /// A multi-row output.
    pub fn rows(rows: Vec<Vec<String>>) -> Self {
        PointOutput {
            rows,
            ..PointOutput::default()
        }
    }

    /// Attach a collation scalar.
    pub fn with_value(mut self, v: f64) -> Self {
        self.values.push(v);
        self
    }

    /// Attach a note.
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }
}

/// One independent sweep job: runs an isolated simulation (or a small
/// family of them) and returns its contribution to the report.
pub type SweepPoint = Box<dyn FnOnce() -> Result<PointOutput, SimError> + Send>;

/// Collation hook: builds the report body from the index-ordered point
/// outputs. The default appends every point's rows, then every point's
/// notes, in sweep order.
pub type Collate = Box<dyn FnOnce(&mut Report, Vec<PointOutput>)>;

/// An experiment decomposed into independent, index-keyed jobs plus a
/// deterministic reduction.
pub struct SweepPlan {
    /// Report id ("Table 2", "Fig. 5", …).
    pub id: String,
    /// Report title.
    pub title: String,
    /// Report column headers.
    pub headers: Vec<String>,
    points: Vec<SweepPoint>,
    /// Plan-level notes, appended after all point notes.
    notes: Vec<String>,
    collate: Option<Collate>,
}

impl SweepPlan {
    /// Start a plan with the report skeleton.
    pub fn new(id: &str, title: &str, headers: &[&str]) -> Self {
        SweepPlan {
            id: id.to_string(),
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            points: Vec::new(),
            notes: Vec::new(),
            collate: None,
        }
    }

    /// Append one sweep point. Index order is the collation order.
    pub fn point(
        &mut self,
        f: impl FnOnce() -> Result<PointOutput, SimError> + Send + 'static,
    ) -> &mut Self {
        self.points.push(Box::new(f));
        self
    }

    /// Append an infallible sweep point.
    pub fn point_ok(&mut self, f: impl FnOnce() -> PointOutput + Send + 'static) -> &mut Self {
        self.point(move || Ok(f()))
    }

    /// Append a plan-level note (rendered after every point's notes).
    pub fn note(&mut self, s: impl Into<String>) -> &mut Self {
        self.notes.push(s.into());
        self
    }

    /// Replace the default collation with a custom reduction over the
    /// index-ordered point outputs.
    pub fn collate_with(&mut self, f: impl FnOnce(&mut Report, Vec<PointOutput>) + 'static) {
        self.collate = Some(Box::new(f));
    }

    /// Number of sweep points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the plan has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Execute every point on `pool` and collate in canonical order.
    ///
    /// Each point runs under a [`sink::with_point`] attribution, so
    /// trace bundles deposited by worker threads drain in sweep order,
    /// not completion order. With a 1-thread pool this is exactly the
    /// serial path: points run in index order on the calling thread.
    pub fn run(self, pool: &ThreadPool) -> Result<Report, SimError> {
        let epoch = sink::next_epoch();
        let jobs: Vec<_> = self
            .points
            .into_iter()
            .enumerate()
            .map(|(idx, f)| move || sink::with_point(epoch, idx, f))
            .collect();
        let results = pool.run(jobs);
        // Canonical error: the lowest-indexed failure (results are
        // index-ordered, so the first error found is it).
        let mut outputs = Vec::with_capacity(results.len());
        for r in results {
            outputs.push(r?);
        }
        let mut report = Report::new(
            &self.id,
            &self.title,
            &self.headers.iter().map(String::as_str).collect::<Vec<_>>(),
        );
        match self.collate {
            Some(collate) => collate(&mut report, outputs),
            None => {
                for o in &outputs {
                    for row in &o.rows {
                        report.push_row(row.clone());
                    }
                }
                for o in outputs {
                    for note in o.notes {
                        report.note(note);
                    }
                }
            }
        }
        for note in self.notes {
            report.note(note);
        }
        Ok(report)
    }

    /// [`SweepPlan::run`] on a fresh pool of `jobs` threads.
    pub fn run_with_jobs(self, jobs: usize) -> Result<Report, SimError> {
        self.run(&ThreadPool::new(jobs))
    }
}

impl std::fmt::Debug for SweepPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SweepPlan")
            .field("id", &self.id)
            .field("points", &self.points.len())
            .field("custom_collate", &self.collate.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_plan() -> SweepPlan {
        let mut plan = SweepPlan::new("T", "demo", &["i", "sq"]);
        for i in 0..10u64 {
            plan.point_ok(move || {
                PointOutput::row(vec![i.to_string(), (i * i).to_string()]).with_value(i as f64)
            });
        }
        plan.note("plan note");
        plan
    }

    #[test]
    fn serial_and_parallel_reports_are_identical() {
        let serial = demo_plan().run_with_jobs(1).unwrap();
        for jobs in [2, 3, 7, 16] {
            let par = demo_plan().run_with_jobs(jobs).unwrap();
            assert_eq!(serial.to_text(), par.to_text(), "jobs={jobs}");
            assert_eq!(serial.to_json(), par.to_json(), "jobs={jobs}");
        }
    }

    #[test]
    fn rows_preserve_sweep_order_when_points_finish_out_of_order() {
        // Point i sleeps inversely to its index, so under any real
        // scheduler later points complete first; collation must not
        // leak insertion order into the report.
        let mut plan = SweepPlan::new("T", "ooo", &["i"]);
        for i in 0..8u64 {
            plan.point_ok(move || {
                std::thread::sleep(std::time::Duration::from_millis(2 * (8 - i)));
                PointOutput::row(vec![i.to_string()])
            });
        }
        let r = plan.run_with_jobs(4).unwrap();
        let got: Vec<&str> = r.rows.iter().map(|row| row[0].as_str()).collect();
        assert_eq!(got, ["0", "1", "2", "3", "4", "5", "6", "7"]);
    }

    #[test]
    fn lowest_indexed_error_wins() {
        let mk = |jobs: usize| {
            let mut plan = SweepPlan::new("T", "err", &["x"]);
            // Point 2 fails fast, point 1 fails slow — the canonical
            // error is point 1's, under any scheduling.
            plan.point_ok(|| PointOutput::row(vec!["ok".into()]));
            plan.point(|| {
                std::thread::sleep(std::time::Duration::from_millis(30));
                Err(SimError::WatchdogTimeout {
                    events: 1,
                    budget: 1,
                })
            });
            plan.point(|| {
                Err(SimError::WatchdogTimeout {
                    events: 2,
                    budget: 2,
                })
            });
            plan.run_with_jobs(jobs).unwrap_err()
        };
        for jobs in [1, 4] {
            let SimError::WatchdogTimeout { events, .. } = mk(jobs) else {
                panic!("expected watchdog");
            };
            assert_eq!(events, 1, "jobs={jobs}");
        }
    }

    #[test]
    fn custom_collation_sees_outputs_in_index_order() {
        let mut plan = demo_plan();
        plan.collate_with(|report, outputs| {
            let base = outputs[0].values[0].max(1.0);
            for o in &outputs {
                let mut row = o.rows[0].clone();
                row[1] = format!("{:.1}", o.values[0] / base);
                report.push_row(row);
            }
        });
        let r = plan.run_with_jobs(3).unwrap();
        assert_eq!(r.rows[5], vec!["5", "5.0"]);
        assert_eq!(r.notes, vec!["plan note"]);
    }

    #[test]
    fn point_notes_follow_rows_then_plan_notes() {
        let mut plan = SweepPlan::new("T", "notes", &["x"]);
        plan.point_ok(|| PointOutput::row(vec!["a".into()]).with_note("from point 0"));
        plan.point_ok(|| PointOutput::row(vec!["b".into()]).with_note("from point 1"));
        plan.note("plan-level");
        let r = plan.run_with_jobs(2).unwrap();
        assert_eq!(r.notes, vec!["from point 0", "from point 1", "plan-level"]);
    }
}
