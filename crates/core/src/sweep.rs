//! Sweep decomposition and the parallel sweep executor.
//!
//! Every experiment is a *sweep*: a list of independent points (one
//! discrete-event simulation each — a CPU count, a fabric, a fault
//! scenario) whose results are collated into a [`Report`] in a fixed,
//! paper-given order. A [`SweepPlan`] makes that structure explicit:
//! the report skeleton, the ordered list of [`SweepPoint`] jobs, and a
//! collation step. [`SweepPlan::run`] executes the points on a
//! [`ThreadPool`] — points may finish in any order, but every
//! [`PointOutput`] is keyed by its sweep index and reduced in canonical
//! order, so the resulting report is **bit-identical** to a serial run
//! regardless of scheduling (property-tested, and enforced by the CI
//! determinism gate diffing `repro --jobs 2` against `--jobs 1`).
//!
//! Error semantics are also canonical: the error of the
//! *lowest-indexed* failing point is returned — every point at or
//! below that index runs to completion, so a parallel run cannot
//! surface a different failure than the serial one just because a
//! later point crashed first.
//!
//! # Resilient execution
//!
//! [`SweepPlan::run_resilient`] is the batch-campaign variant of
//! [`SweepPlan::run`]: instead of aborting the sweep at the first
//! failure it runs *everything*, under a resilience policy
//! ([`ResilienceOptions`]):
//!
//! * a panicking point becomes a typed [`PointError::Panicked`] in the
//!   outcome (the pool is never poisoned — see `columbia-par`);
//! * a hung point is abandoned at its wall-clock deadline and becomes
//!   [`PointError::DeadlineExceeded`];
//! * failed attempts are retried up to `max_retries` times on a seeded
//!   deterministic backoff;
//! * with a checkpoint store attached ([`PointStore`]), every
//!   completed point is persisted, and `resume` serves previously
//!   checkpointed points without re-running them;
//! * failures degrade the report to diagnostic rows (one per failed
//!   point) instead of discarding the sweep, and the whole episode is
//!   summarized as `sweep.*` counters and a per-point latency
//!   histogram in the `columbia-obs` sink when one is installed.
//!
//! A resilient run in which every point succeeds produces a report
//! **byte-identical** to [`SweepPlan::run`]'s — and because collation
//! is deterministic in sweep-index order, a run killed mid-sweep and
//! resumed from its checkpoint directory is byte-identical to an
//! uninterrupted one (gated by the CI resume smoke test).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use columbia_obs::metrics::Metrics;
use columbia_obs::sink::{self, TraceBundle};
use columbia_par::{panic_message, JobFailure, JobStatus, RunOptions, ThreadPool};
use columbia_simnet::SimError;

use crate::report::Report;
use crate::store::{Fnv128, PointKey, PointStore};

/// What one sweep point contributes to the report.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PointOutput {
    /// Rows this point appends, in order.
    pub rows: Vec<Vec<String>>,
    /// Notes this point appends (after all rows, in point order).
    pub notes: Vec<String>,
    /// Experiment-specific scalars for custom collation (e.g. the
    /// degraded sweep's per-scenario seconds-per-step, from which the
    /// collator derives the slowdown column).
    pub values: Vec<f64>,
}

impl PointOutput {
    /// A single-row output.
    pub fn row(cells: Vec<String>) -> Self {
        PointOutput {
            rows: vec![cells],
            ..PointOutput::default()
        }
    }

    /// A multi-row output.
    pub fn rows(rows: Vec<Vec<String>>) -> Self {
        PointOutput {
            rows,
            ..PointOutput::default()
        }
    }

    /// Attach a collation scalar.
    pub fn with_value(mut self, v: f64) -> Self {
        self.values.push(v);
        self
    }

    /// Attach a note.
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }
}

/// One independent sweep job: runs an isolated simulation (or a small
/// family of them) and returns its contribution to the report.
///
/// Points are `Fn` (not `FnOnce`) so the resilient executor can retry
/// them, and `Sync` so a deadline watchdog can re-invoke them from a
/// supervised thread. In practice every experiment's points capture
/// only small `Copy` configuration (CPU counts, seeds, fabric enums),
/// so the stronger bound costs nothing.
pub type SweepPoint = Box<dyn Fn() -> Result<PointOutput, SimError> + Send + Sync>;

/// Collation hook: builds the report body from the index-ordered point
/// outputs. The default appends every point's rows, then every point's
/// notes, in sweep order.
pub type Collate = Box<dyn FnOnce(&mut Report, Vec<PointOutput>)>;

/// Why one sweep point produced no usable output under
/// [`SweepPlan::run_resilient`]. Ordered by sweep index in
/// [`SweepOutcome::failures`], so the first element is the canonical
/// lowest-indexed failure.
#[derive(Debug, Clone, PartialEq)]
pub enum PointError {
    /// The simulation itself failed (deadlock, placement mismatch, …).
    Sim {
        /// Sweep index of the failing point.
        point: usize,
        /// The underlying simulation error.
        error: SimError,
    },
    /// The point panicked on every attempt.
    Panicked {
        /// Sweep index of the failing point.
        point: usize,
        /// Attempts made before giving up.
        attempts: u32,
        /// Rendered panic payload of the final attempt.
        message: String,
    },
    /// The point overran its wall-clock deadline on every attempt and
    /// was abandoned by the watchdog.
    DeadlineExceeded {
        /// Sweep index of the failing point.
        point: usize,
        /// Attempts made before giving up.
        attempts: u32,
        /// The configured per-attempt deadline.
        deadline: Duration,
    },
    /// The point's result slot was never settled — a pool invariant
    /// was violated. Surfaced as data, never as a panic.
    Lost {
        /// Sweep index of the lost point.
        point: usize,
    },
}

impl PointError {
    /// Sweep index of the failing point.
    pub fn point(&self) -> usize {
        match self {
            PointError::Sim { point, .. }
            | PointError::Panicked { point, .. }
            | PointError::DeadlineExceeded { point, .. }
            | PointError::Lost { point } => *point,
        }
    }

    /// One-line description without the `point N` prefix (diagnostic
    /// rows carry the index in their own cell). Multi-line simulation
    /// errors (deadlock reports) are truncated to their first line.
    pub fn describe(&self) -> String {
        match self {
            PointError::Sim { error, .. } => {
                let text = error.to_string();
                text.lines()
                    .next()
                    .unwrap_or("simulation error")
                    .to_string()
            }
            PointError::Panicked {
                attempts, message, ..
            } => {
                let first = message.lines().next().unwrap_or("");
                format!("panicked after {attempts} attempt(s): {first}")
            }
            PointError::DeadlineExceeded {
                attempts, deadline, ..
            } => format!(
                "exceeded its {:.3}s deadline on all {attempts} attempt(s)",
                deadline.as_secs_f64()
            ),
            PointError::Lost { .. } => "result lost (pool invariant violated)".to_string(),
        }
    }
}

impl std::fmt::Display for PointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "point {}: {}", self.point(), self.describe())
    }
}

impl std::error::Error for PointError {}

/// Policy knobs for [`SweepPlan::run_resilient`].
#[derive(Debug, Default)]
pub struct ResilienceOptions {
    /// Per-attempt wall-clock deadline for one point. `None` disables
    /// the watchdog.
    pub deadline: Option<Duration>,
    /// Retries after a panicked or timed-out attempt (0 = one attempt).
    pub max_retries: u32,
    /// Base unit of the exponential retry backoff.
    pub backoff_base: Option<Duration>,
    /// Seed for the deterministic backoff schedule.
    pub backoff_seed: u64,
    /// Checkpoint store: every completed point is persisted here.
    pub store: Option<PointStore>,
    /// Serve previously checkpointed points from `store` instead of
    /// re-running them.
    pub resume: bool,
    /// Experiment id for checkpoint keys; defaults to the plan id.
    pub experiment: Option<String>,
}

/// What a resilient sweep did, beyond the report itself.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepStats {
    /// Total sweep points in the plan.
    pub points: usize,
    /// Points served from the checkpoint store without re-running.
    pub resumed: usize,
    /// Extra attempts across all points (attempts beyond the first).
    pub retries: u64,
    /// Points whose final attempt panicked.
    pub panics: u64,
    /// Points whose final attempt overran the deadline.
    pub timeouts: u64,
    /// Points that produced no usable output (all failure kinds).
    pub failed: usize,
    /// Checkpoint writes that failed (the sweep continues; the point
    /// just is not resumable).
    pub checkpoint_errors: u64,
}

impl SweepStats {
    /// Render as ordered JSON — the `stats` object inside both the run
    /// manifest and `repro`'s `SWEEP JSON` stderr record.
    pub fn to_value(&self) -> serde_json::Value {
        use serde_json::Value;
        let mut v = Value::object();
        v.set("points", Value::Number(self.points as f64));
        v.set("resumed", Value::Number(self.resumed as f64));
        v.set("retries", Value::Number(self.retries as f64));
        v.set("panics", Value::Number(self.panics as f64));
        v.set("timeouts", Value::Number(self.timeouts as f64));
        v.set("failed", Value::Number(self.failed as f64));
        v.set(
            "checkpoint_errors",
            Value::Number(self.checkpoint_errors as f64),
        );
        v
    }
}

/// The result of [`SweepPlan::run_resilient`]: the (possibly degraded)
/// report, the typed failures in sweep-index order, and run statistics.
#[derive(Debug)]
pub struct SweepOutcome {
    /// The collated report. With failures, it carries one diagnostic
    /// row and one note per failed point.
    pub report: Report,
    /// Typed per-point failures, ordered by sweep index.
    pub failures: Vec<PointError>,
    /// Execution statistics (resumed/retried/failed counts).
    pub stats: SweepStats,
}

impl SweepOutcome {
    /// The canonical lowest-indexed failure, if any point failed.
    pub fn first_failure(&self) -> Option<&PointError> {
        self.failures.first()
    }

    /// Whether every point produced a usable output.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }
}

/// An experiment decomposed into independent, index-keyed jobs plus a
/// deterministic reduction.
pub struct SweepPlan {
    /// Report id ("Table 2", "Fig. 5", …).
    pub id: String,
    /// Report title.
    pub title: String,
    /// Report column headers.
    pub headers: Vec<String>,
    points: Vec<SweepPoint>,
    /// Plan-level notes, appended after all point notes.
    notes: Vec<String>,
    collate: Option<Collate>,
    /// Per-simulation PDES thread count requested by the spec's
    /// `[defaults] sim_threads` key (`None` = runner decides; the CLI
    /// flag overrides either way). Purely an execution hint: it cannot
    /// change any simulated result, so it is excluded from
    /// [`SweepPlan::fingerprint`] and checkpoints resolve across it.
    pub sim_threads: Option<usize>,
}

impl SweepPlan {
    /// Start a plan with the report skeleton.
    pub fn new(id: &str, title: &str, headers: &[&str]) -> Self {
        SweepPlan {
            id: id.to_string(),
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            points: Vec::new(),
            notes: Vec::new(),
            collate: None,
            sim_threads: None,
        }
    }

    /// Append one sweep point. Index order is the collation order.
    pub fn point(
        &mut self,
        f: impl Fn() -> Result<PointOutput, SimError> + Send + Sync + 'static,
    ) -> &mut Self {
        self.points.push(Box::new(f));
        self
    }

    /// Append an infallible sweep point.
    pub fn point_ok(&mut self, f: impl Fn() -> PointOutput + Send + Sync + 'static) -> &mut Self {
        self.point(move || Ok(f()))
    }

    /// Append a plan-level note (rendered after every point's notes).
    pub fn note(&mut self, s: impl Into<String>) -> &mut Self {
        self.notes.push(s.into());
        self
    }

    /// Replace the default collation with a custom reduction over the
    /// index-ordered point outputs.
    pub fn collate_with(&mut self, f: impl FnOnce(&mut Report, Vec<PointOutput>) + 'static) {
        self.collate = Some(Box::new(f));
    }

    /// Number of sweep points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the plan has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// A 64-bit fingerprint of the plan's *shape* — id, title, headers,
    /// and point count — folded into every checkpoint key. Point
    /// closures are opaque, but every experiment derives its machine
    /// config, program, fault plan, and seed deterministically from its
    /// id, so a shape change is exactly when old checkpoint entries
    /// must stop resolving.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv128::new();
        h.update(b"columbia-sweep-plan\0");
        h.update(self.id.as_bytes());
        h.update(b"\0");
        h.update(self.title.as_bytes());
        h.update(b"\0");
        for header in &self.headers {
            h.update(header.as_bytes());
            h.update(b"\0");
        }
        h.update(&(self.points.len() as u64).to_le_bytes());
        h.finish() as u64
    }

    /// Execute every point on `pool` and collate in canonical order.
    ///
    /// Each point runs under a [`sink::with_point`] attribution, so
    /// trace bundles deposited by worker threads drain in sweep order,
    /// not completion order. With a 1-thread pool this is exactly the
    /// serial path: points run in index order on the calling thread.
    ///
    /// On failure the error of the **lowest-indexed** failing point is
    /// returned: every point at or below that index runs to
    /// completion (so the minimum is exact), while points above it may
    /// be cancelled before starting — all in-flight workers are still
    /// joined before this returns. A panicking point completes the
    /// same settlement and is then re-raised on the calling thread.
    pub fn run(self, pool: &ThreadPool) -> Result<Report, SimError> {
        let epoch = sink::next_epoch();
        let jobs: Vec<SweepPoint> = self
            .points
            .into_iter()
            .enumerate()
            .map(|(idx, f)| Box::new(move || sink::with_point(epoch, idx, &f)) as SweepPoint)
            .collect();
        let opts = RunOptions {
            fail_fast: true,
            ..RunOptions::default()
        };
        let statuses =
            pool.run_governed(jobs, &opts, |r: &Result<PointOutput, SimError>| r.is_err());
        let mut outputs = Vec::with_capacity(statuses.len());
        for (idx, status) in statuses.into_iter().enumerate() {
            match status {
                JobStatus::Done(outcome) => match outcome.result {
                    Ok(Ok(output)) => outputs.push(output),
                    // Canonical error: scanning in index order, the
                    // first failure *is* the lowest-indexed one.
                    Ok(Err(sim)) => return Err(sim),
                    Err(failure) => panic!("sweep point {idx} {failure}"),
                },
                // Fail-fast only skips indices above the lowest
                // failure, and scanning returns at that failure first —
                // reaching here means the pool broke an invariant.
                JobStatus::Skipped | JobStatus::Lost => {
                    panic!("sweep point {idx} was never settled")
                }
            }
        }
        Ok(build_report(
            &self.id,
            &self.title,
            &self.headers,
            self.collate,
            self.notes,
            outputs,
        ))
    }

    /// [`SweepPlan::run`] on a fresh pool of `jobs` threads.
    pub fn run_with_jobs(self, jobs: usize) -> Result<Report, SimError> {
        self.run(&ThreadPool::new(jobs))
    }

    /// Execute every point under the resilience policy in `opts` and
    /// collate whatever survives — the campaign-grade path behind
    /// `repro --resume/--point-deadline/--max-retries`.
    ///
    /// Unlike [`SweepPlan::run`] this never fails and never panics on
    /// a point failure: every point is attempted (with deadline, retry,
    /// and checkpoint semantics per `opts`), failed points degrade to
    /// one diagnostic row plus one note each, and the typed failures
    /// come back in [`SweepOutcome::failures`], ordered by sweep index.
    /// When every point succeeds the report is byte-identical to the
    /// strict path's.
    pub fn run_resilient(self, pool: &ThreadPool, opts: ResilienceOptions) -> SweepOutcome {
        let n = self.points.len();
        let experiment = opts.experiment.unwrap_or_else(|| self.id.clone());
        let fingerprint = self.fingerprint();
        let store = opts.store.map(Arc::new);
        let checkpoint_errors = Arc::new(AtomicU64::new(0));
        let mut resumed = 0usize;

        let epoch = sink::next_epoch();
        let jobs: Vec<SweepPoint> = self
            .points
            .into_iter()
            .enumerate()
            .map(|(idx, f)| {
                let key = PointKey {
                    experiment: experiment.clone(),
                    fingerprint,
                    index: idx,
                };
                if opts.resume {
                    if let Some(cached) = store.as_ref().and_then(|s| s.load(&key)) {
                        // Serve the checkpoint; the point never runs.
                        resumed += 1;
                        return Box::new(move || Ok(cached.clone())) as SweepPoint;
                    }
                }
                let store = store.clone();
                let checkpoint_errors = Arc::clone(&checkpoint_errors);
                Box::new(move || {
                    let out = sink::with_point(epoch, idx, &f);
                    // Checkpoint from the worker, so a kill between
                    // points loses at most the in-flight ones. A failed
                    // write only costs resumability, never the sweep.
                    if let (Ok(output), Some(store)) = (&out, &store) {
                        if store.save(&key, output).is_err() {
                            checkpoint_errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    out
                }) as SweepPoint
            })
            .collect();

        let run_opts = RunOptions {
            deadline: opts.deadline,
            max_retries: opts.max_retries,
            backoff_seed: opts.backoff_seed,
            backoff_base: opts
                .backoff_base
                .unwrap_or(RunOptions::default().backoff_base),
            fail_fast: false,
        };
        let statuses = pool.run_governed(jobs, &run_opts, |r: &Result<PointOutput, SimError>| {
            r.is_err()
        });

        let mut stats = SweepStats {
            points: n,
            resumed,
            ..SweepStats::default()
        };
        let mut outputs = Vec::with_capacity(n);
        let mut failures = Vec::new();
        let mut latencies = Vec::with_capacity(n);
        for (idx, status) in statuses.into_iter().enumerate() {
            match status {
                JobStatus::Done(outcome) => {
                    stats.retries += u64::from(outcome.attempts.saturating_sub(1));
                    latencies.push(outcome.elapsed);
                    match outcome.result {
                        Ok(Ok(output)) => outputs.push(output),
                        Ok(Err(error)) => {
                            failures.push(PointError::Sim { point: idx, error });
                            outputs.push(PointOutput::default());
                        }
                        Err(JobFailure::Panicked { message }) => {
                            stats.panics += 1;
                            failures.push(PointError::Panicked {
                                point: idx,
                                attempts: outcome.attempts,
                                message,
                            });
                            outputs.push(PointOutput::default());
                        }
                        Err(JobFailure::DeadlineExceeded { deadline }) => {
                            stats.timeouts += 1;
                            failures.push(PointError::DeadlineExceeded {
                                point: idx,
                                attempts: outcome.attempts,
                                deadline,
                            });
                            outputs.push(PointOutput::default());
                        }
                    }
                }
                JobStatus::Skipped | JobStatus::Lost => {
                    failures.push(PointError::Lost { point: idx });
                    outputs.push(PointOutput::default());
                }
            }
        }
        stats.failed = failures.len();
        stats.checkpoint_errors = checkpoint_errors.load(Ordering::Relaxed);

        let mut report = if failures.is_empty() {
            // The all-success path is the strict path: byte-identical.
            build_report(
                &self.id,
                &self.title,
                &self.headers,
                self.collate,
                self.notes,
                outputs,
            )
        } else {
            // A custom collator may assume well-formed outputs (e.g.
            // divide by a point's collation scalar); failed points hand
            // it empty placeholders, so collation itself is isolated.
            let (id, title, headers) = (self.id, self.title, self.headers);
            let plan_notes = self.notes;
            let collate = self.collate;
            match catch_unwind(AssertUnwindSafe(|| {
                build_report(&id, &title, &headers, collate, plan_notes.clone(), outputs)
            })) {
                Ok(report) => report,
                Err(payload) => {
                    let mut report = Report::new(
                        &id,
                        &title,
                        &headers.iter().map(String::as_str).collect::<Vec<_>>(),
                    );
                    report.note(format!(
                        "collation degraded: collator panicked over failed points ({})",
                        panic_message(payload)
                    ));
                    for note in plan_notes {
                        report.note(note);
                    }
                    report
                }
            }
        };

        // Diagnostic rows: one per failed point, at exact header arity
        // so the renderer never flags them as malformed.
        for failure in &failures {
            let width = report.headers.len().max(1);
            let mut row = vec![String::new(); width];
            if width > 1 {
                row[0] = format!("[point {}]", failure.point());
                row[1] = failure.describe();
            } else {
                row[0] = format!("[point {}] {}", failure.point(), failure.describe());
            }
            report.push_row(row);
            report.note(format!(
                "point {} failed: {}",
                failure.point(),
                failure.describe()
            ));
        }

        if sink::is_active() {
            let mut metrics = Metrics::new();
            metrics.inc("sweep.points", stats.points as u64);
            metrics.inc("sweep.resumed", stats.resumed as u64);
            metrics.inc("sweep.retries", stats.retries);
            metrics.inc("sweep.panics", stats.panics);
            metrics.inc("sweep.timeouts", stats.timeouts);
            metrics.inc("sweep.failed", stats.failed as u64);
            metrics.inc("sweep.checkpoint_errors", stats.checkpoint_errors);
            for elapsed in &latencies {
                metrics.observe("sweep.point_seconds", elapsed.as_secs_f64());
            }
            // Headline latency percentiles, so consumers read the
            // distribution without re-deriving it from the buckets.
            if let Some(h) = metrics.histogram("sweep.point_seconds") {
                let h = h.clone();
                metrics.gauge("sweep.point_seconds_p50", h.percentile(50.0));
                metrics.gauge("sweep.point_seconds_p95", h.percentile(95.0));
                metrics.gauge("sweep.point_seconds_p99", h.percentile(99.0));
            }
            // Recorded outside any point attribution, so it drains
            // after the sweep's per-point bundles.
            sink::record(TraceBundle {
                label: format!("sweep resilience: {}", report.id),
                metrics,
                ..TraceBundle::default()
            });
        }

        SweepOutcome {
            report,
            failures,
            stats,
        }
    }

    /// [`SweepPlan::run_resilient`] on a fresh pool of `jobs` threads.
    pub fn run_resilient_with_jobs(self, jobs: usize, opts: ResilienceOptions) -> SweepOutcome {
        self.run_resilient(&ThreadPool::new(jobs), opts)
    }
}

/// The shared collation tail: report skeleton, default or custom body,
/// then plan notes. Both executors end here, which is what makes a
/// clean resilient run byte-identical to the strict path.
fn build_report(
    id: &str,
    title: &str,
    headers: &[String],
    collate: Option<Collate>,
    plan_notes: Vec<String>,
    outputs: Vec<PointOutput>,
) -> Report {
    let mut report = Report::new(
        id,
        title,
        &headers.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    match collate {
        Some(collate) => collate(&mut report, outputs),
        None => {
            for o in &outputs {
                for row in &o.rows {
                    report.push_row(row.clone());
                }
            }
            for o in outputs {
                for note in o.notes {
                    report.note(note);
                }
            }
        }
    }
    for note in plan_notes {
        report.note(note);
    }
    report
}

impl std::fmt::Debug for SweepPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SweepPlan")
            .field("id", &self.id)
            .field("points", &self.points.len())
            .field("custom_collate", &self.collate.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::PointStore;
    use std::sync::atomic::AtomicU32;

    fn demo_plan() -> SweepPlan {
        let mut plan = SweepPlan::new("T", "demo", &["i", "sq"]);
        for i in 0..10u64 {
            plan.point_ok(move || {
                PointOutput::row(vec![i.to_string(), (i * i).to_string()]).with_value(i as f64)
            });
        }
        plan.note("plan note");
        plan
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "columbia-sweep-test-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ))
    }

    #[test]
    fn serial_and_parallel_reports_are_identical() {
        let serial = demo_plan().run_with_jobs(1).unwrap();
        for jobs in [2, 3, 7, 16] {
            let par = demo_plan().run_with_jobs(jobs).unwrap();
            assert_eq!(serial.to_text(), par.to_text(), "jobs={jobs}");
            assert_eq!(serial.to_json(), par.to_json(), "jobs={jobs}");
        }
    }

    #[test]
    fn rows_preserve_sweep_order_when_points_finish_out_of_order() {
        // Point i sleeps inversely to its index, so under any real
        // scheduler later points complete first; collation must not
        // leak insertion order into the report.
        let mut plan = SweepPlan::new("T", "ooo", &["i"]);
        for i in 0..8u64 {
            plan.point_ok(move || {
                std::thread::sleep(std::time::Duration::from_millis(2 * (8 - i)));
                PointOutput::row(vec![i.to_string()])
            });
        }
        let r = plan.run_with_jobs(4).unwrap();
        let got: Vec<&str> = r.rows.iter().map(|row| row[0].as_str()).collect();
        assert_eq!(got, ["0", "1", "2", "3", "4", "5", "6", "7"]);
    }

    #[test]
    fn lowest_indexed_error_wins() {
        let mk = |jobs: usize| {
            let mut plan = SweepPlan::new("T", "err", &["x"]);
            // Point 2 fails fast, point 1 fails slow — the canonical
            // error is point 1's, under any scheduling.
            plan.point_ok(|| PointOutput::row(vec!["ok".into()]));
            plan.point(|| {
                std::thread::sleep(std::time::Duration::from_millis(30));
                Err(SimError::WatchdogTimeout {
                    events: 1,
                    budget: 1,
                })
            });
            plan.point(|| {
                Err(SimError::WatchdogTimeout {
                    events: 2,
                    budget: 2,
                })
            });
            plan.run_with_jobs(jobs).unwrap_err()
        };
        for jobs in [1, 4] {
            let SimError::WatchdogTimeout { events, .. } = mk(jobs) else {
                panic!("expected watchdog");
            };
            assert_eq!(events, 1, "jobs={jobs}");
        }
    }

    #[test]
    fn custom_collation_sees_outputs_in_index_order() {
        let mut plan = demo_plan();
        plan.collate_with(|report, outputs| {
            let base = outputs[0].values[0].max(1.0);
            for o in &outputs {
                let mut row = o.rows[0].clone();
                row[1] = format!("{:.1}", o.values[0] / base);
                report.push_row(row);
            }
        });
        let r = plan.run_with_jobs(3).unwrap();
        assert_eq!(r.rows[5], vec!["5", "5.0"]);
        assert_eq!(r.notes, vec!["plan note"]);
    }

    #[test]
    fn point_notes_follow_rows_then_plan_notes() {
        let mut plan = SweepPlan::new("T", "notes", &["x"]);
        plan.point_ok(|| PointOutput::row(vec!["a".into()]).with_note("from point 0"));
        plan.point_ok(|| PointOutput::row(vec!["b".into()]).with_note("from point 1"));
        plan.note("plan-level");
        let r = plan.run_with_jobs(2).unwrap();
        assert_eq!(r.notes, vec!["from point 0", "from point 1", "plan-level"]);
    }

    // ---- resilient execution ----

    #[test]
    fn clean_resilient_run_is_byte_identical_to_strict() {
        let strict = demo_plan().run_with_jobs(3).unwrap();
        for jobs in [1, 4] {
            let out = demo_plan().run_resilient_with_jobs(jobs, ResilienceOptions::default());
            assert!(out.is_clean());
            assert_eq!(strict.to_text(), out.report.to_text(), "jobs={jobs}");
            assert_eq!(out.stats.points, 10);
            assert_eq!(out.stats.failed, 0);
        }
    }

    #[test]
    fn panicking_point_degrades_to_a_diagnostic_row() {
        let mut plan = SweepPlan::new("T", "panicky", &["i", "v"]);
        plan.point_ok(|| PointOutput::row(vec!["0".into(), "ok".into()]));
        plan.point_ok(|| panic!("boom at point 1"));
        plan.point_ok(|| PointOutput::row(vec!["2".into(), "ok".into()]));
        let out = plan.run_resilient_with_jobs(2, ResilienceOptions::default());
        assert_eq!(out.stats.failed, 1);
        assert_eq!(out.stats.panics, 1);
        let failure = out.first_failure().unwrap();
        assert_eq!(failure.point(), 1);
        assert!(matches!(failure, PointError::Panicked { .. }));
        // Successful rows survive; the failed point is a diagnostic row.
        let text = out.report.to_text();
        assert!(text.contains("ok"), "{text}");
        assert!(text.contains("[point 1]"), "{text}");
        assert!(text.contains("boom at point 1"), "{text}");
        assert!(!out.report.notes.iter().any(|n| n.contains("malformed")));
    }

    #[test]
    fn sim_error_degrades_instead_of_aborting() {
        let mut plan = SweepPlan::new("T", "simerr", &["x"]);
        plan.point_ok(|| PointOutput::row(vec!["fine".into()]));
        plan.point(|| {
            Err(SimError::WatchdogTimeout {
                events: 9,
                budget: 3,
            })
        });
        let out = plan.run_resilient_with_jobs(1, ResilienceOptions::default());
        assert_eq!(out.stats.failed, 1);
        assert!(matches!(
            out.first_failure(),
            Some(PointError::Sim { point: 1, .. })
        ));
        assert!(out.report.to_text().contains("[point 1]"));
    }

    #[test]
    fn retries_rescue_a_transient_panic() {
        // Panics on the first two attempts, succeeds on the third.
        let hits = Arc::new(AtomicU32::new(0));
        let mut plan = SweepPlan::new("T", "flaky", &["x"]);
        let h = Arc::clone(&hits);
        plan.point_ok(move || {
            if h.fetch_add(1, Ordering::SeqCst) < 2 {
                panic!("transient");
            }
            PointOutput::row(vec!["recovered".into()])
        });
        let opts = ResilienceOptions {
            max_retries: 3,
            backoff_base: Some(Duration::from_millis(1)),
            ..ResilienceOptions::default()
        };
        let out = plan.run_resilient_with_jobs(1, opts);
        assert!(out.is_clean(), "{:?}", out.failures);
        assert_eq!(out.stats.retries, 2);
        assert!(out.report.to_text().contains("recovered"));
    }

    #[test]
    fn retries_are_bounded() {
        let hits = Arc::new(AtomicU32::new(0));
        let mut plan = SweepPlan::new("T", "hopeless", &["x"]);
        let h = Arc::clone(&hits);
        plan.point_ok(move || -> PointOutput {
            h.fetch_add(1, Ordering::SeqCst);
            panic!("always")
        });
        let opts = ResilienceOptions {
            max_retries: 2,
            backoff_base: Some(Duration::from_millis(1)),
            ..ResilienceOptions::default()
        };
        let out = plan.run_resilient_with_jobs(1, opts);
        assert_eq!(hits.load(Ordering::SeqCst), 3, "1 attempt + 2 retries");
        assert_eq!(out.stats.retries, 2);
        assert!(matches!(
            out.first_failure(),
            Some(PointError::Panicked { attempts: 3, .. })
        ));
    }

    #[test]
    fn deadline_abandons_a_hung_point() {
        let mut plan = SweepPlan::new("T", "hung", &["x"]);
        plan.point_ok(|| PointOutput::row(vec!["quick".into()]));
        plan.point_ok(|| {
            std::thread::sleep(Duration::from_secs(30));
            PointOutput::row(vec!["never".into()])
        });
        let opts = ResilienceOptions {
            deadline: Some(Duration::from_millis(50)),
            ..ResilienceOptions::default()
        };
        let start = std::time::Instant::now();
        let out = plan.run_resilient_with_jobs(2, opts);
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "watchdog must not wait out the hang"
        );
        assert_eq!(out.stats.timeouts, 1);
        assert!(matches!(
            out.first_failure(),
            Some(PointError::DeadlineExceeded { point: 1, .. })
        ));
        assert!(out.report.to_text().contains("quick"));
    }

    #[test]
    fn failed_custom_collation_degrades_to_notes_not_a_crash() {
        // The collator indexes into every point's values — a failed
        // point's empty placeholder would panic it.
        let mut plan = SweepPlan::new("T", "fragile", &["i", "rel"]);
        plan.point_ok(|| PointOutput::row(vec!["0".into(), "x".into()]).with_value(2.0));
        plan.point_ok(|| panic!("no value from me"));
        plan.collate_with(|report, outputs| {
            for o in &outputs {
                report.push_row(vec!["r".into(), format!("{:.1}", o.values[0])]);
            }
        });
        let out = plan.run_resilient_with_jobs(1, ResilienceOptions::default());
        assert_eq!(out.stats.failed, 1);
        let text = out.report.to_text();
        assert!(text.contains("collation degraded"), "{text}");
        assert!(text.contains("[point 1]"), "{text}");
    }

    #[test]
    fn checkpoint_then_resume_is_byte_identical_and_skips_completed_points() {
        let runs = Arc::new(AtomicU32::new(0));
        let mk = |runs: &Arc<AtomicU32>| {
            let mut plan = SweepPlan::new("T", "ckpt", &["i"]);
            for i in 0..6u64 {
                let runs = Arc::clone(runs);
                plan.point_ok(move || {
                    runs.fetch_add(1, Ordering::SeqCst);
                    PointOutput::row(vec![i.to_string()]).with_value(i as f64 * 0.1)
                });
            }
            plan
        };
        let baseline = mk(&runs).run_with_jobs(1).unwrap();

        let dir = temp_dir("resume");
        let opts = |resume| ResilienceOptions {
            store: Some(PointStore::open(dir.clone()).unwrap()),
            resume,
            ..ResilienceOptions::default()
        };
        runs.store(0, Ordering::SeqCst);
        let first = mk(&runs).run_resilient_with_jobs(2, opts(false));
        assert!(first.is_clean());
        assert_eq!(runs.load(Ordering::SeqCst), 6);
        assert_eq!(baseline.to_text(), first.report.to_text());

        // Resume with a fully-populated store: nothing re-runs.
        runs.store(0, Ordering::SeqCst);
        let resumed = mk(&runs).run_resilient_with_jobs(2, opts(true));
        assert_eq!(runs.load(Ordering::SeqCst), 0, "all points resumed");
        assert_eq!(resumed.stats.resumed, 6);
        assert_eq!(baseline.to_text(), resumed.report.to_text());

        // Truncate the store (simulate a kill mid-sweep): only the
        // missing points re-run, and the report is still identical.
        let store = PointStore::open(dir.clone()).unwrap();
        let victims: Vec<_> = std::fs::read_dir(store.dir())
            .unwrap()
            .flatten()
            .take(3)
            .map(|e| e.path())
            .collect();
        for v in &victims {
            std::fs::remove_file(v).unwrap();
        }
        runs.store(0, Ordering::SeqCst);
        let partial = mk(&runs).run_resilient_with_jobs(2, opts(true));
        assert_eq!(runs.load(Ordering::SeqCst), 3, "only missing points run");
        assert_eq!(partial.stats.resumed, 3);
        assert_eq!(baseline.to_text(), partial.report.to_text());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_is_sensitive_to_plan_shape() {
        let base = demo_plan().fingerprint();
        assert_eq!(base, demo_plan().fingerprint(), "stable across builds");
        let mut other = demo_plan();
        other.point_ok(PointOutput::default);
        assert_ne!(base, other.fingerprint(), "point count matters");
        let renamed = SweepPlan::new("T2", "demo", &["i", "sq"]);
        assert_ne!(base, renamed.fingerprint(), "id matters");
    }
}
