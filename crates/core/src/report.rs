//! Report tables: the common output format of every experiment.

use std::fmt;

use serde::Serialize;

/// A structurally invalid [`Report`] mutation, from the strict
/// [`Report::try_push_row`] API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReportError {
    /// Row cell count differs from the header count.
    RowWidth {
        /// Cells supplied.
        got: usize,
        /// Cells expected (one per header).
        want: usize,
    },
}

impl fmt::Display for ReportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReportError::RowWidth { got, want } => {
                write!(f, "row width {got} does not match {want} header(s)")
            }
        }
    }
}

impl std::error::Error for ReportError {}

/// A rendered experiment result.
#[derive(Debug, Clone, Serialize)]
pub struct Report {
    /// Which paper artifact this regenerates ("Table 2", "Fig. 5", …).
    pub id: String,
    /// Human title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
    /// Free-form notes (calibration caveats, paper anchor values).
    pub notes: Vec<String>,
}

impl Report {
    /// Start a report.
    pub fn new(id: &str, title: &str, headers: &[&str]) -> Self {
        Report {
            id: id.to_string(),
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append one row, degrading gracefully on a width mismatch.
    ///
    /// A wrong-width row is a bug in the experiment that produced it,
    /// but a half-rendered report is more useful than a crashed run, so
    /// this truncates (or pads with `""`) the row to the header width
    /// and records a diagnostic note instead of panicking. Use
    /// [`Report::try_push_row`] to reject the mismatch explicitly.
    pub fn push_row(&mut self, mut cells: Vec<String>) {
        if cells.len() != self.headers.len() {
            let e = ReportError::RowWidth {
                got: cells.len(),
                want: self.headers.len(),
            };
            self.note(format!("malformed row ({e}): {}", cells.join(" | ")));
            cells.resize(self.headers.len(), String::new());
        }
        self.rows.push(cells);
    }

    /// Append one row, rejecting a width mismatch with a typed error.
    pub fn try_push_row(&mut self, cells: Vec<String>) -> Result<(), ReportError> {
        if cells.len() != self.headers.len() {
            return Err(ReportError::RowWidth {
                got: cells.len(),
                want: self.headers.len(),
            });
        }
        self.rows.push(cells);
        Ok(())
    }

    /// Append a note.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Render as aligned plain text.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = format!("== {} — {} ==\n", self.id, self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("note: {n}\n"));
        }
        out
    }

    /// The report as a JSON value tree (field order preserved:
    /// id, title, headers, rows, notes).
    pub fn to_value(&self) -> serde_json::Value {
        use serde_json::Value;
        let strings =
            |v: &[String]| Value::Array(v.iter().map(|s| Value::String(s.clone())).collect());
        let mut obj = Value::object();
        obj.set("id", Value::String(self.id.clone()));
        obj.set("title", Value::String(self.title.clone()));
        obj.set("headers", strings(&self.headers));
        obj.set(
            "rows",
            Value::Array(self.rows.iter().map(|r| strings(r)).collect()),
        );
        obj.set("notes", strings(&self.notes));
        obj
    }

    /// Render as pretty-printed JSON (via [`Report::to_value`] and the
    /// shared serializer, rather than hand-rolled string pasting).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(&self.to_value())
    }
}

/// Format seconds with sensible precision.
pub fn secs(t: f64) -> String {
    if t >= 100.0 {
        format!("{t:.0}")
    } else if t >= 1.0 {
        format!("{t:.2}")
    } else if t >= 1e-3 {
        format!("{:.2} ms", t * 1e3)
    } else {
        format!("{:.2} us", t * 1e6)
    }
}

/// Format bytes/s as GB/s.
pub fn gbs(b: f64) -> String {
    format!("{:.2}", b / 1e9)
}

/// Format a Gflop/s value.
pub fn gf(v: f64) -> String {
    format!("{v:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_text() {
        let mut r = Report::new("Table X", "demo", &["a", "long-header"]);
        r.push_row(vec!["1".into(), "2".into()]);
        r.note("hello");
        let t = r.to_text();
        assert!(t.contains("Table X"));
        assert!(t.contains("long-header"));
        assert!(t.contains("note: hello"));
    }

    #[test]
    fn json_round_trips_fields() {
        let mut r = Report::new("Fig. 9", "demo \"quoted\"", &["x", "y"]);
        r.push_row(vec!["42".into(), "weird\ncell\t\"".into()]);
        r.note("caveat");
        let j = r.to_json();
        // Field order is part of the format: id, title, headers, rows,
        // notes — downstream diffs rely on it.
        let order: Vec<usize> = [
            "\"id\"",
            "\"title\"",
            "\"headers\"",
            "\"rows\"",
            "\"notes\"",
        ]
        .iter()
        .map(|k| j.find(k).unwrap())
        .collect();
        assert!(order.windows(2).all(|w| w[0] < w[1]), "field order: {j}");
        // And the output must parse back to exactly the same data.
        let v = serde_json::from_str(&j).unwrap();
        assert_eq!(v.get("id").and_then(|x| x.as_str()), Some("Fig. 9"));
        assert_eq!(
            v.get("title").and_then(|x| x.as_str()),
            Some("demo \"quoted\"")
        );
        let rows = v.get("rows").and_then(|x| x.as_array()).unwrap();
        assert_eq!(rows.len(), 1);
        let row = rows[0].as_array().unwrap();
        assert_eq!(row[1].as_str(), Some("weird\ncell\t\""));
        assert_eq!(
            v.get("notes").and_then(|x| x.as_array()).unwrap()[0].as_str(),
            Some("caveat")
        );
    }

    #[test]
    fn mismatched_row_rejected_by_strict_api() {
        let mut r = Report::new("T", "t", &["a", "b"]);
        let err = r.try_push_row(vec!["only-one".into()]).unwrap_err();
        assert_eq!(err, ReportError::RowWidth { got: 1, want: 2 });
        assert!(r.rows.is_empty());
        assert!(err.to_string().contains("row width 1"));
    }

    #[test]
    fn mismatched_row_degrades_gracefully() {
        let mut r = Report::new("T", "t", &["a", "b"]);
        r.push_row(vec!["short".into()]);
        r.push_row(vec!["x".into(), "y".into(), "extra".into()]);
        // Both rows land, normalised to the header width, and each
        // mismatch leaves a diagnostic note.
        assert_eq!(r.rows, vec![vec!["short", ""], vec!["x", "y"]]);
        assert_eq!(r.notes.len(), 2);
        assert!(r.notes[0].contains("malformed row"));
        // The degraded report still renders.
        assert!(r.to_text().contains("short"));
    }

    #[test]
    fn formatters() {
        assert_eq!(secs(1234.5), "1234");
        assert_eq!(secs(0.5), "500.00 ms");
        assert_eq!(secs(2e-6), "2.00 us");
        assert_eq!(gbs(3.2e9), "3.20");
        assert_eq!(gf(0.5), "0.500");
    }
}
