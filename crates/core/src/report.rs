//! Report tables: the common output format of every experiment.

use serde::Serialize;

/// A rendered experiment result.
#[derive(Debug, Clone, Serialize)]
pub struct Report {
    /// Which paper artifact this regenerates ("Table 2", "Fig. 5", …).
    pub id: String,
    /// Human title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
    /// Free-form notes (calibration caveats, paper anchor values).
    pub notes: Vec<String>,
}

impl Report {
    /// Start a report.
    pub fn new(id: &str, title: &str, headers: &[&str]) -> Self {
        Report {
            id: id.to_string(),
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append one row.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells);
    }

    /// Append a note.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Render as aligned plain text.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = format!("== {} — {} ==\n", self.id, self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("note: {n}\n"));
        }
        out
    }

    /// Render as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        use serde_json::{array, quote};
        let strings = |v: &[String]| array(v.iter().map(|s| quote(s)));
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"id\": {},\n", quote(&self.id)));
        out.push_str(&format!("  \"title\": {},\n", quote(&self.title)));
        out.push_str(&format!("  \"headers\": {},\n", strings(&self.headers)));
        out.push_str(&format!(
            "  \"rows\": {},\n",
            array(self.rows.iter().map(|r| strings(r)))
        ));
        out.push_str(&format!("  \"notes\": {}\n", strings(&self.notes)));
        out.push('}');
        out
    }
}

/// Format seconds with sensible precision.
pub fn secs(t: f64) -> String {
    if t >= 100.0 {
        format!("{t:.0}")
    } else if t >= 1.0 {
        format!("{t:.2}")
    } else if t >= 1e-3 {
        format!("{:.2} ms", t * 1e3)
    } else {
        format!("{:.2} us", t * 1e6)
    }
}

/// Format bytes/s as GB/s.
pub fn gbs(b: f64) -> String {
    format!("{:.2}", b / 1e9)
}

/// Format a Gflop/s value.
pub fn gf(v: f64) -> String {
    format!("{v:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_text() {
        let mut r = Report::new("Table X", "demo", &["a", "long-header"]);
        r.push_row(vec!["1".into(), "2".into()]);
        r.note("hello");
        let t = r.to_text();
        assert!(t.contains("Table X"));
        assert!(t.contains("long-header"));
        assert!(t.contains("note: hello"));
    }

    #[test]
    fn json_round_trips_fields() {
        let mut r = Report::new("Fig. 9", "demo", &["x"]);
        r.push_row(vec!["42".into()]);
        let j = r.to_json();
        assert!(j.contains("\"Fig. 9\""));
        assert!(j.contains("42"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        let mut r = Report::new("T", "t", &["a", "b"]);
        r.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(secs(1234.5), "1234");
        assert_eq!(secs(0.5), "500.00 ms");
        assert_eq!(secs(2e-6), "2.00 us");
        assert_eq!(gbs(3.2e9), "3.20");
        assert_eq!(gf(0.5), "0.500");
    }
}
