//! Render observability data ([`CommProfile`], [`Metrics`]) as
//! [`Report`] tables.
//!
//! The tracer (see `columbia-obs`) captures where every simulated
//! second went; this module turns that into the repo's standard
//! human-readable output: a top-N hotspot table of the ranks that
//! spent the most time waiting, annotated with the fabric counters
//! that explain *why* they waited.

use columbia_obs::{CommProfile, Metrics};

use crate::report::{secs, Report};

/// Top-N hotspot table: the ranks losing the most time to waiting,
/// with their compute/comm/wait attribution.
///
/// `id`/`title` name the report (e.g. the experiment that produced the
/// trace); `top_n` bounds the table size. Counter totals that explain
/// the waits (drops, retransmits, multiplexing) are appended as notes.
pub fn hotspot_report(
    id: &str,
    title: &str,
    profile: &CommProfile,
    metrics: &Metrics,
    top_n: usize,
) -> Report {
    let mut r = Report::new(
        id,
        title,
        &["rank", "compute", "comm", "wait", "total", "wait %"],
    );
    for p in profile.hotspots(top_n) {
        let pct = if p.total > 0.0 {
            100.0 * p.wait / p.total
        } else {
            0.0
        };
        r.push_row(vec![
            p.rank.to_string(),
            secs(p.compute),
            secs(p.comm),
            secs(p.wait),
            secs(p.total),
            format!("{pct:.1}%"),
        ]);
    }
    r.note(format!(
        "makespan {}; comm fraction {:.1}% across {} rank(s), {} phase(s)",
        secs(profile.makespan),
        100.0 * profile.comm_fraction(),
        profile.ranks.len(),
        profile.phases.len(),
    ));
    r.note(format!(
        "messages: {} sent, {} dropped, {} retransmit(s), {} multiplexed; {} bytes on the wire",
        metrics.counter("messages_sent"),
        metrics.counter("messages_dropped"),
        metrics.counter("retransmits"),
        metrics.counter("messages_multiplexed"),
        metrics.counter("bytes_sent"),
    ));
    if let Some(((from, to), bytes)) = metrics.links_by_bytes().into_iter().next() {
        r.note(format!(
            "heaviest link: node {from} -> node {to}, {bytes} bytes"
        ));
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use columbia_obs::{SpanEvent, SpanKind};

    fn profile() -> CommProfile {
        let spans = vec![
            SpanEvent {
                rank: 0,
                kind: SpanKind::Compute,
                start: 0.0,
                end: 4.0,
            },
            SpanEvent {
                rank: 1,
                kind: SpanKind::Compute,
                start: 0.0,
                end: 1.0,
            },
            SpanEvent {
                rank: 1,
                kind: SpanKind::RecvWait,
                start: 1.0,
                end: 4.0,
            },
        ];
        CommProfile::from_spans(&spans, 2)
    }

    #[test]
    fn hotspots_lead_with_the_most_waiting_rank() {
        let mut m = Metrics::default();
        m.inc("messages_sent", 1);
        m.add("bytes_sent", 1024);
        let r = hotspot_report("Trace", "demo", &profile(), &m, 10);
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[0][0], "1"); // rank 1 waited 3s, rank 0 none
        assert!(r.rows[0][5].starts_with("75.0"));
        assert!(r.notes.iter().any(|n| n.contains("1 sent")));
    }

    #[test]
    fn top_n_truncates() {
        let m = Metrics::default();
        let r = hotspot_report("Trace", "demo", &profile(), &m, 1);
        assert_eq!(r.rows.len(), 1);
    }
}
