//! Render observability data ([`CommProfile`], [`Metrics`]) as
//! [`Report`] tables.
//!
//! The tracer (see `columbia-obs`) captures where every simulated
//! second went; this module turns that into the repo's standard
//! human-readable output: a top-N hotspot table of the ranks that
//! spent the most time waiting, annotated with the fabric counters
//! that explain *why* they waited.

use columbia_obs::{Analysis, CommProfile, Metrics};

use crate::report::{secs, Report};

/// Top-N hotspot table: the ranks losing the most time to waiting,
/// with their compute/comm/wait attribution.
///
/// `id`/`title` name the report (e.g. the experiment that produced the
/// trace); `top_n` bounds the table size. Counter totals that explain
/// the waits (drops, retransmits, multiplexing) are appended as notes.
pub fn hotspot_report(
    id: &str,
    title: &str,
    profile: &CommProfile,
    metrics: &Metrics,
    top_n: usize,
) -> Report {
    let mut r = Report::new(
        id,
        title,
        &["rank", "compute", "comm", "wait", "total", "wait %"],
    );
    for p in profile.hotspots(top_n) {
        let pct = if p.total > 0.0 {
            100.0 * p.wait / p.total
        } else {
            0.0
        };
        r.push_row(vec![
            p.rank.to_string(),
            secs(p.compute),
            secs(p.comm),
            secs(p.wait),
            secs(p.total),
            format!("{pct:.1}%"),
        ]);
    }
    r.note(format!(
        "makespan {}; comm fraction {:.1}% across {} rank(s), {} phase(s)",
        secs(profile.makespan),
        100.0 * profile.comm_fraction(),
        profile.ranks.len(),
        profile.phases.len(),
    ));
    r.note(format!(
        "messages: {} sent, {} dropped, {} retransmit(s), {} multiplexed; {} bytes on the wire",
        metrics.counter("messages_sent"),
        metrics.counter("messages_dropped"),
        metrics.counter("retransmits"),
        metrics.counter("messages_multiplexed"),
        metrics.counter("bytes_sent"),
    ));
    if let Some(((from, to), bytes)) = metrics.links_by_bytes().into_iter().next() {
        r.note(format!(
            "heaviest link: node {from} -> node {to}, {bytes} bytes"
        ));
    }
    r
}

/// Critical-path attribution table: one row per analyzed simulation,
/// makespan split into the five bottleneck categories, the dominant
/// one named in the last column.
///
/// Each simulation also contributes a note with its load-imbalance
/// statistics and heaviest communicating rank pair — the "why" behind
/// the attribution. `id`/`title` name the report (normally the
/// experiment that produced the traces).
pub fn analysis_report(id: &str, title: &str, sims: &[(String, Analysis)]) -> Report {
    let mut r = Report::new(
        id,
        title,
        &[
            "sim",
            "makespan",
            "compute",
            "send",
            "recv-wait",
            "collective",
            "fault",
            "bottleneck",
        ],
    );
    for (label, a) in sims {
        let cp = &a.critical_path;
        let b = &cp.breakdown;
        r.push_row(vec![
            label.clone(),
            secs(cp.makespan),
            secs(b.compute),
            secs(b.send),
            secs(b.recv_wait),
            secs(b.collective),
            secs(b.fault_retransmit),
            b.dominant().name().to_string(),
        ]);
    }
    for (label, a) in sims {
        let cp = &a.critical_path;
        let imb = &a.imbalance;
        let mut note = format!(
            "{label}: path over {} rank(s) on {} node(s); busy max {} / mean {} / p95 {} (ratio {:.2}), idle {:.1}%",
            cp.by_rank.len(),
            cp.by_node.len().max(1),
            secs(imb.max_busy),
            secs(imb.mean_busy),
            secs(imb.p95_busy),
            imb.ratio(),
            100.0 * imb.idle_fraction,
        );
        if let Some(p) = a.heaviest_pair() {
            note.push_str(&format!(
                "; heaviest pair rank {} -> {} (node {} -> {}): {} msg, {} bytes, {}",
                p.from_rank,
                p.to_rank,
                p.from_node,
                p.to_node,
                p.messages,
                p.bytes,
                secs(p.cost),
            ));
        }
        if cp.truncated {
            note.push_str("; WARNING: path walk truncated");
        }
        r.note(note);
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use columbia_obs::{SpanEvent, SpanKind};

    fn profile() -> CommProfile {
        let spans = vec![
            SpanEvent {
                rank: 0,
                kind: SpanKind::Compute,
                start: 0.0,
                end: 4.0,
            },
            SpanEvent {
                rank: 1,
                kind: SpanKind::Compute,
                start: 0.0,
                end: 1.0,
            },
            SpanEvent {
                rank: 1,
                kind: SpanKind::RecvWait,
                start: 1.0,
                end: 4.0,
            },
        ];
        CommProfile::from_spans(&spans, 2)
    }

    #[test]
    fn hotspots_lead_with_the_most_waiting_rank() {
        let mut m = Metrics::default();
        m.inc("messages_sent", 1);
        m.add("bytes_sent", 1024);
        let r = hotspot_report("Trace", "demo", &profile(), &m, 10);
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[0][0], "1"); // rank 1 waited 3s, rank 0 none
        assert!(r.rows[0][5].starts_with("75.0"));
        assert!(r.notes.iter().any(|n| n.contains("1 sent")));
    }

    #[test]
    fn top_n_truncates() {
        let m = Metrics::default();
        let r = hotspot_report("Trace", "demo", &profile(), &m, 1);
        assert_eq!(r.rows.len(), 1);
    }

    #[test]
    fn analysis_report_names_the_bottleneck_per_sim() {
        use columbia_obs::tracer::{CausalEdge, EdgeKind, RecordingTracer, Tracer};
        let mut t = RecordingTracer::new();
        t.topology(&[0, 1]);
        t.span(0, SpanKind::Compute, 0.0, 1.0);
        t.span(0, SpanKind::Send, 1.0, 1.01);
        t.edge(&CausalEdge {
            kind: EdgeKind::Message,
            src_rank: 0,
            src_time: 1.0,
            dst_rank: 1,
            dst_time: 1.2,
            bytes: 4096,
            wire_time: 0.2,
            fault_delay: 0.0,
        });
        t.span(1, SpanKind::Compute, 0.0, 0.1);
        t.span(1, SpanKind::RecvWait, 0.1, 1.2);
        t.span(1, SpanKind::Compute, 1.2, 1.5);
        let a = columbia_obs::analyze(&t.into_bundle("demo"));
        let r = analysis_report("Analyze", "demo", &[("sim 0".into(), a)]);
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][0], "sim 0");
        assert_eq!(r.rows[0][7], "compute", "compute dominates this path");
        let note = &r.notes[0];
        assert!(note.contains("heaviest pair rank 0 -> 1"), "note: {note}");
        assert!(note.contains("idle"), "note: {note}");
        assert!(!note.contains("WARNING"));
        // The table renders and round-trips as JSON.
        assert!(r.to_text().contains("bottleneck"));
        assert!(serde_json::from_str(&r.to_json()).is_ok());
    }
}
