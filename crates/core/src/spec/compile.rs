//! Lower a validated [`Spec`] onto a [`SweepPlan`].
//!
//! Each `[[sweep]]` block expands its grid (cartesian product of the
//! declared axes, first axis slowest — matching the hard-coded plans'
//! loop nesting) into independent sweep points. A point binds its axis
//! values, evaluates derived parameters, builds one typed measurement
//! [`Task`], and renders the block's row/note templates from the
//! task's output bindings. All validation — parameter types, enum
//! names, template placeholders, vector-parameter shapes — happens
//! here at compile time, so a compiled point can only fail with the
//! simulator's own [`SimError`], exactly like a hard-coded plan.
//!
//! The measurement kinds deliberately call the same crate entry points
//! as `crate::experiments` (and, for the three free-form kinds
//! `table1`/`trace`/`columbia`, the *same functions*), which is what
//! makes the shipped `specs/` files byte-identical to their `--exp`
//! counterparts.

use std::collections::{BTreeMap, BTreeSet};

use columbia_hpcc::beff::{self, Pattern};
use columbia_hpcc::{dgemm, stream};
use columbia_ins3d::{iteration_seconds, Ins3dConfig};
use columbia_machine::cluster::{InterNodeFabric, NodeId};
use columbia_machine::node::NodeKind;
use columbia_md::scaling::weak_scaling_point;
use columbia_npb::{gflops_per_cpu, NpbBenchmark, NpbClass, Paradigm};
use columbia_npbmz::bench::{run as mz_run, MzBenchmark, MzRunConfig};
use columbia_npbmz::MzClass;
use columbia_overflowd::{step_times, OverflowConfig};
use columbia_runtime::compiler::CompilerVersion;
use columbia_runtime::pinning::Pinning;
use columbia_simnet::fabric::MptVersion;
use columbia_simnet::fault::DEFAULT_MULTIPLEX_QUEUE_PENALTY;
use columbia_simnet::{ConnectionLimit, ConnectionPolicy, FaultPlan, SimError};

use super::expr;
use super::model::{as_int, as_str, as_table, Fields, Spec, SweepSpec};
use super::toml::{Node, Span, Table, Value};
use super::{suggest, SpecError};
use crate::experiments::{
    columbia_full_output, columbia_subsystem_output, table1_output, trace_output, TraceParams,
};
use crate::report::{gbs, gf, secs};
use crate::sweep::{PointOutput, SweepPlan};

/// Ceiling on points one spec may expand to — a guard against
/// accidental (or fuzzed) combinatorial explosions.
const MAX_POINTS: usize = 100_000;

/// All measurement kinds, for unknown-kind suggestions.
const KINDS: [&str; 12] = [
    "table1",
    "beff-in-node",
    "beff-multi",
    "dgemm",
    "stream",
    "npb",
    "ins3d",
    "overflow",
    "mz",
    "md-weak",
    "trace",
    "columbia",
];

/// Parameters every kind accepts.
const GENERIC_PARAMS: [&str; 5] = ["row", "note", "value", "label", "expect_error"];

fn invalid(span: Span, message: impl Into<String>) -> SpecError {
    SpecError::Invalid {
        line: span.line,
        col: span.col,
        message: message.into(),
    }
}

/// Compile a validated spec into a runnable plan.
pub fn compile(spec: &Spec) -> Result<SweepPlan, SpecError> {
    let headers: Vec<&str> = spec.report.headers.iter().map(String::as_str).collect();
    let mut plan = SweepPlan::new(&spec.report.id, &spec.report.title, &headers);
    plan.sim_threads = spec.sim_threads;
    for sweep in &spec.sweeps {
        expand_sweep(&mut plan, sweep, spec)?;
    }
    if plan.is_empty() {
        return Err(invalid(
            Span { line: 1, col: 1 },
            "spec expands to zero sweep points",
        ));
    }
    if let Some(c) = &spec.collate {
        if c.column >= spec.report.headers.len() {
            return Err(invalid(
                c.span,
                format!(
                    "collate column {} is out of range (report has {} columns)",
                    c.column,
                    spec.report.headers.len()
                ),
            ));
        }
        let (column, decimals, suffix) = (c.column, c.decimals, c.suffix.clone());
        plan.collate_with(move |report, outputs| {
            let base = outputs
                .first()
                .and_then(|o| o.values.first())
                .copied()
                .unwrap_or(f64::NAN);
            for o in &outputs {
                for row in &o.rows {
                    let mut row = row.clone();
                    if let Some(v) = o.values.first() {
                        row[column] = format!("{:.*}{}", decimals, v / base, suffix);
                    }
                    report.push_row(row);
                }
            }
            for o in outputs {
                for note in o.notes {
                    report.note(note);
                }
            }
        });
    }
    for n in &spec.report.notes {
        plan.note(n);
    }
    Ok(plan)
}

// ---------------------------------------------------------------------------
// Templates

/// A parsed `"text {name} text"` template.
#[derive(Debug, Clone)]
struct Template {
    segs: Vec<Seg>,
}

#[derive(Debug, Clone)]
enum Seg {
    Lit(String),
    Var(String),
}

impl Template {
    fn parse(text: &str, span: Span) -> Result<Template, SpecError> {
        let mut segs = Vec::new();
        let mut lit = String::new();
        let mut chars = text.chars().peekable();
        while let Some(c) = chars.next() {
            match c {
                '{' if chars.peek() == Some(&'{') => {
                    chars.next();
                    lit.push('{');
                }
                '}' if chars.peek() == Some(&'}') => {
                    chars.next();
                    lit.push('}');
                }
                '{' => {
                    if !lit.is_empty() {
                        segs.push(Seg::Lit(std::mem::take(&mut lit)));
                    }
                    let mut name = String::new();
                    loop {
                        match chars.next() {
                            Some('}') => break,
                            Some(c)
                                if c.is_ascii_alphanumeric()
                                    || c == '_'
                                    || c == '.'
                                    || c == '-' =>
                            {
                                name.push(c)
                            }
                            Some(c) => {
                                return Err(invalid(
                                    span,
                                    format!(
                                        "bad character '{c}' in template placeholder \
                                         (names use A-Z a-z 0-9 _ . -)"
                                    ),
                                ))
                            }
                            None => {
                                return Err(invalid(
                                    span,
                                    format!("unclosed '{{' in template \"{text}\""),
                                ))
                            }
                        }
                    }
                    if name.is_empty() {
                        return Err(invalid(span, "empty placeholder '{}' in template"));
                    }
                    segs.push(Seg::Var(name));
                }
                c => lit.push(c),
            }
        }
        if !lit.is_empty() {
            segs.push(Seg::Lit(lit));
        }
        Ok(Template { segs })
    }

    fn vars(&self) -> impl Iterator<Item = &str> {
        self.segs.iter().filter_map(|s| match s {
            Seg::Var(v) => Some(v.as_str()),
            Seg::Lit(_) => None,
        })
    }

    /// Render against `bindings`; a name that is (unexpectedly) absent
    /// at runtime renders as its literal `{name}` rather than
    /// panicking.
    fn render(&self, bindings: &BTreeMap<String, String>) -> String {
        let mut out = String::new();
        for seg in &self.segs {
            match seg {
                Seg::Lit(l) => out.push_str(l),
                Seg::Var(v) => match bindings.get(v) {
                    Some(s) => out.push_str(s),
                    None => {
                        out.push('{');
                        out.push_str(v);
                        out.push('}');
                    }
                },
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Per-point parameter context

/// A vector-capable enum parameter's resolved values — `(parsed,
/// canonical name)` pairs — and whether the spec wrote it as a list
/// (which turns on suffixed output bindings).
type EnumVec<T> = (Vec<(T, &'static str)>, bool);

/// One point's view of a sweep block's parameters: the block entries
/// overlaid by this point's axis bindings and derived values, plus the
/// numeric environment for expressions.
struct ParamCtx<'a> {
    sweep: &'a SweepSpec,
    overlay: &'a BTreeMap<String, Node>,
    env: &'a BTreeMap<String, f64>,
    consumed: Vec<String>,
    /// Vector-valued parameter names seen so far (at most one allowed).
    vectors: Vec<&'static str>,
}

impl<'a> ParamCtx<'a> {
    fn new(
        sweep: &'a SweepSpec,
        overlay: &'a BTreeMap<String, Node>,
        env: &'a BTreeMap<String, f64>,
    ) -> Self {
        ParamCtx {
            sweep,
            overlay,
            env,
            consumed: Vec::new(),
            vectors: Vec::new(),
        }
    }

    fn get(&mut self, key: &str) -> Option<&'a Node> {
        self.consumed.push(key.to_string());
        if let Some(n) = self.overlay.get(key) {
            return Some(n);
        }
        self.sweep
            .params
            .iter()
            .find(|e| e.key == key)
            .map(|e| &e.node)
    }

    fn context(&self) -> String {
        format!(
            "[[sweep]] block {} (kind '{}')",
            self.sweep.index, self.sweep.kind
        )
    }

    fn missing(&self, key: &str) -> SpecError {
        invalid(
            self.sweep.kind_span,
            format!(
                "kind '{}' requires parameter '{key}' (block {})",
                self.sweep.kind, self.sweep.index
            ),
        )
    }

    /// A float: literal number, or a string evaluated as an expression
    /// over the point's numeric bindings.
    fn num_of(&self, node: &Node) -> Result<f64, SpecError> {
        match &node.value {
            Value::Int(i) => Ok(*i as f64),
            Value::Float(f) => Ok(*f),
            Value::Str(s) => expr::eval(s, self.env)
                .map_err(|m| invalid(node.span, format!("in expression \"{s}\": {m}"))),
            v => Err(invalid(
                node.span,
                format!(
                    "expected a number or expression string, found {}",
                    v.type_name()
                ),
            )),
        }
    }

    fn int_of(&self, node: &Node, what: &str) -> Result<i64, SpecError> {
        let v = self.num_of(node)?;
        if v.fract() != 0.0 || !(-9.0e15..9.0e15).contains(&v) {
            return Err(invalid(
                node.span,
                format!("{what} must be an integer, got {v}"),
            ));
        }
        Ok(v as i64)
    }

    fn take_f64(&mut self, key: &str) -> Result<Option<f64>, SpecError> {
        match self.get(key) {
            Some(n) => Ok(Some(self.num_of(n)?)),
            None => Ok(None),
        }
    }

    fn take_unsigned(&mut self, key: &str, max: i64) -> Result<Option<i64>, SpecError> {
        match self.get(key) {
            Some(n) => {
                let v = self.int_of(n, &format!("'{key}'"))?;
                if v < 0 || v > max {
                    return Err(invalid(
                        n.span,
                        format!("'{key}' must be between 0 and {max}, got {v}"),
                    ));
                }
                Ok(Some(v))
            }
            None => Ok(None),
        }
    }

    fn take_usize(&mut self, key: &str) -> Result<Option<usize>, SpecError> {
        Ok(self.take_unsigned(key, i64::MAX)?.map(|v| v as usize))
    }

    fn take_u32(&mut self, key: &str) -> Result<Option<u32>, SpecError> {
        Ok(self
            .take_unsigned(key, i64::from(u32::MAX))?
            .map(|v| v as u32))
    }

    fn take_u64(&mut self, key: &str) -> Result<Option<u64>, SpecError> {
        Ok(self.take_unsigned(key, i64::MAX)?.map(|v| v as u64))
    }

    fn take_str(&mut self, key: &str) -> Result<Option<(String, Span)>, SpecError> {
        match self.get(key) {
            Some(n) => Ok(Some((as_str(n, &format!("'{key}'"))?.to_string(), n.span))),
            None => Ok(None),
        }
    }

    fn take_bool(&mut self, key: &str) -> Result<Option<bool>, SpecError> {
        match self.get(key) {
            Some(n) => match &n.value {
                Value::Bool(b) => Ok(Some(*b)),
                v => Err(invalid(
                    n.span,
                    format!("'{key}' must be a boolean, found {}", v.type_name()),
                )),
            },
            None => Ok(None),
        }
    }

    /// A list of u32s: scalar promotes to a one-element list.
    fn take_u32_list(&mut self, key: &str) -> Result<Option<Vec<u32>>, SpecError> {
        match self.get(key) {
            None => Ok(None),
            Some(n) => match &n.value {
                Value::Array(items) => {
                    let mut out = Vec::new();
                    for item in items {
                        let v = self.int_of(item, &format!("'{key}' entry"))?;
                        if !(0..=i64::from(u32::MAX)).contains(&v) {
                            return Err(invalid(
                                item.span,
                                format!("'{key}' entry out of range: {v}"),
                            ));
                        }
                        out.push(v as u32);
                    }
                    if out.is_empty() {
                        return Err(invalid(n.span, format!("'{key}' must not be empty")));
                    }
                    Ok(Some(out))
                }
                _ => {
                    let v = self.int_of(n, &format!("'{key}'"))?;
                    if !(0..=i64::from(u32::MAX)).contains(&v) {
                        return Err(invalid(n.span, format!("'{key}' out of range: {v}")));
                    }
                    Ok(Some(vec![v as u32]))
                }
            },
        }
    }

    /// A vector-capable enum parameter: a string is a scalar, an array
    /// of strings is a vector (producing suffixed output bindings). At
    /// most one parameter per kind may be a vector.
    fn take_enum_vec<T: Copy>(
        &mut self,
        key: &'static str,
        parse: impl Fn(&str, Span) -> Result<(T, &'static str), SpecError>,
        default: (T, &'static str),
    ) -> Result<EnumVec<T>, SpecError> {
        match self.get(key) {
            None => Ok((vec![default], false)),
            Some(n) => match &n.value {
                Value::Str(s) => Ok((vec![parse(s, n.span)?], false)),
                Value::Array(items) => {
                    let mut out = Vec::new();
                    for item in items {
                        let s = as_str(item, &format!("'{key}' entry"))?;
                        out.push(parse(s, item.span)?);
                    }
                    if out.is_empty() {
                        return Err(invalid(n.span, format!("'{key}' must not be empty")));
                    }
                    if !self.vectors.is_empty() {
                        return Err(invalid(
                            n.span,
                            format!(
                                "only one parameter may be a list; '{}' already is",
                                self.vectors[0]
                            ),
                        ));
                    }
                    self.vectors.push(key);
                    Ok((out, true))
                }
                v => Err(invalid(
                    n.span,
                    format!(
                        "'{key}' must be a string or array of strings, found {}",
                        v.type_name()
                    ),
                )),
            },
        }
    }

    fn take_enum<T: Copy>(
        &mut self,
        key: &'static str,
        parse: impl Fn(&str, Span) -> Result<(T, &'static str), SpecError>,
    ) -> Result<Option<T>, SpecError> {
        match self.take_str(key)? {
            Some((s, span)) => Ok(Some(parse(&s, span)?.0)),
            None => Ok(None),
        }
    }

    /// Error on block parameters no stage consumed.
    fn finish(&self, kind_params: &[&str]) -> Result<(), SpecError> {
        for e in &self.sweep.params {
            if !self.consumed.iter().any(|c| c == &e.key) {
                let mut allowed: Vec<&str> = GENERIC_PARAMS.to_vec();
                allowed.extend_from_slice(kind_params);
                return Err(SpecError::UnknownKey {
                    line: e.key_span.line,
                    col: e.key_span.col,
                    key: e.key.clone(),
                    context: self.context(),
                    suggestion: suggest(&e.key, &allowed),
                });
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Enum parsers (lenient on case, canonical on output)

fn bad_enum(span: Span, what: &str, got: &str, options: &[&str]) -> SpecError {
    let suggestion = suggest(got, options)
        .map(|s| format!(" (did you mean '{s}'?)"))
        .unwrap_or_default();
    invalid(
        span,
        format!(
            "unknown {what} '{got}' (available: {}){suggestion}",
            options.join(", ")
        ),
    )
}

fn node_kind(s: &str, span: Span) -> Result<(NodeKind, &'static str), SpecError> {
    let k = match s.to_ascii_lowercase().as_str() {
        "3700" | "altix3700" => NodeKind::Altix3700,
        "bx2a" => NodeKind::Bx2a,
        "bx2b" => NodeKind::Bx2b,
        _ => return Err(bad_enum(span, "node kind", s, &["3700", "BX2a", "BX2b"])),
    };
    Ok((k, k.name()))
}

fn fabric(s: &str, span: Span) -> Result<(InterNodeFabric, &'static str), SpecError> {
    let f = match s.to_ascii_lowercase().as_str() {
        "numalink4" | "nl4" => InterNodeFabric::NumaLink4,
        "infiniband" | "ib" => InterNodeFabric::InfiniBand,
        _ => return Err(bad_enum(span, "fabric", s, &["NUMAlink4", "InfiniBand"])),
    };
    Ok((f, f.name()))
}

fn compiler(s: &str, span: Span) -> Result<(CompilerVersion, &'static str), SpecError> {
    for v in CompilerVersion::ALL {
        if v.name() == s {
            return Ok((v, v.name()));
        }
    }
    let names: Vec<&str> = CompilerVersion::ALL.iter().map(|v| v.name()).collect();
    Err(bad_enum(span, "compiler version", s, &names))
}

fn paradigm(s: &str, span: Span) -> Result<(Paradigm, &'static str), SpecError> {
    let p = match s.to_ascii_lowercase().as_str() {
        "mpi" => Paradigm::Mpi,
        "openmp" => Paradigm::OpenMp,
        _ => return Err(bad_enum(span, "paradigm", s, &["MPI", "OpenMP"])),
    };
    Ok((p, p.name()))
}

fn npb_bench(s: &str, span: Span) -> Result<(NpbBenchmark, &'static str), SpecError> {
    for b in NpbBenchmark::ALL {
        if b.name().eq_ignore_ascii_case(s) {
            return Ok((b, b.name()));
        }
    }
    let names: Vec<&str> = NpbBenchmark::ALL.iter().map(|b| b.name()).collect();
    Err(bad_enum(span, "NPB benchmark", s, &names))
}

fn npb_class(s: &str, span: Span) -> Result<(NpbClass, &'static str), SpecError> {
    for c in NpbClass::ALL {
        if c.name().eq_ignore_ascii_case(s) {
            return Ok((c, c.name()));
        }
    }
    let names: Vec<&str> = NpbClass::ALL.iter().map(|c| c.name()).collect();
    Err(bad_enum(span, "NPB class", s, &names))
}

fn mz_bench(s: &str, span: Span) -> Result<(MzBenchmark, &'static str), SpecError> {
    let canon = s.to_ascii_lowercase().replace('_', "-");
    let b = match canon.as_str() {
        "bt-mz" => MzBenchmark::BtMz,
        "sp-mz" => MzBenchmark::SpMz,
        _ => {
            return Err(bad_enum(
                span,
                "multi-zone benchmark",
                s,
                &["BT-MZ", "SP-MZ"],
            ))
        }
    };
    Ok((b, b.name()))
}

fn mz_class(s: &str, span: Span) -> Result<(MzClass, &'static str), SpecError> {
    let (c, name) = match s.to_ascii_uppercase().as_str() {
        "S" => (MzClass::S, "S"),
        "W" => (MzClass::W, "W"),
        "A" => (MzClass::A, "A"),
        "B" => (MzClass::B, "B"),
        "C" => (MzClass::C, "C"),
        "D" => (MzClass::D, "D"),
        "E" => (MzClass::E, "E"),
        "F" => (MzClass::F, "F"),
        _ => {
            return Err(bad_enum(
                span,
                "multi-zone class",
                s,
                &["S", "W", "A", "B", "C", "D", "E", "F"],
            ))
        }
    };
    Ok((c, name))
}

fn mpt(s: &str, span: Span) -> Result<(MptVersion, &'static str), SpecError> {
    let v = match s.to_ascii_lowercase().as_str() {
        "beta" => MptVersion::Beta,
        "released" => MptVersion::Released,
        _ => return Err(bad_enum(span, "MPT version", s, &["beta", "released"])),
    };
    Ok((
        v,
        if v == MptVersion::Beta {
            "beta"
        } else {
            "released"
        },
    ))
}

fn pinning(s: &str, span: Span) -> Result<(Pinning, &'static str), SpecError> {
    let p = match s.to_ascii_lowercase().as_str() {
        "pinned" => Pinning::Pinned,
        "unpinned" => Pinning::Unpinned,
        _ => return Err(bad_enum(span, "pinning", s, &["pinned", "unpinned"])),
    };
    Ok((
        p,
        if p == Pinning::Pinned {
            "pinned"
        } else {
            "unpinned"
        },
    ))
}

// ---------------------------------------------------------------------------
// Fault plans from data

const FAULT_KEYS: [&str; 10] = [
    "seed",
    "drop_prob",
    "retransmit_timeout",
    "retransmit_backoff",
    "retransmit_max_retries",
    "degrade_link",
    "fail_link",
    "slow_node",
    "connection_limit",
    "event_budget",
];

fn build_faults(ctx: &ParamCtx<'_>, table: &Table) -> Result<FaultPlan, SpecError> {
    let mut f = Fields::new(table);
    let mut plan = FaultPlan::none();
    if let Some(n) = f.take("seed") {
        plan.seed = as_int(n, "'seed'")?.max(0) as u64;
    }
    if let Some(n) = f.take("drop_prob") {
        let p = ctx.num_of(n)?;
        if !(0.0..1.0).contains(&p) {
            return Err(invalid(
                n.span,
                format!("'drop_prob' must be in [0, 1), got {p}"),
            ));
        }
        plan.drop_prob = p;
    }
    if let Some(n) = f.take("retransmit_timeout") {
        plan.retransmit.timeout = ctx.num_of(n)?;
    }
    if let Some(n) = f.take("retransmit_backoff") {
        plan.retransmit.backoff = ctx.num_of(n)?;
    }
    if let Some(n) = f.take("retransmit_max_retries") {
        plan.retransmit.max_retries = as_int(n, "'retransmit_max_retries'")?.max(0) as u32;
    }
    if let Some(n) = f.take("degrade_link") {
        let t = as_table(n, "'degrade_link'")?;
        let mut g = Fields::new(t);
        let a = link_end(&mut g, n.span, "a")?;
        let b = link_end(&mut g, n.span, "b")?;
        let lat = g
            .take("latency_factor")
            .map(|x| ctx.num_of(x))
            .transpose()?
            .unwrap_or(1.0);
        let bw = g
            .take("bandwidth_factor")
            .map(|x| ctx.num_of(x))
            .transpose()?
            .unwrap_or(1.0);
        g.finish(
            "'degrade_link'",
            &["a", "b", "latency_factor", "bandwidth_factor"],
        )?;
        plan = plan.degrade_link(a, b, lat, bw);
    }
    if let Some(n) = f.take("fail_link") {
        let t = as_table(n, "'fail_link'")?;
        let mut g = Fields::new(t);
        let a = link_end(&mut g, n.span, "a")?;
        let b = link_end(&mut g, n.span, "b")?;
        g.finish("'fail_link'", &["a", "b"])?;
        plan = plan.fail_link(a, b);
    }
    if let Some(n) = f.take("slow_node") {
        let t = as_table(n, "'slow_node'")?;
        let mut g = Fields::new(t);
        let node = link_end(&mut g, n.span, "node")?;
        let factor = g
            .take("factor")
            .map(|x| ctx.num_of(x))
            .transpose()?
            .unwrap_or(1.0);
        g.finish("'slow_node'", &["node", "factor"])?;
        plan = plan.slow_node(node, factor);
    }
    if let Some(n) = f.take("connection_limit") {
        let t = as_table(n, "'connection_limit'")?;
        let mut g = Fields::new(t);
        let missing = |k: &str| invalid(n.span, format!("'connection_limit' requires '{k}'"));
        let cards = as_int(g.take("cards").ok_or_else(|| missing("cards"))?, "'cards'")?;
        let per_card = as_int(
            g.take("per_card").ok_or_else(|| missing("per_card"))?,
            "'per_card'",
        )?;
        if cards < 0 || per_card < 0 {
            return Err(invalid(n.span, "connection budget must be non-negative"));
        }
        let policy_node = g.take("policy").ok_or_else(|| missing("policy"))?;
        let policy_name = as_str(policy_node, "'policy'")?;
        let queue_penalty = g
            .take("queue_penalty")
            .map(|x| ctx.num_of(x))
            .transpose()?
            .unwrap_or(DEFAULT_MULTIPLEX_QUEUE_PENALTY);
        let policy = match policy_name {
            "fail" => ConnectionPolicy::Fail,
            "multiplex" => ConnectionPolicy::Multiplex { queue_penalty },
            other => {
                return Err(bad_enum(
                    policy_node.span,
                    "connection policy",
                    other,
                    &["fail", "multiplex"],
                ))
            }
        };
        g.finish(
            "'connection_limit'",
            &["cards", "per_card", "policy", "queue_penalty"],
        )?;
        plan = plan.with_connection_limit(ConnectionLimit {
            cards_per_node: cards as u32,
            connections_per_card: per_card as u64,
            policy,
        });
    }
    if let Some(n) = f.take("event_budget") {
        plan.event_budget = Some(as_int(n, "'event_budget'")?.max(0) as u64);
    }
    f.finish("[sweep] 'faults'", &FAULT_KEYS)?;
    Ok(plan)
}

fn link_end(g: &mut Fields<'_>, span: Span, key: &'static str) -> Result<NodeId, SpecError> {
    let n = g
        .take(key)
        .ok_or_else(|| invalid(span, format!("missing '{key}' (a node index)")))?;
    let v = as_int(n, key)?;
    if !(0..=i64::from(u32::MAX)).contains(&v) {
        return Err(invalid(
            n.span,
            format!("'{key}' must be a node index, got {v}"),
        ));
    }
    Ok(NodeId(v as u32))
}

// ---------------------------------------------------------------------------
// Measurement tasks

/// One typed, fully-resolved measurement — everything a sweep point
/// needs at run time. Cheap to clone into the point closure.
#[derive(Debug, Clone)]
enum Task {
    Table1,
    BeffInNode {
        kind: NodeKind,
        cpus: Vec<u32>,
    },
    BeffMulti {
        nodes: u32,
        inter: InterNodeFabric,
        mpt: MptVersion,
        cpus: Vec<u32>,
    },
    Dgemm {
        kind: NodeKind,
        stride: u32,
    },
    Stream {
        kind: NodeKind,
        cpus: u32,
        stride: u32,
    },
    Npb {
        bench: NpbBenchmark,
        class: NpbClass,
        kind: NodeKind,
        paradigm: Paradigm,
        cpus: Vec<u32>,
        compilers: Vec<(CompilerVersion, &'static str)>,
        compiler_vec: bool,
    },
    Ins3d {
        kinds: Vec<(NodeKind, &'static str)>,
        kind_vec: bool,
        compilers: Vec<(CompilerVersion, &'static str)>,
        compiler_vec: bool,
        groups: usize,
        threads: usize,
    },
    Overflow {
        kinds: Vec<(NodeKind, &'static str)>,
        kind_vec: bool,
        fabrics: Vec<(InterNodeFabric, &'static str)>,
        fabric_vec: bool,
        compilers: Vec<(CompilerVersion, &'static str)>,
        compiler_vec: bool,
        procs: usize,
        threads: usize,
        nodes: u32,
    },
    Mz {
        bench: MzBenchmark,
        class: MzClass,
        procs: usize,
        threads: usize,
        kind: NodeKind,
        nodes: u32,
        inter: InterNodeFabric,
        mpt: MptVersion,
        pinnings: Vec<(Pinning, &'static str)>,
        pinning_vec: bool,
        faults: FaultPlan,
    },
    MdWeak {
        cpus: u32,
    },
    Trace(TraceParams),
    Columbia {
        full: bool,
    },
}

/// What a task produced: templated row bindings plus numeric outputs,
/// or (for the free-form kinds) raw report rows and notes.
#[derive(Debug, Default)]
struct TaskOut {
    rows: Vec<BTreeMap<String, String>>,
    nums: BTreeMap<String, f64>,
    raw: Option<PointOutput>,
}

impl Task {
    /// Kinds whose rows come from the measurement itself, not a `row`
    /// template.
    fn is_raw(&self) -> bool {
        matches!(self, Task::Table1 | Task::Trace(_) | Task::Columbia { .. })
    }

    /// Display bindings this task makes available to templates.
    fn binding_names(&self) -> Vec<String> {
        fn suffixed<T>(base: &[&str], vec: &[(T, &'static str)], on: bool) -> Vec<String> {
            if on {
                base.iter()
                    .flat_map(|b| vec.iter().map(move |(_, s)| format!("{b}.{s}")))
                    .collect()
            } else {
                base.iter().map(|b| b.to_string()).collect()
            }
        }
        match self {
            Task::Table1 | Task::Trace(_) | Task::Columbia { .. } => Vec::new(),
            Task::BeffInNode { .. } => ["pattern", "node", "cpus", "latency", "bandwidth"]
                .map(String::from)
                .to_vec(),
            Task::BeffMulti { .. } => {
                ["pattern", "fabric", "nodes", "cpus", "latency", "bandwidth"]
                    .map(String::from)
                    .to_vec()
            }
            Task::Dgemm { .. } => ["node", "stride", "gflops"].map(String::from).to_vec(),
            Task::Stream { .. } => ["node", "stride", "cpus", "triad"]
                .map(String::from)
                .to_vec(),
            Task::Npb {
                compilers,
                compiler_vec,
                ..
            } => {
                let mut n = ["bench", "paradigm", "node", "cpus"]
                    .map(String::from)
                    .to_vec();
                n.extend(suffixed(&["gflops"], compilers, *compiler_vec));
                n
            }
            Task::Ins3d {
                kinds,
                kind_vec,
                compilers,
                compiler_vec,
                ..
            } => {
                let mut n = ["groups", "threads", "cpus"].map(String::from).to_vec();
                if *kind_vec {
                    n.extend(suffixed(&["s_step"], kinds, true));
                } else {
                    n.extend(suffixed(&["s_step"], compilers, *compiler_vec));
                }
                n
            }
            Task::Overflow {
                kinds,
                kind_vec,
                fabrics,
                fabric_vec,
                compilers,
                compiler_vec,
                ..
            } => {
                let mut n = ["procs", "threads", "nodes", "cpus"]
                    .map(String::from)
                    .to_vec();
                let base = ["comm", "exec"];
                if *kind_vec {
                    n.extend(suffixed(&base, kinds, true));
                } else if *fabric_vec {
                    n.extend(suffixed(&base, fabrics, true));
                } else {
                    n.extend(suffixed(&base, compilers, *compiler_vec));
                }
                n
            }
            Task::Mz {
                pinnings,
                pinning_vec,
                ..
            } => {
                let mut n = [
                    "bench", "fabric", "mpt", "node", "procs", "threads", "cpus", "nodes",
                ]
                .map(String::from)
                .to_vec();
                n.extend(suffixed(
                    &[
                        "s_step",
                        "total_gflops",
                        "gflops_per_cpu",
                        "dropped",
                        "retransmit_s",
                        "muxed",
                    ],
                    pinnings,
                    *pinning_vec,
                ));
                n
            }
            Task::MdWeak { .. } => ["cpus", "atoms", "s_step", "comm_step", "efficiency"]
                .map(String::from)
                .to_vec(),
        }
    }

    /// Numeric outputs a block's `value` may name (single-measurement
    /// kinds only).
    fn numeric_names(&self) -> Vec<&'static str> {
        match self {
            Task::Dgemm { .. } => vec!["gflops"],
            Task::Stream { .. } => vec!["triad"],
            Task::Ins3d {
                kind_vec: false,
                compiler_vec: false,
                ..
            } => vec!["s_step"],
            Task::Overflow {
                kind_vec: false,
                fabric_vec: false,
                compiler_vec: false,
                ..
            } => vec!["comm", "exec"],
            Task::Mz {
                pinning_vec: false, ..
            } => vec!["s_step", "total_gflops", "gflops_per_cpu"],
            Task::MdWeak { .. } => vec!["s_step", "comm_step", "atoms"],
            _ => Vec::new(),
        }
    }

    fn run(&self) -> Result<TaskOut, SimError> {
        let mut out = TaskOut::default();
        match self {
            Task::Table1 => out.raw = Some(table1_output()),
            Task::Trace(p) => out.raw = Some(trace_output(p)?),
            Task::Columbia { full } => {
                out.raw = Some(if *full {
                    columbia_full_output()?
                } else {
                    columbia_subsystem_output()?
                })
            }
            Task::BeffInNode { kind, cpus } => {
                let sweep = beff::in_node_sweep(*kind, cpus);
                for pattern in Pattern::ALL {
                    for &n in cpus {
                        if let Some(p) = sweep.get(pattern, n) {
                            let mut b = BTreeMap::new();
                            b.insert("pattern".into(), pattern.name().to_string());
                            b.insert("node".into(), kind.name().to_string());
                            b.insert("cpus".into(), n.to_string());
                            b.insert("latency".into(), secs(p.latency));
                            b.insert("bandwidth".into(), gbs(p.bandwidth));
                            out.rows.push(b);
                        }
                    }
                }
            }
            Task::BeffMulti {
                nodes,
                inter,
                mpt,
                cpus,
            } => {
                let sweep = beff::multi_node_sweep(*nodes, *inter, *mpt, cpus);
                for pattern in Pattern::ALL {
                    for &n in cpus {
                        if let Some(p) = sweep.get(pattern, n) {
                            let mut b = BTreeMap::new();
                            b.insert("pattern".into(), pattern.name().to_string());
                            b.insert("fabric".into(), inter.name().to_string());
                            b.insert("nodes".into(), nodes.to_string());
                            b.insert("cpus".into(), n.to_string());
                            b.insert("latency".into(), secs(p.latency));
                            b.insert("bandwidth".into(), gbs(p.bandwidth));
                            out.rows.push(b);
                        }
                    }
                }
            }
            Task::Dgemm { kind, stride } => {
                let d = dgemm::simulate(*kind, *stride);
                let mut b = BTreeMap::new();
                b.insert("node".into(), kind.name().to_string());
                b.insert("stride".into(), stride.to_string());
                b.insert("gflops".into(), gf(d.gflops_per_cpu));
                out.nums.insert("gflops".into(), d.gflops_per_cpu);
                out.rows.push(b);
            }
            Task::Stream { kind, cpus, stride } => {
                let s = stream::simulate(*kind, *cpus, *stride);
                let mut b = BTreeMap::new();
                b.insert("node".into(), kind.name().to_string());
                b.insert("stride".into(), stride.to_string());
                b.insert("cpus".into(), cpus.to_string());
                b.insert("triad".into(), gbs(s.triad()));
                out.nums.insert("triad".into(), s.triad());
                out.rows.push(b);
            }
            Task::Npb {
                bench,
                class,
                kind,
                paradigm,
                cpus,
                compilers,
                compiler_vec,
            } => {
                for &n in cpus {
                    let mut b = BTreeMap::new();
                    b.insert("bench".into(), bench.name().to_string());
                    b.insert("paradigm".into(), paradigm.name().to_string());
                    b.insert("node".into(), kind.name().to_string());
                    b.insert("cpus".into(), n.to_string());
                    for (v, sfx) in compilers {
                        let g = gflops_per_cpu(*bench, *class, *kind, *paradigm, n, *v)?;
                        let key = if *compiler_vec {
                            format!("gflops.{sfx}")
                        } else {
                            "gflops".into()
                        };
                        b.insert(key, gf(g));
                    }
                    out.rows.push(b);
                }
            }
            Task::Ins3d {
                kinds,
                kind_vec,
                compilers,
                compiler_vec,
                groups,
                threads,
            } => {
                let mut b = BTreeMap::new();
                b.insert("groups".into(), groups.to_string());
                b.insert("threads".into(), threads.to_string());
                b.insert("cpus".into(), (groups * threads).to_string());
                for (k, ks) in kinds {
                    for (c, cs) in compilers {
                        let s = iteration_seconds(&Ins3dConfig {
                            kind: *k,
                            groups: *groups,
                            threads: *threads,
                            compiler: *c,
                        });
                        let key = if *kind_vec {
                            format!("s_step.{ks}")
                        } else if *compiler_vec {
                            format!("s_step.{cs}")
                        } else {
                            out.nums.insert("s_step".into(), s);
                            "s_step".into()
                        };
                        b.insert(key, secs(s));
                    }
                }
                out.rows.push(b);
            }
            Task::Overflow {
                kinds,
                kind_vec,
                fabrics,
                fabric_vec,
                compilers,
                compiler_vec,
                procs,
                threads,
                nodes,
            } => {
                let mut b = BTreeMap::new();
                b.insert("procs".into(), procs.to_string());
                b.insert("threads".into(), threads.to_string());
                b.insert("nodes".into(), nodes.to_string());
                b.insert("cpus".into(), (procs * threads).to_string());
                for (k, ks) in kinds {
                    for (fb, fs) in fabrics {
                        for (c, cs) in compilers {
                            let t = step_times(&OverflowConfig {
                                kind: *k,
                                procs: *procs,
                                threads: *threads,
                                nodes: *nodes,
                                inter: *fb,
                                compiler: *c,
                            })?;
                            let sfx = if *kind_vec {
                                Some(*ks)
                            } else if *fabric_vec {
                                Some(*fs)
                            } else if *compiler_vec {
                                Some(*cs)
                            } else {
                                None
                            };
                            match sfx {
                                Some(sfx) => {
                                    b.insert(format!("comm.{sfx}"), secs(t.comm));
                                    b.insert(format!("exec.{sfx}"), secs(t.exec));
                                }
                                None => {
                                    b.insert("comm".into(), secs(t.comm));
                                    b.insert("exec".into(), secs(t.exec));
                                    out.nums.insert("comm".into(), t.comm);
                                    out.nums.insert("exec".into(), t.exec);
                                }
                            }
                        }
                    }
                }
                out.rows.push(b);
            }
            Task::Mz {
                bench,
                class,
                procs,
                threads,
                kind,
                nodes,
                inter,
                mpt,
                pinnings,
                pinning_vec,
                faults,
            } => {
                let mut b = BTreeMap::new();
                b.insert("bench".into(), bench.name().to_string());
                b.insert("fabric".into(), inter.name().to_string());
                b.insert(
                    "mpt".into(),
                    if *mpt == MptVersion::Beta {
                        "beta"
                    } else {
                        "released"
                    }
                    .to_string(),
                );
                b.insert("node".into(), kind.name().to_string());
                b.insert("procs".into(), procs.to_string());
                b.insert("threads".into(), threads.to_string());
                b.insert("cpus".into(), (procs * threads).to_string());
                b.insert("nodes".into(), nodes.to_string());
                for (p, ps) in pinnings {
                    let mut cfg = MzRunConfig::new(*bench, *class, *procs, *threads);
                    cfg.kind = *kind;
                    cfg.nodes = *nodes;
                    cfg.inter = *inter;
                    cfg.mpt = *mpt;
                    cfg.pinning = *p;
                    cfg.faults = faults.clone();
                    let r = mz_run(&cfg)?;
                    let key = |base: &str| {
                        if *pinning_vec {
                            format!("{base}.{ps}")
                        } else {
                            base.to_string()
                        }
                    };
                    b.insert(key("s_step"), secs(r.seconds_per_step));
                    b.insert(key("total_gflops"), gf(r.total_gflops));
                    b.insert(key("gflops_per_cpu"), gf(r.gflops_per_cpu));
                    b.insert(key("dropped"), r.faults.dropped_messages.to_string());
                    b.insert(key("retransmit_s"), secs(r.faults.retransmit_delay));
                    b.insert(key("muxed"), r.faults.multiplexed_messages.to_string());
                    if !*pinning_vec {
                        out.nums.insert("s_step".into(), r.seconds_per_step);
                        out.nums.insert("total_gflops".into(), r.total_gflops);
                        out.nums.insert("gflops_per_cpu".into(), r.gflops_per_cpu);
                    }
                }
                out.rows.push(b);
            }
            Task::MdWeak { cpus } => {
                // The 1-CPU efficiency baseline is recomputed per point,
                // keeping points independent (same as the hard-coded
                // Table 5 plan).
                let base = weak_scaling_point(1)?;
                let p = weak_scaling_point(*cpus)?;
                let mut b = BTreeMap::new();
                b.insert("cpus".into(), cpus.to_string());
                b.insert("atoms".into(), p.atoms.to_string());
                b.insert("s_step".into(), secs(p.seconds_per_step));
                b.insert("comm_step".into(), secs(p.comm_per_step));
                b.insert(
                    "efficiency".into(),
                    format!("{:.1}%", 100.0 * p.efficiency_vs(&base)),
                );
                out.nums.insert("s_step".into(), p.seconds_per_step);
                out.nums.insert("comm_step".into(), p.comm_per_step);
                out.nums.insert("atoms".into(), p.atoms as f64);
                out.rows.push(b);
            }
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// Sweep expansion

/// Expand one `[[sweep]]` block into plan points.
fn expand_sweep(plan: &mut SweepPlan, sweep: &SweepSpec, spec: &Spec) -> Result<(), SpecError> {
    if !KINDS.contains(&sweep.kind.as_str()) {
        let suggestion = suggest(&sweep.kind, &KINDS)
            .map(|s| format!(" (did you mean '{s}'?)"))
            .unwrap_or_default();
        return Err(invalid(
            sweep.kind_span,
            format!(
                "unknown kind '{}' (available: {}){suggestion}",
                sweep.kind,
                KINDS.join(", ")
            ),
        ));
    }

    // Grid axes: each element binds either the axis name (scalar) or
    // each key of an inline table (tuple point).
    let mut axes: Vec<Vec<Vec<(String, Node)>>> = Vec::new();
    for axis in &sweep.grid {
        let mut points = Vec::new();
        for v in &axis.values {
            match &v.value {
                Value::Table(t) => {
                    let mut bindings = Vec::new();
                    for e in &t.entries {
                        if matches!(e.node.value, Value::Array(_) | Value::Table(_)) {
                            return Err(invalid(
                                e.node.span,
                                format!(
                                    "tuple axis '{}' entries must be scalar, key '{}' is {}",
                                    axis.name,
                                    e.key,
                                    e.node.value.type_name()
                                ),
                            ));
                        }
                        bindings.push((e.key.clone(), e.node.clone()));
                    }
                    points.push(bindings);
                }
                Value::Array(_) => {
                    return Err(invalid(
                        v.span,
                        format!(
                            "grid axis '{}' elements must be scalars or inline tables",
                            axis.name
                        ),
                    ))
                }
                _ => points.push(vec![(axis.name.clone(), v.clone())]),
            }
        }
        axes.push(points);
    }

    let total: usize = axes.iter().map(Vec::len).product();
    if total > MAX_POINTS {
        return Err(invalid(
            sweep.kind_span,
            format!("grid expands to {total} points (maximum {MAX_POINTS})"),
        ));
    }
    if plan.len() + total > MAX_POINTS {
        return Err(invalid(
            sweep.kind_span,
            format!("spec expands past {MAX_POINTS} total points"),
        ));
    }

    // Odometer over the axes, first axis slowest (the hard-coded
    // plans' loop nesting order).
    let mut idx = vec![0usize; axes.len()];
    loop {
        expand_point(plan, sweep, spec, &axes, &idx)?;
        let mut k = axes.len();
        loop {
            if k == 0 {
                return Ok(());
            }
            k -= 1;
            idx[k] += 1;
            if idx[k] < axes[k].len() {
                break;
            }
            idx[k] = 0;
        }
    }
}

fn fmt_num(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 9.0e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Compile one grid point of one block into a plan point.
fn expand_point(
    plan: &mut SweepPlan,
    sweep: &SweepSpec,
    spec: &Spec,
    axes: &[Vec<Vec<(String, Node)>>],
    idx: &[usize],
) -> Result<(), SpecError> {
    // Point bindings: axis values, then derived parameters.
    let mut overlay: BTreeMap<String, Node> = BTreeMap::new();
    let mut disp: BTreeMap<String, String> = BTreeMap::new();
    let mut env: BTreeMap<String, f64> = BTreeMap::new();
    for (axis, &i) in axes.iter().zip(idx) {
        for (name, node) in &axis[i] {
            match &node.value {
                Value::Int(v) => {
                    disp.insert(name.clone(), v.to_string());
                    env.insert(name.clone(), *v as f64);
                }
                Value::Float(v) => {
                    disp.insert(name.clone(), fmt_num(*v));
                    env.insert(name.clone(), *v);
                }
                Value::Str(s) => {
                    disp.insert(name.clone(), s.clone());
                }
                Value::Bool(b) => {
                    disp.insert(name.clone(), b.to_string());
                }
                _ => {}
            }
            overlay.insert(name.clone(), node.clone());
        }
    }
    // Scalar numeric block parameters join the expression scope (so
    // `nodes = "ceildiv(procs * threads, 512)"` can reference a fixed
    // `procs`), without overriding axis bindings.
    for e in &sweep.params {
        match &e.node.value {
            Value::Int(v) => {
                env.entry(e.key.clone()).or_insert(*v as f64);
            }
            Value::Float(v) => {
                env.entry(e.key.clone()).or_insert(*v);
            }
            _ => {}
        }
    }
    for d in &sweep.derived {
        let v = expr::eval(&d.expr, &env)
            .map_err(|m| invalid(d.expr_span, format!("derived parameter '{}': {m}", d.name)))?;
        env.insert(d.name.clone(), v);
        disp.insert(d.name.clone(), fmt_num(v));
        overlay.insert(
            d.name.clone(),
            Node {
                value: if v.fract() == 0.0 && v.abs() < 9.0e15 {
                    Value::Int(v as i64)
                } else {
                    Value::Float(v)
                },
                span: d.expr_span,
            },
        );
    }

    let mut ctx = ParamCtx::new(sweep, &overlay, &env);

    // Generic parameters.
    let row_templates: Option<(Vec<Template>, Span)> = match ctx.get("row") {
        Some(n) => match &n.value {
            Value::Array(items) => {
                let mut ts = Vec::new();
                for item in items {
                    let s = as_str(item, "'row' cell")?;
                    ts.push(Template::parse(s, item.span)?);
                }
                Some((ts, n.span))
            }
            v => {
                return Err(invalid(
                    n.span,
                    format!(
                        "'row' must be an array of template strings, found {}",
                        v.type_name()
                    ),
                ))
            }
        },
        None => None,
    };
    if let Some((ts, span)) = &row_templates {
        if ts.len() != spec.report.headers.len() {
            return Err(invalid(
                *span,
                format!(
                    "'row' has {} cells but the report has {} columns",
                    ts.len(),
                    spec.report.headers.len()
                ),
            ));
        }
    }
    let note_template = match ctx.take_str("note")? {
        Some((s, span)) => Some(Template::parse(&s, span)?),
        None => None,
    };
    let value_name = ctx.take_str("value")?;
    let expect_error = ctx.take_bool("expect_error")?.unwrap_or(false);
    if let Some((label, _)) = ctx.take_str("label")? {
        disp.insert("label".into(), label);
    }

    // The measurement.
    let (task, kind_params) = build_task(&mut ctx, spec)?;
    ctx.finish(kind_params)?;

    // Compile-time validation of templates and value names.
    let mut available: BTreeSet<String> = task.binding_names().into_iter().collect();
    available.extend(disp.keys().cloned());
    let avail_list = || {
        available
            .iter()
            .map(String::as_str)
            .collect::<Vec<_>>()
            .join(", ")
    };
    if task.is_raw() {
        if let Some((_, span)) = &row_templates {
            return Err(invalid(
                *span,
                format!(
                    "kind '{}' emits its own rows; 'row' is not allowed",
                    sweep.kind
                ),
            ));
        }
    } else {
        let (templates, row_span) = row_templates.as_ref().ok_or_else(|| {
            invalid(
                sweep.kind_span,
                format!(
                    "kind '{}' requires a 'row' template (block {})",
                    sweep.kind, sweep.index
                ),
            )
        })?;
        for t in templates {
            for v in t.vars() {
                if !available.contains(v) {
                    let cands: Vec<&str> = available.iter().map(String::as_str).collect();
                    let hint = suggest(v, &cands)
                        .map(|s| format!(" (did you mean '{s}'?)"))
                        .unwrap_or_default();
                    return Err(invalid(
                        *row_span,
                        format!(
                            "unknown placeholder '{{{v}}}' in row template \
                             (available: {}){hint}",
                            avail_list()
                        ),
                    ));
                }
            }
        }
    }
    if let Some(t) = &note_template {
        for v in t.vars() {
            if v != "error" && !available.contains(v) {
                return Err(invalid(
                    sweep.kind_span,
                    format!(
                        "unknown placeholder '{{{v}}}' in note template (available: error, {})",
                        avail_list()
                    ),
                ));
            }
        }
    }
    let value_name = match value_name {
        Some((name, span)) => {
            let nums = task.numeric_names();
            if !nums.contains(&name.as_str()) {
                return Err(invalid(
                    span,
                    format!(
                        "'value' names unknown numeric output '{name}' for kind '{}' \
                         (available: {})",
                        sweep.kind,
                        if nums.is_empty() {
                            "none".to_string()
                        } else {
                            nums.join(", ")
                        }
                    ),
                ));
            }
            Some(name)
        }
        None => None,
    };

    let row_templates = row_templates.map(|(t, _)| t);
    let point_disp = disp;
    plan.point(move || {
        match task.run() {
            Ok(t) => {
                let mut po = PointOutput::default();
                if expect_error {
                    // The measurement was expected to fail but did not:
                    // contribute nothing (the hard-coded degraded plan's
                    // behaviour for its fail-fast probe).
                    return Ok(po);
                }
                if let Some(raw) = t.raw {
                    po.rows = raw.rows;
                    po.notes = raw.notes;
                    po.values = raw.values;
                } else if let Some(templates) = &row_templates {
                    for rb in &t.rows {
                        let mut merged = point_disp.clone();
                        merged.extend(rb.iter().map(|(k, v)| (k.clone(), v.clone())));
                        po.rows
                            .push(templates.iter().map(|c| c.render(&merged)).collect());
                    }
                }
                if let Some(nt) = &note_template {
                    po.notes.push(nt.render(&point_disp));
                }
                if let Some(name) = &value_name {
                    if let Some(v) = t.nums.get(name) {
                        po.values.push(*v);
                    }
                }
                Ok(po)
            }
            Err(err) if expect_error => {
                let mut po = PointOutput::default();
                if let Some(nt) = &note_template {
                    let mut b = point_disp.clone();
                    b.insert("error".into(), err.to_string());
                    po.notes.push(nt.render(&b));
                }
                Ok(po)
            }
            Err(err) => Err(err),
        }
    });
    Ok(())
}

/// Build the typed task for one point, consuming kind parameters from
/// the context. Returns the task plus the kind's parameter list (for
/// unknown-key suggestions).
fn build_task(
    ctx: &mut ParamCtx<'_>,
    spec: &Spec,
) -> Result<(Task, &'static [&'static str]), SpecError> {
    let kind = ctx.sweep.kind.clone();
    match kind.as_str() {
        "table1" => Ok((Task::Table1, &[])),
        "beff-in-node" => {
            let node = ctx
                .take_enum("node", node_kind)?
                .ok_or_else(|| ctx.missing("node"))?;
            let cpus = ctx
                .take_u32_list("cpus")?
                .ok_or_else(|| ctx.missing("cpus"))?;
            Ok((Task::BeffInNode { kind: node, cpus }, &["node", "cpus"]))
        }
        "beff-multi" => {
            let nodes = ctx.take_u32("nodes")?.ok_or_else(|| ctx.missing("nodes"))?;
            let inter = ctx
                .take_enum("fabric", fabric)?
                .ok_or_else(|| ctx.missing("fabric"))?;
            let mptv = ctx.take_enum("mpt", mpt)?.unwrap_or(MptVersion::Beta);
            let cpus = ctx
                .take_u32_list("cpus")?
                .ok_or_else(|| ctx.missing("cpus"))?;
            Ok((
                Task::BeffMulti {
                    nodes,
                    inter,
                    mpt: mptv,
                    cpus,
                },
                &["nodes", "fabric", "mpt", "cpus"],
            ))
        }
        "dgemm" => {
            let node = ctx
                .take_enum("node", node_kind)?
                .ok_or_else(|| ctx.missing("node"))?;
            let stride = ctx.take_u32("stride")?.unwrap_or(1);
            Ok((Task::Dgemm { kind: node, stride }, &["node", "stride"]))
        }
        "stream" => {
            let node = ctx
                .take_enum("node", node_kind)?
                .ok_or_else(|| ctx.missing("node"))?;
            let cpus = ctx.take_u32("cpus")?.ok_or_else(|| ctx.missing("cpus"))?;
            let stride = ctx.take_u32("stride")?.unwrap_or(1);
            Ok((
                Task::Stream {
                    kind: node,
                    cpus,
                    stride,
                },
                &["node", "cpus", "stride"],
            ))
        }
        "npb" => {
            let bench = ctx
                .take_enum("bench", npb_bench)?
                .ok_or_else(|| ctx.missing("bench"))?;
            let class = ctx
                .take_enum("class", npb_class)?
                .ok_or_else(|| ctx.missing("class"))?;
            let node = ctx
                .take_enum("node", node_kind)?
                .ok_or_else(|| ctx.missing("node"))?;
            let par = ctx
                .take_enum("paradigm", paradigm)?
                .ok_or_else(|| ctx.missing("paradigm"))?;
            let cpus = ctx
                .take_u32_list("cpus")?
                .ok_or_else(|| ctx.missing("cpus"))?;
            let (compilers, compiler_vec) =
                ctx.take_enum_vec("compiler", compiler, (CompilerVersion::V7_1, "7.1"))?;
            Ok((
                Task::Npb {
                    bench,
                    class,
                    kind: node,
                    paradigm: par,
                    cpus,
                    compilers,
                    compiler_vec,
                },
                &["bench", "class", "node", "paradigm", "cpus", "compiler"],
            ))
        }
        "ins3d" => {
            let (kinds, kind_vec) =
                ctx.take_enum_vec("node", node_kind, (NodeKind::Bx2b, "BX2b"))?;
            let (compilers, compiler_vec) =
                ctx.take_enum_vec("compiler", compiler, (CompilerVersion::V7_1, "7.1"))?;
            let groups = ctx.take_usize("groups")?.unwrap_or(36);
            let threads = ctx
                .take_usize("threads")?
                .ok_or_else(|| ctx.missing("threads"))?;
            Ok((
                Task::Ins3d {
                    kinds,
                    kind_vec,
                    compilers,
                    compiler_vec,
                    groups,
                    threads,
                },
                &["node", "compiler", "groups", "threads"],
            ))
        }
        "overflow" => {
            let (kinds, kind_vec) =
                ctx.take_enum_vec("node", node_kind, (NodeKind::Bx2b, "BX2b"))?;
            let (fabrics, fabric_vec) =
                ctx.take_enum_vec("fabric", fabric, (InterNodeFabric::NumaLink4, "NUMAlink4"))?;
            let (compilers, compiler_vec) =
                ctx.take_enum_vec("compiler", compiler, (CompilerVersion::V8_1, "8.1"))?;
            let procs = ctx
                .take_usize("procs")?
                .ok_or_else(|| ctx.missing("procs"))?;
            let threads = ctx.take_usize("threads")?.unwrap_or(1);
            let nodes = ctx.take_u32("nodes")?.unwrap_or(1);
            Ok((
                Task::Overflow {
                    kinds,
                    kind_vec,
                    fabrics,
                    fabric_vec,
                    compilers,
                    compiler_vec,
                    procs,
                    threads,
                    nodes,
                },
                &["node", "fabric", "compiler", "procs", "threads", "nodes"],
            ))
        }
        "mz" => {
            let bench = ctx
                .take_enum("bench", mz_bench)?
                .ok_or_else(|| ctx.missing("bench"))?;
            let class = ctx
                .take_enum("class", mz_class)?
                .ok_or_else(|| ctx.missing("class"))?;
            let procs = ctx
                .take_usize("procs")?
                .ok_or_else(|| ctx.missing("procs"))?;
            let threads = ctx
                .take_usize("threads")?
                .ok_or_else(|| ctx.missing("threads"))?;
            let node = ctx.take_enum("node", node_kind)?.unwrap_or(NodeKind::Bx2b);
            let nodes = ctx.take_u32("nodes")?.unwrap_or(1);
            let inter = ctx
                .take_enum("fabric", fabric)?
                .unwrap_or(InterNodeFabric::NumaLink4);
            let mptv = ctx.take_enum("mpt", mpt)?.unwrap_or(MptVersion::Beta);
            let (pinnings, pinning_vec) =
                ctx.take_enum_vec("pinning", pinning, (Pinning::Pinned, "pinned"))?;
            let faults = match ctx.get("faults") {
                Some(n) => {
                    let t = as_table(n, "'faults'")?.clone();
                    build_faults(ctx, &t)?
                }
                None => FaultPlan::none(),
            };
            Ok((
                Task::Mz {
                    bench,
                    class,
                    procs,
                    threads,
                    kind: node,
                    nodes,
                    inter,
                    mpt: mptv,
                    pinnings,
                    pinning_vec,
                    faults,
                },
                &[
                    "bench", "class", "procs", "threads", "node", "nodes", "fabric", "mpt",
                    "pinning", "faults",
                ],
            ))
        }
        "md-weak" => {
            let cpus = ctx.take_u32("cpus")?.ok_or_else(|| ctx.missing("cpus"))?;
            Ok((Task::MdWeak { cpus }, &["cpus"]))
        }
        "trace" => {
            let mut p = TraceParams {
                id: spec.report.id.clone(),
                title: spec.report.title.clone(),
                ..TraceParams::default()
            };
            if let Some(v) = ctx.take_usize("ranks")? {
                if v < 2 {
                    return Err(ctx.missing("ranks (must be >= 2)"));
                }
                p.ranks = v;
            }
            if let Some(v) = ctx.take_u32("nodes")? {
                if v == 0 {
                    return Err(ctx.missing("nodes (must be >= 1)"));
                }
                p.nodes = v;
            }
            if let Some(v) = ctx.take_f64("drop_prob")? {
                p.drop_prob = v;
            }
            if let Some(v) = ctx.take_u64("seed")? {
                p.seed = v;
            }
            if let Some(v) = ctx.take_u32("iters")? {
                p.iters = v;
            }
            if let Some(v) = ctx.take_usize("top")? {
                p.top = v;
            }
            if !(0.0..1.0).contains(&p.drop_prob) {
                return Err(invalid(
                    ctx.sweep.kind_span,
                    format!("'drop_prob' must be in [0, 1), got {}", p.drop_prob),
                ));
            }
            Ok((
                Task::Trace(p),
                &["ranks", "nodes", "drop_prob", "seed", "iters", "top"],
            ))
        }
        "columbia" => {
            let (config, span) = ctx
                .take_str("config")?
                .ok_or_else(|| ctx.missing("config"))?;
            let full = match config.as_str() {
                "full-machine" => true,
                "subsystem" => false,
                other => {
                    return Err(bad_enum(
                        span,
                        "columbia configuration",
                        other,
                        &["full-machine", "subsystem"],
                    ))
                }
            };
            Ok((Task::Columbia { full }, &["config"]))
        }
        other => unreachable!("kind '{other}' was validated against KINDS"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::load_str;

    const DGEMM_SPEC: &str = r#"
schema = "columbia-spec-v1"

[report]
id = "T"
title = "dgemm demo"
headers = ["benchmark", "node", "per-CPU result"]

[[sweep]]
kind = "dgemm"
row = ["DGEMM", "{node}", "{gflops} Gflop/s"]

[sweep.grid]
node = ["3700", "BX2a", "BX2b"]
"#;

    #[test]
    fn grid_expands_in_declaration_order() {
        let plan = compile(&load_str(DGEMM_SPEC).unwrap()).unwrap();
        assert_eq!(plan.len(), 3);
        let report = plan.run_with_jobs(1).unwrap();
        assert_eq!(report.rows.len(), 3);
        assert_eq!(report.rows[0][1], "3700");
        assert_eq!(report.rows[2][1], "BX2b");
        assert!(report.rows[0][2].ends_with("Gflop/s"));
    }

    #[test]
    fn unknown_kind_and_params_suggest() {
        let bad_kind = DGEMM_SPEC.replace("\"dgemm\"", "\"dgem\"");
        let err = compile(&load_str(&bad_kind).unwrap()).unwrap_err();
        assert!(err.to_string().contains("did you mean 'dgemm'"), "{err}");

        let bad_param = DGEMM_SPEC.replace("row =", "rwo =");
        let err = compile(&load_str(&bad_param).unwrap()).unwrap_err();
        assert!(err.to_string().contains("did you mean 'row'"), "{err}");
    }

    #[test]
    fn template_placeholders_are_validated() {
        let bad = DGEMM_SPEC.replace("{gflops}", "{gflop}");
        let err = compile(&load_str(&bad).unwrap()).unwrap_err();
        assert!(
            err.to_string().contains("unknown placeholder '{gflop}'"),
            "{err}"
        );
        assert!(err.to_string().contains("did you mean 'gflops'"), "{err}");
    }

    #[test]
    fn derived_parameters_feed_numeric_positions() {
        let spec = load_str(
            r#"
schema = "columbia-spec-v1"

[report]
id = "S"
title = "stream demo"
headers = ["stride", "cpus", "triad"]

[[sweep]]
kind = "stream"
node = "3700"
cpus = "64 * stride"
row = ["{stride}", "{cpus}", "{triad} GB/s"]

[sweep.grid]
stride = [1, 2]
"#,
        )
        .unwrap();
        let plan = compile(&spec).unwrap();
        assert_eq!(plan.len(), 2);
        let report = plan.run_with_jobs(1).unwrap();
        assert_eq!(report.rows[0][1], "64");
        assert_eq!(report.rows[1][1], "128");
    }

    #[test]
    fn fingerprints_depend_on_shape() {
        let a = compile(&load_str(DGEMM_SPEC).unwrap()).unwrap();
        let b = compile(&load_str(DGEMM_SPEC).unwrap()).unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
        let shrunk = DGEMM_SPEC.replace(", \"BX2b\"", "");
        let c = compile(&load_str(&shrunk).unwrap()).unwrap();
        assert_ne!(a.fingerprint(), c.fingerprint());
    }
}
