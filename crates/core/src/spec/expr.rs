//! Arithmetic expressions for derived spec parameters.
//!
//! A string in a numeric parameter position — or an entry of a
//! `[sweep.derived]` table — is evaluated as an expression over the
//! point's numeric bindings (grid axes, earlier derived parameters,
//! scalar numeric sweep parameters). The grammar is deliberately tiny:
//!
//! ```text
//! expr   := term (('+' | '-') term)*
//! term   := factor (('*' | '/') factor)*
//! factor := number | ident | ident '(' expr (',' expr)* ')'
//!         | '(' expr ')' | '-' factor
//! ```
//!
//! with three functions: `ceildiv(a, b)`, `min(a, b)`, `max(a, b)` —
//! enough to express e.g. Fig. 11's node count,
//! `max(ceildiv(procs * threads, 512), 2)`. Errors are plain strings;
//! [`crate::spec::compile`] attaches the spec-source span.

use std::collections::BTreeMap;

/// Evaluate `src` over `env`. Returns the value or a description of
/// what went wrong (position information is the caller's job — it
/// knows where the expression string sits in the spec).
pub fn eval(src: &str, env: &BTreeMap<String, f64>) -> Result<f64, String> {
    let tokens = lex(src)?;
    let mut p = ExprParser {
        tokens,
        pos: 0,
        env,
    };
    let v = p.expr()?;
    match p.peek() {
        Token::End => Ok(v),
        t => Err(format!("unexpected {} after expression", t.describe())),
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Num(f64),
    Ident(String),
    Plus,
    Minus,
    Star,
    Slash,
    LParen,
    RParen,
    Comma,
    End,
}

impl Token {
    fn describe(&self) -> String {
        match self {
            Token::Num(n) => format!("number {n}"),
            Token::Ident(s) => format!("identifier '{s}'"),
            Token::Plus => "'+'".into(),
            Token::Minus => "'-'".into(),
            Token::Star => "'*'".into(),
            Token::Slash => "'/'".into(),
            Token::LParen => "'('".into(),
            Token::RParen => "')'".into(),
            Token::Comma => "','".into(),
            Token::End => "end of expression".into(),
        }
    }
}

fn lex(src: &str) -> Result<Vec<Token>, String> {
    let mut out = Vec::new();
    let b = src.as_bytes();
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        match c {
            b' ' | b'\t' => i += 1,
            b'+' => {
                out.push(Token::Plus);
                i += 1;
            }
            b'-' => {
                out.push(Token::Minus);
                i += 1;
            }
            b'*' => {
                out.push(Token::Star);
                i += 1;
            }
            b'/' => {
                out.push(Token::Slash);
                i += 1;
            }
            b'(' => {
                out.push(Token::LParen);
                i += 1;
            }
            b')' => {
                out.push(Token::RParen);
                i += 1;
            }
            b',' => {
                out.push(Token::Comma);
                i += 1;
            }
            b'0'..=b'9' | b'.' => {
                let start = i;
                while i < b.len()
                    && (b[i].is_ascii_digit()
                        || b[i] == b'.'
                        || b[i] == b'e'
                        || b[i] == b'E'
                        || ((b[i] == b'+' || b[i] == b'-')
                            && (b[i - 1] == b'e' || b[i - 1] == b'E')))
                {
                    i += 1;
                }
                let text = &src[start..i];
                match text.parse::<f64>() {
                    Ok(n) if n.is_finite() => out.push(Token::Num(n)),
                    _ => return Err(format!("malformed number '{text}'")),
                }
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_' || b[i] == b'.')
                {
                    i += 1;
                }
                out.push(Token::Ident(src[start..i].to_string()));
            }
            c => return Err(format!("unexpected character '{}'", c as char)),
        }
    }
    out.push(Token::End);
    Ok(out)
}

struct ExprParser<'e> {
    tokens: Vec<Token>,
    pos: usize,
    env: &'e BTreeMap<String, f64>,
}

impl ExprParser<'_> {
    fn peek(&self) -> &Token {
        self.tokens.get(self.pos).unwrap_or(&Token::End)
    }

    fn bump(&mut self) -> Token {
        let t = self.peek().clone();
        if self.pos < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn expr(&mut self) -> Result<f64, String> {
        let mut v = self.term()?;
        loop {
            match self.peek() {
                Token::Plus => {
                    self.bump();
                    v += self.term()?;
                }
                Token::Minus => {
                    self.bump();
                    v -= self.term()?;
                }
                _ => return Ok(v),
            }
        }
    }

    fn term(&mut self) -> Result<f64, String> {
        let mut v = self.factor()?;
        loop {
            match self.peek() {
                Token::Star => {
                    self.bump();
                    v *= self.factor()?;
                }
                Token::Slash => {
                    self.bump();
                    let d = self.factor()?;
                    if d == 0.0 {
                        return Err("division by zero".into());
                    }
                    v /= d;
                }
                _ => return Ok(v),
            }
        }
    }

    fn factor(&mut self) -> Result<f64, String> {
        match self.bump() {
            Token::Num(n) => Ok(n),
            Token::Minus => Ok(-self.factor()?),
            Token::LParen => {
                let v = self.expr()?;
                match self.bump() {
                    Token::RParen => Ok(v),
                    t => Err(format!("expected ')', found {}", t.describe())),
                }
            }
            Token::Ident(name) => {
                if *self.peek() == Token::LParen {
                    self.bump();
                    let mut args = vec![self.expr()?];
                    while *self.peek() == Token::Comma {
                        self.bump();
                        args.push(self.expr()?);
                    }
                    match self.bump() {
                        Token::RParen => {}
                        t => return Err(format!("expected ')', found {}", t.describe())),
                    }
                    apply(&name, &args)
                } else {
                    self.env.get(&name).copied().ok_or_else(|| {
                        let known: Vec<&str> = self.env.keys().map(String::as_str).collect();
                        format!(
                            "unknown identifier '{name}' (in scope: {})",
                            if known.is_empty() {
                                "nothing".to_string()
                            } else {
                                known.join(", ")
                            }
                        )
                    })
                }
            }
            t => Err(format!("expected a value, found {}", t.describe())),
        }
    }
}

fn apply(name: &str, args: &[f64]) -> Result<f64, String> {
    let two = |f: fn(f64, f64) -> f64| {
        if args.len() == 2 {
            Ok(f(args[0], args[1]))
        } else {
            Err(format!("{name}() takes 2 arguments, got {}", args.len()))
        }
    };
    match name {
        "ceildiv" => {
            if args.len() != 2 {
                return Err(format!("ceildiv() takes 2 arguments, got {}", args.len()));
            }
            if args[1] == 0.0 {
                return Err("division by zero in ceildiv()".into());
            }
            Ok((args[0] / args[1]).ceil())
        }
        "min" => two(f64::min),
        "max" => two(f64::max),
        _ => Err(format!(
            "unknown function '{name}' (available: ceildiv, min, max)"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(pairs: &[(&str, f64)]) -> BTreeMap<String, f64> {
        pairs.iter().map(|&(k, v)| (k.to_string(), v)).collect()
    }

    #[test]
    fn arithmetic_and_precedence() {
        let e = env(&[("threads", 4.0)]);
        assert_eq!(eval("36 * threads", &e).unwrap(), 144.0);
        assert_eq!(eval("2 + 3 * 4", &e).unwrap(), 14.0);
        assert_eq!(eval("(2 + 3) * 4", &e).unwrap(), 20.0);
        assert_eq!(eval("-threads + 8", &e).unwrap(), 4.0);
    }

    #[test]
    fn fig11_node_formula() {
        for ((procs, threads), nodes) in [
            ((256.0, 1.0), 2.0),
            ((512.0, 1.0), 2.0),
            ((512.0, 2.0), 2.0),
            ((2048.0, 1.0), 4.0),
        ] {
            let e = env(&[("procs", procs), ("threads", threads)]);
            assert_eq!(
                eval("max(ceildiv(procs * threads, 512), 2)", &e).unwrap(),
                nodes
            );
        }
    }

    #[test]
    fn errors_are_descriptive() {
        let e = env(&[]);
        assert!(eval("nope", &e).unwrap_err().contains("unknown identifier"));
        assert!(eval("1 / 0", &e).unwrap_err().contains("division by zero"));
        assert!(eval("hypot(1, 2)", &e)
            .unwrap_err()
            .contains("unknown function"));
        assert!(eval("min(1)", &e).unwrap_err().contains("2 arguments"));
        assert!(eval("1 +", &e).is_err());
        assert!(eval("(1", &e).is_err());
        assert!(eval("1 2", &e).is_err());
    }
}
