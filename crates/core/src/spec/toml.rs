//! A hand-rolled TOML-subset parser for sweep specs.
//!
//! The repo's no-external-deps discipline rules out a real TOML crate,
//! so this module implements exactly the slice of TOML the spec
//! language needs: comments, `key = value` pairs, `[table]` and
//! `[[array-of-tables]]` headers with dotted paths, basic strings with
//! escapes, integers (with `_` separators), floats, booleans,
//! (multi-line) arrays, and single-line inline tables. Every parsed
//! value carries its source [`Span`] so later validation stages
//! ([`crate::spec::model`], [`crate::spec::compile`]) can report
//! line/column diagnostics, and every malformed input returns a typed
//! [`SpecError`] — the parser never panics (a property the fuzz
//! proptest holds).

use super::SpecError;

/// A 1-based source position (line, column) of a key or value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl Span {
    /// A span for values with no source position (the JSON alternate
    /// form, synthesized defaults); renders as `0:0`.
    pub const NONE: Span = Span { line: 0, col: 0 };
}

/// A parsed value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Integer (`42`, `8_192`, `-3`).
    Int(i64),
    /// Float (`0.05`, `5.0e-3`).
    Float(f64),
    /// Basic string (`"BX2b"`).
    Str(String),
    /// Boolean.
    Bool(bool),
    /// Array (`[1, 2, 3]`, possibly spanning lines).
    Array(Vec<Node>),
    /// Table (from a `[header]` or an inline `{ k = v }`).
    Table(Table),
}

impl Value {
    /// Human name of the value's type, for diagnostics.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Int(_) => "an integer",
            Value::Float(_) => "a float",
            Value::Str(_) => "a string",
            Value::Bool(_) => "a boolean",
            Value::Array(_) => "an array",
            Value::Table(_) => "a table",
        }
    }
}

/// A value plus where it came from.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// The value.
    pub value: Value,
    /// Source position of the value's first character.
    pub span: Span,
}

/// One table entry: key name, key position, value.
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    /// Key name.
    pub key: String,
    /// Source position of the key.
    pub key_span: Span,
    /// The value.
    pub node: Node,
}

/// An insertion-ordered table. Order is load-bearing: sweep blocks and
/// grid axes expand in declaration order, and the canonical emitter
/// preserves it.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Table {
    /// Entries in declaration order.
    pub entries: Vec<Entry>,
}

impl Table {
    /// Look up a key.
    pub fn get(&self, key: &str) -> Option<&Node> {
        self.entries.iter().find(|e| e.key == key).map(|e| &e.node)
    }

    /// Key names in declaration order.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|e| e.key.as_str())
    }
}

/// Parse a spec document into its root [`Table`].
pub fn parse(src: &str) -> Result<Table, SpecError> {
    Parser::new(src).parse_document()
}

/// Marks how a table in the tree came to exist, for redefinition
/// diagnostics (`[a]` twice is an error; `[[sweep]]` twice appends).
#[derive(Debug, Clone, Copy, PartialEq)]
enum Origin {
    Header,
    Implicit,
}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    /// Path of the table currently receiving `key = value` lines; each
    /// segment is (key, descend-into-last-array-element).
    current: Vec<String>,
    root: Tree,
}

/// Mutable parse tree mirroring [`Table`] but tagging each table with
/// its [`Origin`] and flattening arrays-of-tables.
#[derive(Default)]
struct Tree {
    entries: Vec<TreeEntry>,
}

struct TreeEntry {
    key: String,
    key_span: Span,
    node: TreeNode,
}

enum TreeNode {
    Leaf(Node),
    Table(Tree, Origin),
    /// `[[name]]` array of tables.
    ArrayOfTables(Vec<Tree>, Span),
}

impl Tree {
    fn into_table(self) -> Table {
        let mut t = Table::default();
        for e in self.entries {
            let node = match e.node {
                TreeNode::Leaf(n) => n,
                TreeNode::Table(tree, _) => Node {
                    value: Value::Table(tree.into_table()),
                    span: e.key_span,
                },
                TreeNode::ArrayOfTables(trees, span) => Node {
                    value: Value::Array(
                        trees
                            .into_iter()
                            .map(|tr| Node {
                                value: Value::Table(tr.into_table()),
                                span,
                            })
                            .collect(),
                    ),
                    span,
                },
            };
            t.entries.push(Entry {
                key: e.key,
                key_span: e.key_span,
                node,
            });
        }
        t
    }
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Self {
        Parser {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
            current: Vec::new(),
            root: Tree::default(),
        }
    }

    fn span(&self) -> Span {
        Span {
            line: self.line,
            col: self.col,
        }
    }

    fn err(&self, span: Span, message: impl Into<String>) -> SpecError {
        SpecError::Parse {
            line: span.line,
            col: span.col,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    /// Skip spaces and tabs (not newlines).
    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ') | Some(b'\t')) {
            self.bump();
        }
    }

    /// Skip a `# …` comment up to (not including) the newline.
    fn skip_comment(&mut self) {
        while !matches!(self.peek(), None | Some(b'\n')) {
            self.bump();
        }
    }

    /// Skip whitespace, comments, and newlines (inside arrays).
    fn skip_filler(&mut self) {
        loop {
            match self.peek() {
                Some(b' ') | Some(b'\t') | Some(b'\n') | Some(b'\r') => {
                    self.bump();
                }
                Some(b'#') => self.skip_comment(),
                _ => break,
            }
        }
    }

    /// Consume the rest of the line, which must hold only whitespace or
    /// a comment.
    fn expect_line_end(&mut self) -> Result<(), SpecError> {
        self.skip_ws();
        if self.peek() == Some(b'#') {
            self.skip_comment();
        }
        match self.peek() {
            None => Ok(()),
            Some(b'\n') => {
                self.bump();
                Ok(())
            }
            Some(b'\r') => {
                self.bump();
                if self.peek() == Some(b'\n') {
                    self.bump();
                    Ok(())
                } else {
                    Err(self.err(self.span(), "expected a newline after '\\r'"))
                }
            }
            Some(c) => Err(self.err(
                self.span(),
                format!("unexpected character '{}' after value", c as char),
            )),
        }
    }

    fn parse_document(mut self) -> Result<Table, SpecError> {
        loop {
            self.skip_ws();
            match self.peek() {
                None => break,
                Some(b'\n') | Some(b'\r') => {
                    self.bump();
                }
                Some(b'#') => self.skip_comment(),
                Some(b'[') => self.parse_header()?,
                Some(_) => self.parse_key_value()?,
            }
        }
        Ok(self.root.into_table())
    }

    fn parse_bare_key(&mut self) -> Result<(String, Span), SpecError> {
        let span = self.span();
        let mut key = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' || c == b'-' {
                key.push(c as char);
                self.bump();
            } else {
                break;
            }
        }
        if key.is_empty() {
            return Err(self.err(
                span,
                match self.peek() {
                    Some(c) => format!(
                        "expected a key, found '{}' (bare keys use A-Z a-z 0-9 _ -)",
                        c as char
                    ),
                    None => "expected a key, found end of input".to_string(),
                },
            ));
        }
        Ok((key, span))
    }

    fn parse_header(&mut self) -> Result<(), SpecError> {
        let open = self.span();
        self.bump(); // '['
        let array = self.peek() == Some(b'[');
        if array {
            self.bump();
        }
        let mut path = Vec::new();
        loop {
            self.skip_ws();
            let (key, span) = self.parse_bare_key()?;
            path.push((key, span));
            self.skip_ws();
            match self.peek() {
                Some(b'.') => {
                    self.bump();
                }
                Some(b']') => {
                    self.bump();
                    break;
                }
                Some(c) => {
                    return Err(self.err(
                        self.span(),
                        format!("expected '.' or ']' in table header, found '{}'", c as char),
                    ))
                }
                None => return Err(self.err(open, "unterminated table header")),
            }
        }
        if array {
            if self.peek() != Some(b']') {
                return Err(self.err(self.span(), "expected ']]' to close array-of-tables header"));
            }
            self.bump();
        }
        self.expect_line_end()?;

        // Navigate to the parent of the last segment, creating implicit
        // tables as needed, then define the final segment.
        let mut tree = &mut self.root;
        let (last, init) = path.split_last().expect("header path is non-empty");
        for (seg, seg_span) in init {
            tree = descend(tree, seg, *seg_span)?;
        }
        let (name, name_span) = last;
        let existing = tree.entries.iter_mut().find(|e| e.key == *name);
        match existing {
            None => {
                tree.entries.push(TreeEntry {
                    key: name.clone(),
                    key_span: *name_span,
                    node: if array {
                        TreeNode::ArrayOfTables(vec![Tree::default()], *name_span)
                    } else {
                        TreeNode::Table(Tree::default(), Origin::Header)
                    },
                });
            }
            Some(e) => match &mut e.node {
                TreeNode::ArrayOfTables(trees, _) if array => trees.push(Tree::default()),
                TreeNode::ArrayOfTables(_, _) => {
                    return Err(self.err(
                        *name_span,
                        format!("'{name}' is an array of tables; use [[{name}]] to append"),
                    ))
                }
                // A table first created implicitly (by a deeper header
                // like `[a.b]`) may be defined explicitly once.
                TreeNode::Table(_, origin @ Origin::Implicit) if !array => {
                    *origin = Origin::Header;
                }
                _ => return Err(self.err(*name_span, format!("table '{name}' is already defined"))),
            },
        }
        self.current = path.into_iter().map(|(k, _)| k).collect();
        Ok(())
    }

    fn parse_key_value(&mut self) -> Result<(), SpecError> {
        let (key, key_span) = self.parse_bare_key()?;
        self.skip_ws();
        match self.peek() {
            Some(b'=') => {
                self.bump();
            }
            Some(c) => {
                return Err(self.err(
                    self.span(),
                    format!("expected '=' after key '{key}', found '{}'", c as char),
                ))
            }
            None => return Err(self.err(self.span(), format!("expected '=' after key '{key}'"))),
        }
        self.skip_ws();
        let node = self.parse_value()?;
        self.expect_line_end()?;

        let mut tree = &mut self.root;
        let path = std::mem::take(&mut self.current);
        for seg in &path {
            tree = descend(tree, seg, key_span)?;
        }
        self.current = path;
        if tree.entries.iter().any(|e| e.key == key) {
            return Err(self.err(key_span, format!("duplicate key '{key}'")));
        }
        tree.entries.push(TreeEntry {
            key,
            key_span,
            node: TreeNode::Leaf(node),
        });
        Ok(())
    }

    fn parse_value(&mut self) -> Result<Node, SpecError> {
        let span = self.span();
        match self.peek() {
            Some(b'"') => {
                let s = self.parse_string()?;
                Ok(Node {
                    value: Value::Str(s),
                    span,
                })
            }
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_inline_table(),
            Some(b't') | Some(b'f') => {
                let mut word = String::new();
                while let Some(c) = self.peek() {
                    if c.is_ascii_alphabetic() {
                        word.push(c as char);
                        self.bump();
                    } else {
                        break;
                    }
                }
                match word.as_str() {
                    "true" => Ok(Node {
                        value: Value::Bool(true),
                        span,
                    }),
                    "false" => Ok(Node {
                        value: Value::Bool(false),
                        span,
                    }),
                    _ => Err(self.err(span, format!("expected a value, found '{word}'"))),
                }
            }
            Some(c) if c.is_ascii_digit() || c == b'-' || c == b'+' || c == b'.' => {
                self.parse_number(span)
            }
            Some(c) => Err(self.err(span, format!("expected a value, found '{}'", c as char))),
            None => Err(self.err(span, "expected a value, found end of input")),
        }
    }

    fn parse_string(&mut self) -> Result<String, SpecError> {
        let open = self.span();
        self.bump(); // '"'
        let mut s = String::new();
        loop {
            match self.bump() {
                None | Some(b'\n') => return Err(self.err(open, "unterminated string")),
                Some(b'"') => return Ok(s),
                Some(b'\\') => {
                    let esc_span = self.span();
                    match self.bump() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'n') => s.push('\n'),
                        Some(b't') => s.push('\t'),
                        Some(b'r') => s.push('\r'),
                        Some(c) => {
                            return Err(self.err(
                                esc_span,
                                format!("unknown escape '\\{}' in string", c as char),
                            ))
                        }
                        None => return Err(self.err(open, "unterminated string")),
                    }
                }
                Some(c) if c < 0x80 => s.push(c as char),
                Some(first) => {
                    // Re-assemble a UTF-8 sequence (the source is a
                    // &str, so the bytes are valid UTF-8).
                    let len = match first {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let mut buf = vec![first];
                    for _ in 1..len {
                        if let Some(b) = self.bump() {
                            buf.push(b);
                        }
                    }
                    match std::str::from_utf8(&buf) {
                        Ok(frag) => s.push_str(frag),
                        Err(_) => return Err(self.err(open, "invalid UTF-8 in string")),
                    }
                }
            }
        }
    }

    fn parse_number(&mut self, span: Span) -> Result<Node, SpecError> {
        let mut text = String::new();
        let mut prev: u8 = 0;
        while let Some(c) = self.peek() {
            let is_num_char = c.is_ascii_digit()
                || c == b'.'
                || c == b'_'
                || c == b'e'
                || c == b'E'
                || ((c == b'+' || c == b'-') && (text.is_empty() || prev == b'e' || prev == b'E'));
            if !is_num_char {
                break;
            }
            text.push(c as char);
            prev = c;
            self.bump();
        }
        let cleaned: String = text.chars().filter(|&c| c != '_').collect();
        let is_float = cleaned.contains('.') || cleaned.contains('e') || cleaned.contains('E');
        let value = if is_float {
            match cleaned.parse::<f64>() {
                Ok(f) if f.is_finite() => Value::Float(f),
                _ => return Err(self.err(span, format!("malformed number '{text}'"))),
            }
        } else {
            match cleaned.parse::<i64>() {
                Ok(i) => Value::Int(i),
                Err(_) => return Err(self.err(span, format!("malformed number '{text}'"))),
            }
        };
        Ok(Node { value, span })
    }

    fn parse_array(&mut self) -> Result<Node, SpecError> {
        let open = self.span();
        self.bump(); // '['
        let mut items = Vec::new();
        loop {
            self.skip_filler();
            match self.peek() {
                Some(b']') => {
                    self.bump();
                    return Ok(Node {
                        value: Value::Array(items),
                        span: open,
                    });
                }
                None => return Err(self.err(open, "unterminated array")),
                _ => {}
            }
            items.push(self.parse_value()?);
            self.skip_filler();
            match self.peek() {
                Some(b',') => {
                    self.bump();
                }
                Some(b']') => {}
                Some(c) => {
                    return Err(self.err(
                        self.span(),
                        format!("expected ',' or ']' in array, found '{}'", c as char),
                    ))
                }
                None => return Err(self.err(open, "unterminated array")),
            }
        }
    }

    fn parse_inline_table(&mut self) -> Result<Node, SpecError> {
        let open = self.span();
        self.bump(); // '{'
        let mut table = Table::default();
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'}') => {
                    self.bump();
                    return Ok(Node {
                        value: Value::Table(table),
                        span: open,
                    });
                }
                Some(b'\n') | None => {
                    return Err(self.err(open, "unterminated inline table (must be one line)"))
                }
                _ => {}
            }
            let (key, key_span) = self.parse_bare_key()?;
            self.skip_ws();
            if self.peek() != Some(b'=') {
                return Err(self.err(
                    self.span(),
                    format!("expected '=' after key '{key}' in inline table"),
                ));
            }
            self.bump();
            self.skip_ws();
            let node = self.parse_value()?;
            if table.get(&key).is_some() {
                return Err(self.err(key_span, format!("duplicate key '{key}'")));
            }
            table.entries.push(Entry {
                key,
                key_span,
                node,
            });
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.bump();
                }
                Some(b'}') => {}
                Some(c) => {
                    return Err(self.err(
                        self.span(),
                        format!(
                            "expected ',' or '}}' in inline table, found '{}'",
                            c as char
                        ),
                    ))
                }
                None => return Err(self.err(open, "unterminated inline table")),
            }
        }
    }
}

/// Descend one path segment, creating an implicit table if absent;
/// arrays of tables descend into their last element.
fn descend<'t>(tree: &'t mut Tree, seg: &str, span: Span) -> Result<&'t mut Tree, SpecError> {
    let idx = match tree.entries.iter().position(|e| e.key == seg) {
        Some(i) => i,
        None => {
            tree.entries.push(TreeEntry {
                key: seg.to_string(),
                key_span: span,
                node: TreeNode::Table(Tree::default(), Origin::Implicit),
            });
            tree.entries.len() - 1
        }
    };
    match &mut tree.entries[idx].node {
        TreeNode::Table(t, _) => Ok(t),
        TreeNode::ArrayOfTables(trees, _) => {
            Ok(trees.last_mut().expect("array of tables is never empty"))
        }
        TreeNode::Leaf(_) => Err(SpecError::Parse {
            line: span.line,
            col: span.col,
            message: format!("key '{seg}' is a value, not a table"),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_tables_and_arrays() {
        let t = parse(
            "schema = \"v1\" # trailing comment\n\
             count = 8_192\n\
             prob = 5.0e-3\n\
             on = true\n\
             [report]\n\
             id = \"Fig. 5\"\n\
             headers = [\n  \"a\", # comment\n  \"b\",\n]\n\
             [[sweep]]\n\
             kind = \"dgemm\"\n\
             [sweep.grid]\n\
             node = [\"3700\", \"BX2b\"]\n\
             [[sweep]]\n\
             combo = [{ procs = 64, threads = 1 }]\n",
        )
        .unwrap();
        assert_eq!(t.get("schema").unwrap().value, Value::Str("v1".into()));
        assert_eq!(t.get("count").unwrap().value, Value::Int(8192));
        assert_eq!(t.get("prob").unwrap().value, Value::Float(5.0e-3));
        assert_eq!(t.get("on").unwrap().value, Value::Bool(true));
        let report = match &t.get("report").unwrap().value {
            Value::Table(r) => r,
            v => panic!("report is {v:?}"),
        };
        assert_eq!(report.get("id").unwrap().value, Value::Str("Fig. 5".into()));
        let sweeps = match &t.get("sweep").unwrap().value {
            Value::Array(a) => a,
            v => panic!("sweep is {v:?}"),
        };
        assert_eq!(sweeps.len(), 2);
        let first = match &sweeps[0].value {
            Value::Table(s) => s,
            v => panic!("{v:?}"),
        };
        assert!(matches!(
            &first.get("grid").unwrap().value,
            Value::Table(g) if matches!(&g.get("node").unwrap().value, Value::Array(a) if a.len() == 2)
        ));
        let second = match &sweeps[1].value {
            Value::Table(s) => s,
            v => panic!("{v:?}"),
        };
        let combo = match &second.get("combo").unwrap().value {
            Value::Array(a) => a,
            v => panic!("{v:?}"),
        };
        assert!(matches!(
            &combo[0].value,
            Value::Table(c) if c.get("procs").unwrap().value == Value::Int(64)
        ));
    }

    #[test]
    fn spans_point_at_the_source() {
        let t = parse("a = 1\nlonger = \"x\"\n").unwrap();
        let e = &t.entries[1];
        assert_eq!(e.key_span, Span { line: 2, col: 1 });
        assert_eq!(e.node.span, Span { line: 2, col: 10 });
    }

    #[test]
    fn errors_carry_positions() {
        let err = parse("a = \"unterminated\n").unwrap_err();
        match err {
            SpecError::Parse { line, col, .. } => {
                assert_eq!((line, col), (1, 5));
            }
            other => panic!("{other:?}"),
        }
        assert!(parse("a = 1\na = 2\n").is_err(), "duplicate key");
        assert!(parse("[t]\n[t]\n").is_err(), "duplicate table");
        assert!(parse("x 1\n").is_err(), "missing equals");
        assert!(parse("x = 1e\n").is_err(), "malformed float");
    }
}
