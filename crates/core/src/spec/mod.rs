//! `core::spec` — the declarative sweep-spec frontend.
//!
//! ROADMAP item 1: turn the 17+1 hard-coded experiments into "one
//! engine plus data". A spec file (TOML subset, or JSON via the
//! vendored `serde_json`) declares a report shape plus a list of sweep
//! blocks — parameter grids over node kind, fabric, compiler, pinning,
//! fault plan, workload, class, and rank count, with cartesian
//! products, explicit point lists, and simple derived parameters — and
//! [`compile`] lowers it onto the existing [`crate::sweep::SweepPlan`]
//! machinery. Everything downstream (parallel execution, resilience,
//! checkpointing, manifests, analysis) is unchanged; `repro --spec
//! file.toml` is just another way to construct a plan.
//!
//! The pipeline:
//!
//! ```text
//! text --toml::parse--> Table --model::decode--> Spec --compile--> SweepPlan
//! ```
//!
//! Each stage returns a typed [`SpecError`] carrying the 1-based
//! line/column of the offending token; unknown keys come with an
//! edit-distance suggestion ("did you mean 'class'?"). All validation
//! — types, enum values, template placeholders, derived expressions —
//! happens at compile time, so a compiled plan's points can only fail
//! with the simulator's own `SimError`, exactly like the hard-coded
//! plans. Specs are content-addressable two ways: [`spec_hash`] is the
//! FNV-128 of the spec bytes (recorded in run manifests), and the
//! compiled plan's [`crate::sweep::SweepPlan::fingerprint`] identifies
//! the plan shape.
//!
//! The shipped `specs/` directory holds one spec per hard-coded
//! experiment; `tests/spec_equivalence.rs` proves each compiles to
//! byte-identical report output. DESIGN.md §14 is the language
//! reference.

mod compile;
mod expr;
mod model;
mod toml;

use std::path::Path;

pub use compile::compile;
pub use model::{decode, from_json, Spec};
pub use toml::{Span, Table, Value};

use crate::store::Fnv128;
use crate::sweep::SweepPlan;

/// Schema tag every spec document must declare.
pub const SPEC_SCHEMA: &str = "columbia-spec-v1";

/// A typed spec failure: every way a spec file can be rejected, with
/// the 1-based source position of the offending token. `0:0` means the
/// input had no positions (the JSON alternate form).
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// The file could not be read.
    Io {
        /// Path as given.
        path: String,
        /// OS error text.
        message: String,
    },
    /// The text is not well-formed TOML-subset (or JSON).
    Parse {
        /// 1-based line.
        line: u32,
        /// 1-based column.
        col: u32,
        /// What went wrong.
        message: String,
    },
    /// The document parsed but a value is invalid (wrong type, unknown
    /// enum name, bad template placeholder, failed derived
    /// expression, …).
    Invalid {
        /// 1-based line.
        line: u32,
        /// 1-based column.
        col: u32,
        /// What went wrong.
        message: String,
    },
    /// A key the schema does not know, with a best-effort suggestion.
    UnknownKey {
        /// 1-based line.
        line: u32,
        /// 1-based column.
        col: u32,
        /// The offending key.
        key: String,
        /// Where it appeared (e.g. `[report]`).
        context: String,
        /// Closest known key, if any is close enough.
        suggestion: Option<String>,
    },
}

impl SpecError {
    /// Source position of the error, when it has one.
    pub fn position(&self) -> Option<(u32, u32)> {
        match self {
            SpecError::Io { .. } => None,
            SpecError::Parse { line, col, .. }
            | SpecError::Invalid { line, col, .. }
            | SpecError::UnknownKey { line, col, .. } => Some((*line, *col)),
        }
    }
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::Io { path, message } => write!(f, "{path}: {message}"),
            SpecError::Parse { line, col, message } => {
                write!(f, "{line}:{col}: {message}")
            }
            SpecError::Invalid { line, col, message } => {
                write!(f, "{line}:{col}: {message}")
            }
            SpecError::UnknownKey {
                line,
                col,
                key,
                context,
                suggestion,
            } => {
                write!(f, "{line}:{col}: unknown key '{key}' in {context}")?;
                if let Some(s) = suggestion {
                    write!(f, " (did you mean '{s}'?)")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for SpecError {}

/// Restricted Damerau-Levenshtein edit distance (substitution,
/// insertion, deletion, and adjacent transposition each cost 1), for
/// unknown-key suggestions — `rwo` is one typo away from `row`.
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev2: Vec<usize> = vec![0; b.len() + 1];
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            let mut best = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
            if i > 0 && j > 0 && ca == b[j - 1] && a[i - 1] == cb {
                best = best.min(prev2[j - 1] + 1);
            }
            cur[j + 1] = best;
        }
        std::mem::swap(&mut prev2, &mut prev);
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// The closest candidate to `key`, if any is close enough to be a
/// plausible typo (edit distance ≤ 2 and under half the key's length,
/// or a pure case mismatch).
pub(crate) fn suggest(key: &str, candidates: &[&str]) -> Option<String> {
    let lower = key.to_ascii_lowercase();
    if let Some(c) = candidates.iter().find(|c| c.to_ascii_lowercase() == lower) {
        return Some((*c).to_string());
    }
    candidates
        .iter()
        .map(|c| (edit_distance(key, c), *c))
        .filter(|&(d, c)| d <= 2 && 2 * d <= key.len().max(c.len()))
        .min_by_key(|&(d, _)| d)
        .map(|(_, c)| c.to_string())
}

/// FNV-128 content hash of a spec file's bytes, as 32 hex chars — what
/// the run manifest records so a result is pinned to the exact spec
/// text that produced it.
pub fn spec_hash(bytes: &[u8]) -> String {
    let mut h = Fnv128::new();
    h.update(b"columbia-spec\0");
    h.update(bytes);
    format!("{:032x}", h.finish())
}

/// Parse and validate spec text in the TOML form.
pub fn load_str(text: &str) -> Result<Spec, SpecError> {
    decode(&toml::parse(text)?)
}

/// Parse and validate spec text in the JSON alternate form.
pub fn load_json_str(text: &str) -> Result<Spec, SpecError> {
    from_json(text)
}

/// Load a spec from disk; `.json` selects the JSON alternate form,
/// anything else parses as the TOML subset.
pub fn load_path(path: &Path) -> Result<Spec, SpecError> {
    let text = std::fs::read_to_string(path).map_err(|e| SpecError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    })?;
    if path.extension().is_some_and(|e| e == "json") {
        load_json_str(&text)
    } else {
        load_str(&text)
    }
}

/// Load and compile a spec file into a runnable plan in one step — the
/// `repro --spec` entry point.
pub fn load_and_compile(path: &Path) -> Result<SweepPlan, SpecError> {
    compile(&load_path(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suggestions_catch_plausible_typos() {
        assert_eq!(
            suggest("clas", &["class", "kind", "procs"]),
            Some("class".into())
        );
        assert_eq!(
            suggest("Kind", &["class", "kind", "procs"]),
            Some("kind".into())
        );
        assert_eq!(suggest("zzz", &["class", "kind", "procs"]), None);
    }

    #[test]
    fn spec_hash_is_stable_and_content_sensitive() {
        let a = spec_hash(b"schema = \"columbia-spec-v1\"\n");
        assert_eq!(a.len(), 32);
        assert_eq!(a, spec_hash(b"schema = \"columbia-spec-v1\"\n"));
        assert_ne!(a, spec_hash(b"schema = \"columbia-spec-v2\"\n"));
    }

    #[test]
    fn display_formats_pin_the_diagnostic_shape() {
        let e = SpecError::UnknownKey {
            line: 12,
            col: 3,
            key: "clas".into(),
            context: "[sweep] block 2 (kind 'npb')".into(),
            suggestion: Some("class".into()),
        };
        assert_eq!(
            e.to_string(),
            "12:3: unknown key 'clas' in [sweep] block 2 (kind 'npb') (did you mean 'class'?)"
        );
        assert_eq!(e.position(), Some((12, 3)));
    }
}
