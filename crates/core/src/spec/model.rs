//! The typed spec document: decode a parsed [`Table`] into a [`Spec`],
//! convert the JSON alternate form, and re-emit the canonical TOML
//! text.
//!
//! Decoding validates document *structure* — required sections, value
//! types, unknown keys (with suggestions). Sweep-block parameters stay
//! raw [`Node`]s here; [`crate::spec::compile`] validates them against
//! the selected measurement kind, because only the kind knows which
//! parameters exist.
//!
//! [`Spec::to_toml`] emits a canonical rendering (defaults merged,
//! fixed key order per section). The property suite holds the fixed
//! point `emit(parse(emit(s))) == emit(s)` and that re-parsing an
//! emitted spec compiles to the same plan fingerprint.

use super::toml::{Entry, Node, Span, Table, Value};
use super::{SpecError, SPEC_SCHEMA};

/// A validated spec document, ready to compile.
#[derive(Debug, Clone, PartialEq)]
pub struct Spec {
    /// Report identity: id, title, column headers, plan-level notes.
    pub report: ReportSpec,
    /// Sweep blocks in declaration order (defaults already merged in).
    pub sweeps: Vec<SweepSpec>,
    /// Optional cross-point collation.
    pub collate: Option<CollateSpec>,
    /// `[defaults] sim_threads` — per-simulation PDES thread count
    /// requested for every point of this spec (`None` = runner
    /// decides). An execution hint only: results are bit-identical at
    /// any value.
    pub sim_threads: Option<usize>,
}

/// The `[report]` section.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportSpec {
    /// Report id (e.g. `"Fig. 9"`).
    pub id: String,
    /// Report title line.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Plan-level notes, rendered after all point output.
    pub notes: Vec<String>,
}

/// One `[[sweep]]` block.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Measurement kind (`"npb"`, `"mz"`, `"dgemm"`, …).
    pub kind: String,
    /// Source position of the kind value.
    pub kind_span: Span,
    /// 1-based block index, for diagnostics.
    pub index: usize,
    /// Remaining parameters (defaults merged, block wins), raw — the
    /// compiler types them per kind.
    pub params: Vec<Entry>,
    /// Grid axes in declaration order; the cartesian product runs with
    /// the first axis slowest.
    pub grid: Vec<Axis>,
    /// Derived parameters, evaluated in declaration order.
    pub derived: Vec<Derived>,
}

/// One grid axis: scalar values bind the axis name; inline-table
/// values are tuple points binding each of their keys (an explicit
/// point list).
#[derive(Debug, Clone, PartialEq)]
pub struct Axis {
    /// Binding name (or tuple-axis label).
    pub name: String,
    /// Source position of the axis key.
    pub name_span: Span,
    /// Axis values.
    pub values: Vec<Node>,
}

/// One derived parameter: `name = "expr"`.
#[derive(Debug, Clone, PartialEq)]
pub struct Derived {
    /// Binding name.
    pub name: String,
    /// Source position of the name.
    pub name_span: Span,
    /// Expression text (see [`crate::spec::expr`]).
    pub expr: String,
    /// Source position of the expression string.
    pub expr_span: Span,
}

/// The `[collate]` section: a cross-point reduction applied at report
/// time.
#[derive(Debug, Clone, PartialEq)]
pub struct CollateSpec {
    /// Reduction mode; `"ratio-to-first"` divides each point's scalar
    /// value by the first point's and writes it into `column`.
    pub mode: String,
    /// Target column index.
    pub column: usize,
    /// Decimal places of the rendered ratio.
    pub decimals: usize,
    /// Suffix appended to the rendered ratio (e.g. `"x"`).
    pub suffix: String,
    /// Source position of the section, for late validation.
    pub span: Span,
}

/// Tracks which keys of a table a decode stage consumed, so leftovers
/// become [`SpecError::UnknownKey`] with a suggestion.
pub(crate) struct Fields<'a> {
    table: &'a Table,
    used: Vec<&'a str>,
}

impl<'a> Fields<'a> {
    pub(crate) fn new(table: &'a Table) -> Self {
        Fields {
            table,
            used: Vec::new(),
        }
    }

    pub(crate) fn take(&mut self, key: &'static str) -> Option<&'a Node> {
        let node = self.table.get(key)?;
        self.used.push(key);
        Some(node)
    }

    /// Error on the first unconsumed key, suggesting the closest of
    /// `allowed`.
    pub(crate) fn finish(self, context: &str, allowed: &[&str]) -> Result<(), SpecError> {
        for e in &self.table.entries {
            if !self.used.contains(&e.key.as_str()) {
                return Err(SpecError::UnknownKey {
                    line: e.key_span.line,
                    col: e.key_span.col,
                    key: e.key.clone(),
                    context: context.to_string(),
                    suggestion: super::suggest(&e.key, allowed),
                });
            }
        }
        Ok(())
    }
}

fn invalid(span: Span, message: impl Into<String>) -> SpecError {
    SpecError::Invalid {
        line: span.line,
        col: span.col,
        message: message.into(),
    }
}

pub(crate) fn as_str<'a>(node: &'a Node, what: &str) -> Result<&'a str, SpecError> {
    match &node.value {
        Value::Str(s) => Ok(s),
        v => Err(invalid(
            node.span,
            format!("{what} must be a string, found {}", v.type_name()),
        )),
    }
}

pub(crate) fn as_table<'a>(node: &'a Node, what: &str) -> Result<&'a Table, SpecError> {
    match &node.value {
        Value::Table(t) => Ok(t),
        v => Err(invalid(
            node.span,
            format!("{what} must be a table, found {}", v.type_name()),
        )),
    }
}

pub(crate) fn as_int(node: &Node, what: &str) -> Result<i64, SpecError> {
    match &node.value {
        Value::Int(i) => Ok(*i),
        v => Err(invalid(
            node.span,
            format!("{what} must be an integer, found {}", v.type_name()),
        )),
    }
}

fn as_str_array(node: &Node, what: &str) -> Result<Vec<String>, SpecError> {
    match &node.value {
        Value::Array(items) => items
            .iter()
            .map(|n| as_str(n, what).map(str::to_string))
            .collect(),
        v => Err(invalid(
            node.span,
            format!(
                "{what} must be an array of strings, found {}",
                v.type_name()
            ),
        )),
    }
}

/// Decode a parsed document into a [`Spec`].
pub fn decode(root: &Table) -> Result<Spec, SpecError> {
    let mut fields = Fields::new(root);

    let schema = fields
        .take("schema")
        .ok_or_else(|| invalid(Span { line: 1, col: 1 }, "missing required key 'schema'"))?;
    let schema_str = as_str(schema, "'schema'")?;
    if schema_str != SPEC_SCHEMA {
        return Err(invalid(
            schema.span,
            format!("unsupported schema '{schema_str}' (expected '{SPEC_SCHEMA}')"),
        ));
    }

    let report_node = fields.take("report").ok_or_else(|| {
        invalid(
            Span { line: 1, col: 1 },
            "missing required section [report]",
        )
    })?;
    let report = decode_report(as_table(report_node, "[report]")?)?;

    let mut sim_threads = None;
    let defaults: Vec<Entry> = match fields.take("defaults") {
        Some(n) => {
            let t = as_table(n, "[defaults]")?;
            let mut entries = Vec::new();
            for e in &t.entries {
                if e.key == "grid" || e.key == "derived" {
                    return Err(invalid(
                        e.key_span,
                        format!("[defaults] cannot set '{}' (it is per-sweep)", e.key),
                    ));
                }
                // `sim_threads` is spec-level execution policy, not a
                // sweep parameter: lift it out before merging defaults
                // into the blocks.
                if e.key == "sim_threads" {
                    let v = as_int(&e.node, "'sim_threads'")?;
                    if v < 1 {
                        return Err(invalid(
                            e.node.span,
                            format!("'sim_threads' must be at least 1, found {v}"),
                        ));
                    }
                    sim_threads = Some(v as usize);
                    continue;
                }
                entries.push(e.clone());
            }
            entries
        }
        None => Vec::new(),
    };

    let sweep_node = fields.take("sweep").ok_or_else(|| {
        invalid(
            Span { line: 1, col: 1 },
            "missing required section [[sweep]] (at least one sweep block)",
        )
    })?;
    let sweep_tables = match &sweep_node.value {
        Value::Array(items) => items,
        v => {
            return Err(invalid(
                sweep_node.span,
                format!(
                    "'sweep' must be an array of tables ([[sweep]] blocks), found {}",
                    v.type_name()
                ),
            ))
        }
    };
    if sweep_tables.is_empty() {
        return Err(invalid(
            sweep_node.span,
            "at least one [[sweep]] block is required",
        ));
    }
    let mut sweeps = Vec::new();
    for (i, n) in sweep_tables.iter().enumerate() {
        let t = as_table(n, "[[sweep]]")?;
        sweeps.push(decode_sweep(t, i + 1, &defaults, n.span)?);
    }

    let collate = match fields.take("collate") {
        Some(n) => Some(decode_collate(as_table(n, "[collate]")?, n.span)?),
        None => None,
    };

    fields.finish(
        "the top level",
        &["schema", "report", "defaults", "sweep", "collate"],
    )?;

    Ok(Spec {
        report,
        sweeps,
        collate,
        sim_threads,
    })
}

fn decode_report(t: &Table) -> Result<ReportSpec, SpecError> {
    let mut f = Fields::new(t);
    let missing = |what: &str| {
        invalid(
            Span { line: 1, col: 1 },
            format!("[report] is missing required key '{what}'"),
        )
    };
    let id = as_str(f.take("id").ok_or_else(|| missing("id"))?, "'id'")?.to_string();
    let title = as_str(f.take("title").ok_or_else(|| missing("title"))?, "'title'")?.to_string();
    let headers_node = f.take("headers").ok_or_else(|| missing("headers"))?;
    let headers = as_str_array(headers_node, "'headers'")?;
    if headers.is_empty() {
        return Err(invalid(headers_node.span, "'headers' must not be empty"));
    }
    let notes = match f.take("notes") {
        Some(n) => as_str_array(n, "'notes'")?,
        None => Vec::new(),
    };
    f.finish("[report]", &["id", "title", "headers", "notes"])?;
    Ok(ReportSpec {
        id,
        title,
        headers,
        notes,
    })
}

fn decode_sweep(
    t: &Table,
    index: usize,
    defaults: &[Entry],
    block_span: Span,
) -> Result<SweepSpec, SpecError> {
    let kind_node = t
        .get("kind")
        .or_else(|| defaults.iter().find(|e| e.key == "kind").map(|e| &e.node));
    let kind_node = kind_node.ok_or_else(|| {
        invalid(
            block_span,
            format!("[[sweep]] block {index} is missing required key 'kind'"),
        )
    })?;
    let kind = as_str(kind_node, "'kind'")?.to_string();

    let grid = match t.get("grid") {
        Some(n) => {
            let gt = as_table(n, "[sweep.grid]")?;
            let mut axes = Vec::new();
            for e in &gt.entries {
                let values = match &e.node.value {
                    Value::Array(items) => items.clone(),
                    v => {
                        return Err(invalid(
                            e.node.span,
                            format!(
                                "grid axis '{}' must be an array, found {}",
                                e.key,
                                v.type_name()
                            ),
                        ))
                    }
                };
                if values.is_empty() {
                    return Err(invalid(
                        e.node.span,
                        format!("grid axis '{}' must not be empty", e.key),
                    ));
                }
                axes.push(Axis {
                    name: e.key.clone(),
                    name_span: e.key_span,
                    values,
                });
            }
            axes
        }
        None => Vec::new(),
    };

    let derived = match t.get("derived") {
        Some(n) => {
            let dt = as_table(n, "[sweep.derived]")?;
            let mut out = Vec::new();
            for e in &dt.entries {
                let expr = as_str(&e.node, &format!("derived parameter '{}'", e.key))?;
                out.push(Derived {
                    name: e.key.clone(),
                    name_span: e.key_span,
                    expr: expr.to_string(),
                    expr_span: e.node.span,
                });
            }
            out
        }
        None => Vec::new(),
    };

    // Merge: defaults first (block value wins in place), then
    // block-only keys in block order.
    let mut params: Vec<Entry> = Vec::new();
    for d in defaults {
        if d.key == "kind" {
            continue;
        }
        match t.get(&d.key) {
            Some(_) => {} // block version added below, in block order
            None => params.push(d.clone()),
        }
    }
    for e in &t.entries {
        if e.key == "kind" || e.key == "grid" || e.key == "derived" {
            continue;
        }
        params.push(e.clone());
    }

    Ok(SweepSpec {
        kind,
        kind_span: kind_node.span,
        index,
        params,
        grid,
        derived,
    })
}

fn decode_collate(t: &Table, span: Span) -> Result<CollateSpec, SpecError> {
    let mut f = Fields::new(t);
    let mode_node = f
        .take("mode")
        .ok_or_else(|| invalid(span, "[collate] is missing required key 'mode'"))?;
    let mode = as_str(mode_node, "'mode'")?.to_string();
    if mode != "ratio-to-first" {
        return Err(invalid(
            mode_node.span,
            format!("unknown collate mode '{mode}' (available: ratio-to-first)"),
        ));
    }
    let column_node = f
        .take("column")
        .ok_or_else(|| invalid(span, "[collate] is missing required key 'column'"))?;
    let column = as_int(column_node, "'column'")?;
    if column < 0 {
        return Err(invalid(column_node.span, "'column' must be >= 0"));
    }
    let decimals = match f.take("decimals") {
        Some(n) => {
            let d = as_int(n, "'decimals'")?;
            if !(0..=12).contains(&d) {
                return Err(invalid(n.span, "'decimals' must be between 0 and 12"));
            }
            d as usize
        }
        None => 3,
    };
    let suffix = match f.take("suffix") {
        Some(n) => as_str(n, "'suffix'")?.to_string(),
        None => String::new(),
    };
    f.finish("[collate]", &["mode", "column", "decimals", "suffix"])?;
    Ok(CollateSpec {
        mode,
        column: column as usize,
        decimals,
        suffix,
        span,
    })
}

/// Parse the JSON alternate form (vendored `serde_json`) and decode
/// it. JSON carries no line/column information, so diagnostics from
/// this path report position `0:0`.
pub fn from_json(text: &str) -> Result<Spec, SpecError> {
    let value = serde_json::from_str(text).map_err(|e| SpecError::Parse {
        line: 0,
        col: 0,
        message: format!("JSON: {} (at byte offset {})", e.message, e.offset),
    })?;
    let node = json_to_node(&value)?;
    let table = match node.value {
        Value::Table(t) => t,
        v => {
            return Err(SpecError::Parse {
                line: 0,
                col: 0,
                message: format!("JSON spec must be an object, found {}", v.type_name()),
            })
        }
    };
    decode(&table)
}

fn json_to_node(v: &serde_json::Value) -> Result<Node, SpecError> {
    let value = match v {
        serde_json::Value::Null => {
            return Err(SpecError::Parse {
                line: 0,
                col: 0,
                message: "JSON null is not a spec value".into(),
            })
        }
        serde_json::Value::Bool(b) => Value::Bool(*b),
        serde_json::Value::Number(n) => {
            if n.fract() == 0.0 && n.abs() <= 9.007_199_254_740_992e15 {
                Value::Int(*n as i64)
            } else {
                Value::Float(*n)
            }
        }
        serde_json::Value::String(s) => Value::Str(s.clone()),
        serde_json::Value::Array(items) => {
            Value::Array(items.iter().map(json_to_node).collect::<Result<_, _>>()?)
        }
        serde_json::Value::Object(entries) => {
            let mut t = Table::default();
            for (k, v) in entries {
                t.entries.push(Entry {
                    key: k.clone(),
                    key_span: Span::NONE,
                    node: json_to_node(v)?,
                });
            }
            Value::Table(t)
        }
    };
    Ok(Node {
        value,
        span: Span::NONE,
    })
}

impl Spec {
    /// Emit the canonical TOML rendering: defaults merged into each
    /// block, sections in fixed order. Re-parsing the emission yields
    /// an equal spec (the round-trip fixed point the property suite
    /// holds).
    pub fn to_toml(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("schema = {}\n", quote(SPEC_SCHEMA)));
        out.push_str("\n[report]\n");
        out.push_str(&format!("id = {}\n", quote(&self.report.id)));
        out.push_str(&format!("title = {}\n", quote(&self.report.title)));
        out.push_str(&format!(
            "headers = [{}]\n",
            self.report
                .headers
                .iter()
                .map(|h| quote(h))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        if !self.report.notes.is_empty() {
            out.push_str(&format!(
                "notes = [{}]\n",
                self.report
                    .notes
                    .iter()
                    .map(|n| quote(n))
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
        }
        if let Some(n) = self.sim_threads {
            out.push_str("\n[defaults]\n");
            out.push_str(&format!("sim_threads = {n}\n"));
        }
        for s in &self.sweeps {
            out.push_str("\n[[sweep]]\n");
            out.push_str(&format!("kind = {}\n", quote(&s.kind)));
            for e in &s.params {
                out.push_str(&format!("{} = {}\n", e.key, render(&e.node)));
            }
            if !s.grid.is_empty() {
                out.push_str("\n[sweep.grid]\n");
                for a in &s.grid {
                    out.push_str(&format!(
                        "{} = [{}]\n",
                        a.name,
                        a.values.iter().map(render).collect::<Vec<_>>().join(", ")
                    ));
                }
            }
            if !s.derived.is_empty() {
                out.push_str("\n[sweep.derived]\n");
                for d in &s.derived {
                    out.push_str(&format!("{} = {}\n", d.name, quote(&d.expr)));
                }
            }
        }
        if let Some(c) = &self.collate {
            out.push_str("\n[collate]\n");
            out.push_str(&format!("mode = {}\n", quote(&c.mode)));
            out.push_str(&format!("column = {}\n", c.column));
            out.push_str(&format!("decimals = {}\n", c.decimals));
            out.push_str(&format!("suffix = {}\n", quote(&c.suffix)));
        }
        out
    }
}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn render(node: &Node) -> String {
    match &node.value {
        Value::Int(i) => i.to_string(),
        Value::Float(f) => format!("{f:?}"),
        Value::Str(s) => quote(s),
        Value::Bool(b) => b.to_string(),
        Value::Array(items) => format!(
            "[{}]",
            items.iter().map(render).collect::<Vec<_>>().join(", ")
        ),
        Value::Table(t) => format!(
            "{{ {} }}",
            t.entries
                .iter()
                .map(|e| format!("{} = {}", e.key, render(&e.node)))
                .collect::<Vec<_>>()
                .join(", ")
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::toml::parse as parse_table;

    const MINI: &str = r#"
schema = "columbia-spec-v1"

[report]
id = "T"
title = "a tiny spec"
headers = ["benchmark", "node", "per-CPU result"]

[defaults]
stride = 1

[[sweep]]
kind = "dgemm"
row = ["DGEMM", "{node}", "{gflops} Gflop/s"]

[sweep.grid]
node = ["3700", "BX2a", "BX2b"]
"#;

    #[test]
    fn decodes_and_merges_defaults() {
        let spec = decode(&parse_table(MINI).unwrap()).unwrap();
        assert_eq!(spec.report.id, "T");
        assert_eq!(spec.sweeps.len(), 1);
        let s = &spec.sweeps[0];
        assert_eq!(s.kind, "dgemm");
        // Default `stride` merged in, block `row` present.
        assert!(s.params.iter().any(|e| e.key == "stride"));
        assert!(s.params.iter().any(|e| e.key == "row"));
        assert_eq!(s.grid.len(), 1);
        assert_eq!(s.grid[0].name, "node");
        assert_eq!(s.grid[0].values.len(), 3);
    }

    #[test]
    fn unknown_top_level_key_suggests() {
        let text = MINI.replace("[defaults]", "[default]");
        let err = decode(&parse_table(&text).unwrap()).unwrap_err();
        match err {
            SpecError::UnknownKey {
                key, suggestion, ..
            } => {
                assert_eq!(key, "default");
                assert_eq!(suggestion.as_deref(), Some("defaults"));
            }
            other => panic!("{other}"),
        }
    }

    #[test]
    fn schema_is_mandatory_and_checked() {
        let err = decode(&parse_table("x = 1\n").unwrap()).unwrap_err();
        assert!(err.to_string().contains("schema"), "{err}");
        let text = MINI.replace("columbia-spec-v1", "columbia-spec-v9");
        let err = decode(&parse_table(&text).unwrap()).unwrap_err();
        assert!(err.to_string().contains("unsupported schema"), "{err}");
    }

    #[test]
    fn emit_reparse_is_a_fixed_point() {
        let spec = decode(&parse_table(MINI).unwrap()).unwrap();
        let emitted = spec.to_toml();
        let spec2 = decode(&parse_table(&emitted).unwrap()).unwrap();
        assert_eq!(emitted, spec2.to_toml());
    }

    #[test]
    fn json_alternate_form_decodes() {
        let json = r#"{
            "schema": "columbia-spec-v1",
            "report": {"id": "T", "title": "t", "headers": ["a"]},
            "sweep": [{"kind": "dgemm", "stride": 1,
                       "row": ["DGEMM", "{node}", "{gflops}"],
                       "grid": {"node": ["3700"]}}]
        }"#;
        let spec = from_json(json).unwrap();
        assert_eq!(spec.sweeps[0].kind, "dgemm");
        assert_eq!(spec.sweeps[0].grid[0].values.len(), 1);
    }
}
