//! `core::manifest` — the canonical machine-readable record of one
//! `repro` run.
//!
//! A characterization campaign is only as reproducible as its
//! paper trail. `repro --manifest out.json` writes one schema'd JSON
//! document per invocation recording *what ran* (experiments, plan
//! fingerprints, point counts), *how it ran* (jobs, resilience
//! options, per-experiment [`SweepStats`]), *what it produced* (a
//! content hash of each rendered report), and *what it cost* (wall
//! time, host executor metrics) — plus the git revision, so a manifest
//! pins a result to the exact tree that made it.
//!
//! # Determinism contract
//!
//! Everything nondeterministic lives under the single top-level
//! `volatile` key: wall time, git revision, and host executor metrics
//! (steal counts depend on scheduling). The rest of the document is
//! **byte-stable**: two identical runs produce identical manifests
//! once `volatile` is stripped ([`RunManifest::stable_string`]), and a
//! golden test holds that line. Keys render in insertion order —
//! fixed by this module, never by a hash map — so stability is
//! structural, not accidental.

use std::time::Duration;

use serde_json::Value;

use crate::report::Report;
use crate::store::Fnv128;
use crate::sweep::SweepStats;

/// Schema tag of the run manifest document.
pub const RUN_MANIFEST_SCHEMA: &str = "columbia-run-manifest-v1";

/// 128-bit FNV-1a content hash of a rendered report (its canonical
/// text form), as 32 hex chars. Two runs produced the same tables iff
/// their report hashes match — the manifest carries the hash instead
/// of the full table so diffing manifests stays cheap.
pub fn report_hash(report: &Report) -> String {
    let mut h = Fnv128::new();
    h.update(b"columbia-report\0");
    h.update(report.to_text().as_bytes());
    format!("{:032x}", h.finish())
}

/// The shared stable fields of one `experiments[]` entry.
fn experiment_entry(
    name: &str,
    fingerprint: u64,
    points: usize,
    report: &Report,
    stats: Option<&SweepStats>,
) -> Value {
    let mut e = Value::object();
    e.set("name", Value::String(name.into()));
    e.set(
        "plan_fingerprint",
        Value::String(format!("{fingerprint:016x}")),
    );
    e.set("points", Value::Number(points as f64));
    e.set("report_id", Value::String(report.id.clone()));
    e.set("report_hash", Value::String(report_hash(report)));
    e.set(
        "stats",
        match stats {
            Some(s) => s.to_value(),
            None => Value::Null,
        },
    );
    e
}

/// The resilience configuration a run executed under, as recorded in
/// the manifest (a summary, not the live [`crate::ResilienceOptions`]
/// — that struct owns a store handle and closures the manifest cannot
/// serialize).
#[derive(Debug, Clone, Default)]
pub struct ResilienceSummary {
    /// Whether the resilient executor ran at all.
    pub enabled: bool,
    /// Whether checkpointed points were served without re-running.
    pub resume: bool,
    /// Retries after a panicked or timed-out attempt.
    pub max_retries: u32,
    /// Per-attempt wall-clock deadline, if any.
    pub deadline: Option<Duration>,
    /// Checkpoint directory, if any.
    pub checkpoint_dir: Option<String>,
}

impl ResilienceSummary {
    fn to_value(&self) -> Value {
        let mut v = Value::object();
        v.set("enabled", Value::Bool(self.enabled));
        v.set("resume", Value::Bool(self.resume));
        v.set("max_retries", Value::Number(f64::from(self.max_retries)));
        v.set(
            "point_deadline_seconds",
            match self.deadline {
                Some(d) => Value::Number(d.as_secs_f64()),
                None => Value::Null,
            },
        );
        v.set(
            "checkpoint_dir",
            match &self.checkpoint_dir {
                Some(d) => Value::String(d.clone()),
                None => Value::Null,
            },
        );
        v
    }
}

/// The declared-nondeterministic tail of a manifest. Everything here
/// renders under the `volatile` key and is excluded from the
/// byte-stability contract.
#[derive(Debug, Clone, Default)]
pub struct Volatile {
    /// Wall clock of the whole run, seconds.
    pub wall_time_seconds: f64,
    /// `git rev-parse HEAD` of the tree that ran (see [`git_rev`]).
    pub git_rev: String,
    /// Host executor metrics ([`columbia_obs::Metrics::to_value`]) when
    /// a host capture was live, else absent.
    pub host_metrics: Option<Value>,
    /// PDES threads each simulation ran with (1 = serial engine).
    /// Volatile because results are bit-identical at any value — the
    /// stable portion must not depend on how the run was executed.
    pub sim_threads: usize,
}

/// Accumulates one run's manifest; [`ManifestBuilder::finish`] seals
/// it. Experiments must be recorded in execution order — the manifest
/// preserves it.
#[derive(Debug)]
pub struct ManifestBuilder {
    doc: Value,
    experiments: Vec<Value>,
}

impl ManifestBuilder {
    /// Start a manifest for `tool` (e.g. "repro") running `jobs`
    /// worker threads under `resilience`.
    pub fn new(tool: &str, jobs: usize, resilience: &ResilienceSummary) -> Self {
        let mut doc = Value::object();
        doc.set("schema", Value::String(RUN_MANIFEST_SCHEMA.into()));
        doc.set("tool", Value::String(tool.into()));
        doc.set("jobs", Value::Number(jobs as f64));
        doc.set("resilience", resilience.to_value());
        ManifestBuilder {
            doc,
            experiments: Vec::new(),
        }
    }

    /// Record one executed experiment: its plan identity (name,
    /// shape fingerprint, point count), the content hash of the report
    /// it rendered, and — for resilient runs — its [`SweepStats`].
    pub fn record_experiment(
        &mut self,
        name: &str,
        fingerprint: u64,
        points: usize,
        report: &Report,
        stats: Option<&SweepStats>,
    ) {
        let e = experiment_entry(name, fingerprint, points, report, stats);
        self.experiments.push(e);
    }

    /// Record one spec-driven experiment (`repro --spec`). Identical to
    /// [`Self::record_experiment`] plus a trailing `spec` object pinning
    /// the run to the exact spec text that produced it: the FNV-128
    /// content hash of the spec bytes ([`crate::spec::spec_hash`]) and
    /// the resolved point count after grid expansion. Both live in the
    /// stable portion — same spec, same manifest.
    pub fn record_spec_experiment(
        &mut self,
        name: &str,
        fingerprint: u64,
        points: usize,
        report: &Report,
        stats: Option<&SweepStats>,
        spec_content_hash: &str,
    ) {
        let mut e = experiment_entry(name, fingerprint, points, report, stats);
        let mut s = Value::object();
        s.set("content_hash", Value::String(spec_content_hash.into()));
        s.set("points", Value::Number(points as f64));
        e.set("spec", s);
        self.experiments.push(e);
    }

    /// Seal the manifest, attaching the declared-volatile tail.
    pub fn finish(mut self, volatile: &Volatile) -> RunManifest {
        self.doc.set("experiments", Value::Array(self.experiments));
        let mut v = Value::object();
        v.set(
            "wall_time_seconds",
            Value::Number(volatile.wall_time_seconds),
        );
        v.set("git_rev", Value::String(volatile.git_rev.clone()));
        v.set(
            "host_metrics",
            volatile.host_metrics.clone().unwrap_or(Value::Null),
        );
        v.set(
            "sim_threads",
            Value::Number(volatile.sim_threads.max(1) as f64),
        );
        self.doc.set("volatile", v);
        RunManifest { doc: self.doc }
    }
}

/// A sealed run manifest.
#[derive(Debug, Clone)]
pub struct RunManifest {
    doc: Value,
}

impl RunManifest {
    /// The full document.
    pub fn to_value(&self) -> &Value {
        &self.doc
    }

    /// The full document, pretty-printed — what `--manifest` writes.
    pub fn to_string_pretty(&self) -> String {
        serde_json::to_string_pretty(&self.doc)
    }

    /// The document with the `volatile` key stripped: the byte-stable
    /// part two identical runs must agree on. The golden test compares
    /// exactly this rendering.
    pub fn stable_string(&self) -> String {
        let mut doc = self.doc.clone();
        if let Value::Object(entries) = &mut doc {
            entries.retain(|(k, _)| k != "volatile");
        }
        serde_json::to_string_pretty(&doc)
    }
}

/// `git rev-parse HEAD` of the working tree, or `"unknown"` when git
/// is unavailable (e.g. running from an exported tarball). Volatile by
/// definition — it lives under the manifest's `volatile` key.
pub fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_report() -> Report {
        let mut r = Report::new("Table 9", "demo", &["a", "b"]);
        r.push_row(vec!["1".into(), "2".into()]);
        r.note("a note");
        r
    }

    fn demo_manifest(wall: f64) -> RunManifest {
        let resilience = ResilienceSummary {
            enabled: true,
            resume: false,
            max_retries: 2,
            deadline: Some(Duration::from_secs_f64(30.0)),
            checkpoint_dir: Some("ckpt".into()),
        };
        let mut b = ManifestBuilder::new("repro", 4, &resilience);
        let stats = SweepStats {
            points: 3,
            resumed: 1,
            retries: 2,
            panics: 0,
            timeouts: 1,
            failed: 1,
            checkpoint_errors: 0,
        };
        b.record_experiment("table9", 0xdead_beef, 3, &demo_report(), Some(&stats));
        b.finish(&Volatile {
            wall_time_seconds: wall,
            git_rev: git_rev(),
            host_metrics: None,
            sim_threads: 1,
        })
    }

    #[test]
    fn schema_and_sections_are_present_and_ordered() {
        let m = demo_manifest(1.5);
        let text = m.to_string_pretty();
        let doc = serde_json::from_str(&text).unwrap();
        assert_eq!(
            doc.get("schema").and_then(Value::as_str),
            Some(RUN_MANIFEST_SCHEMA)
        );
        assert_eq!(doc.get("tool").and_then(Value::as_str), Some("repro"));
        assert_eq!(doc.get("jobs").and_then(Value::as_f64), Some(4.0));
        let exps = doc.get("experiments").and_then(Value::as_array).unwrap();
        assert_eq!(exps.len(), 1);
        let e = &exps[0];
        assert_eq!(e.get("name").and_then(Value::as_str), Some("table9"));
        assert_eq!(
            e.get("plan_fingerprint").and_then(Value::as_str),
            Some("00000000deadbeef")
        );
        assert_eq!(
            e.get("stats")
                .and_then(|s| s.get("timeouts"))
                .and_then(Value::as_f64),
            Some(1.0)
        );
        // volatile is the last top-level key, carrying the run cost.
        let vol = doc.get("volatile").unwrap();
        assert_eq!(
            vol.get("wall_time_seconds").and_then(Value::as_f64),
            Some(1.5)
        );
        assert!(vol.get("git_rev").and_then(Value::as_str).is_some());
    }

    #[test]
    fn stable_rendering_ignores_the_volatile_tail() {
        let a = demo_manifest(1.0);
        let b = demo_manifest(99.0);
        assert_ne!(
            a.to_string_pretty(),
            b.to_string_pretty(),
            "full documents differ in wall time"
        );
        assert_eq!(
            a.stable_string(),
            b.stable_string(),
            "stable rendering is byte-identical"
        );
        assert!(
            !a.stable_string().contains("volatile"),
            "volatile is stripped, not zeroed"
        );
    }

    #[test]
    fn report_hash_tracks_report_content() {
        let r = demo_report();
        let mut r2 = demo_report();
        assert_eq!(report_hash(&r), report_hash(&r2));
        r2.push_row(vec!["3".into(), "4".into()]);
        assert_ne!(report_hash(&r), report_hash(&r2));
        assert_eq!(report_hash(&r).len(), 32, "32 hex chars of FNV-128");
    }

    #[test]
    fn git_rev_is_a_commit_or_unknown() {
        let rev = git_rev();
        assert!(
            rev == "unknown" || (rev.len() == 40 && rev.chars().all(|c| c.is_ascii_hexdigit())),
            "unexpected git_rev: {rev}"
        );
    }
}
