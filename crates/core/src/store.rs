//! `core::store` — the content-addressed on-disk point store behind
//! checkpoint/resume.
//!
//! A characterization campaign at Columbia scale is hours of sweep
//! points; an interrupted `repro` run used to restart from zero. This
//! store persists every completed [`PointOutput`] under a canonical
//! content hash, so `repro --resume` skips finished points, and —
//! because collation is already deterministic in sweep-index order — a
//! killed-and-resumed run is **byte-identical** to an uninterrupted one
//! (the golden suite and the CI resume smoke gate check exactly that).
//!
//! # Key derivation
//!
//! The store key is a 128-bit FNV-1a hash over a canonical byte string:
//!
//! ```text
//! columbia-point-store-v1 \0 <experiment> \0 <plan fingerprint> \0 <sweep index>
//! ```
//!
//! where the plan fingerprint ([`crate::sweep::SweepPlan::fingerprint`])
//! folds in the plan id, title, headers, and point count. Every
//! experiment derives its machine config, SPMD program, fault plan, and
//! seed deterministically from its id (the `DEGRADED_SEED` discipline),
//! so `(experiment, fingerprint, index)` *is* a content address for the
//! inputs the tentpole names — change the plan shape and the key moves,
//! orphaning stale entries instead of serving them. The versioned
//! domain prefix lets the format evolve without ever misreading an old
//! entry.
//!
//! # Durability
//!
//! Writes are atomic: the entry is serialized to a process-unique
//! `*.tmp` sibling and `rename`d into place, so a kill mid-write leaves
//! either the complete entry or a stray temp file — never a torn entry
//! under the final name. Loads treat missing, truncated, corrupt, or
//! version-mismatched files as cache misses (the point simply re-runs),
//! which is what makes resuming from a violently truncated checkpoint
//! directory safe.
//!
//! Collation scalars (`PointOutput::values`) round-trip **bit-exactly**
//! — they are stored as hex-encoded IEEE-754 bit patterns, not decimal
//! — because the degraded sweep's slowdown column divides by them and
//! byte-identity of the resumed report depends on every bit.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use columbia_obs::host::{self, HostTrack};
use serde_json::Value;

use crate::sweep::PointOutput;

/// Store format version, folded into both the key domain and the entry
/// payload. Bump when the serialization or key derivation changes.
pub const STORE_VERSION: u64 = 1;

/// The canonical identity of one sweep point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PointKey {
    /// Experiment id (`repro --exp` name, or the plan id for ad-hoc
    /// sweeps).
    pub experiment: String,
    /// Fingerprint of the owning plan's shape
    /// ([`crate::sweep::SweepPlan::fingerprint`]).
    pub fingerprint: u64,
    /// Sweep index of the point within the plan.
    pub index: usize,
}

impl PointKey {
    /// The 128-bit content hash naming this point on disk.
    pub fn content_hash(&self) -> u128 {
        let mut h = Fnv128::new();
        h.update(b"columbia-point-store-v");
        h.update(STORE_VERSION.to_string().as_bytes());
        h.update(b"\0");
        h.update(self.experiment.as_bytes());
        h.update(b"\0");
        h.update(&self.fingerprint.to_le_bytes());
        h.update(b"\0");
        h.update(&(self.index as u64).to_le_bytes());
        h.finish()
    }

    /// File name of the entry: 32 hex chars of the content hash.
    pub fn file_name(&self) -> String {
        format!("{:032x}.json", self.content_hash())
    }
}

/// 128-bit FNV-1a, the std-only content hash behind [`PointKey`] (and,
/// truncated to 64 bits, [`crate::sweep::SweepPlan::fingerprint`]).
pub(crate) struct Fnv128(u128);

impl Fnv128 {
    const OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
    const PRIME: u128 = 0x0000000001000000000000000000013b;

    pub(crate) fn new() -> Self {
        Fnv128(Self::OFFSET)
    }

    pub(crate) fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u128;
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    pub(crate) fn finish(&self) -> u128 {
        self.0
    }
}

/// Why a store operation failed. Loads never fail — a bad entry is a
/// miss — so this only covers creating the directory and persisting
/// entries.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure, with the path that produced it.
    Io {
        /// What the store was doing.
        action: &'static str,
        /// The path involved.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io {
                action,
                path,
                source,
            } => {
                write!(f, "checkpoint store: {action} {}: {source}", path.display())
            }
        }
    }
}

impl std::error::Error for StoreError {}

/// Monotonic discriminator for temp-file names, so concurrent saves
/// from worker threads never collide on the same temp path.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// A directory of completed sweep points, one file per
/// [`PointKey`].
#[derive(Debug)]
pub struct PointStore {
    dir: PathBuf,
}

impl PointStore {
    /// Open (creating if needed) a store rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|source| StoreError::Io {
            action: "create directory",
            path: dir.clone(),
            source,
        })?;
        Ok(PointStore { dir })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Persist one completed point atomically (temp file + rename).
    ///
    /// Under a live host capture the write+rename is timed as a span on
    /// the store lane, observed into `store.write_seconds`, and counted
    /// as `store.saves` (or `store.save_errors` on failure).
    pub fn save(&self, key: &PointKey, output: &PointOutput) -> Result<(), StoreError> {
        let t0 = host::clock();
        let final_path = self.dir.join(key.file_name());
        let tmp_path = self.dir.join(format!(
            "{}.tmp.{}.{}",
            key.file_name(),
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let payload = encode_point(output);
        let bytes = payload.len();
        let result = std::fs::write(&tmp_path, payload)
            .map_err(|source| StoreError::Io {
                action: "write",
                path: tmp_path.clone(),
                source,
            })
            .and_then(|()| {
                std::fs::rename(&tmp_path, &final_path).map_err(|source| StoreError::Io {
                    action: "rename into",
                    path: final_path.clone(),
                    source,
                })
            });
        if let Some(t0) = t0 {
            let ok = result.is_ok();
            host::count(
                if ok {
                    "store.saves"
                } else {
                    "store.save_errors"
                },
                1,
            );
            host::span(
                HostTrack::Store,
                "host.store",
                format!("save point {}", key.index),
                t0,
                vec![
                    ("index", Value::Number(key.index as f64)),
                    ("bytes", Value::Number(bytes as f64)),
                    (
                        "outcome",
                        Value::String(if ok { "ok" } else { "error" }.into()),
                    ),
                ],
            );
            // The span's end already measured the write+rename; reuse
            // the same clock for the latency histogram.
            if let Some(t1) = host::clock() {
                host::observe("store.write_seconds", (t1 - t0).max(0.0));
            }
        }
        result
    }

    /// Load a point if a valid entry exists. Missing, truncated,
    /// corrupt, or version-mismatched entries are misses (`None`): the
    /// caller re-runs the point and overwrites the entry.
    ///
    /// Under a live host capture each probe lands on the store lane as
    /// an instant and one of `store.hits` (valid entry),
    /// `store.misses` (no readable file), or `store.corrupt` (file
    /// read, decode refused).
    pub fn load(&self, key: &PointKey) -> Option<PointOutput> {
        let path = self.dir.join(key.file_name());
        let read = std::fs::read_to_string(path);
        let decoded = read.as_deref().ok().and_then(decode_point);
        if host::is_enabled() {
            let outcome = match (&read, &decoded) {
                (Ok(_), Some(_)) => "hit",
                (Ok(_), None) => "corrupt",
                (Err(_), _) => "miss",
            };
            host::count(
                match outcome {
                    "hit" => "store.hits",
                    "corrupt" => "store.corrupt",
                    _ => "store.misses",
                },
                1,
            );
            host::instant(
                HostTrack::Store,
                "host.store",
                format!("load point {}: {outcome}", key.index),
                vec![
                    ("index", Value::Number(key.index as f64)),
                    ("outcome", Value::String(outcome.into())),
                ],
            );
        }
        decoded
    }

    /// Whether a valid entry exists for `key`.
    pub fn contains(&self, key: &PointKey) -> bool {
        self.load(key).is_some()
    }

    /// Number of (non-temp) entries on disk. Diagnostic only.
    pub fn len(&self) -> usize {
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return 0;
        };
        entries
            .flatten()
            .filter(|e| e.file_name().to_str().is_some_and(|n| n.ends_with(".json")))
            .count()
    }

    /// Whether the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Serialize one [`PointOutput`] as the versioned store entry.
pub fn encode_point(output: &PointOutput) -> String {
    let strings = |v: &[String]| Value::Array(v.iter().map(|s| Value::String(s.clone())).collect());
    let mut doc = Value::object();
    doc.set("version", Value::Number(STORE_VERSION as f64));
    doc.set(
        "rows",
        Value::Array(output.rows.iter().map(|r| strings(r)).collect()),
    );
    doc.set("notes", strings(&output.notes));
    // f64 scalars as IEEE-754 bit patterns: decimal round-tripping can
    // perturb the last ulp, and byte-identical resumed reports cannot
    // afford that.
    doc.set(
        "values_bits",
        Value::Array(
            output
                .values
                .iter()
                .map(|v| Value::String(format!("{:016x}", v.to_bits())))
                .collect(),
        ),
    );
    serde_json::to_string_pretty(&doc)
}

/// Parse a store entry back into a [`PointOutput`]; `None` for
/// anything malformed or from another format version.
pub fn decode_point(text: &str) -> Option<PointOutput> {
    let doc = serde_json::from_str(text).ok()?;
    if doc.get("version")?.as_f64()? != STORE_VERSION as f64 {
        return None;
    }
    let str_items = |v: &Value| -> Option<Vec<String>> {
        v.as_array()?
            .iter()
            .map(|s| s.as_str().map(String::from))
            .collect()
    };
    let rows = doc
        .get("rows")?
        .as_array()?
        .iter()
        .map(str_items)
        .collect::<Option<Vec<_>>>()?;
    let notes = str_items(doc.get("notes")?)?;
    let values = doc
        .get("values_bits")?
        .as_array()?
        .iter()
        .map(|v| {
            let s = v.as_str()?;
            if s.len() != 16 {
                return None;
            }
            u64::from_str_radix(s, 16).ok().map(f64::from_bits)
        })
        .collect::<Option<Vec<_>>>()?;
    Some(PointOutput {
        rows,
        notes,
        values,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> PointStore {
        let dir = std::env::temp_dir().join(format!(
            "columbia-store-test-{tag}-{}-{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        PointStore::open(dir).unwrap()
    }

    fn key(i: usize) -> PointKey {
        PointKey {
            experiment: "unit".into(),
            fingerprint: 0xfeed,
            index: i,
        }
    }

    #[test]
    fn round_trips_rows_notes_and_bit_exact_values() {
        let store = temp_store("roundtrip");
        let out = PointOutput {
            rows: vec![
                vec!["a".into(), "1.00 ms".into()],
                vec!["weird\ncell\t\"".into(), String::new()],
            ],
            notes: vec!["note one".into(), "unicode: µs × 2".into()],
            values: vec![0.1 + 0.2, f64::NAN, -0.0, 1e-300, f64::INFINITY],
        };
        store.save(&key(3), &out).unwrap();
        let back = store.load(&key(3)).unwrap();
        assert_eq!(back.rows, out.rows);
        assert_eq!(back.notes, out.notes);
        assert_eq!(back.values.len(), out.values.len());
        for (a, b) in back.values.iter().zip(&out.values) {
            assert_eq!(a.to_bits(), b.to_bits(), "bit-exact f64 round trip");
        }
    }

    #[test]
    fn different_indices_get_different_entries() {
        let store = temp_store("indices");
        assert_ne!(key(0).content_hash(), key(1).content_hash());
        assert_ne!(key(0).file_name(), key(1).file_name());
        store
            .save(&key(0), &PointOutput::row(vec!["x".into()]))
            .unwrap();
        assert!(store.contains(&key(0)));
        assert!(!store.contains(&key(1)));
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn key_is_sensitive_to_every_component() {
        let base = key(2).content_hash();
        let other_exp = PointKey {
            experiment: "unit2".into(),
            ..key(2)
        };
        let other_fp = PointKey {
            fingerprint: 0xbeef,
            ..key(2)
        };
        assert_ne!(base, other_exp.content_hash());
        assert_ne!(base, other_fp.content_hash());
    }

    #[test]
    fn truncated_and_corrupt_entries_are_misses() {
        let store = temp_store("corrupt");
        let out = PointOutput::row(vec!["ok".into()]).with_value(1.5);
        store.save(&key(7), &out).unwrap();
        let path = store.dir().join(key(7).file_name());
        let full = std::fs::read_to_string(&path).unwrap();
        // Truncate mid-entry, as a kill mid-write would (if the write
        // were not atomic) or a torn copy could.
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        assert_eq!(store.load(&key(7)), None);
        std::fs::write(&path, "not json at all").unwrap();
        assert_eq!(store.load(&key(7)), None);
        // A re-save repairs the entry.
        store.save(&key(7), &out).unwrap();
        assert_eq!(store.load(&key(7)), Some(out));
    }

    #[test]
    fn version_mismatch_is_a_miss() {
        let entry = encode_point(&PointOutput::row(vec!["v".into()]));
        let bumped = entry.replace(&format!("\"version\": {STORE_VERSION}"), "\"version\": 999");
        assert_ne!(entry, bumped, "fixture must actually change the version");
        assert!(decode_point(&entry).is_some());
        assert_eq!(decode_point(&bumped), None);
    }

    #[test]
    fn missing_entry_is_a_miss() {
        let store = temp_store("missing");
        assert_eq!(store.load(&key(0)), None);
        assert!(store.is_empty());
    }
}
